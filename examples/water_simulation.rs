//! LWS — the liquid water simulation of §7.3, the application behind
//! Figures 9 and 10. Runs the same Jade program on real threads and
//! on the three simulated platforms of the paper.
//!
//! Run with: `cargo run --release --example water_simulation`

use jade_apps::lws::{self, WaterSystem};
use jade_sim::{Platform, RunConfig, Runtime, SimExecutor, SimReport};
use jade_threads::ThreadedExecutor;

fn main() {
    let n = 400; // molecules (the paper's runs use 2197; see fig9_lws_times)
    let steps = 2;
    let sys = WaterSystem::new(n, 1992);

    // Serial reference physics.
    let mut serial_sys = sys.clone();
    let serial_e = lws::serial::run(&mut serial_sys, steps, 0.002);
    println!("serial:        potential energies {serial_e:?}");

    // Jade on threads.
    let s1 = sys.clone();
    let trep = ThreadedExecutor::new(4)
        .execute(RunConfig::new(), move |ctx| lws::run_jade(ctx, &s1, 8, steps, 0.002))
        .expect("clean run");
    let (e_thr, _) = trep.result;
    println!("4 threads:     potential energies {e_thr:?} ({} tasks)", trep.stats.tasks_created);
    for (a, b) in e_thr.iter().zip(&serial_e) {
        assert!((a - b).abs() < 1e-9, "physics diverged: {a} vs {b}");
    }

    // The same program on the paper's three platforms, 8 machines each.
    for platform in [Platform::dash(8), Platform::ipsc860(8), Platform::mica(8)] {
        let name = platform.name.clone();
        let s2 = sys.clone();
        let blocks = 4 * platform.len();
        let srep = SimExecutor::new(platform)
            .execute(RunConfig::new(), move |ctx| lws::run_jade(ctx, &s2, blocks, steps, 0.002))
            .expect("clean run");
        let report = srep.extra::<SimReport>().expect("sim extras");
        println!(
            "{name:>8} x8:  simulated time {:>12}   utilization {:>4.0}%   {} msgs / {} bytes",
            report.time.to_string(),
            report.utilization() * 100.0,
            report.net.messages,
            report.net.bytes
        );
    }
    println!("(DASH scales best, the iPSC/860 close behind, Mica's shared Ethernet lags — Figure 9/10's shape)");
}
