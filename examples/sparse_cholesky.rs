//! The paper's running example: sparse Cholesky factorization with
//! dynamically discovered, data-dependent concurrency (§3), composed
//! with the §4.2 pipelined back substitution.
//!
//! Run with: `cargo run --release --example sparse_cholesky`

use jade_apps::cholesky::{self, SparseSym, SubstMode};
use jade_sim::{Platform, SimExecutor};
use jade_threads::ThreadedExecutor;

fn main() {
    let n = 200;
    let a = SparseSym::random_spd(n, 6, 2026);
    println!(
        "matrix: n={n}, below-diagonal nnz (with fill) = {}",
        a.pattern.nnz()
    );

    // Reference: the plain serial program.
    let mut l_serial = a.clone();
    cholesky::serial::factor(&mut l_serial);

    // The Jade program on real threads.
    let a1 = a.clone();
    let (l_jade, stats) =
        ThreadedExecutor::new(4).run(move |ctx| cholesky::factor_program(ctx, &a1));
    assert_eq!(l_jade.cols, l_serial.cols, "parallel factor must equal serial");
    println!(
        "threaded factor: {} tasks, {} dependence conflicts detected",
        stats.tasks_created, stats.conflicts
    );

    // Solve A·x = b, pipelining the substitution into the
    // factorization with deferred reads.
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.17).sin()).collect();
    let a2 = a.clone();
    let b2 = b.clone();
    let (y, _) = ThreadedExecutor::new(4)
        .run(move |ctx| cholesky::factor_then_subst(ctx, &a2, &b2, SubstMode::Pipelined));
    let y_ref = cholesky::serial::forward_subst(&l_serial, &b);
    assert_eq!(y, y_ref);
    println!("pipelined forward substitution matches the serial solve");

    // The same program on a simulated 8-node iPSC/860, with the
    // task-boundary vs pipelined comparison the paper motivates.
    for mode in [SubstMode::TaskBoundary, SubstMode::Pipelined] {
        let a3 = a.clone();
        let b3 = b.clone();
        let (_, report) = SimExecutor::new(Platform::ipsc860(8))
            .run(move |ctx| cholesky::factor_then_subst(ctx, &a3, &b3, mode));
        println!(
            "iPSC/860 x8, {mode:?}: simulated time {}, {} object moves, {} copies",
            report.time, report.traffic.moves, report.traffic.copies
        );
    }

    // Supernodal variant: coarser objects and tasks (§3.2).
    let a4 = a.clone();
    let (_, sn_stats) =
        ThreadedExecutor::new(4).run(move |ctx| cholesky::factor_super_program(ctx, &a4));
    println!(
        "supernodal factor: {} tasks (columnwise used {})",
        sn_stats.tasks_created, stats.tasks_created
    );
}
