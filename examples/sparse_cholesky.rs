//! The paper's running example: sparse Cholesky factorization with
//! dynamically discovered, data-dependent concurrency (§3), composed
//! with the §4.2 pipelined back substitution.
//!
//! Run with: `cargo run --release --example sparse_cholesky`

use jade_apps::cholesky::{self, SparseSym, SubstMode};
use jade_sim::{Platform, RunConfig, Runtime, SimExecutor, SimReport};
use jade_threads::ThreadedExecutor;

fn main() {
    let n = 200;
    let a = SparseSym::random_spd(n, 6, 2026);
    println!(
        "matrix: n={n}, below-diagonal nnz (with fill) = {}",
        a.pattern.nnz()
    );

    // Reference: the plain serial program.
    let mut l_serial = a.clone();
    cholesky::serial::factor(&mut l_serial);

    // The Jade program on real threads.
    let a1 = a.clone();
    let frep = ThreadedExecutor::new(4)
        .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a1))
        .expect("clean run");
    let stats = frep.stats;
    assert_eq!(frep.result.cols, l_serial.cols, "parallel factor must equal serial");
    println!(
        "threaded factor: {} tasks, {} dependence conflicts detected",
        stats.tasks_created, stats.conflicts
    );

    // Solve A·x = b, pipelining the substitution into the
    // factorization with deferred reads.
    let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.17).sin()).collect();
    let a2 = a.clone();
    let b2 = b.clone();
    let y = ThreadedExecutor::new(4)
        .execute(RunConfig::new(), move |ctx| {
            cholesky::factor_then_subst(ctx, &a2, &b2, SubstMode::Pipelined)
        })
        .expect("clean run")
        .result;
    let y_ref = cholesky::serial::forward_subst(&l_serial, &b);
    assert_eq!(y, y_ref);
    println!("pipelined forward substitution matches the serial solve");

    // The same program on a simulated 8-node iPSC/860, with the
    // task-boundary vs pipelined comparison the paper motivates.
    for mode in [SubstMode::TaskBoundary, SubstMode::Pipelined] {
        let a3 = a.clone();
        let b3 = b.clone();
        let srep = SimExecutor::new(Platform::ipsc860(8))
            .execute(RunConfig::new(), move |ctx| {
                cholesky::factor_then_subst(ctx, &a3, &b3, mode)
            })
            .expect("clean run");
        let report = srep.extra::<SimReport>().expect("sim extras");
        println!(
            "iPSC/860 x8, {mode:?}: simulated time {}, {} object moves, {} copies",
            report.time, report.traffic.moves, report.traffic.copies
        );
    }

    // Supernodal variant: coarser objects and tasks (§3.2).
    let a4 = a.clone();
    let sn_stats = ThreadedExecutor::new(4)
        .execute(RunConfig::new(), move |ctx| cholesky::factor_super_program(ctx, &a4))
        .expect("clean run")
        .stats;
    println!(
        "supernodal factor: {} tasks (columnwise used {})",
        sn_stats.tasks_created, stats.tasks_created
    );
}
