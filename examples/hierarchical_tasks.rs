//! Hierarchical concurrency (§4.4): "Programmers may create
//! hierarchical forms of concurrency in a Jade program by dynamically
//! nesting withonly-do constructs ... in a fully recursive manner."
//!
//! Adaptive quadrature as a divide-and-conquer Jade program: each
//! interval task either integrates its interval directly or creates
//! two child tasks for the halves (each declaring only accesses its
//! parent's specification covers), then combines their results — the
//! combine *read* waits for the children automatically, because a
//! child's declaration precedes the parent's remaining accesses in
//! serial order.
//!
//! Run with: `cargo run --release --example hierarchical_tasks`

use jade_core::prelude::*;
use jade_core::withonly;
use jade_sim::{Platform, SimExecutor, SimReport};
use jade_threads::ThreadedExecutor;

/// The integrand: smooth with a sharp feature, so adaptivity matters.
fn f(x: f64) -> f64 {
    (10.0 * x).sin() / (1.0 + x * x) + 1.0 / (0.01 + (x - 0.3).abs())
}

/// Simpson's rule on [a, b].
fn simpson(a: f64, b: f64) -> f64 {
    let m = 0.5 * (a + b);
    (b - a) / 6.0 * (f(a) + 4.0 * f(m) + f(b))
}

/// Create the task tree for one interval, writing its integral into
/// `out`. Subdivides while the two-half estimate disagrees with the
/// whole-interval estimate.
fn interval_task<C: JadeCtx>(ctx: &mut C, out: Shared<f64>, a: f64, b: f64, depth: u32) {
    withonly!(ctx, "interval", { rd_wr(out); } do |c| {
        c.charge(300.0);
        let m = 0.5 * (a + b);
        let whole = simpson(a, b);
        let halves = simpson(a, m) + simpson(m, b);
        if depth == 0 || (whole - halves).abs() < 1e-7 {
            *c.wr(&out) = halves;
        } else {
            // Divide: two fresh result objects, two child tasks. The
            // children's declarations are covered by this task's
            // implicit rights on the objects it just created.
            let lo = c.create_named("half", 0.0f64);
            let hi = c.create_named("half", 0.0f64);
            interval_task(c, lo, a, m, depth - 1);
            interval_task(c, hi, m, b, depth - 1);
            // Conquer: these reads wait for the children (their
            // declarations sit before ours in each object's queue).
            let total = *c.rd(&lo) + *c.rd(&hi);
            *c.wr(&out) = total;
        }
    });
}

/// Integrate `f` over [a, b] with a task per refined interval.
fn integrate<C: JadeCtx>(ctx: &mut C, a: f64, b: f64) -> f64 {
    let out = ctx.create_named("integral", 0.0f64);
    interval_task(ctx, out, a, b, 10);
    *ctx.rd(&out)
}

fn main() {
    let (serial, stats) = jade_core::serial::run(|ctx| integrate(ctx, -1.0, 1.0));
    println!("serial elision:  ∫f = {serial:.9}   ({} interval tasks)", stats.tasks_created);

    let trep = ThreadedExecutor::new(8)
        .execute(RunConfig::new(), |ctx| integrate(ctx, -1.0, 1.0))
        .expect("clean run");
    let threaded = trep.result;
    println!("8 threads:       ∫f = {threaded:.9}   ({} tasks)", trep.stats.tasks_created);
    assert_eq!(serial, threaded, "hierarchical execution must stay deterministic");

    let srep = SimExecutor::new(Platform::dash(8))
        .execute(RunConfig::new(), |ctx| integrate(ctx, -1.0, 1.0))
        .expect("clean run");
    let simmed = srep.result;
    let report = srep.extra::<SimReport>().expect("sim extras");
    println!(
        "simulated DASH:  ∫f = {simmed:.9}   (sim time {}, util {:.0}%)",
        report.time,
        report.utilization() * 100.0
    );
    assert_eq!(serial, simmed);

    // Reference check by brute force.
    let n = 2_000_000;
    let h = 2.0 / n as f64;
    let brute: f64 = (0..n).map(|i| f(-1.0 + (i as f64 + 0.5) * h) * h).sum();
    println!("midpoint check:  ∫f = {brute:.9}");
    assert!((serial - brute).abs() < 1e-3, "adaptive result {serial} vs brute {brute}");
    println!("fully recursive nested tasks, identical results everywhere (§4.4).");
}
