//! The HRV digital-image-processing pipeline (§7.2): capture frames
//! on the SPARC host's digitizer, transform and display them on i860
//! accelerators — placement constraints plus runtime-managed frame
//! movement through a heterogeneous machine.
//!
//! Run with: `cargo run --release --example video_pipeline`

use jade_apps::video;
use jade_sim::{Platform, RunConfig, Runtime, SimExecutor, SimReport};

fn main() {
    let frames = 24;
    let (w, h) = (320, 240);
    let reference = video::video_serial(frames, w, h);

    println!("throughput of the two-withonly pipeline vs accelerator count:");
    let mut last_time = None;
    for accels in [1, 2, 3, 4] {
        let rep = SimExecutor::new(Platform::hrv(accels))
            .execute(RunConfig::new(), move |ctx| video::video_pipeline(ctx, frames, w, h))
            .expect("clean run");
        assert_eq!(rep.result, reference, "pipeline corrupted a frame");
        let report = rep.extra::<SimReport>().expect("sim extras");
        let secs = report.time.as_secs_f64();
        let fps = frames as f64 / secs;
        let speedup = last_time.map(|t: f64| t / secs).unwrap_or(1.0);
        last_time = Some(secs);
        println!(
            "  {accels} accelerator(s): {fps:>6.1} frames/s  (sim {:>10}, x{speedup:.2} vs previous, {} frame moves, {} conversions)",
            report.time.to_string(),
            report.traffic.moves,
            report.traffic.conversions
        );
    }
    println!("throughput rises with accelerators until the SPARC-side capture saturates;");
    println!("every frame crosses SPARC -> i860, exercising big->little-endian conversion.");
}
