//! Parallel make (§7.1): the serial rebuild loop with a `withonly`
//! around each command. The recompilation DAG — which "defeats static
//! analysis" because it depends on the makefile and on file
//! modification dates — is discovered dynamically by the runtime.
//!
//! Run with: `cargo run --release --example parallel_make`

use jade_apps::pmake::{self, Makefile};
use jade_sim::{Platform, RunConfig, Runtime, SimExecutor, SimReport};
use jade_threads::ThreadedExecutor;

fn main() {
    // A project: 12 C files -> 12 objects -> library -> two apps.
    let mk = Makefile::project(12, 6e6, 9e6);
    let serial = pmake::serial::make_serial(&mk);
    println!("full build rebuilds {} targets", serial.rebuilt.len());

    let mk1 = mk.clone();
    let rep = ThreadedExecutor::new(4)
        .execute(RunConfig::new(), move |ctx| pmake::make_jade(ctx, &mk1))
        .expect("clean run");
    assert_eq!(rep.result.rebuilt.len(), serial.rebuilt.len());
    println!(
        "threaded make: {} command tasks, {} dependence edges",
        rep.stats.tasks_created, rep.stats.conflicts
    );

    // Simulated workstation farm: compilations distribute across
    // machines; the library link waits for every object.
    let mk2 = mk.clone();
    let srep = SimExecutor::new(Platform::workstations(6))
        .execute(RunConfig::new(), move |ctx| pmake::make_jade(ctx, &mk2))
        .expect("clean run");
    let report = srep.extra::<SimReport>().expect("sim extras");
    println!(
        "6 workstations: simulated build time {}, utilization {:.0}%",
        report.time,
        report.utilization() * 100.0
    );

    // Incremental rebuild: touch one source file.
    let mut mk3 = mk.clone();
    for (name, st) in &serial.files {
        mk3.files.insert(name.clone(), *st);
    }
    mk3.files.get_mut("m3.c").unwrap().version += 100; // "edit": newer than any built artifact
    let inc = ThreadedExecutor::new(4)
        .execute(RunConfig::new(), move |ctx| pmake::make_jade(ctx, &mk3))
        .expect("clean run")
        .result;
    let mut rebuilt: Vec<&String> = inc.rebuilt.iter().collect();
    rebuilt.sort();
    println!("after touching m3.c, rebuilt: {rebuilt:?}");

    // A chain-shaped makefile has no parallelism at all — the runtime
    // discovers that too.
    let chain = Makefile::chain(10, 6e6);
    let chain_rep = SimExecutor::new(Platform::workstations(6))
        .execute(RunConfig::new(), move |ctx| pmake::make_jade(ctx, &chain))
        .expect("clean run");
    let chain_report = chain_rep.extra::<SimReport>().expect("sim extras");
    println!(
        "chain makefile on 6 machines: utilization {:.0}% (no parallelism to find)",
        chain_report.utilization() * 100.0
    );
}
