//! Quickstart: a first Jade program.
//!
//! Jade programs are sequential, imperative programs plus *access
//! declarations*. You decompose data into shared objects, wrap parts
//! of the program in `withonly` tasks declaring how each task accesses
//! those objects, and the runtime extracts the parallelism while
//! preserving the serial program's results.
//!
//! Run with: `cargo run --release --example quickstart`

use jade_core::prelude::*;
use jade_sim::{Platform, SimExecutor, SimReport};
use jade_threads::ThreadedExecutor;

/// The Jade program: a tiny map/reduce over shared objects. Written
/// once, generic over the execution context, it runs unmodified on
/// every executor — the paper's portability claim.
fn program<C: JadeCtx>(ctx: &mut C) -> f64 {
    // 1. Decompose data into shared objects.
    let parts: Vec<Shared<Vec<f64>>> = (0..8)
        .map(|k| ctx.create_named(&format!("part{k}"), (0..1000).map(|i| (k * 1000 + i) as f64).collect()))
        .collect();
    let total = ctx.create_named("total", 0.0f64);

    // 2. Independent tasks: square every element of each part.
    //    The specs don't conflict, so these run in parallel.
    for &part in &parts {
        ctx.withonly(
            "square",
            |spec| {
                spec.rd_wr(part);
            },
            move |c| {
                c.charge(2_000.0); // simulated work units (ignored on real executors)
                for v in c.wr(&part).iter_mut() {
                    *v = *v * *v;
                }
            },
        );
    }

    // 3. Reduction tasks: each reads one part and adds into the shared
    //    total. Integer-valued additions commute exactly, so we use
    //    the §4.3 higher-level declaration `cm`: the runtime may apply
    //    the updates in any order (serialized, but unordered) instead
    //    of enforcing the program order a `rd_wr` would imply.
    for &part in &parts {
        ctx.withonly(
            "reduce",
            |spec| {
                spec.rd(part);
                spec.cm(total);
            },
            move |c| {
                c.charge(1_000.0);
                let sum: f64 = c.rd(&part).iter().sum();
                *c.cm(&total) += sum;
            },
        );
    }

    // 4. The main program reads the result; Jade makes it wait for
    //    every task that touches `total`, in serial order.
    *ctx.rd(&total)
}

fn main() {
    // Serial elision: the reference semantics (and a debugging aid).
    let (serial, stats) = jade_core::serial::run(program);
    println!("serial elision:      {serial:.0}   ({} tasks)", stats.tasks_created);

    // Real shared-memory threads, through the uniform entry point.
    let threaded = ThreadedExecutor::new(4)
        .execute(RunConfig::new(), program)
        .expect("clean run");
    println!("4 threads:           {:.0}", threaded.result);

    // Simulated message-passing network of heterogeneous workstations.
    // The same `execute` call; the simulator's full report (network
    // traffic, simulated time) rides in `Report::extras`.
    let sim = SimExecutor::new(Platform::workstations(4))
        .execute(RunConfig::new(), program)
        .expect("clean run");
    let srep = sim.extra::<SimReport>().expect("sim extras");
    println!(
        "simulated hetnet x4: {:.0}   (simulated time {}, {} msgs, {} format conversions)",
        sim.result, srep.time, srep.net.messages, srep.traffic.conversions
    );

    assert_eq!(serial, threaded.result);
    assert_eq!(serial, sim.result);
    println!("all executions produced identical results — Jade's serial semantics");
}
