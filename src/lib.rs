//! Facade crate re-exporting the Jade reproduction workspace.
pub use jade_apps as apps;
pub use jade_core as core;
pub use jade_sim as sim;
pub use jade_threads as threads;
pub use jade_transport as transport;
