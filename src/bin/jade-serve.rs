//! `jade-serve` — stream Jade jobs from stdin into one long-running
//! session, GNU-parallel style.
//!
//! Every line of stdin is one job submitted into a
//! [`Session`](jade_core::serve::Session) over the chosen backend; the
//! session multiplexes them onto its execution slots with bounded
//! admission, and the driver retries with backoff when the server
//! pushes back with `Saturated`. EOF triggers a graceful drain: the
//! backlog runs dry, every result is printed, and the final
//! [`ServeStats`](jade_core::stats::ServeStats) go to stderr.
//!
//! ```text
//! jade-serve [--backend serial|threads|sim|net] [--slots N]
//!            [--queue-cap N] [--workers N]
//!
//! job lines (blank lines and '#' comments are skipped):
//!     pmake <targets> [seed]       parallel make on a random DAG
//!     cholesky <n> [nnz] [seed]    sparse Cholesky factorization
//!     lws <molecules> [steps]      the Water simulation
//!     spin <tasks>                 independent fine-grained tasks
//! ```
//!
//! Example:
//!
//! ```text
//! $ printf 'pmake 24\ncholesky 32\nlws 16 2\n' | jade-serve --slots 4
//! ```

use std::io::BufRead;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use jade_core::ctx::JadeCtx;
use jade_core::prelude::Shared;
use jade_core::runtime::{RunConfig, Runtime};
use jade_core::serial::SerialRuntime;
use jade_core::serve::{JobHandle, ServeConfig, SubmitError};
use jade_core::stats::ServeStats;
use jade_net::NetExecutor;
use jade_sim::{Platform, SimExecutor};
use jade_threads::ThreadedExecutor;

/// One parsed job line.
#[derive(Debug, Clone)]
enum JobSpec {
    Pmake { targets: usize, seed: u64 },
    Cholesky { n: usize, nnz: usize, seed: u64 },
    Lws { molecules: usize, steps: usize },
    Spin { tasks: u64 },
}

impl JobSpec {
    fn parse(line: &str) -> Result<JobSpec, String> {
        let mut it = line.split_whitespace();
        let app = it.next().expect("caller skips blank lines");
        let mut num = |default: Option<u64>| -> Result<u64, String> {
            match it.next() {
                Some(tok) => tok.parse().map_err(|_| format!("bad number '{tok}'")),
                None => default.ok_or_else(|| format!("{app}: missing argument")),
            }
        };
        match app {
            "pmake" => Ok(JobSpec::Pmake {
                targets: num(None)? as usize,
                seed: num(Some(3))?,
            }),
            "cholesky" => Ok(JobSpec::Cholesky {
                n: num(None)? as usize,
                nnz: num(Some(4))? as usize,
                seed: num(Some(11))?,
            }),
            "lws" => Ok(JobSpec::Lws {
                molecules: num(None)? as usize,
                steps: num(Some(2))? as usize,
            }),
            "spin" => Ok(JobSpec::Spin { tasks: num(None)? }),
            other => Err(format!("unknown app '{other}' (pmake|cholesky|lws|spin)")),
        }
    }

    /// Run the job on any backend, reduced to a small printable digest.
    fn run<C: JadeCtx>(&self, ctx: &mut C) -> u64 {
        match *self {
            JobSpec::Pmake { targets, seed } => {
                let mk = jade_apps::pmake::Makefile::random_dag(targets, seed);
                jade_apps::pmake::make_jade(ctx, &mk).rebuilt.len() as u64
            }
            JobSpec::Cholesky { n, nnz, seed } => {
                let a = jade_apps::cholesky::SparseSym::random_spd(n, nnz, seed);
                let l = jade_apps::cholesky::factor_program(ctx, &a);
                let sum: f64 = l.cols.iter().flatten().sum();
                sum.to_bits()
            }
            JobSpec::Lws { molecules, steps } => {
                let sys = jade_apps::lws::WaterSystem::new(molecules, 5);
                let (energies, _) = jade_apps::lws::run_jade(ctx, &sys, 4, steps, 0.002);
                energies.iter().sum::<f64>().to_bits()
            }
            JobSpec::Spin { tasks } => {
                let xs: Vec<Shared<u64>> = (0..64.min(tasks.max(1)))
                    .map(|_| ctx.create(0u64))
                    .collect();
                for i in 0..tasks {
                    let x = xs[(i % xs.len() as u64) as usize];
                    ctx.withonly("spin", |s| { s.rd_wr(x); }, move |c| {
                        *c.wr(&x) += 1;
                    });
                }
                xs.iter().map(|x| *ctx.rd(x)).sum()
            }
        }
    }
}

#[derive(Debug)]
struct Opts {
    backend: String,
    slots: usize,
    queue_cap: usize,
    workers: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: jade-serve [--backend serial|threads|sim|net] [--slots N] \
         [--queue-cap N] [--workers N]"
    );
    std::process::exit(2)
}

fn parse_opts() -> Opts {
    let mut opts =
        Opts { backend: "threads".to_string(), slots: 2, queue_cap: 64, workers: None };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let val = |i: &mut usize| -> &str {
            *i += 1;
            args.get(*i).map(String::as_str).unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--backend" => opts.backend = val(&mut i).to_string(),
            "--slots" => opts.slots = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queue-cap" => opts.queue_cap = val(&mut i).parse().unwrap_or_else(|_| usage()),
            "--workers" => opts.workers = Some(val(&mut i).parse().unwrap_or_else(|_| usage())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    opts
}

/// The streaming loop, generic over the backend. The main thread
/// parses and submits; a printer thread reports each job as it
/// finishes, so output streams while later jobs are still queued.
fn serve<B>(backend: B, opts: &Opts) -> ServeStats
where
    B: Runtime + Clone + Send + Sync + 'static,
{
    let session = backend
        .open_session(ServeConfig::new().with_slots(opts.slots).with_queue_cap(opts.queue_cap));

    let (tx, rx) = mpsc::channel::<(String, Instant, JobHandle<u64>)>();
    let printer = std::thread::spawn(move || {
        let mut ok = 0u64;
        while let Ok((line, accepted_at, handle)) = rx.recv() {
            let id = handle.id();
            match handle.wait() {
                Ok(rep) => {
                    ok += 1;
                    println!(
                        "{id}\t{line}\tok\tdigest={}\ttasks={}\tlatency={:.1}ms",
                        rep.result,
                        rep.stats.tasks_created,
                        accepted_at.elapsed().as_secs_f64() * 1e3,
                    );
                }
                Err(fault) => println!("{id}\t{line}\tFAULT\t{fault}"),
            }
        }
        ok
    });

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("stdin readable");
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let spec = match JobSpec::parse(trimmed) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("skipping '{trimmed}': {e}");
                continue;
            }
        };
        let mut backoff = Duration::from_millis(1);
        loop {
            let spec = spec.clone();
            let mut cfg = RunConfig::new();
            if let Some(w) = opts.workers {
                cfg = cfg.with_workers(w);
            }
            match session.submit(cfg, move |ctx| spec.run(ctx)) {
                Ok(handle) => {
                    tx.send((trimmed.to_string(), Instant::now(), handle))
                        .expect("printer alive");
                    break;
                }
                Err(SubmitError::Saturated { queued, cap }) => {
                    // Typed backpressure: ease off and resubmit.
                    eprintln!("saturated ({queued}/{cap} queued); retrying in {backoff:?}");
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(Duration::from_millis(100));
                }
                Err(e) => {
                    eprintln!("rejected '{trimmed}': {e}");
                    break;
                }
            }
        }
    }
    drop(tx);

    // EOF: stop admission, run the backlog dry, join the slots.
    let summary = session.drain();
    let ok = printer.join().expect("printer thread clean");
    eprintln!("drained: {ok} ok\n{}", summary.stats);
    summary.stats
}

fn main() {
    let opts = parse_opts();
    let stats = match opts.backend.as_str() {
        "serial" => serve(SerialRuntime, &opts),
        "threads" => serve(ThreadedExecutor::new(opts.workers.unwrap_or(4)), &opts),
        "sim" => serve(SimExecutor::new(Platform::dash(opts.workers.unwrap_or(4))), &opts),
        // The distributed backend serializes jobs (one cluster per
        // process); the session degrades to slots=1 automatically.
        "net" => serve(NetExecutor::with_workers(opts.workers.unwrap_or(2)), &opts),
        _ => usage(),
    };
    if !stats.is_settled() {
        eprintln!("warning: session did not settle: {stats}");
        std::process::exit(1);
    }
}
