//! The `jade-net` worker binary: one worker machine in the
//! distributed backend.
//!
//! Spawned by the coordinator ([`jade_net::Cluster`]) with its
//! configuration in `JADE_NET_*` environment variables (see
//! [`jade_net::worker_main`] for the full table), it dials back,
//! handshakes, and serves the lease/kernel protocol until shutdown —
//! or until a chaos knob SIGKILLs it mid-run, which is the point of
//! the chaos tests.

fn main() -> ! {
    jade_net::worker_main()
}
