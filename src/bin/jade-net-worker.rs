//! The `jade-net` worker binary: one worker machine in the
//! distributed backend.
//!
//! Spawned by the coordinator ([`jade_net::Cluster`]) with its
//! configuration in `JADE_NET_*` environment variables (see
//! [`jade_net::worker_main`] for the full table), it dials back,
//! handshakes, and serves the lease/kernel/task-ship protocol until
//! shutdown — or until a chaos knob SIGKILLs it mid-run, which is the
//! point of the chaos tests.
//!
//! The worker links the *application* kernel registry
//! ([`jade_apps::kernels::registry`]) — the paper's "program text
//! present on every machine" assumption: a shipped task body can only
//! run remotely if the worker binary resolves its kernel names.

fn main() -> ! {
    jade_net::worker_main_with(jade_apps::kernels::registry())
}
