//! Protocol-level integration tests for the distributed backend, all
//! in thread mode: workers are in-process threads over real sockets,
//! so chaos "kill" is an abrupt socket shutdown and "hang" is going
//! silent — the two failure signatures the coordinator's detectors
//! (EOF and heartbeat) must catch. Process-mode `SIGKILL` chaos lives
//! in the root crate's `tests/chaos_net.rs`, which can reach the
//! `jade-net-worker` binary.
//!
//! Every test builds its config through [`base`], which honors
//! `JADE_NET_TEST_TRANSPORT=tcp`: CI runs this whole suite twice, once
//! over Unix-domain sockets and once over loopback TCP.

#![deny(deprecated)]

use std::time::Duration;

use jade_core::error::JadeFault;
use jade_core::ir::{IrDst, IrSrc, TaskBodyIr};
use jade_core::prelude::*;
use jade_core::serial::SerialRuntime;
use jade_net::{ChaosSpec, Cluster, NetConfig, NetExecutor, Transport};

/// `n` thread-mode workers over the transport CI asked for
/// (`JADE_NET_TEST_TRANSPORT=tcp` switches the whole suite to TCP).
fn base(n: usize) -> NetConfig {
    let mut cfg = NetConfig::threads(n);
    if std::env::var("JADE_NET_TEST_TRANSPORT").as_deref() == Ok("tcp") {
        cfg.transport = Transport::Tcp;
    }
    cfg
}

/// A deterministic little program with real dependencies: square each
/// part, then sum.
fn square_sum_program<C: JadeCtx>(ctx: &mut C) -> f64 {
    let parts: Vec<Shared<f64>> = (0..12).map(|i| ctx.create(i as f64)).collect();
    for &p in &parts {
        ctx.withonly("square", |s| { s.rd_wr(p); }, move |c| {
            let v = *c.rd(&p);
            *c.wr(&p) = v * v;
        });
    }
    parts.iter().map(|p| *ctx.rd(p)).sum()
}

/// The same program with portable task bodies: each task carries a
/// one-step IR program (`sq_norm` over a one-element object computes
/// the square) alongside the closure fallback.
fn square_sum_ir_program<C: JadeCtx>(ctx: &mut C) -> f64 {
    let parts: Vec<Shared<f64>> = (0..12).map(|i| ctx.create(i as f64)).collect();
    for &p in &parts {
        let ir = TaskBodyIr::new().step("sq_norm", vec![IrSrc::Obj(0)], IrDst::Obj(0));
        ctx.withonly_ir("square", |s| { s.rd_wr(p); }, ir, move |c| {
            let v = *c.rd(&p);
            *c.wr(&p) = v * v;
        });
    }
    parts.iter().map(|p| *ctx.rd(p)).sum()
}

fn serial_answer() -> f64 {
    SerialRuntime
        .execute(RunConfig::new(), square_sum_program)
        .expect("serial oracle")
        .result
}

#[test]
fn clean_run_matches_serial_and_reports_net_stats() {
    let rep = NetExecutor::new(base(2))
        .execute(RunConfig::new(), square_sum_program)
        .expect("clean net run");
    assert_eq!(rep.result, serial_answer());
    let net = rep.net.expect("net backend always reports NetStats");
    assert!(net.messages > 0, "lease traffic must be visible: {net:?}");
    let faults = rep.faults.expect("net backend always reports FaultStats");
    assert!(faults.is_clean(), "no chaos configured: {faults}");
}

#[test]
fn ir_bodies_execute_on_workers_not_the_coordinator() {
    let rep = NetExecutor::new(base(2))
        .execute(RunConfig::new(), square_sum_ir_program)
        .expect("clean IR run");
    assert_eq!(rep.result, serial_answer(), "IR and closure must agree bit-for-bit");
    let net = rep.net.expect("stats");
    assert_eq!(
        net.tasks_shipped, rep.stats.tasks_created,
        "with live workers every portable body must ship: {net:?}"
    );
    assert!(
        net.replica_hits + net.replica_misses > 0,
        "shipped tasks must exercise the replica cache: {net:?}"
    );
    let faults = rep.faults.expect("stats");
    assert!(
        faults.is_clean(),
        "no chaos: nothing may degrade to coordinator-local execution: {faults}"
    );
}

#[test]
fn ir_with_unknown_kernel_silently_runs_the_closure() {
    // The coordinator's registry cannot express this program, so the
    // task takes the lease path — correct answer, no degradation.
    let rep = NetExecutor::new(base(2))
        .execute(RunConfig::new(), |ctx| {
            let p = ctx.create(3.0f64);
            let ir = TaskBodyIr::new().step(
                "no-such-kernel",
                vec![IrSrc::Obj(0)],
                IrDst::Obj(0),
            );
            ctx.withonly_ir("sq", |s| { s.rd_wr(p); }, ir, move |c| {
                let v = *c.rd(&p);
                *c.wr(&p) = v * v;
            });
            *ctx.rd(&p)
        })
        .expect("run completes on the closure path");
    assert_eq!(rep.result, 9.0);
    let net = rep.net.expect("stats");
    assert_eq!(net.tasks_shipped, 0, "an unshippable program must not ship: {net:?}");
    let faults = rep.faults.expect("stats");
    assert!(faults.is_clean(), "falling back to the closure is not a fault: {faults}");
}

#[test]
fn tcp_transport_conforms_too() {
    let cfg = NetConfig { transport: Transport::Tcp, ..NetConfig::threads(2) };
    let rep = NetExecutor::new(cfg)
        .execute(RunConfig::new(), square_sum_program)
        .expect("clean tcp run");
    assert_eq!(rep.result, serial_answer());
}

#[test]
fn injected_loss_converges_via_retransmission() {
    let cfg = NetConfig {
        loss: Some((42, 0.25)),
        retransmit_timeout: Duration::from_millis(5),
        ..base(2)
    };
    let rep = NetExecutor::new(cfg)
        .execute(RunConfig::new(), square_sum_program)
        .expect("lossy run still completes");
    assert_eq!(rep.result, serial_answer());
    let net = rep.net.expect("stats");
    assert!(
        net.dropped > 0 && net.retransmits > 0,
        "a 25% loss rate must show up in the counters: {net:?}"
    );
}

#[test]
fn lossy_ir_shipping_still_matches_serial() {
    // Payload and task frames retransmit and reorder under loss; the
    // worker's pending-task buffer must absorb it.
    let cfg = NetConfig {
        loss: Some((7, 0.25)),
        retransmit_timeout: Duration::from_millis(5),
        ..base(2)
    };
    let rep = NetExecutor::new(cfg)
        .execute(RunConfig::new(), square_sum_ir_program)
        .expect("lossy IR run still completes");
    assert_eq!(rep.result, serial_answer());
    let net = rep.net.expect("stats");
    assert!(net.dropped > 0, "loss must be visible: {net:?}");
    assert_eq!(net.tasks_shipped, rep.stats.tasks_created, "{net:?}");
}

#[test]
fn killed_worker_is_detected_and_survivors_finish() {
    let cfg = NetConfig {
        chaos: vec![ChaosSpec {
            worker: 0,
            kill_after_grants: Some(2),
            hang_after_grants: None,
            kill_after_kernels: None,
            kill_after_tasks: None,
        }],
        ..base(2)
    };
    let rep = NetExecutor::new(cfg)
        .execute(RunConfig::new(), square_sum_program)
        .expect("the run must survive the worker loss");
    assert_eq!(rep.result, serial_answer(), "recovery must not change the answer");
    let faults = rep.faults.expect("stats");
    assert_eq!(faults.crashes, 1, "exactly one worker died: {faults}");
    assert!(
        faults.recoveries + faults.degraded > 0,
        "the in-flight lease must have been reassigned or degraded: {faults}"
    );
}

#[test]
fn killed_dirty_replica_holder_forces_reshipping() {
    // A serial chain over ONE object makes the scenario
    // deterministic: the placement tie-break (equal load, then
    // affinity, then index) pins every link to worker 0, which
    // commits two of them — sole holder of the latest version — then
    // dies executing the third, before the result frame leaves. The
    // successor can only run on worker 1, whose read of the evicted
    // sole replica must be re-shipped from the master copy.
    let cfg = NetConfig {
        workers: 2,
        chaos: vec![ChaosSpec {
            worker: 0,
            kill_after_grants: None,
            hang_after_grants: None,
            kill_after_kernels: None,
            kill_after_tasks: Some(2),
        }],
        ..base(2)
    };
    let program = |ctx: &mut jade_threads::ThreadCtx| {
        let p: Shared<f64> = ctx.create(3.0);
        for _ in 0..8 {
            let ir = TaskBodyIr::new().step("scale2", vec![IrSrc::Obj(0)], IrDst::Obj(0));
            ctx.withonly_ir("scale", |s| { s.rd_wr(p); }, ir, move |c| {
                let v = *c.rd(&p);
                *c.wr(&p) = v * 2.0;
            });
        }
        *ctx.rd(&p)
    };
    let rep = NetExecutor::new(cfg)
        .execute(RunConfig::new(), program)
        .expect("the run must survive the dirty-holder loss");
    assert_eq!(rep.result, 3.0 * 256.0, "recovery must not change the answer");
    let faults = rep.faults.expect("stats");
    assert_eq!(faults.crashes, 1, "exactly one worker died: {faults}");
    assert!(
        faults.recoveries > 0,
        "the in-flight chain link must be re-dispatched: {faults}"
    );
    assert!(
        faults.reshipped > 0,
        "the evicted sole-holder replica must be re-shipped: {faults}"
    );
}

#[test]
fn hung_worker_is_caught_by_heartbeat() {
    let cfg = NetConfig {
        heartbeat: Duration::from_millis(10),
        miss_budget: 2,
        chaos: vec![ChaosSpec {
            worker: 1,
            kill_after_grants: None,
            hang_after_grants: Some(1),
            kill_after_kernels: None,
            kill_after_tasks: None,
        }],
        ..base(2)
    };
    let rep = NetExecutor::new(cfg)
        .execute(RunConfig::new().with_timeline(), square_sum_program)
        .expect("the run must survive the hang");
    assert_eq!(rep.result, serial_answer());
    let faults = rep.faults.expect("stats");
    // At least the hung worker is declared dead. Under TCP the tight
    // 10 ms heartbeat can also (legitimately) time out the healthy
    // worker, so this is a lower bound, not an equality.
    assert!(faults.crashes >= 1, "the hung worker counts as crashed: {faults}");
    // The heartbeat detector leaves its trail in the timeline markers.
    let tl = rep.timeline.expect("timeline was requested");
    assert!(
        tl.markers().iter().any(|m| m.label.contains("lost")),
        "worker loss must be visible on the timeline"
    );
}

#[test]
fn all_workers_dead_degrades_to_local_execution() {
    let cfg = NetConfig {
        chaos: (0..2)
            .map(|w| ChaosSpec {
                worker: w,
                kill_after_grants: Some(1),
                hang_after_grants: None,
                kill_after_kernels: None,
                kill_after_tasks: None,
            })
            .collect(),
        ..base(2)
    };
    let rep = NetExecutor::new(cfg)
        .execute(RunConfig::new(), square_sum_program)
        .expect("a run with zero surviving workers still completes locally");
    assert_eq!(rep.result, serial_answer());
    let faults = rep.faults.expect("stats");
    assert_eq!(faults.crashes, 2, "{faults}");
    assert!(faults.degraded > 0, "later leases must degrade to local grants: {faults}");
}

#[test]
fn remote_kernels_compute_across_layouts() {
    // Worker 0 marshals as a big-endian "SPARC", worker 1 as a
    // little-endian "MIPS": the kernel arguments and results cross a
    // byte-order boundary both ways. `ctx.kernel` routes through the
    // gate to the cluster during a net run.
    let rep = NetExecutor::new(base(2))
        .execute(RunConfig::new(), |ctx| {
            let mut out = Vec::new();
            for i in 0..6u32 {
                let args: Vec<f64> = (0..4).map(|k| (i * 4 + k) as f64 * 0.5).collect();
                out.push(ctx.kernel("sum", &args).expect("remote sum")[0]);
            }
            out
        })
        .expect("kernel run");
    let want: Vec<f64> = (0..6u32)
        .map(|i| (0..4).map(|k| (i * 4 + k) as f64 * 0.5).sum())
        .collect();
    assert_eq!(rep.result, want);
}

#[test]
fn kernel_without_fallback_exhausts_retries_as_a_typed_fault() {
    // Every worker dies instead of answering its first kernel call,
    // and local fallback is disabled: the call must surface
    // RetriesExhausted, not hang and not panic.
    let cfg = NetConfig {
        kernel_local_fallback: false,
        max_task_attempts: 2,
        chaos: (0..2)
            .map(|w| ChaosSpec {
                worker: w,
                kill_after_grants: None,
                hang_after_grants: None,
                kill_after_kernels: Some(0),
                kill_after_tasks: None,
            })
            .collect(),
        ..base(2)
    };
    let cluster = Cluster::start(cfg).expect("cluster up");
    let err = cluster.shared.call_kernel("sum", &[1.0, 2.0]).expect_err("must fail");
    assert!(
        matches!(err, JadeFault::RetriesExhausted { .. }),
        "got {err:?} instead of RetriesExhausted"
    );
    let (_net, faults, _events) = cluster.shutdown();
    assert!(faults.crashes >= 1, "at least one worker died trying: {faults}");
}

#[test]
fn kernel_with_fallback_degrades_instead_of_failing() {
    let cfg = NetConfig {
        kernel_local_fallback: true,
        max_task_attempts: 2,
        chaos: (0..2)
            .map(|w| ChaosSpec {
                worker: w,
                kill_after_grants: None,
                hang_after_grants: None,
                kill_after_kernels: Some(0),
                kill_after_tasks: None,
            })
            .collect(),
        ..base(2)
    };
    let cluster = Cluster::start(cfg).expect("cluster up");
    let got = cluster.shared.call_kernel("sum", &[1.0, 2.0]).expect("degraded local run");
    assert_eq!(got, vec![3.0]);
    let (_net, faults, _events) = cluster.shutdown();
    assert!(faults.degraded >= 1, "{faults}");
}

#[test]
fn unknown_kernel_is_a_deterministic_worker_fault() {
    let cluster = Cluster::start(base(1)).expect("cluster up");
    let err = cluster.shared.call_kernel("no-such-kernel", &[]).expect_err("must fail");
    assert!(matches!(err, JadeFault::TaskPanicked { .. }), "got {err:?}");
    let (_net, faults, _events) = cluster.shutdown();
    assert_eq!(faults.crashes, 0, "a bad kernel name must not kill the worker: {faults}");
}

#[test]
fn observers_receive_liveness_events_post_run() {
    let collector = EventCollector::new();
    let cfg = NetConfig {
        chaos: vec![ChaosSpec {
            worker: 0,
            kill_after_grants: Some(1),
            hang_after_grants: None,
            kill_after_kernels: None,
            kill_after_tasks: None,
        }],
        ..base(2)
    };
    NetExecutor::new(cfg)
        .execute(
            RunConfig::new().with_observer(collector.observer()),
            square_sum_program,
        )
        .expect("run");
    let evs = collector.events();
    let joined = evs
        .iter()
        .filter(|e| matches!(e.kind, EventKind::WorkerJoined { .. }))
        .count();
    assert_eq!(joined, 2, "both workers joined");
    assert!(
        evs.iter().any(|e| matches!(e.kind, EventKind::WorkerLost { .. })),
        "the kill must be visible to user observers"
    );
}
