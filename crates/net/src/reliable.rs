//! Reliable delivery over an unreliable link: the sim's
//! ack/timeout/bounded-backoff layer, ported to real sockets.
//!
//! The simulator models loss by rolling a seeded RNG per transmission;
//! the wire gets real loss (a dead peer) *plus* the same injected kind
//! for testing, implemented by skipping the actual `write` — from the
//! receiver's perspective indistinguishable from the network eating
//! the frame. Recovery is identical to the sim's: the sender keeps
//! every reliable frame until acked, retransmitting after a timeout
//! that doubles per attempt up to a cap; after `max_attempts`
//! transmissions the link is declared dead (where the sim, whose
//! machines never truly die, assumes the link layer got it through).
//!
//! The receiver half acks every reliable frame — including duplicates,
//! whose earlier ack may have been the thing that was lost — and
//! deduplicates delivery by sequence number, so retransmission never
//! double-executes a lease or kernel call.

use std::collections::HashMap;
use std::io::Write;
use std::time::{Duration, Instant};

use jade_core::stats::NetStats;
use jade_transport::frame::encode_frame;
use jade_transport::DataLayout;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::wire::{pack_msg, NetMsg};

/// A reliable frame awaiting its ack.
#[derive(Debug)]
struct Pending {
    frame: Vec<u8>,
    sent_at: Instant,
    /// Transmissions so far (1 after the first send).
    attempts: u32,
}

/// Tuning for the reliability layer (shared by both link ends).
#[derive(Debug, Clone, Copy)]
pub struct ReliableConfig {
    /// Timeout before the first retransmission; doubles per attempt.
    pub retransmit_timeout: Duration,
    /// Backoff doubling cap, as a multiple of `retransmit_timeout`.
    pub backoff_cap: u32,
    /// Transmissions per frame before the link is declared dead.
    pub max_attempts: u32,
    /// Injected loss: `(seed, probability)` rolled per transmission.
    pub loss: Option<(u64, f64)>,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            retransmit_timeout: Duration::from_millis(40),
            backoff_cap: 8,
            max_attempts: 16,
            loss: None,
        }
    }
}

/// What [`Reliable::accept`] decided about an incoming frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Accept {
    /// Deliver to the application (first sight of this frame).
    Deliver,
    /// Duplicate: ack it again but do not re-deliver.
    Duplicate,
}

/// Per-link reliability state: one instance per socket, owned by
/// whichever side sends on it (each side has its own).
#[derive(Debug)]
pub struct Reliable {
    cfg: ReliableConfig,
    next_seq: u64,
    pending: HashMap<u64, Pending>,
    /// Reliable sequence numbers already delivered (receiver dedup).
    seen: std::collections::HashSet<u64>,
    rng: Option<StdRng>,
    loss_prob: f64,
    /// Counters surfaced through `Report::net`.
    pub stats: NetStats,
}

impl Reliable {
    /// Fresh state for one link end.
    pub fn new(cfg: ReliableConfig) -> Self {
        let (rng, loss_prob) = match cfg.loss {
            Some((seed, p)) if p > 0.0 => (Some(StdRng::seed_from_u64(seed)), p.min(0.999)),
            _ => (None, 0.0),
        };
        Reliable {
            cfg,
            next_seq: 0,
            pending: HashMap::new(),
            seen: std::collections::HashSet::new(),
            rng,
            loss_prob,
            stats: NetStats::default(),
        }
    }

    fn roll_drop(&mut self) -> bool {
        match &mut self.rng {
            Some(rng) => rng.gen_bool(self.loss_prob),
            None => false,
        }
    }

    /// Send `msg` on `w`, assigning a sequence number by delivery
    /// class and registering reliable frames for retransmission. An
    /// injected drop skips the write (counted) but keeps the pending
    /// entry, so the retransmit path recovers exactly as it would from
    /// real loss.
    pub fn send(
        &mut self,
        w: &mut dyn Write,
        msg: &NetMsg,
        src: u32,
        dst: u32,
        layout: DataLayout,
    ) -> std::io::Result<()> {
        let reliable = msg.is_reliable();
        let seq = if reliable {
            self.next_seq += 1;
            self.next_seq
        } else {
            0
        };
        let frame = encode_frame(&pack_msg(msg, src, dst, seq, layout));
        if reliable {
            self.pending
                .insert(seq, Pending { frame: frame.clone(), sent_at: Instant::now(), attempts: 1 });
        }
        if self.roll_drop() {
            self.stats.dropped += 1;
            return Ok(());
        }
        w.write_all(&frame)?;
        w.flush()
    }

    /// An ack arrived: release the frame it covers.
    pub fn on_ack(&mut self, seq: u64) {
        self.pending.remove(&seq);
    }

    /// Classify an incoming frame by its header sequence number.
    /// Unreliable frames (`seq == 0`) always deliver; reliable frames
    /// deliver once and count as duplicates after.
    pub fn accept(&mut self, seq: u64, wire_bytes: usize) -> Accept {
        if seq == 0 {
            return Accept::Deliver;
        }
        if self.seen.insert(seq) {
            self.stats.messages += 1;
            self.stats.bytes += wire_bytes as u64;
            Accept::Deliver
        } else {
            Accept::Duplicate
        }
    }

    /// Retransmission backoff before attempt `n + 1`, given `n`
    /// transmissions so far: `timeout × min(2^(n-1), cap)`.
    fn backoff(&self, attempts: u32) -> Duration {
        let mult = 1u64.checked_shl(attempts.saturating_sub(1)).unwrap_or(u64::MAX);
        self.cfg.retransmit_timeout.saturating_mul(mult.min(self.cfg.backoff_cap as u64) as u32)
    }

    /// Scan pending frames and retransmit the overdue ones. Returns
    /// `false` when some frame has exhausted its transmission budget —
    /// the peer is unreachable and the link must be declared dead.
    pub fn tick(&mut self, w: &mut dyn Write) -> std::io::Result<bool> {
        let now = Instant::now();
        let overdue: Vec<u64> = self
            .pending
            .iter()
            .filter(|(_, p)| now.duration_since(p.sent_at) >= self.backoff(p.attempts))
            .map(|(&s, _)| s)
            .collect();
        for seq in overdue {
            let (frame, attempts) = {
                let p = self.pending.get_mut(&seq).expect("just listed");
                if p.attempts >= self.cfg.max_attempts {
                    return Ok(false);
                }
                p.attempts += 1;
                p.sent_at = now;
                (p.frame.clone(), p.attempts)
            };
            let _ = attempts;
            self.stats.timeouts += 1;
            self.stats.retransmits += 1;
            if self.roll_drop() {
                self.stats.dropped += 1;
                continue;
            }
            w.write_all(&frame)?;
            w.flush()?;
        }
        Ok(true)
    }

    /// Frames still awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg_fast() -> ReliableConfig {
        ReliableConfig {
            retransmit_timeout: Duration::from_millis(1),
            backoff_cap: 4,
            max_attempts: 3,
            loss: None,
        }
    }

    #[test]
    fn reliable_frames_pend_until_acked() {
        let mut r = Reliable::new(cfg_fast());
        let mut sink = Vec::new();
        r.send(&mut sink, &NetMsg::LeaseRequest { task: 1 }, 0, 1, DataLayout::x86_64()).unwrap();
        r.send(&mut sink, &NetMsg::Ping { nonce: 1 }, 0, 1, DataLayout::x86_64()).unwrap();
        assert_eq!(r.in_flight(), 1, "pings are unreliable");
        r.on_ack(1);
        assert_eq!(r.in_flight(), 0);
    }

    #[test]
    fn tick_retransmits_then_declares_dead() {
        let mut r = Reliable::new(cfg_fast());
        let mut sink = Vec::new();
        r.send(&mut sink, &NetMsg::LeaseRequest { task: 1 }, 0, 1, DataLayout::x86_64()).unwrap();
        let first_len = sink.len();
        // Attempt 2 and 3 retransmit, then the budget is exhausted.
        std::thread::sleep(Duration::from_millis(3));
        assert!(r.tick(&mut sink).unwrap());
        assert_eq!(sink.len(), 2 * first_len);
        std::thread::sleep(Duration::from_millis(5));
        assert!(r.tick(&mut sink).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        assert!(!r.tick(&mut sink).unwrap(), "max_attempts exhausted kills the link");
        assert_eq!(r.stats.retransmits, 2);
        assert_eq!(r.stats.timeouts, 2);
    }

    #[test]
    fn injected_loss_skips_the_write_but_keeps_the_frame() {
        let mut r = Reliable::new(ReliableConfig { loss: Some((7, 0.999)), ..cfg_fast() });
        let mut sink = Vec::new();
        r.send(&mut sink, &NetMsg::LeaseRequest { task: 1 }, 0, 1, DataLayout::x86_64()).unwrap();
        assert!(sink.is_empty(), "the frame was 'lost on the wire'");
        assert_eq!(r.stats.dropped, 1);
        assert_eq!(r.in_flight(), 1, "recovery still owns it");
    }

    #[test]
    fn dedup_delivers_once_and_flags_duplicates() {
        let mut r = Reliable::new(cfg_fast());
        assert_eq!(r.accept(5, 30), Accept::Deliver);
        assert_eq!(r.accept(5, 30), Accept::Duplicate);
        assert_eq!(r.accept(0, 30), Accept::Deliver, "unreliable class always delivers");
        assert_eq!(r.accept(0, 30), Accept::Deliver);
        assert_eq!(r.stats.messages, 1);
    }
}
