//! # jade-net — the crash-tolerant multi-process Jade backend
//!
//! The paper's implementation ran one Jade program across a
//! heterogeneous collection of *machines* connected by a network,
//! with PVM carrying typed messages between them. This crate is that
//! configuration made real (and made crash-tolerant): one
//! **coordinator** process owns the dependency engine, object store
//! and task bodies, and N **worker** machines — OS processes running
//! the `jade-net-worker` binary, or in-process threads in tests —
//! participate over Unix-domain or TCP sockets.
//!
//! The moving parts, bottom-up:
//!
//! * [`wire`] — the protocol messages, marshalled per-machine with
//!   `jade-transport` [`DataLayout`](jade_transport::DataLayout)s
//!   (workers rotate through the paper's machine presets, so every
//!   run crosses byte orders) and framed by `jade_transport::frame`;
//! * [`reliable`] — ack/timeout/bounded-backoff reliable delivery,
//!   the simulator's model ported to real sockets, with seeded loss
//!   injection for tests;
//! * [`kernels`] — compatibility surface over the shared
//!   [`KernelRegistry`](jade_core::kernels::KernelRegistry): the named
//!   pure functions that execute *remotely* on workers, both as single
//!   [`KernelCall`](wire::NetMsg)s and as steps of shipped
//!   [`TaskBodyIr`](jade_core::ir::TaskBodyIr) programs;
//! * [`directory`] — the coordinator's replica directory: which worker
//!   holds which object payload at which version, with
//!   write-invalidation and dead-worker eviction; feeds the shared
//!   locality placement policy ([`jade_core::place`]);
//! * [`cluster`] — coordinator-side worker lifecycle: heartbeat
//!   liveness, retransmission, death detection (EOF, heartbeat loss,
//!   retransmit exhaustion) and in-flight work recovery;
//! * [`gate`] — plugs cluster dispatch into the jade-threads executor
//!   skeleton: ships portable task bodies (with their object
//!   payloads) to workers, and falls back to the wire lease protocol
//!   for closure-only tasks;
//! * [`NetExecutor`] — the [`Runtime`](jade_core::runtime::Runtime)
//!   entry point: same `execute(RunConfig)` surface as every other
//!   backend, with [`NetStats`](jade_core::stats::NetStats) and
//!   [`FaultStats`](jade_core::stats::FaultStats) in the report.
//!
//! ## Failure model
//!
//! Workers may die (`SIGKILL`), hang, or drop frames at any point.
//! The coordinator detects death, reassigns in-flight leases and
//! kernel calls to survivors (bounded re-execution — kernels must be
//! deterministic), and with no survivors degrades to coordinator-local
//! serial execution. A completed run reports what happened through
//! `Report::{net, faults}`; unrecoverable states surface as typed
//! [`JadeFault`](jade_core::error::JadeFault)s, never panics.

#![cfg_attr(test, deny(deprecated))]

pub mod cluster;
pub mod directory;
pub mod gate;
pub mod kernels;
pub mod reliable;
pub mod sock;
pub mod wire;
pub mod worker;

mod runtime;

pub use cluster::{
    ChaosSpec, Cluster, NetConfig, PlacementPolicy, Shared, Transport, WorkerMode,
};
pub use directory::Directory;
pub use gate::LeaseGate;
pub use jade_core::kernels::KernelRegistry;
pub use reliable::{Reliable, ReliableConfig};
pub use runtime::NetExecutor;
pub use worker::{run_worker, worker_main, worker_main_with, Chaos, Die, WorkerOpts};

// The spec-builder and job-submission surfaces, identical in every
// backend crate.
pub use jade_core::runtime::{CancelSignal, Report, RunConfig, Runtime};
pub use jade_core::serve::{
    ClientId, DrainSummary, JobHandle, JobId, JobReport, JobStatus, ServeConfig, Session,
    SubmitError,
};
pub use jade_core::spec::{ContBuilder, SpecBuilder};
pub use jade_core::stats::ServeStats;
