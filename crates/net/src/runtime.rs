//! [`NetExecutor`]: the [`Runtime`] implementation over a worker
//! cluster.
//!
//! The executor reuses the jade-threads pool for the dependency
//! engine, object store and task bodies — the same executor skeleton
//! the shared-memory and simulated backends use — and gates every
//! dispatch through the wire protocol ([`crate::gate`]): portable task
//! bodies ship to workers whole, closure-only tasks take the lease
//! round-trip. After the run, the cluster's aggregate
//! [`NetStats`](jade_core::stats::NetStats) and
//! [`FaultStats`](jade_core::stats::FaultStats) land in the
//! [`Report`], liveness events are replayed to user observers, and
//! heartbeat/reconnect markers are stamped onto the timeline so a
//! Chrome trace shows exactly where the network stalled.
//!
//! All per-job state — the kernel registry, the replica directory,
//! the cluster itself — lives in the job's own [`Cluster`], so a
//! [`Session`](jade_core::serve::Session) over this backend runs
//! concurrent jobs like any other: there is no process-global state
//! to cross wires on.

use std::sync::Arc;

use jade_core::error::JadeFault;
use jade_core::ids::TaskId;
use jade_core::kernels::KernelRegistry;
use jade_core::observe::{Event, EventKind, RuntimeObserver};
use jade_core::runtime::{Report, RunConfig, Runtime};
use jade_threads::{ThreadCtx, ThreadedExecutor};
use parking_lot::Mutex;

use crate::cluster::{Cluster, NetConfig};
use crate::gate::LeaseGate;

/// The distributed backend: a coordinator (this process) plus
/// `cfg.workers` worker machines over real sockets.
#[derive(Debug, Default, Clone)]
pub struct NetExecutor {
    cfg: NetConfig,
}

impl NetExecutor {
    /// An executor over the given cluster configuration.
    pub fn new(cfg: NetConfig) -> Self {
        NetExecutor { cfg }
    }

    /// `n` thread-mode workers with default tuning.
    pub fn with_workers(n: usize) -> Self {
        NetExecutor { cfg: NetConfig::threads(n) }
    }

    /// Replace the kernel registry shipped tasks (and thread-mode
    /// workers) execute against, builder-style.
    pub fn with_registry(mut self, registry: KernelRegistry) -> Self {
        self.cfg.registry = registry;
        self
    }

    /// The cluster configuration this executor will start.
    pub fn config(&self) -> &NetConfig {
        &self.cfg
    }
}

/// Tee wrapper: lets the coordinator keep a handle on observers that
/// were moved into the pool, so post-run liveness events still reach
/// them.
struct SharedObs(Arc<Mutex<Box<dyn RuntimeObserver + Send>>>);

impl RuntimeObserver for SharedObs {
    fn on_event(&mut self, ev: &Event) {
        self.0.lock().on_event(ev);
    }
}

/// Timeline marker text for a liveness event (matches the labels the
/// in-band `TimelineObserver` would produce).
fn net_marker(ev: &Event) -> Option<(usize, String)> {
    match ev.kind {
        EventKind::WorkerJoined { worker } => Some((worker, format!("worker {worker} joined"))),
        EventKind::HeartbeatMiss { worker, missed } => {
            Some((worker, format!("heartbeat miss #{missed} (worker {worker})")))
        }
        EventKind::WorkerLost { worker, in_flight } => {
            Some((worker, format!("worker {worker} lost ({in_flight} in flight)")))
        }
        EventKind::TaskReassigned { from, to } => {
            Some((to, format!("task reassigned {from}\u{2192}{to}")))
        }
        _ => None,
    }
}

impl Runtime for NetExecutor {
    type Ctx = ThreadCtx;

    fn run_job<R, F>(&self, mut cfg: RunConfig, program: F) -> Result<Report<R>, JadeFault>
    where
        R: Send + 'static,
        F: FnOnce(&mut Self::Ctx) -> R + Send + 'static,
    {
        // Tee user observers so liveness events recorded by the
        // cluster threads can be replayed to them after the run.
        let tees: Vec<Arc<Mutex<Box<dyn RuntimeObserver + Send>>>> =
            cfg.observers.drain(..).map(|o| Arc::new(Mutex::new(o))).collect();
        for t in &tees {
            cfg.observers.push(Box::new(SharedObs(t.clone())));
        }

        let cluster = Cluster::start(self.cfg.clone()).map_err(|e| JadeFault::TaskPanicked {
            task: TaskId::ROOT,
            message: format!("net backend startup failed: {e}"),
        })?;
        let shared = cluster.shared.clone();

        let lanes = cfg.workers.unwrap_or(self.cfg.workers).max(1);
        let pool = ThreadedExecutor::new(lanes).with_gate(Arc::new(LeaseGate::new(shared)));
        let result = pool.run_job(cfg, program);

        let (net, faults, events) = cluster.shutdown();
        match result {
            Ok(mut rep) => {
                rep.net = Some(net);
                rep.faults = Some(faults);
                for ev in &events {
                    for t in &tees {
                        t.lock().on_event(ev);
                    }
                }
                if let Some(tl) = rep.timeline.as_mut() {
                    for ev in &events {
                        if let Some((worker, label)) = net_marker(ev) {
                            tl.push_marker(ev.nanos, worker, label);
                        }
                    }
                }
                Ok(rep)
            }
            Err(fault) => Err(fault),
        }
    }
}
