//! The worker side of the protocol: one single-threaded loop driving a
//! socket back to the coordinator.
//!
//! The same loop runs in two modes:
//!
//! * **Process mode** — `src/bin/jade-net-worker.rs` (in the root
//!   package) parses [`env`](worker_main) and calls [`run_worker`]; the
//!   chaos "kill" knob delivers a genuine `SIGKILL` to the worker's own
//!   pid, so the coordinator sees an abrupt socket EOF with no goodbye.
//! * **Thread mode** — tests and the conformance suite spawn
//!   [`run_worker`] on a thread over one end of a socketpair; "kill"
//!   degrades to an abrupt socket shutdown (the observable effect at
//!   the coordinator is identical), and "hang" to going silent, which
//!   exercises the heartbeat path instead of the EOF path.
//!
//! Besides single kernel calls, a worker executes whole **task
//! bodies**: the coordinator lowers a task's objects and ships a
//! [`TaskBodyIr`] program ([`NetMsg::TaskShip`]) naming its input
//! object versions. Payloads arrive as [`NetMsg::ObjectShip`] and are
//! installed in a replica cache keyed by `(object, version)`; inputs
//! already resident are *not* re-sent (the locality win). Because the
//! reliability layer can reorder a retransmitted payload behind the
//! task that needs it, a task whose inputs have not all arrived waits
//! in a pending buffer and is retried after every payload arrival.
//! After running the program the worker installs its own outputs in
//! the cache at their new versions — which is what makes it the
//! natural home for the next task reading them — and returns them in a
//! [`NetMsg::TaskResult`].
//!
//! The handshake (`Hello`/`Welcome`) is written directly to the
//! socket with `seq == 0`: a connected stream either delivers it or
//! surfaces an error, and the coordinator treats a worker that never
//! completes the handshake as dead on arrival.

use std::collections::HashMap;
use std::io::Write;
use std::time::Duration;

use jade_core::ir::{run_ir, TaskBodyIr};
use jade_core::kernels::KernelRegistry;
use jade_transport::{encode_frame, DataLayout, FrameReader};

use crate::reliable::{Accept, Reliable, ReliableConfig};
use crate::sock::{is_timeout, Sock};
use crate::wire::{pack_msg, unpack_msg, NetMsg};

/// How a worker "dies" when a chaos threshold fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Die {
    /// Deliver `SIGKILL` to our own process (process mode).
    Sigkill,
    /// Abruptly shut the socket down and return (thread mode).
    Abrupt,
}

/// Fault-injection thresholds. A worker counts grants (leases and
/// shipped tasks share one counter), executed task bodies, and kernel
/// completions; when a threshold is reached it dies (or hangs)
/// *instead of* performing the next action, so the coordinator always
/// has that action genuinely in flight when the failure lands.
#[derive(Debug, Clone, Copy, Default)]
pub struct Chaos {
    /// Die instead of sending grant number `n + 1` (a lease grant, or
    /// accepting a shipped task body).
    pub kill_after_grants: Option<u32>,
    /// Go silent (stop answering pings and requests) after `n` grants.
    pub hang_after_grants: Option<u32>,
    /// Die instead of sending kernel result number `n + 1`.
    pub kill_after_kernels: Option<u32>,
    /// Die instead of sending task result number `n + 1` — *after*
    /// executing the task and installing its outputs in the replica
    /// cache, so the worker dies holding dirty sole-copy replicas.
    pub kill_after_tasks: Option<u32>,
}

/// Everything a worker needs besides its socket.
#[derive(Debug, Clone)]
pub struct WorkerOpts {
    /// Pool index assigned at spawn (echoed in `Hello`).
    pub id: u32,
    /// The "machine architecture" this worker marshals with.
    pub layout: DataLayout,
    /// Reliability tuning (must match the coordinator's timescale).
    pub rel: ReliableConfig,
    /// Fault injection.
    pub chaos: Chaos,
    /// What "die" means in this mode.
    pub die: Die,
    /// The kernels this worker can run (IR steps and `KernelCall`s).
    pub registry: KernelRegistry,
}

impl WorkerOpts {
    /// Defaults for thread-mode tests: worker 0, native layout,
    /// builtin kernels.
    pub fn thread_mode(id: u32, layout: DataLayout) -> Self {
        WorkerOpts {
            id,
            layout,
            rel: ReliableConfig::default(),
            chaos: Chaos::default(),
            die: Die::Abrupt,
            registry: KernelRegistry::builtin(),
        }
    }
}

/// Kill this worker the way the chaos spec asks. Never returns in
/// process mode (SIGKILL is uncatchable); returns `true` in thread
/// mode so the caller can exit its loop.
fn die_now(sock: &Sock, how: Die) -> bool {
    match how {
        Die::Sigkill => {
            // No libc in the tree: shell out for the signal. SIGKILL
            // cannot be handled, so the socket closes with no goodbye
            // frame — exactly the failure the chaos test wants.
            let pid = std::process::id().to_string();
            let _ = std::process::Command::new("kill").args(["-9", &pid]).status();
            // If `kill` somehow failed, fall through to a hard abort so
            // the test still sees an abrupt death rather than a hang.
            std::process::abort();
        }
        Die::Abrupt => {
            sock.shutdown_both();
            true
        }
    }
}

/// Go silent: stop answering anything, but keep draining the socket so
/// a process-mode worker still notices coordinator shutdown (EOF) and
/// exits instead of lingering forever.
fn hang_until_eof(sock: &mut Sock) {
    let _ = sock.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = [0u8; 4096];
    loop {
        match std::io::Read::read(sock, &mut buf) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {}
            Err(_) => return,
        }
    }
}

/// A shipped task waiting for its input payloads.
struct PendingTask {
    nonce: u64,
    ir: TaskBodyIr,
    inputs: Vec<(u32, u64, u64)>,
    outs: Vec<(u32, u64, u64)>,
}

/// Replica cache: object id → (version, lowered payload).
type ReplicaCache = HashMap<u64, (u64, Vec<f64>)>;

/// Whether every input the task names is resident at *exactly* the
/// required version. Exact match is safe because the coordinator's
/// dependency engine serializes conflicting tasks: a newer version
/// cannot overwrite an input some in-flight task still needs.
fn inputs_ready(task: &PendingTask, cache: &ReplicaCache) -> bool {
    task.inputs
        .iter()
        .all(|&(_, obj, ver)| cache.get(&obj).is_some_and(|(v, _)| *v == ver))
}

/// Run a shipped task body and install its outputs in the replica
/// cache at their new versions. Returns the `TaskResult` to send.
fn exec_task(task: PendingTask, cache: &mut ReplicaCache, registry: &KernelRegistry) -> NetMsg {
    let PendingTask { nonce, ir, inputs, outs } = task;
    let width = inputs
        .iter()
        .chain(outs.iter())
        .map(|&(idx, _, _)| idx as usize + 1)
        .max()
        .unwrap_or(0);
    let mut slots: Vec<Option<Vec<f64>>> = vec![None; width];
    for &(idx, obj, _) in &inputs {
        // inputs_ready() vouched for the exact version.
        slots[idx as usize] = cache.get(&obj).map(|(_, d)| d.clone());
    }
    match run_ir(&ir, &slots, registry) {
        Ok(results) => {
            let mut reply = Vec::with_capacity(results.len());
            for (idx, data) in results {
                if let Some(&(_, obj, newver)) = outs.iter().find(|&&(i, _, _)| i == idx) {
                    cache.insert(obj, (newver, data.clone()));
                }
                reply.push((idx, data));
            }
            NetMsg::TaskResult { nonce, ok: true, err: String::new(), outs: reply }
        }
        Err(err) => NetMsg::TaskResult { nonce, ok: false, err, outs: Vec::new() },
    }
}

/// Run the worker protocol loop until shutdown, EOF, or chaos.
pub fn run_worker(mut sock: Sock, opts: WorkerOpts) -> std::io::Result<()> {
    let mut rel = Reliable::new(opts.rel);
    let mut rd = FrameReader::new();
    let mut grants: u32 = 0;
    let mut kernels_done: u32 = 0;
    let mut tasks_done: u32 = 0;
    let mut cache: ReplicaCache = HashMap::new();
    let mut pending: Vec<PendingTask> = Vec::new();

    // Handshake: a raw seq-0 frame, outside the reliability layer.
    let hello = encode_frame(&pack_msg(&NetMsg::Hello { worker: opts.id }, opts.id, 0, 0, opts.layout));
    sock.write_all(&hello)?;
    sock.flush()?;

    // Interleave receive with retransmission ticks.
    let tick = (opts.rel.retransmit_timeout / 2).max(Duration::from_millis(2));
    sock.set_read_timeout(Some(tick))?;

    let mut buf = [0u8; 16 * 1024];
    'outer: loop {
        let n = match std::io::Read::read(&mut sock, &mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if is_timeout(&e) => {
                if !rel.tick(&mut sock)? {
                    // The coordinator is unreachable; nothing useful
                    // left to do.
                    break;
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        rd.push(&buf[..n]);
        loop {
            let msg = match rd.next_frame() {
                Ok(Some(m)) => m,
                Ok(None) => break,
                // A corrupt inbound stream is unrecoverable for this
                // link; drop it and let the coordinator reassign.
                Err(_) => break 'outer,
            };
            let wire = msg.wire_bytes();
            let seq = msg.header.seq;
            let net = match unpack_msg(&msg) {
                Ok(m) => m,
                Err(_) => break 'outer,
            };
            if seq != 0 {
                let dup = rel.accept(seq, wire) == Accept::Duplicate;
                rel.send(&mut sock, &NetMsg::Ack { seq }, opts.id, 0, opts.layout)?;
                if dup {
                    continue;
                }
            }
            match net {
                NetMsg::Ack { seq } => rel.on_ack(seq),
                NetMsg::Ping { nonce } => {
                    rel.send(&mut sock, &NetMsg::Pong { nonce }, opts.id, 0, opts.layout)?;
                }
                NetMsg::LeaseRequest { task } => {
                    if opts.chaos.kill_after_grants.is_some_and(|n| grants >= n) {
                        // Die *instead of* granting: the lease is in
                        // flight at the coordinator when we vanish.
                        if die_now(&sock, opts.die) {
                            break 'outer;
                        }
                    }
                    if opts.chaos.hang_after_grants.is_some_and(|n| grants >= n) {
                        hang_until_eof(&mut sock);
                        break 'outer;
                    }
                    grants += 1;
                    rel.send(&mut sock, &NetMsg::LeaseGrant { task }, opts.id, 0, opts.layout)?;
                }
                NetMsg::TaskComplete { .. } => {}
                NetMsg::ObjectShip { object, version, data } => {
                    cache.insert(object, (version, data));
                    // A retransmitted payload may arrive *after* the
                    // task that reads it: retry the waiting room.
                    let mut i = 0;
                    while i < pending.len() {
                        if inputs_ready(&pending[i], &cache) {
                            let task = pending.remove(i);
                            let reply = exec_task(task, &mut cache, &opts.registry);
                            if opts.chaos.kill_after_tasks.is_some_and(|n| tasks_done >= n)
                                && die_now(&sock, opts.die)
                            {
                                break 'outer;
                            }
                            tasks_done += 1;
                            rel.send(&mut sock, &reply, opts.id, 0, opts.layout)?;
                        } else {
                            i += 1;
                        }
                    }
                }
                NetMsg::TaskShip { nonce, ir, inputs, outs } => {
                    // A shipped body is this protocol's grant: the same
                    // chaos thresholds apply, so kill plans written for
                    // the lease protocol also cover IR dispatch.
                    if opts.chaos.kill_after_grants.is_some_and(|n| grants >= n)
                        && die_now(&sock, opts.die)
                    {
                        break 'outer;
                    }
                    if opts.chaos.hang_after_grants.is_some_and(|n| grants >= n) {
                        hang_until_eof(&mut sock);
                        break 'outer;
                    }
                    grants += 1;
                    let task = PendingTask { nonce, ir, inputs, outs };
                    if inputs_ready(&task, &cache) {
                        let reply = exec_task(task, &mut cache, &opts.registry);
                        if opts.chaos.kill_after_tasks.is_some_and(|n| tasks_done >= n)
                            && die_now(&sock, opts.die)
                        {
                            break 'outer;
                        }
                        tasks_done += 1;
                        rel.send(&mut sock, &reply, opts.id, 0, opts.layout)?;
                    } else {
                        pending.push(task);
                    }
                }
                NetMsg::KernelCall { id, name, args } => {
                    if opts.chaos.kill_after_kernels.is_some_and(|n| kernels_done >= n)
                        && die_now(&sock, opts.die)
                    {
                        break 'outer;
                    }
                    kernels_done += 1;
                    let reply = match opts.registry.lookup(&name) {
                        Some(k) => {
                            NetMsg::KernelResult { id, ok: true, values: k(&args), err: String::new() }
                        }
                        None => NetMsg::KernelResult {
                            id,
                            ok: false,
                            values: Vec::new(),
                            err: format!("no kernel named '{name}' in this worker's registry"),
                        },
                    };
                    rel.send(&mut sock, &reply, opts.id, 0, opts.layout)?;
                }
                NetMsg::Shutdown => break 'outer,
                // Handshake confirmation: nothing to do, the loop is
                // already serving.
                NetMsg::Welcome { .. } => {}
                // Coordinator-bound messages never arrive here.
                NetMsg::Hello { .. } | NetMsg::Pong { .. } | NetMsg::LeaseGrant { .. }
                | NetMsg::KernelResult { .. } | NetMsg::TaskResult { .. } => {}
            }
        }
    }
    sock.shutdown_both();
    Ok(())
}

/// Entry point for the process-mode binary: parse the environment,
/// dial the coordinator, run the loop with the builtin kernels. Exits
/// the process on error. Binaries whose applications register extra
/// kernels should call [`worker_main_with`] instead.
///
/// Recognised variables (set by the coordinator when spawning):
///
/// | variable | meaning |
/// |---|---|
/// | `JADE_NET_ADDR` | `unix:<path>` or `tcp:<host:port>` |
/// | `JADE_NET_WORKER_ID` | pool index |
/// | `JADE_NET_LAYOUT` | layout preset name (`sparc`, `i860`, ...) |
/// | `JADE_NET_RETRANS_US` | retransmit timeout, microseconds |
/// | `JADE_NET_BACKOFF_CAP` | backoff multiplier cap |
/// | `JADE_NET_MAX_ATTEMPTS` | transmissions before giving up |
/// | `JADE_NET_LOSS_SEED` / `JADE_NET_LOSS_PROB` | injected loss |
/// | `JADE_NET_KILL_AFTER` | SIGKILL instead of grant `n + 1` |
/// | `JADE_NET_HANG_AFTER` | go silent after `n` grants |
/// | `JADE_NET_KILL_AFTER_KERNELS` | SIGKILL instead of kernel result `n + 1` |
/// | `JADE_NET_KILL_AFTER_TASKS` | SIGKILL instead of task result `n + 1` |
pub fn worker_main() -> ! {
    worker_main_with(KernelRegistry::builtin())
}

/// [`worker_main`] with a caller-supplied kernel registry, so a worker
/// binary can serve application kernels (the coordinator refuses to
/// ship a task whose kernels the registry lacks, so a stale binary
/// degrades to local execution rather than failing).
pub fn worker_main_with(registry: KernelRegistry) -> ! {
    fn env_u64(key: &str) -> Option<u64> {
        std::env::var(key).ok().and_then(|v| v.parse().ok())
    }
    let addr = std::env::var("JADE_NET_ADDR").unwrap_or_else(|_| {
        eprintln!("jade-net-worker: JADE_NET_ADDR not set");
        std::process::exit(2);
    });
    let id = env_u64("JADE_NET_WORKER_ID").unwrap_or(0) as u32;
    let layout_name = std::env::var("JADE_NET_LAYOUT").unwrap_or_default();
    let layout = DataLayout::all_presets()
        .into_iter()
        .find(|l| l.name == layout_name)
        .unwrap_or_else(DataLayout::x86_64);
    let mut rel = ReliableConfig::default();
    if let Some(us) = env_u64("JADE_NET_RETRANS_US") {
        rel.retransmit_timeout = Duration::from_micros(us);
    }
    if let Some(c) = env_u64("JADE_NET_BACKOFF_CAP") {
        rel.backoff_cap = c as u32;
    }
    if let Some(a) = env_u64("JADE_NET_MAX_ATTEMPTS") {
        rel.max_attempts = a as u32;
    }
    if let (Some(seed), Ok(prob)) = (
        env_u64("JADE_NET_LOSS_SEED"),
        std::env::var("JADE_NET_LOSS_PROB").unwrap_or_default().parse::<f64>(),
    ) {
        if prob > 0.0 {
            rel.loss = Some((seed, prob));
        }
    }
    let chaos = Chaos {
        kill_after_grants: env_u64("JADE_NET_KILL_AFTER").map(|n| n as u32),
        hang_after_grants: env_u64("JADE_NET_HANG_AFTER").map(|n| n as u32),
        kill_after_kernels: env_u64("JADE_NET_KILL_AFTER_KERNELS").map(|n| n as u32),
        kill_after_tasks: env_u64("JADE_NET_KILL_AFTER_TASKS").map(|n| n as u32),
    };
    let sock = match addr.split_once(':') {
        Some(("unix", path)) => std::os::unix::net::UnixStream::connect(path).map(Sock::Unix),
        Some(("tcp", hostport)) => std::net::TcpStream::connect(hostport).map(Sock::Tcp),
        _ => {
            eprintln!("jade-net-worker: bad JADE_NET_ADDR '{addr}'");
            std::process::exit(2);
        }
    };
    let sock = match sock {
        Ok(s) => s,
        Err(e) => {
            eprintln!("jade-net-worker: connect to '{addr}' failed: {e}");
            std::process::exit(3);
        }
    };
    let opts = WorkerOpts { id, layout, rel, chaos, die: Die::Sigkill, registry };
    match run_worker(sock, opts) {
        Ok(()) => std::process::exit(0),
        // The coordinator tearing the socket down mid-write is the
        // normal end of a run, not a protocol failure.
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::NotConnected
            ) =>
        {
            std::process::exit(0)
        }
        Err(e) => {
            eprintln!("jade-net-worker: protocol error: {e}");
            std::process::exit(4);
        }
    }
}
