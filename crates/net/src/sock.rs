//! A socket that is either a Unix-domain stream or a loopback TCP
//! stream, so the rest of the backend is transport-agnostic.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::net::UnixStream;
use std::time::Duration;

/// One connected stream endpoint, Unix-domain or TCP.
#[derive(Debug)]
pub enum Sock {
    /// A Unix-domain stream socket.
    Unix(UnixStream),
    /// A TCP stream (the backend only ever dials loopback).
    Tcp(TcpStream),
}

impl Sock {
    /// Clone the underlying descriptor (independent read/write halves).
    pub fn try_clone(&self) -> std::io::Result<Sock> {
        Ok(match self {
            Sock::Unix(s) => Sock::Unix(s.try_clone()?),
            Sock::Tcp(s) => Sock::Tcp(s.try_clone()?),
        })
    }

    /// Bound blocking reads so protocol loops can interleave
    /// retransmission ticks with receiving.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Sock::Unix(s) => s.set_read_timeout(dur),
            Sock::Tcp(s) => s.set_read_timeout(dur),
        }
    }

    /// Abruptly close both directions (best effort).
    pub fn shutdown_both(&self) {
        match self {
            Sock::Unix(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
            Sock::Tcp(s) => {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

impl Read for Sock {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Sock::Unix(s) => s.read(buf),
            Sock::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Sock {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Sock::Unix(s) => s.write(buf),
            Sock::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Sock::Unix(s) => s.flush(),
            Sock::Tcp(s) => s.flush(),
        }
    }
}

/// Whether an I/O error is the benign "read timed out" kind produced
/// by `set_read_timeout` (reported as `WouldBlock` on some platforms
/// and `TimedOut` on others).
pub fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}
