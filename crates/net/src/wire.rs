//! The coordinator/worker wire protocol.
//!
//! Every exchange between the coordinator and a worker process is one
//! [`NetMsg`], marshalled with the sender's [`DataLayout`] into a
//! `jade-transport` [`Message`] and framed by
//! [`jade_transport::frame`]. The receiver converts through
//! [`Message::try_unpack`], so a big-endian "SPARC" worker and a
//! little-endian coordinator interoperate exactly as the paper's
//! heterogeneous machines did over PVM.
//!
//! Messages split into two delivery classes:
//!
//! * **Reliable** (`seq > 0`): lease and kernel traffic. The sender
//!   holds the frame until an [`NetMsg::Ack`] arrives, retransmitting
//!   on timeout with bounded exponential backoff
//!   ([`crate::reliable`]).
//! * **Unreliable** (`seq == 0`): heartbeats ([`NetMsg::Ping`] /
//!   [`NetMsg::Pong`]), acks themselves, and the best-effort
//!   [`NetMsg::Shutdown`] goodbye. Losing one is harmless — the next
//!   heartbeat round or retransmission covers it, acking acks would
//!   regress infinitely, and a worker that misses the goodbye exits
//!   on socket EOF.

use jade_core::ir::TaskBodyIr;
use jade_transport::encode::{PortDecoder, PortEncoder};
use jade_transport::error::{DecodeError, DecodeResult};
use jade_transport::{DataLayout, Message, MsgKind, Portable};

/// One protocol message. `task` fields carry the raw `TaskId` bits;
/// `id` fields identify kernel invocations.
#[derive(Debug, Clone, PartialEq)]
pub enum NetMsg {
    /// Worker → coordinator, first frame after connecting: announces
    /// the worker index assigned at spawn.
    Hello {
        /// The worker's index in the pool.
        worker: u32,
    },
    /// Coordinator → worker: handshake complete, protocol may begin.
    Welcome {
        /// Echo of the worker index.
        worker: u32,
    },
    /// Coordinator → worker heartbeat (unreliable).
    Ping {
        /// Round-trip correlation value.
        nonce: u64,
    },
    /// Worker → coordinator heartbeat response (unreliable).
    Pong {
        /// Echo of the ping's nonce.
        nonce: u64,
    },
    /// Receipt for a reliable frame (unreliable).
    Ack {
        /// The sequence number being acknowledged.
        seq: u64,
    },
    /// Coordinator → worker: lease `task` for execution. The
    /// coordinator's pool thread blocks until the matching grant.
    LeaseRequest {
        /// Raw `TaskId` bits.
        task: u64,
    },
    /// Worker → coordinator: the lease is granted; the task body may
    /// run.
    LeaseGrant {
        /// Raw `TaskId` bits.
        task: u64,
    },
    /// Coordinator → worker: the leased task's body completed.
    TaskComplete {
        /// Raw `TaskId` bits.
        task: u64,
    },
    /// Coordinator → worker: execute registered kernel `name` on
    /// `args` remotely.
    KernelCall {
        /// Invocation id (for matching the result).
        id: u64,
        /// Registry name of the kernel.
        name: String,
        /// Arguments, converted to the worker's layout on receive.
        args: Vec<f64>,
    },
    /// Worker → coordinator: the kernel's result (or failure).
    KernelResult {
        /// Echo of the invocation id.
        id: u64,
        /// Whether the kernel ran.
        ok: bool,
        /// Result values when `ok`.
        values: Vec<f64>,
        /// Failure description when `!ok`.
        err: String,
    },
    /// Coordinator → worker: exit cleanly (best-effort; workers also
    /// exit on socket EOF).
    Shutdown,
    /// Coordinator → worker: install one object payload in the
    /// worker's replica cache. Sent before a [`NetMsg::TaskShip`]
    /// whose inputs the worker does not hold at the right version.
    ObjectShip {
        /// Raw `ObjectId` bits.
        object: u64,
        /// The payload's version in the coordinator's directory.
        version: u64,
        /// The lowered object value.
        data: Vec<f64>,
    },
    /// Coordinator → worker: execute a portable task body
    /// ([`TaskBodyIr`]) against the replica cache. The worker waits
    /// for any input replica that has not arrived yet (loss can
    /// reorder `ObjectShip` and `TaskShip`), runs the program, and
    /// answers with [`NetMsg::TaskResult`].
    TaskShip {
        /// Raw `TaskId` bits (doubles as the result correlation id).
        nonce: u64,
        /// The program of kernel calls.
        ir: TaskBodyIr,
        /// `(decl index, object, version)` for every declaration the
        /// program reads: the replica the worker must hold.
        inputs: Vec<(u32, u64, u64)>,
        /// `(decl index, object, new version)` for every declaration
        /// the program writes: the version the worker's own replica
        /// adopts on completion.
        outs: Vec<(u32, u64, u64)>,
    },
    /// Worker → coordinator: the shipped task's written values (or a
    /// deterministic failure).
    TaskResult {
        /// Echo of the ship's nonce.
        nonce: u64,
        /// Whether the program ran to completion.
        ok: bool,
        /// Failure description when `!ok`.
        err: String,
        /// `(decl index, final value)` per written declaration.
        outs: Vec<(u32, Vec<f64>)>,
    },
}

impl NetMsg {
    /// Whether this message rides the reliable (acked, retransmitted)
    /// class. `Shutdown` is deliberately best-effort: workers also
    /// exit on socket EOF, and a retransmitting goodbye would outlive
    /// the sockets it needs.
    pub fn is_reliable(&self) -> bool {
        !matches!(
            self,
            NetMsg::Ping { .. } | NetMsg::Pong { .. } | NetMsg::Ack { .. } | NetMsg::Shutdown
        )
    }

    /// The transport-level kind this message maps onto.
    pub fn msg_kind(&self) -> MsgKind {
        match self {
            NetMsg::LeaseRequest { .. }
            | NetMsg::KernelCall { .. }
            | NetMsg::ObjectShip { .. }
            | NetMsg::TaskShip { .. } => MsgKind::TaskShip,
            NetMsg::LeaseGrant { .. }
            | NetMsg::TaskComplete { .. }
            | NetMsg::KernelResult { .. }
            | NetMsg::TaskResult { .. } => MsgKind::TaskDone,
            _ => MsgKind::Control,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            NetMsg::Hello { .. } => 0,
            NetMsg::Welcome { .. } => 1,
            NetMsg::Ping { .. } => 2,
            NetMsg::Pong { .. } => 3,
            NetMsg::Ack { .. } => 4,
            NetMsg::LeaseRequest { .. } => 5,
            NetMsg::LeaseGrant { .. } => 6,
            NetMsg::TaskComplete { .. } => 7,
            NetMsg::KernelCall { .. } => 8,
            NetMsg::KernelResult { .. } => 9,
            NetMsg::Shutdown => 10,
            NetMsg::ObjectShip { .. } => 11,
            NetMsg::TaskShip { .. } => 12,
            NetMsg::TaskResult { .. } => 13,
        }
    }
}

impl Portable for NetMsg {
    fn encode(&self, enc: &mut PortEncoder) {
        enc.put_u8(self.tag());
        match self {
            NetMsg::Hello { worker } | NetMsg::Welcome { worker } => enc.put_u32(*worker),
            NetMsg::Ping { nonce } | NetMsg::Pong { nonce } => enc.put_u64(*nonce),
            NetMsg::Ack { seq } => enc.put_u64(*seq),
            NetMsg::LeaseRequest { task }
            | NetMsg::LeaseGrant { task }
            | NetMsg::TaskComplete { task } => enc.put_u64(*task),
            NetMsg::KernelCall { id, name, args } => {
                enc.put_u64(*id);
                name.encode(enc);
                args.encode(enc);
            }
            NetMsg::KernelResult { id, ok, values, err } => {
                enc.put_u64(*id);
                enc.put_bool(*ok);
                values.encode(enc);
                err.encode(enc);
            }
            NetMsg::Shutdown => {}
            NetMsg::ObjectShip { object, version, data } => {
                enc.put_u64(*object);
                enc.put_u64(*version);
                enc.put_f64_slice(data);
            }
            NetMsg::TaskShip { nonce, ir, inputs, outs } => {
                enc.put_u64(*nonce);
                ir.encode(enc);
                inputs.encode(enc);
                outs.encode(enc);
            }
            NetMsg::TaskResult { nonce, ok, err, outs } => {
                enc.put_u64(*nonce);
                enc.put_bool(*ok);
                err.encode(enc);
                outs.encode(enc);
            }
        }
    }

    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        Ok(match dec.get_u8()? {
            0 => NetMsg::Hello { worker: dec.get_u32()? },
            1 => NetMsg::Welcome { worker: dec.get_u32()? },
            2 => NetMsg::Ping { nonce: dec.get_u64()? },
            3 => NetMsg::Pong { nonce: dec.get_u64()? },
            4 => NetMsg::Ack { seq: dec.get_u64()? },
            5 => NetMsg::LeaseRequest { task: dec.get_u64()? },
            6 => NetMsg::LeaseGrant { task: dec.get_u64()? },
            7 => NetMsg::TaskComplete { task: dec.get_u64()? },
            8 => NetMsg::KernelCall {
                id: dec.get_u64()?,
                name: String::decode(dec)?,
                args: Vec::decode(dec)?,
            },
            9 => NetMsg::KernelResult {
                id: dec.get_u64()?,
                ok: dec.get_bool()?,
                values: Vec::decode(dec)?,
                err: String::decode(dec)?,
            },
            10 => NetMsg::Shutdown,
            11 => NetMsg::ObjectShip {
                object: dec.get_u64()?,
                version: dec.get_u64()?,
                data: dec.get_f64_slice()?,
            },
            12 => NetMsg::TaskShip {
                nonce: dec.get_u64()?,
                ir: TaskBodyIr::decode(dec)?,
                inputs: Vec::decode(dec)?,
                outs: Vec::decode(dec)?,
            },
            13 => NetMsg::TaskResult {
                nonce: dec.get_u64()?,
                ok: dec.get_bool()?,
                err: String::decode(dec)?,
                outs: Vec::decode(dec)?,
            },
            t => return Err(DecodeError::LengthOverflow { len: t as usize }),
        })
    }

    fn size_hint(&self) -> usize {
        match self {
            NetMsg::KernelCall { name, args, .. } => 24 + name.len() + 8 * args.len(),
            NetMsg::KernelResult { values, err, .. } => 32 + 8 * values.len() + err.len(),
            NetMsg::ObjectShip { data, .. } => 32 + 8 * data.len(),
            NetMsg::TaskShip { ir, inputs, outs, .. } => {
                16 + ir.size_hint() + 32 * (inputs.len() + outs.len())
            }
            NetMsg::TaskResult { err, outs, .. } => {
                32 + err.len() + outs.iter().map(|(_, v)| 16 + 8 * v.len()).sum::<usize>()
            }
            _ => 16,
        }
    }
}

/// Marshal a [`NetMsg`] into a transport [`Message`] in `layout`.
pub fn pack_msg(msg: &NetMsg, src: u32, dst: u32, seq: u64, layout: DataLayout) -> Message {
    Message::pack(msg.msg_kind(), src, dst, seq, layout, msg)
}

/// Unmarshal a received transport [`Message`] back into a [`NetMsg`],
/// converting from the sender's layout (named in the header).
pub fn unpack_msg(msg: &Message) -> DecodeResult<NetMsg> {
    msg.try_unpack::<NetMsg>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_core::ir::{IrDst, IrSrc};

    fn all_msgs() -> Vec<NetMsg> {
        vec![
            NetMsg::Hello { worker: 3 },
            NetMsg::Welcome { worker: 3 },
            NetMsg::Ping { nonce: 42 },
            NetMsg::Pong { nonce: 42 },
            NetMsg::Ack { seq: 7 },
            NetMsg::LeaseRequest { task: 0xDEAD_BEEF },
            NetMsg::LeaseGrant { task: 0xDEAD_BEEF },
            NetMsg::TaskComplete { task: 0xDEAD_BEEF },
            NetMsg::KernelCall { id: 1, name: "sum".into(), args: vec![1.0, -2.5] },
            NetMsg::KernelResult { id: 1, ok: true, values: vec![-1.5], err: String::new() },
            NetMsg::KernelResult { id: 2, ok: false, values: vec![], err: "no such kernel".into() },
            NetMsg::Shutdown,
            NetMsg::ObjectShip { object: 9, version: 3, data: vec![1.5, -2.0, 0.0] },
            NetMsg::TaskShip {
                nonce: 0xBEEF,
                ir: TaskBodyIr::new().step(
                    "scale2",
                    vec![IrSrc::Obj(0), IrSrc::Lit(vec![4.5])],
                    IrDst::Obj(0),
                ),
                inputs: vec![(0, 9, 3)],
                outs: vec![(0, 9, 4)],
            },
            NetMsg::TaskResult {
                nonce: 0xBEEF,
                ok: true,
                err: String::new(),
                outs: vec![(0, vec![3.0, -4.0, 9.0])],
            },
            NetMsg::TaskResult {
                nonce: 7,
                ok: false,
                err: "step 0: no kernel named 'x'".into(),
                outs: vec![],
            },
        ]
    }

    #[test]
    fn every_message_roundtrips_across_every_layout() {
        for m in all_msgs() {
            for layout in DataLayout::all_presets() {
                let wire = pack_msg(&m, 0, 1, 9, layout);
                assert_eq!(wire.header.seq, 9);
                let back = unpack_msg(&wire).expect("intact message");
                assert_eq!(back, m, "layout {}", layout.name);
            }
        }
    }

    #[test]
    fn reliability_classes_are_as_documented() {
        for m in all_msgs() {
            let unreliable = matches!(
                m,
                NetMsg::Ping { .. } | NetMsg::Pong { .. } | NetMsg::Ack { .. } | NetMsg::Shutdown
            );
            assert_eq!(m.is_reliable(), !unreliable, "{m:?}");
        }
    }

    #[test]
    fn truncated_payload_is_an_error() {
        use jade_transport::Message;
        let m = NetMsg::KernelCall { id: 1, name: "sum".into(), args: vec![1.0; 8] };
        let wire = pack_msg(&m, 0, 1, 1, DataLayout::sparc());
        let cut = Message {
            header: wire.header,
            payload: jade_transport::Bytes::copy_from_slice(
                &wire.payload[..wire.payload.len() - 5],
            ),
        };
        assert!(unpack_msg(&cut).is_err());
    }
}
