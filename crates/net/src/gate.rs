//! The lease gate: where the thread pool's dispatch meets the wire.
//!
//! Jade task bodies are closures and cannot cross a process boundary,
//! so the distributed backend splits each dispatch in two: the
//! coordinator keeps the dependency engine, object store and bodies,
//! and a worker machine must *grant a lease* over the wire before a
//! pool lane runs the body. That round-trip is what makes worker
//! death observable per task: a lease that dies in flight is
//! reassigned to a survivor (bounded by `max_task_attempts`), and
//! with no survivors the grant degrades to coordinator-local serial
//! execution — the run completes, with the degradation recorded in
//! [`FaultStats`](jade_core::stats::FaultStats) instead of an error.

use std::sync::Arc;

use jade_core::ids::TaskId;
use jade_threads::DispatchGate;

use crate::cluster::Shared;
use crate::wire::NetMsg;

/// [`DispatchGate`] implementation backed by a [`Shared`] cluster.
pub struct LeaseGate {
    shared: Arc<Shared>,
}

impl LeaseGate {
    /// Gate dispatches through the given cluster.
    pub fn new(shared: Arc<Shared>) -> Self {
        LeaseGate { shared }
    }
}

impl DispatchGate for LeaseGate {
    fn admit(&self, task: TaskId, _lane: usize) -> bool {
        let tid = task.0;
        let sh = &self.shared;
        let mut dispatches = 0u32;
        let mut dead_from: Option<usize> = None;
        loop {
            if dispatches >= sh.max_task_attempts() {
                // The lease keeps dying; run the body locally rather
                // than stalling the program.
                sh.bump_degraded();
                return true;
            }
            let Some(w) = sh.pick_worker(dead_from) else {
                // No live workers at all: degrade to coordinator-local
                // execution so the run still completes.
                sh.bump_degraded();
                return true;
            };
            if let Some(from) = dead_from.take() {
                sh.bump_recovery(from, w, tid);
            }
            dispatches += 1;
            sh.lease_begin(tid, w);
            if sh.send_to(w, &NetMsg::LeaseRequest { task: tid }).is_err() {
                sh.declare_dead(w, "lease send failed");
                sh.lease_cancel(tid);
                dead_from = Some(w);
                continue;
            }
            match sh.lease_wait(tid) {
                Some(true) => return true,
                Some(false) => {
                    dead_from = Some(w);
                }
                // Fault shutdown: refuse the dispatch; the pool
                // unwinds its bookkeeping and drains.
                None => return false,
            }
        }
    }

    fn complete(&self, task: TaskId, _lane: usize) {
        if let Some(w) = self.shared.lease_release(task.0) {
            // Best effort: a dead worker's completion notice is moot.
            let _ = self.shared.send_to(w, &NetMsg::TaskComplete { task: task.0 });
        }
    }

    fn abort(&self) {
        self.shared.abort();
    }
}
