//! The dispatch gate: where the thread pool's dispatch meets the wire.
//!
//! The coordinator keeps the dependency engine, object store and
//! closure bodies; the gate decides per task how the body's effects
//! happen, in order of preference:
//!
//! 1. **Ship the body.** A task created with `withonly_ir` carries a
//!    portable kernel program over its declared footprint. If the
//!    coordinator's registry knows every kernel and every accessed
//!    object lowers to the IR's flat `f64` domain, the gate lowers the
//!    inputs, ships whatever the chosen worker's replica cache is
//!    missing, and blocks for the [`TaskResult`](crate::wire::NetMsg);
//!    the returned outputs are lifted into the store and the pool
//!    settles the task with no closure run ([`Admission::Remote`]).
//!    Worker death mid-task re-dispatches to a survivor (bounded by
//!    `max_task_attempts`).
//! 2. **Lease the right to execute.** A closure-only task cannot cross
//!    the process boundary, so a worker grants a *lease* over the wire
//!    and the body runs coordinator-side ([`Admission::Local`]). The
//!    round-trip is what makes worker death observable per task.
//! 3. **Degrade.** With the dispatch budget or the worker pool
//!    exhausted, the body runs locally anyway — the run completes,
//!    with the degradation recorded in
//!    [`FaultStats`](jade_core::stats::FaultStats) instead of an
//!    error.
//!
//! A task that *cannot* be shipped for static reasons — an unknown
//! kernel, an object type with no registered lowering — silently takes
//! the lease path: that is a program shape, not a fault.

use std::sync::Arc;

use jade_core::ids::{ObjectId, TaskId};
use jade_core::ir::TaskBodyIr;
use jade_threads::{AdmitRequest, Admission, DispatchGate};

use crate::cluster::{RemoteOutcome, Shared};
use crate::wire::NetMsg;

/// [`DispatchGate`] implementation backed by a [`Shared`] cluster.
pub struct LeaseGate {
    shared: Arc<Shared>,
}

impl LeaseGate {
    /// Gate dispatches through the given cluster.
    pub fn new(shared: Arc<Shared>) -> Self {
        LeaseGate { shared }
    }

    /// Try to execute the task's portable body on a worker.
    /// `Some(admission)` settles the dispatch; `None` means the task
    /// is not shippable (or the attempt must not be retried) and the
    /// caller falls through to the lease path.
    fn admit_ir(&self, req: &AdmitRequest<'_>, ir: &TaskBodyIr) -> Option<Admission> {
        let sh = &self.shared;
        if !sh.can_ship(ir.kernel_names()) {
            // The registry cannot express this program; the closure is
            // the only rendering. Not a fault.
            return None;
        }
        let read_idx = ir.read_decls();
        let write_idx = ir.written_decls();
        if read_idx
            .iter()
            .chain(write_idx.iter())
            .any(|&d| d as usize >= req.decls.len())
        {
            // The program names a declaration the spec never made; the
            // closure path will surface whatever is actually wrong.
            return None;
        }

        // Lower the footprint out of the store. Written objects are
        // lowered too: it proves their types can round-trip *before*
        // anything is mutated, and the pre-images double as an undo
        // log should a lift fail halfway.
        let mut reads: Vec<(u32, u64, Vec<f64>)> = Vec::with_capacity(read_idx.len());
        let mut writes: Vec<(u32, u64)> = Vec::with_capacity(write_idx.len());
        let mut undo: Vec<(u32, u64, Vec<f64>)> = Vec::with_capacity(write_idx.len());
        {
            let store = req.store.read();
            for &d in &read_idx {
                let obj = req.decls[d as usize].object;
                let data = store.get(obj).ok()?.lower()?;
                reads.push((d, obj.0, data));
            }
            for &d in &write_idx {
                let obj = req.decls[d as usize].object;
                let pre = store.get(obj).ok()?.lower()?;
                undo.push((d, obj.0, pre));
                writes.push((d, obj.0));
            }
        }
        // The store lock is released across the network wait: sibling
        // tasks keep creating objects and taking guards. The engine
        // already serialized every conflicting access to this
        // footprint, so nobody mutates it while we block.

        match sh.run_task_remote(req.task.0, ir, &reads, &writes) {
            RemoteOutcome::Done(results) => {
                let store = req.store.read();
                let mut lifted = 0usize;
                let clean = results.iter().all(|(d, data)| {
                    let ok = req
                        .decls
                        .get(*d as usize)
                        .and_then(|decl| store.get(decl.object).ok())
                        .is_some_and(|slot| slot.lift(data));
                    if ok {
                        lifted += 1;
                    }
                    ok
                });
                if clean && lifted == writes.len() {
                    return Some(Admission::Remote);
                }
                // A lift failed (the program produced a shape its
                // object cannot absorb) or the worker skipped an
                // output: restore the pre-images so the closure reruns
                // against unmutated state.
                for (d, _, pre) in &undo {
                    if let Some(decl) = req.decls.get(*d as usize) {
                        if let Ok(slot) = store.get(decl.object) {
                            slot.lift(pre);
                        }
                    }
                }
                None
            }
            // Deterministic worker-side failure: rerunning elsewhere
            // cannot help, and the closure is the canonical rendering
            // — let it raise the canonical fault (or succeed, if only
            // the IR was wrong).
            RemoteOutcome::Failed(_) => None,
            RemoteOutcome::Exhausted => {
                sh.bump_degraded();
                Some(Admission::Local)
            }
            RemoteOutcome::Aborted => Some(Admission::Refused),
        }
    }
}

impl DispatchGate for LeaseGate {
    fn admit(&self, req: &AdmitRequest<'_>) -> Admission {
        if let Some(ir) = req.ir {
            if let Some(done) = self.admit_ir(req, ir) {
                return done;
            }
        }
        let tid = req.task.0;
        let sh = &self.shared;
        let mut dispatches = 0u32;
        let mut dead_from: Option<usize> = None;
        loop {
            if dispatches >= sh.max_task_attempts() {
                // The lease keeps dying; run the body locally rather
                // than stalling the program.
                sh.bump_degraded();
                return Admission::Local;
            }
            let Some(w) = sh.pick_worker(dead_from) else {
                // No live workers at all: degrade to coordinator-local
                // execution so the run still completes.
                sh.bump_degraded();
                return Admission::Local;
            };
            if let Some(from) = dead_from.take() {
                sh.bump_recovery(from, w, tid);
            }
            dispatches += 1;
            sh.lease_begin(tid, w);
            if sh.send_to(w, &NetMsg::LeaseRequest { task: tid }).is_err() {
                sh.declare_dead(w, "lease send failed");
                sh.lease_cancel(tid);
                dead_from = Some(w);
                continue;
            }
            match sh.lease_wait(tid) {
                Some(true) => return Admission::Local,
                Some(false) => {
                    dead_from = Some(w);
                }
                // Fault shutdown: refuse the dispatch; the pool
                // unwinds its bookkeeping and drains.
                None => return Admission::Refused,
            }
        }
    }

    fn complete(&self, task: TaskId, _lane: usize) {
        if let Some(w) = self.shared.lease_release(task.0) {
            // Best effort: a dead worker's completion notice is moot.
            let _ = self.shared.send_to(w, &NetMsg::TaskComplete { task: task.0 });
        }
    }

    fn abort(&self) {
        self.shared.abort();
    }

    fn call_kernel(&self, name: &str, args: &[f64]) -> Option<Result<Vec<f64>, String>> {
        Some(self.shared.call_kernel(name, args).map_err(|f| f.to_string()))
    }

    fn note_write(&self, object: ObjectId) {
        self.shared.note_local_write(object.0);
    }
}
