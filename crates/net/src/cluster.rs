//! The coordinator side: worker lifecycle, heartbeat liveness, and
//! in-flight work recovery.
//!
//! [`Cluster::start`] brings up N workers — OS processes running the
//! `jade-net-worker` binary, or threads running the same protocol loop
//! in-process — each on its own Unix-domain or TCP socket, and
//! maintains per-link state: a [`Reliable`] sender, a reader thread
//! draining frames, and heartbeat bookkeeping.
//!
//! A worker is declared dead when *any* of three detectors fires:
//!
//! 1. **Socket EOF / read error** — the reader thread sees the stream
//!    close (the `kill -9` case: the kernel closes the socket when the
//!    process dies).
//! 2. **Heartbeat loss** — the worker stops answering pings for more
//!    than `miss_budget` rounds (the hang case: the process lives but
//!    the protocol loop is stuck).
//! 3. **Retransmission exhaustion** — a reliable frame was transmitted
//!    `max_msg_attempts` times without an ack (the partition case).
//!
//! [`Shared::declare_dead`] then marks every lease and kernel call
//! assigned to that worker as dead and wakes all blocked waiters, who
//! reassign the work to a survivor (bounded by `max_task_attempts`)
//! or degrade to coordinator-local execution. Unrecoverable states
//! map onto the existing [`JadeFault`] taxonomy — the backend never
//! panics on a lost worker.

use std::collections::HashMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jade_core::error::JadeFault;
use jade_core::ids::TaskId;
use jade_core::ir::TaskBodyIr;
use jade_core::kernels::KernelRegistry;
use jade_core::observe::{Event, EventKind};
use jade_core::place::{choose, Candidate};
use jade_core::stats::{FaultStats, NetStats};
use jade_transport::{encode_frame, DataLayout, FrameReader};
use parking_lot::{Condvar, Mutex};

use crate::directory::Directory;
use crate::reliable::{Accept, Reliable, ReliableConfig};
use crate::sock::{is_timeout, Sock};
use crate::wire::{pack_msg, unpack_msg, NetMsg};
use crate::worker::{run_worker, Chaos, Die, WorkerOpts};

/// Which socket family carries the coordinator/worker links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transport {
    /// Unix-domain stream sockets (default; no ports to collide on).
    Unix,
    /// Loopback TCP (`127.0.0.1`, ephemeral port).
    Tcp,
}

/// How workers are spawned.
#[derive(Debug, Clone)]
pub enum WorkerMode {
    /// In-process threads running [`run_worker`] — the default for
    /// tests; chaos "kill" degrades to an abrupt socket shutdown.
    Threads,
    /// Real OS processes running the given worker binary; chaos "kill"
    /// is a genuine `SIGKILL`.
    Process {
        /// Path to the `jade-net-worker` binary.
        bin: PathBuf,
    },
}

/// Fault injection for one worker (see [`Chaos`] for semantics).
#[derive(Debug, Clone, Copy)]
pub struct ChaosSpec {
    /// Which worker index this applies to.
    pub worker: u32,
    /// Die instead of sending lease grant `n + 1`.
    pub kill_after_grants: Option<u32>,
    /// Go silent after `n` grants (exercises the heartbeat detector).
    pub hang_after_grants: Option<u32>,
    /// Die instead of sending kernel result `n + 1`.
    pub kill_after_kernels: Option<u32>,
    /// Die instead of sending task result `n + 1`, after installing
    /// the task's outputs locally (dies holding dirty sole replicas).
    pub kill_after_tasks: Option<u32>,
}

/// How the coordinator picks the worker for a shipped task body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// The paper's §5 heuristic through the shared
    /// [`jade_core::place::choose`]: lowest in-flight load first, then
    /// strongest affinity (resident replica bytes of the task's read
    /// set), then index.
    Locality,
    /// Rotate over live workers, ignoring residency (the baseline the
    /// locality experiment compares against).
    RoundRobin,
}

/// Configuration for the distributed backend.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of worker machines (and pool lanes).
    pub workers: usize,
    /// Socket family for the links.
    pub transport: Transport,
    /// Threads or real processes.
    pub worker_mode: WorkerMode,
    /// Heartbeat round interval.
    pub heartbeat: Duration,
    /// Consecutive missed heartbeat rounds before a worker is dead.
    pub miss_budget: u32,
    /// Reliability: timeout before the first retransmission.
    pub retransmit_timeout: Duration,
    /// Reliability: backoff doubling cap (multiple of the timeout).
    pub backoff_cap: u32,
    /// Reliability: transmissions per frame before the link is dead.
    pub max_msg_attempts: u32,
    /// Recovery: dispatch attempts per task/kernel before degrading.
    pub max_task_attempts: u32,
    /// Injected frame loss `(seed, probability)`, rolled per link.
    pub loss: Option<(u64, f64)>,
    /// Per-worker fault injection.
    pub chaos: Vec<ChaosSpec>,
    /// When a kernel exhausts its dispatch budget: `true` runs it in
    /// the coordinator's own registry (degraded mode), `false` surfaces
    /// [`JadeFault::RetriesExhausted`].
    pub kernel_local_fallback: bool,
    /// The kernels this job can ship (workers must serve a superset;
    /// the coordinator refuses to ship a task naming a kernel the
    /// registry lacks and runs its closure locally instead).
    pub registry: KernelRegistry,
    /// Worker selection for shipped task bodies.
    pub placement: PlacementPolicy,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            workers: 2,
            transport: Transport::Unix,
            worker_mode: WorkerMode::Threads,
            heartbeat: Duration::from_millis(40),
            miss_budget: 3,
            retransmit_timeout: Duration::from_millis(20),
            backoff_cap: 8,
            max_msg_attempts: 10,
            max_task_attempts: 3,
            loss: None,
            chaos: Vec::new(),
            kernel_local_fallback: true,
            registry: KernelRegistry::builtin(),
            placement: PlacementPolicy::Locality,
        }
    }
}

impl NetConfig {
    /// `n` thread-mode workers over Unix sockets (the test default).
    pub fn threads(n: usize) -> Self {
        NetConfig { workers: n.max(1), ..NetConfig::default() }
    }

    /// `n` process-mode workers running `bin` over Unix sockets.
    pub fn processes(n: usize, bin: impl Into<PathBuf>) -> Self {
        NetConfig {
            workers: n.max(1),
            worker_mode: WorkerMode::Process { bin: bin.into() },
            ..NetConfig::default()
        }
    }

    fn chaos_for(&self, worker: u32) -> Chaos {
        self.chaos
            .iter()
            .find(|c| c.worker == worker)
            .map(|c| Chaos {
                kill_after_grants: c.kill_after_grants,
                hang_after_grants: c.hang_after_grants,
                kill_after_kernels: c.kill_after_kernels,
                kill_after_tasks: c.kill_after_tasks,
            })
            .unwrap_or_default()
    }

    fn reliable_for_link(&self, link: usize) -> ReliableConfig {
        ReliableConfig {
            retransmit_timeout: self.retransmit_timeout,
            backoff_cap: self.backoff_cap,
            max_attempts: self.max_msg_attempts,
            // Distinct streams per link so loss patterns decorrelate.
            loss: self.loss.map(|(seed, p)| (seed.wrapping_add(link as u64 * 0x9E37), p)),
        }
    }
}

/// The sending half of one link (socket clone + reliability state).
struct TxState {
    sock: Sock,
    rel: Reliable,
}

/// One coordinator↔worker link.
pub(crate) struct Link {
    pub(crate) id: usize,
    tx: Mutex<TxState>,
    /// Cloned descriptor for shutting the socket down without taking
    /// the tx lock (used by `declare_dead` from any thread).
    shutdown_handle: Sock,
    pub(crate) alive: AtomicBool,
    last_pong: Mutex<Instant>,
    misses: AtomicU32,
}

/// Lease lifecycle as seen by a blocked pool thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LeaseState {
    Pending,
    Granted,
    /// The assigned worker died before granting.
    Dead,
}

struct LeaseCell {
    worker: usize,
    state: LeaseState,
}

enum KernelState {
    Pending,
    /// `Ok(values)` or `Err(worker-reported failure)`.
    Done(Result<Vec<f64>, String>),
    Dead,
}

struct KernelCell {
    worker: usize,
    state: KernelState,
}

enum TaskState {
    Pending,
    /// `Ok(outputs)` or `Err(worker-reported failure)`.
    Done(Result<Vec<(u32, Vec<f64>)>, String>),
    Dead,
}

/// One shipped task body awaiting its [`NetMsg::TaskResult`].
struct TaskCell {
    worker: usize,
    state: TaskState,
}

/// Everything the condvar protects. Lock ordering: a thread holding
/// `waiters` must NEVER take a link's `tx` lock (send first, wait
/// second).
struct Waiters {
    leases: HashMap<u64, LeaseCell>,
    kernels: HashMap<u64, KernelCell>,
    /// Shipped task bodies in flight, keyed by nonce (the task id).
    tasks: HashMap<u64, TaskCell>,
    /// task → worker that granted it (for `TaskComplete` routing).
    granted: HashMap<u64, usize>,
    /// Fault shutdown in progress: admit no new work.
    aborted: bool,
}

/// Coordinator state shared between the pool's gate, the reader
/// threads, and the heartbeat thread.
pub struct Shared {
    pub(crate) cfg: NetConfig,
    /// The coordinator machine's own representation.
    pub(crate) coord_layout: DataLayout,
    links: Vec<Arc<Link>>,
    waiters: Mutex<Waiters>,
    cv: Condvar,
    faults: Mutex<FaultStats>,
    events: Mutex<Vec<Event>>,
    start: Instant,
    rr: AtomicUsize,
    stop: AtomicBool,
    next_kernel: AtomicU64,
    next_nonce: AtomicU64,
    /// Replica directory: which worker holds which object version.
    directory: Mutex<Directory>,
    /// Shipped-but-unresolved task bodies per worker (placement load).
    in_flight: Vec<AtomicUsize>,
    tasks_shipped: AtomicU64,
    replica_hits: AtomicU64,
    replica_misses: AtomicU64,
    payload_bytes: AtomicU64,
}

/// How a remote task-body dispatch resolved, for the gate.
pub(crate) enum RemoteOutcome {
    /// The worker ran the program; these are the written declarations'
    /// lowered values, ready to lift into the coordinator's store.
    Done(Vec<(u32, Vec<f64>)>),
    /// The worker reported a deterministic failure (the program itself
    /// is bad); retrying elsewhere cannot help — run the closure
    /// locally so the canonical fault surfaces. The message is kept
    /// for debugging even though the gate deliberately discards it.
    Failed(#[allow(dead_code)] String),
    /// Dispatch budget or live workers exhausted: degrade to local.
    Exhausted,
    /// The run is being cancelled.
    Aborted,
}

impl Shared {
    fn now_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    pub(crate) fn push_event(&self, task: TaskId, kind: EventKind) {
        self.events.lock().push(Event { nanos: self.now_nanos(), task, kind });
    }

    /// Worker indices currently believed alive.
    pub fn live_workers(&self) -> Vec<usize> {
        self.links
            .iter()
            .filter(|l| l.alive.load(Ordering::Acquire))
            .map(|l| l.id)
            .collect()
    }

    /// Round-robin over live workers, avoiding `exclude` when any
    /// other worker is available.
    pub(crate) fn pick_worker(&self, exclude: Option<usize>) -> Option<usize> {
        let live = self.live_workers();
        if live.is_empty() {
            return None;
        }
        let candidates: Vec<usize> = match exclude {
            Some(x) if live.len() > 1 => live.into_iter().filter(|&w| w != x).collect(),
            _ => live,
        };
        let i = self.rr.fetch_add(1, Ordering::Relaxed);
        Some(candidates[i % candidates.len()])
    }

    /// Pick the worker for a shipped task body. Under
    /// [`PlacementPolicy::Locality`] this scores live workers with the
    /// shared [`jade_core::place::choose`]: in-flight shipped tasks as
    /// load, resident replica bytes of the task's read set as
    /// affinity. Falls back to round-robin when configured.
    pub(crate) fn pick_worker_for(
        &self,
        read_objs: &[u64],
        exclude: Option<usize>,
    ) -> Option<usize> {
        if self.cfg.placement == PlacementPolicy::RoundRobin {
            return self.pick_worker(exclude);
        }
        let live = self.live_workers();
        if live.is_empty() {
            return None;
        }
        let candidates: Vec<usize> = match exclude {
            Some(x) if live.len() > 1 => live.into_iter().filter(|&w| w != x).collect(),
            _ => live,
        };
        let dir = self.directory.lock();
        let scored: Vec<Candidate> = candidates
            .iter()
            .map(|&w| Candidate {
                machine: w,
                load: self.in_flight[w].load(Ordering::Relaxed),
                speed: 1.0,
                affinity: dir.resident_bytes(read_objs, w),
            })
            .collect();
        choose(&scored)
    }

    /// A coordinator-local body wrote `object`: advance the master
    /// version so every worker replica is invalidated.
    pub(crate) fn note_local_write(&self, object: u64) {
        self.directory.lock().note_local_write(object);
    }

    /// Whether the coordinator's registry can ship a task that calls
    /// these kernels.
    pub(crate) fn can_ship<'a>(&self, kernels: impl IntoIterator<Item = &'a str>) -> bool {
        self.cfg.registry.knows_all(kernels)
    }

    /// Ship a task body to a worker and block until it resolves, with
    /// bounded re-dispatch on worker death (same recovery discipline as
    /// [`Shared::call_kernel`]).
    ///
    /// `reads` are the task's readable declarations as
    /// `(decl index, object id, lowered payload)`; `writes` its
    /// written declarations as `(decl index, object id)`. Output
    /// versions are pre-assigned as `master + 1`, which is stable
    /// across re-dispatch because the master version only advances
    /// when a dispatch actually completes.
    pub(crate) fn run_task_remote(
        &self,
        task: u64,
        ir: &TaskBodyIr,
        reads: &[(u32, u64, Vec<f64>)],
        writes: &[(u32, u64)],
    ) -> RemoteOutcome {
        let read_objs: Vec<u64> = reads.iter().map(|&(_, o, _)| o).collect();
        let mut dispatches = 0u32;
        let mut dead_from: Option<usize> = None;
        loop {
            if self.aborted() {
                return RemoteOutcome::Aborted;
            }
            if dispatches >= self.cfg.max_task_attempts {
                return RemoteOutcome::Exhausted;
            }
            let Some(w) = self.pick_worker_for(&read_objs, dead_from) else {
                return RemoteOutcome::Exhausted;
            };
            if let Some(from) = dead_from.take() {
                self.bump_recovery(from, w, task);
            }
            dispatches += 1;

            // Version the footprint against the master directory and
            // ship whatever the worker does not already hold.
            let mut inputs = Vec::with_capacity(reads.len());
            let mut ships = Vec::new();
            let mut outs = Vec::with_capacity(writes.len());
            {
                let mut dir = self.directory.lock();
                for (idx, obj, data) in reads {
                    let ver = dir.version(*obj);
                    inputs.push((*idx, *obj, ver));
                    if dir.holds(*obj, ver, w) {
                        self.replica_hits.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.replica_misses.fetch_add(1, Ordering::Relaxed);
                        let bytes = (data.len() * std::mem::size_of::<f64>()) as u64;
                        self.payload_bytes.fetch_add(bytes, Ordering::Relaxed);
                        if dir.record_ship(*obj, ver, w, bytes) {
                            self.faults.lock().reshipped += 1;
                        }
                        ships.push(NetMsg::ObjectShip {
                            object: *obj,
                            version: ver,
                            data: data.clone(),
                        });
                    }
                }
                for (idx, obj) in writes {
                    outs.push((*idx, *obj, dir.version(*obj) + 1));
                }
            }

            self.waiters
                .lock()
                .tasks
                .insert(task, TaskCell { worker: w, state: TaskState::Pending });
            self.in_flight[w].fetch_add(1, Ordering::Relaxed);
            self.tasks_shipped.fetch_add(1, Ordering::Relaxed);
            let mut send_failed = false;
            for ship in &ships {
                if self.send_to(w, ship).is_err() {
                    send_failed = true;
                    break;
                }
            }
            if !send_failed {
                let ship = NetMsg::TaskShip {
                    nonce: task,
                    ir: ir.clone(),
                    inputs,
                    outs: outs.clone(),
                };
                send_failed = self.send_to(w, &ship).is_err();
            }
            if send_failed {
                self.declare_dead(w, "send failed");
                self.waiters.lock().tasks.remove(&task);
                self.in_flight[w].fetch_sub(1, Ordering::Relaxed);
                dead_from = Some(w);
                continue;
            }

            let outcome = {
                let mut g = self.waiters.lock();
                loop {
                    if g.aborted {
                        g.tasks.remove(&task);
                        break None;
                    }
                    match g.tasks.get_mut(&task).map(|c| {
                        std::mem::replace(&mut c.state, TaskState::Pending)
                    }) {
                        Some(TaskState::Done(res)) => {
                            g.tasks.remove(&task);
                            break Some(Ok(res));
                        }
                        Some(TaskState::Dead) => {
                            g.tasks.remove(&task);
                            break Some(Err(w));
                        }
                        Some(TaskState::Pending) | None => self.cv.wait(&mut g),
                    }
                }
            };
            self.in_flight[w].fetch_sub(1, Ordering::Relaxed);
            match outcome {
                None => return RemoteOutcome::Aborted,
                Some(Ok(Ok(results))) => {
                    // The worker installed these outputs in its own
                    // cache at the pre-assigned versions: commit them
                    // as the new masters with the worker as sole
                    // holder. That residency is the locality signal.
                    let mut dir = self.directory.lock();
                    for (idx, data) in &results {
                        if let Some(&(_, obj, newver)) =
                            outs.iter().find(|&&(i, _, _)| i == *idx)
                        {
                            let bytes = (data.len() * std::mem::size_of::<f64>()) as u64;
                            dir.commit_remote_write(obj, newver, w, bytes);
                        }
                    }
                    drop(dir);
                    return RemoteOutcome::Done(results);
                }
                Some(Ok(Err(msg))) => return RemoteOutcome::Failed(msg),
                Some(Err(from)) => dead_from = Some(from),
            }
        }
    }

    /// Send one protocol message to a worker through its reliability
    /// layer. Callers must not hold the `waiters` lock.
    pub(crate) fn send_to(&self, worker: usize, msg: &NetMsg) -> std::io::Result<()> {
        let link = &self.links[worker];
        if !link.alive.load(Ordering::Acquire) {
            return Err(std::io::Error::new(std::io::ErrorKind::NotConnected, "worker is dead"));
        }
        let mut tx = link.tx.lock();
        let tx = &mut *tx;
        tx.rel.send(&mut tx.sock, msg, 0, worker as u32, self.coord_layout)
    }

    /// Mark a worker dead: fail its in-flight leases and kernel calls,
    /// wake every blocked waiter, record the fault, close the socket.
    /// Idempotent — only the first caller does the work.
    pub(crate) fn declare_dead(&self, worker: usize, why: &str) {
        // During teardown the coordinator closes every socket itself;
        // the resulting write errors are not worker deaths.
        if self.stop.load(Ordering::Acquire) {
            return;
        }
        let link = &self.links[worker];
        if !link.alive.swap(false, Ordering::AcqRel) {
            return;
        }
        self.faults.lock().crashes += 1;
        let in_flight;
        {
            let mut g = self.waiters.lock();
            let mut n = 0u64;
            for cell in g.leases.values_mut() {
                if cell.worker == worker && cell.state == LeaseState::Pending {
                    cell.state = LeaseState::Dead;
                    n += 1;
                }
            }
            for cell in g.kernels.values_mut() {
                if cell.worker == worker && matches!(cell.state, KernelState::Pending) {
                    cell.state = KernelState::Dead;
                    n += 1;
                }
            }
            for cell in g.tasks.values_mut() {
                if cell.worker == worker && matches!(cell.state, TaskState::Pending) {
                    cell.state = TaskState::Dead;
                    n += 1;
                }
            }
            in_flight = n;
            // The vendored condvar requires notification under the
            // paired mutex.
            self.cv.notify_all();
        }
        self.push_event(TaskId::ROOT, EventKind::WorkerLost { worker, in_flight });
        let _ = why; // recorded via the event label at render time
        // The worker's replica cache died with it; versions it solely
        // held must be re-shipped (recovery traffic) when needed next.
        self.directory.lock().evict_worker(worker);
        link.shutdown_handle.shutdown_both();
    }

    /// Fault shutdown: stop admitting work and wake all waiters.
    pub(crate) fn abort(&self) {
        let mut g = self.waiters.lock();
        g.aborted = true;
        self.cv.notify_all();
    }

    fn aborted(&self) -> bool {
        self.waiters.lock().aborted
    }

    /// Run `name(args)` on a remote worker with bounded re-execution:
    /// a worker that dies mid-call loses the lease and the call is
    /// reassigned to a survivor; after `max_task_attempts` dispatches
    /// (or with no live workers) the call either degrades to the
    /// coordinator's local registry or surfaces
    /// [`JadeFault::RetriesExhausted`].
    pub fn call_kernel(&self, name: &str, args: &[f64]) -> Result<Vec<f64>, JadeFault> {
        let id = self.next_kernel.fetch_add(1, Ordering::Relaxed) + 1;
        let mut dispatches = 0u32;
        let mut dead_from: Option<usize> = None;
        loop {
            if self.aborted() {
                return Err(JadeFault::Cancelled { task: TaskId(id) });
            }
            if dispatches >= self.cfg.max_task_attempts {
                return self.kernel_fallback(id, name, args, dispatches);
            }
            let Some(w) = self.pick_worker(dead_from) else {
                return self.kernel_fallback(id, name, args, dispatches);
            };
            if let Some(from) = dead_from.take() {
                self.faults.lock().recoveries += 1;
                self.push_event(TaskId(id), EventKind::TaskReassigned { from, to: w });
            }
            dispatches += 1;
            self.waiters
                .lock()
                .kernels
                .insert(id, KernelCell { worker: w, state: KernelState::Pending });
            let call =
                NetMsg::KernelCall { id, name: name.to_string(), args: args.to_vec() };
            if self.send_to(w, &call).is_err() {
                self.declare_dead(w, "send failed");
                self.waiters.lock().kernels.remove(&id);
                dead_from = Some(w);
                continue;
            }
            let outcome = {
                let mut g = self.waiters.lock();
                loop {
                    if g.aborted {
                        g.kernels.remove(&id);
                        break None;
                    }
                    match g.kernels.get_mut(&id).map(|c| {
                        std::mem::replace(&mut c.state, KernelState::Pending)
                    }) {
                        Some(KernelState::Done(res)) => {
                            g.kernels.remove(&id);
                            break Some(Ok(res));
                        }
                        Some(KernelState::Dead) => {
                            g.kernels.remove(&id);
                            break Some(Err(w));
                        }
                        Some(KernelState::Pending) | None => self.cv.wait(&mut g),
                    }
                }
            };
            match outcome {
                None => return Err(JadeFault::Cancelled { task: TaskId(id) }),
                Some(Ok(Ok(values))) => return Ok(values),
                Some(Ok(Err(msg))) => {
                    // A worker-side failure (unknown kernel) is
                    // deterministic; retrying elsewhere cannot help.
                    return Err(JadeFault::TaskPanicked { task: TaskId(id), message: msg });
                }
                Some(Err(from)) => {
                    dead_from = Some(from);
                }
            }
        }
    }

    fn kernel_fallback(
        &self,
        id: u64,
        name: &str,
        args: &[f64],
        dispatches: u32,
    ) -> Result<Vec<f64>, JadeFault> {
        if self.cfg.kernel_local_fallback {
            self.faults.lock().degraded += 1;
            match self.cfg.registry.lookup(name) {
                Some(k) => Ok(k(args)),
                None => Err(JadeFault::TaskPanicked {
                    task: TaskId(id),
                    message: format!("no kernel named '{name}' in the coordinator registry"),
                }),
            }
        } else {
            Err(JadeFault::RetriesExhausted { task: TaskId(id), attempts: dispatches.max(1) })
        }
    }

    // ---- gate support (see crate::gate) ----

    pub(crate) fn lease_begin(&self, task: u64, worker: usize) {
        self.waiters
            .lock()
            .leases
            .insert(task, LeaseCell { worker, state: LeaseState::Pending });
    }

    pub(crate) fn lease_cancel(&self, task: u64) {
        self.waiters.lock().leases.remove(&task);
    }

    /// Block until the lease resolves. `Some(true)` granted,
    /// `Some(false)` assigned worker died, `None` aborted.
    pub(crate) fn lease_wait(&self, task: u64) -> Option<bool> {
        let mut g = self.waiters.lock();
        loop {
            if g.aborted {
                g.leases.remove(&task);
                return None;
            }
            match g.leases.get(&task).map(|c| c.state) {
                Some(LeaseState::Granted) => {
                    let worker = g.leases.remove(&task).map(|c| c.worker);
                    if let Some(w) = worker {
                        g.granted.insert(task, w);
                    }
                    return Some(true);
                }
                Some(LeaseState::Dead) | None => {
                    g.leases.remove(&task);
                    return Some(false);
                }
                Some(LeaseState::Pending) => self.cv.wait(&mut g),
            }
        }
    }

    pub(crate) fn lease_release(&self, task: u64) -> Option<usize> {
        self.waiters.lock().granted.remove(&task)
    }

    pub(crate) fn bump_recovery(&self, from: usize, to: usize, task: u64) {
        self.faults.lock().recoveries += 1;
        self.push_event(TaskId(task), EventKind::TaskReassigned { from, to });
    }

    pub(crate) fn bump_degraded(&self) {
        self.faults.lock().degraded += 1;
    }

    pub(crate) fn max_task_attempts(&self) -> u32 {
        self.cfg.max_task_attempts
    }

    // ---- protocol threads ----

    /// Reader thread body: drain one link's socket, ack reliable
    /// frames, resolve waits, and detect EOF death.
    fn reader_loop(self: &Arc<Self>, link: Arc<Link>) {
        let mut sock = match link.shutdown_handle.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let _ = sock.set_read_timeout(Some(Duration::from_millis(10)));
        let mut rd = FrameReader::new();
        let mut buf = [0u8; 16 * 1024];
        loop {
            if self.stop.load(Ordering::Acquire) && !link.alive.load(Ordering::Acquire) {
                return;
            }
            let n = match std::io::Read::read(&mut sock, &mut buf) {
                Ok(0) => {
                    if !self.stop.load(Ordering::Acquire) {
                        self.declare_dead(link.id, "socket EOF");
                    }
                    return;
                }
                Ok(n) => n,
                Err(e) if is_timeout(&e) => {
                    if self.stop.load(Ordering::Acquire) {
                        return;
                    }
                    continue;
                }
                Err(_) => {
                    if !self.stop.load(Ordering::Acquire) {
                        self.declare_dead(link.id, "socket error");
                    }
                    return;
                }
            };
            rd.push(&buf[..n]);
            loop {
                let msg = match rd.next_frame() {
                    Ok(Some(m)) => m,
                    Ok(None) => break,
                    Err(_) => {
                        // A corrupt stream from this worker is
                        // indistinguishable from arbitrary misbehavior:
                        // treat the machine as lost.
                        self.declare_dead(link.id, "corrupt frame stream");
                        return;
                    }
                };
                let wire = msg.wire_bytes();
                let seq = msg.header.seq;
                let net = match unpack_msg(&msg) {
                    Ok(m) => m,
                    Err(_) => {
                        self.declare_dead(link.id, "undecodable message");
                        return;
                    }
                };
                if seq != 0 {
                    let mut tx = link.tx.lock();
                    let txm = &mut *tx;
                    let dup = txm.rel.accept(seq, wire) == Accept::Duplicate;
                    let _ = txm.rel.send(
                        &mut txm.sock,
                        &NetMsg::Ack { seq },
                        0,
                        link.id as u32,
                        self.coord_layout,
                    );
                    drop(tx);
                    if dup {
                        continue;
                    }
                }
                match net {
                    NetMsg::Ack { seq } => link.tx.lock().rel.on_ack(seq),
                    NetMsg::Pong { .. } => {
                        *link.last_pong.lock() = Instant::now();
                        link.misses.store(0, Ordering::Release);
                    }
                    NetMsg::LeaseGrant { task } => {
                        let mut g = self.waiters.lock();
                        if let Some(cell) = g.leases.get_mut(&task) {
                            if cell.worker == link.id && cell.state == LeaseState::Pending {
                                cell.state = LeaseState::Granted;
                                self.cv.notify_all();
                            }
                        }
                    }
                    NetMsg::KernelResult { id, ok, values, err } => {
                        let mut g = self.waiters.lock();
                        if let Some(cell) = g.kernels.get_mut(&id) {
                            if matches!(cell.state, KernelState::Pending) {
                                cell.state = KernelState::Done(if ok {
                                    Ok(values)
                                } else {
                                    Err(err)
                                });
                                self.cv.notify_all();
                            }
                        }
                    }
                    NetMsg::TaskResult { nonce, ok, err, outs } => {
                        let mut g = self.waiters.lock();
                        if let Some(cell) = g.tasks.get_mut(&nonce) {
                            // Only the currently-assigned worker may
                            // resolve the cell; a link that was
                            // declared dead mid-task never delivers
                            // (its reader thread exited), so no stale
                            // attempt can race a re-dispatch.
                            if cell.worker == link.id
                                && matches!(cell.state, TaskState::Pending)
                            {
                                cell.state = TaskState::Done(if ok {
                                    Ok(outs)
                                } else {
                                    Err(err)
                                });
                                self.cv.notify_all();
                            }
                        }
                    }
                    // Worker-bound or handshake traffic: nothing to do.
                    _ => {}
                }
            }
        }
    }

    /// Heartbeat thread body: retransmission ticks, ping rounds, miss
    /// accounting, and the periodic waiter wakeup that substitutes for
    /// a timed condvar wait.
    fn heartbeat_loop(self: &Arc<Self>) {
        let tick = (self.cfg.heartbeat.min(self.cfg.retransmit_timeout) / 2)
            .max(Duration::from_millis(2));
        let mut last_round = Instant::now();
        while !self.stop.load(Ordering::Acquire) {
            std::thread::sleep(tick);
            // Retransmit overdue reliable frames on every live link.
            for link in &self.links {
                if !link.alive.load(Ordering::Acquire) {
                    continue;
                }
                let ok = {
                    let mut tx = link.tx.lock();
                    let txm = &mut *tx;
                    txm.rel.tick(&mut txm.sock)
                };
                match ok {
                    Ok(true) => {}
                    Ok(false) => self.declare_dead(link.id, "retransmit budget exhausted"),
                    Err(_) => self.declare_dead(link.id, "socket write error"),
                }
            }
            // The vendored condvar has no wait_for: wake all waiters
            // every tick so they re-check their predicates against
            // newly-dead workers.
            {
                let _g = self.waiters.lock();
                self.cv.notify_all();
            }
            // Probe stale links every tick, not just once per round:
            // pings and pongs are unreliable-class and may be lost, so
            // a live worker on a lossy link must get many chances per
            // miss-budget window to prove itself. Without this, a few
            // coincident ping/pong losses would look like a death.
            for link in &self.links {
                if link.alive.load(Ordering::Acquire)
                    && link.last_pong.lock().elapsed() > self.cfg.heartbeat
                {
                    let nonce = self.next_nonce.fetch_add(1, Ordering::Relaxed);
                    let _ = self.send_to(link.id, &NetMsg::Ping { nonce });
                }
            }
            if last_round.elapsed() < self.cfg.heartbeat {
                continue;
            }
            last_round = Instant::now();
            for link in &self.links {
                if !link.alive.load(Ordering::Acquire) {
                    continue;
                }
                let stale = link.last_pong.lock().elapsed() > self.cfg.heartbeat;
                if stale {
                    let missed = link.misses.fetch_add(1, Ordering::AcqRel) + 1;
                    self.push_event(
                        TaskId::ROOT,
                        EventKind::HeartbeatMiss { worker: link.id, missed },
                    );
                    if missed > self.cfg.miss_budget {
                        self.declare_dead(link.id, "heartbeat lost");
                        continue;
                    }
                }
                let nonce = self.next_nonce.fetch_add(1, Ordering::Relaxed);
                let _ = self.send_to(link.id, &NetMsg::Ping { nonce });
            }
        }
    }
}

/// Either listener family, with non-blocking accept for deadlines.
enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn accept_nonblocking(&self) -> std::io::Result<Option<Sock>> {
        match self {
            Listener::Unix(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Sock::Unix(s))),
                Err(e) if is_timeout(&e) => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Ok(Some(Sock::Tcp(s))),
                Err(e) if is_timeout(&e) => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

/// A running worker pool plus its protocol threads.
pub struct Cluster {
    /// Coordinator state, shared with the gate.
    pub shared: Arc<Shared>,
    readers: Vec<JoinHandle<()>>,
    heartbeat: Option<JoinHandle<()>>,
    children: Vec<Child>,
    worker_threads: Vec<JoinHandle<()>>,
    unix_path: Option<PathBuf>,
}

/// Monotonic counter so concurrent clusters in one process get
/// distinct socket paths.
static CLUSTER_SEQ: AtomicU64 = AtomicU64::new(0);

impl Cluster {
    /// Bring up the listener, spawn `cfg.workers` workers, complete
    /// the handshakes, and start the protocol threads.
    pub fn start(cfg: NetConfig) -> std::io::Result<Cluster> {
        let seq = CLUSTER_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut unix_path = None;
        let (listener, addr) = match cfg.transport {
            Transport::Unix => {
                let path = std::env::temp_dir()
                    .join(format!("jade-net-{}-{}.sock", std::process::id(), seq));
                let _ = std::fs::remove_file(&path);
                let l = UnixListener::bind(&path)?;
                let addr = format!("unix:{}", path.display());
                unix_path = Some(path);
                (Listener::Unix(l), addr)
            }
            Transport::Tcp => {
                let l = TcpListener::bind("127.0.0.1:0")?;
                let addr = format!("tcp:{}", l.local_addr()?);
                (Listener::Tcp(l), addr)
            }
        };
        match &listener {
            Listener::Unix(l) => l.set_nonblocking(true)?,
            Listener::Tcp(l) => l.set_nonblocking(true)?,
        }

        // Spawn the worker side of every link. Workers marshal with
        // rotated layout presets, so every run exercises heterogeneous
        // data-format conversion (big-endian "SPARCs" talking to the
        // coordinator).
        let presets = DataLayout::all_presets();
        let mut children = Vec::new();
        let mut worker_threads = Vec::new();
        for i in 0..cfg.workers {
            let layout = presets[i % presets.len()];
            let chaos = cfg.chaos_for(i as u32);
            match &cfg.worker_mode {
                WorkerMode::Threads => {
                    let opts = WorkerOpts {
                        id: i as u32,
                        layout,
                        rel: ReliableConfig {
                            // Worker-side loss decorrelated from the
                            // coordinator's stream on the same link.
                            loss: cfg
                                .loss
                                .map(|(s, p)| (s ^ 0x5EED ^ ((i as u64) << 8), p)),
                            ..cfg.reliable_for_link(i)
                        },
                        chaos,
                        die: Die::Abrupt,
                        registry: cfg.registry.clone(),
                    };
                    let addr = addr.clone();
                    worker_threads.push(std::thread::spawn(move || {
                        let sock = match addr.split_once(':') {
                            Some(("unix", p)) => UnixStream::connect(p).map(Sock::Unix),
                            Some(("tcp", hp)) => TcpStream::connect(hp).map(Sock::Tcp),
                            _ => unreachable!("addr built above"),
                        };
                        if let Ok(sock) = sock {
                            // A worker I/O error surfaces to the
                            // coordinator as link death; nothing else
                            // to do on this side.
                            let _ = run_worker(sock, opts);
                        }
                    }));
                }
                WorkerMode::Process { bin } => {
                    let mut cmd = Command::new(bin);
                    cmd.env("JADE_NET_ADDR", &addr)
                        .env("JADE_NET_WORKER_ID", i.to_string())
                        .env("JADE_NET_LAYOUT", layout.name)
                        .env(
                            "JADE_NET_RETRANS_US",
                            cfg.retransmit_timeout.as_micros().to_string(),
                        )
                        .env("JADE_NET_BACKOFF_CAP", cfg.backoff_cap.to_string())
                        .env("JADE_NET_MAX_ATTEMPTS", cfg.max_msg_attempts.to_string())
                        .stdin(Stdio::null());
                    if let Some((seed, prob)) = cfg.loss {
                        cmd.env("JADE_NET_LOSS_SEED", (seed ^ 0x5EED ^ ((i as u64) << 8)).to_string())
                            .env("JADE_NET_LOSS_PROB", prob.to_string());
                    }
                    if let Some(n) = chaos.kill_after_grants {
                        cmd.env("JADE_NET_KILL_AFTER", n.to_string());
                    }
                    if let Some(n) = chaos.hang_after_grants {
                        cmd.env("JADE_NET_HANG_AFTER", n.to_string());
                    }
                    if let Some(n) = chaos.kill_after_kernels {
                        cmd.env("JADE_NET_KILL_AFTER_KERNELS", n.to_string());
                    }
                    if let Some(n) = chaos.kill_after_tasks {
                        cmd.env("JADE_NET_KILL_AFTER_TASKS", n.to_string());
                    }
                    children.push(cmd.spawn()?);
                }
            }
        }

        // Accept and handshake every worker (5 s deadline).
        let coord_layout = DataLayout::x86_64();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut pending: Vec<(Sock, FrameReader)> = Vec::new();
        let mut slots: Vec<Option<(u32, Sock)>> = (0..cfg.workers).map(|_| None).collect();
        let mut joined = 0usize;
        while joined < cfg.workers {
            if Instant::now() > deadline {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("only {joined}/{} workers completed the handshake", cfg.workers),
                ));
            }
            if let Some(sock) = listener.accept_nonblocking()? {
                sock.set_read_timeout(Some(Duration::from_millis(5)))?;
                pending.push((sock, FrameReader::new()));
            }
            let mut still = Vec::new();
            for (mut sock, mut rd) in pending {
                let mut buf = [0u8; 1024];
                match std::io::Read::read(&mut sock, &mut buf) {
                    Ok(0) => continue, // connected then died: drop it
                    Ok(n) => rd.push(&buf[..n]),
                    Err(e) if is_timeout(&e) => {}
                    Err(_) => continue,
                }
                match rd.next_frame() {
                    Ok(Some(msg)) => {
                        if let Ok(NetMsg::Hello { worker }) = unpack_msg(&msg) {
                            let idx = worker as usize;
                            if idx < slots.len() && slots[idx].is_none() {
                                let welcome = encode_frame(&pack_msg(
                                    &NetMsg::Welcome { worker },
                                    0,
                                    worker,
                                    0,
                                    coord_layout,
                                ));
                                let mut s = sock;
                                s.write_all(&welcome)?;
                                s.flush()?;
                                slots[idx] = Some((worker, s));
                                joined += 1;
                                continue;
                            }
                        }
                        // Anything else on a fresh connection: drop.
                    }
                    Ok(None) => still.push((sock, rd)),
                    Err(_) => continue,
                }
            }
            pending = still;
            std::thread::sleep(Duration::from_millis(2));
        }

        let mut links = Vec::with_capacity(cfg.workers);
        for slot in slots {
            let (id, sock) = slot.expect("joined == workers");
            let shutdown_handle = sock.try_clone()?;
            links.push(Arc::new(Link {
                id: id as usize,
                tx: Mutex::new(TxState {
                    sock,
                    rel: Reliable::new(cfg.reliable_for_link(id as usize)),
                }),
                shutdown_handle,
                alive: AtomicBool::new(true),
                last_pong: Mutex::new(Instant::now()),
                misses: AtomicU32::new(0),
            }));
        }

        let nworkers = cfg.workers;
        let shared = Arc::new(Shared {
            cfg,
            coord_layout,
            links,
            waiters: Mutex::new(Waiters {
                leases: HashMap::new(),
                kernels: HashMap::new(),
                tasks: HashMap::new(),
                granted: HashMap::new(),
                aborted: false,
            }),
            cv: Condvar::new(),
            faults: Mutex::new(FaultStats::default()),
            events: Mutex::new(Vec::new()),
            start: Instant::now(),
            rr: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            next_kernel: AtomicU64::new(0),
            next_nonce: AtomicU64::new(0),
            directory: Mutex::new(Directory::new(nworkers)),
            in_flight: (0..nworkers).map(|_| AtomicUsize::new(0)).collect(),
            tasks_shipped: AtomicU64::new(0),
            replica_hits: AtomicU64::new(0),
            replica_misses: AtomicU64::new(0),
            payload_bytes: AtomicU64::new(0),
        });
        for link in &shared.links {
            shared.push_event(TaskId::ROOT, EventKind::WorkerJoined { worker: link.id });
        }

        let mut readers = Vec::new();
        for link in shared.links.clone() {
            let sh = shared.clone();
            readers.push(std::thread::spawn(move || sh.reader_loop(link)));
        }
        let hb = {
            let sh = shared.clone();
            std::thread::spawn(move || sh.heartbeat_loop())
        };

        Ok(Cluster {
            shared,
            readers,
            heartbeat: Some(hb),
            children,
            worker_threads,
            unix_path,
        })
    }

    /// Stop the protocol threads, dismiss the workers, and collect the
    /// run's aggregate network and fault statistics plus the recorded
    /// liveness events.
    pub fn shutdown(mut self) -> (NetStats, FaultStats, Vec<Event>) {
        // Stop first so teardown-induced I/O errors are never
        // mistaken for worker deaths, then send the (best-effort,
        // unreliable-class) goodbyes.
        self.shared.stop.store(true, Ordering::Release);
        for link in self.shared.live_workers() {
            let _ = self.shared.send_to(link, &NetMsg::Shutdown);
        }
        // Closing the sockets unblocks reader threads and makes
        // workers exit on EOF.
        for link in &self.shared.links {
            link.shutdown_handle.shutdown_both();
        }
        for r in self.readers.drain(..) {
            let _ = r.join();
        }
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
        for mut c in self.children.drain(..) {
            // The worker exits on EOF; SIGKILLed chaos victims are
            // already gone. `wait` also reaps the zombie.
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match c.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() > deadline => {
                        let _ = c.kill();
                        let _ = c.wait();
                        break;
                    }
                    Ok(None) => std::thread::sleep(Duration::from_millis(10)),
                    Err(_) => break,
                }
            }
        }
        if let Some(p) = self.unix_path.take() {
            let _ = std::fs::remove_file(p);
        }
        let mut net = NetStats::default();
        for link in &self.shared.links {
            net.merge(&link.tx.lock().rel.stats);
        }
        net.tasks_shipped = self.shared.tasks_shipped.load(Ordering::Relaxed);
        net.replica_hits = self.shared.replica_hits.load(Ordering::Relaxed);
        net.replica_misses = self.shared.replica_misses.load(Ordering::Relaxed);
        net.payload_bytes = self.shared.payload_bytes.load(Ordering::Relaxed);
        let faults = *self.shared.faults.lock();
        let events = std::mem::take(&mut *self.shared.events.lock());
        (net, faults, events)
    }
}
