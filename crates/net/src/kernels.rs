//! The remote kernel registry: computation that genuinely executes in
//! worker processes.
//!
//! Jade task bodies are closures and cannot be marshalled across a
//! process boundary (see `DESIGN.md`), so the distributed backend
//! ships *kernels* instead: named pure functions over `f64` slices
//! that both the coordinator and every worker binary link in. A
//! [`NetMsg::KernelCall`](crate::wire::NetMsg) carries the name and
//! arguments (converted to the worker's data layout on receive), the
//! worker computes, and the result converts back — the paper's
//! "main body of computation on the accelerator" pattern, with the
//! registry playing the role of the program text present on every
//! machine.
//!
//! Kernels must be deterministic: worker-loss recovery re-executes an
//! in-flight call on a survivor, and the result must not depend on
//! which machine finished it.

/// A kernel: a pure function from arguments to results.
pub type KernelFn = fn(&[f64]) -> Vec<f64>;

/// Look up a kernel by registry name.
pub fn lookup(name: &str) -> Option<KernelFn> {
    Some(match name {
        "sum" => k_sum,
        "dot" => k_dot,
        "scale2" => k_scale2,
        "sq_norm" => k_sq_norm,
        "cholesky_col" => k_cholesky_col,
        _ => return None,
    })
}

/// Names of every registered kernel.
pub fn names() -> &'static [&'static str] {
    &["sum", "dot", "scale2", "sq_norm", "cholesky_col"]
}

/// `[x0..xn] -> [Σx]`.
fn k_sum(args: &[f64]) -> Vec<f64> {
    vec![args.iter().sum()]
}

/// `[a0..an, b0..bn] -> [Σ aᵢbᵢ]` (odd-length input drops the middle).
fn k_dot(args: &[f64]) -> Vec<f64> {
    let h = args.len() / 2;
    vec![args[..h].iter().zip(&args[args.len() - h..]).map(|(a, b)| a * b).sum()]
}

/// Doubles every element.
fn k_scale2(args: &[f64]) -> Vec<f64> {
    args.iter().map(|x| x * 2.0).collect()
}

/// `[x0..xn] -> [Σx²]`.
fn k_sq_norm(args: &[f64]) -> Vec<f64> {
    vec![args.iter().map(|x| x * x).sum()]
}

/// One column step of a dense Cholesky: `[d, c0..cn] -> [√d, c/√d]`.
/// The shape the paper's sparse Cholesky ships to the i860 accelerator.
fn k_cholesky_col(args: &[f64]) -> Vec<f64> {
    if args.is_empty() {
        return Vec::new();
    }
    let root = args[0].max(0.0).sqrt();
    let mut out = Vec::with_capacity(args.len());
    out.push(root);
    let inv = if root > 0.0 { 1.0 / root } else { 0.0 };
    out.extend(args[1..].iter().map(|c| c * inv));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_kernel_resolves() {
        for n in names() {
            assert!(lookup(n).is_some(), "{n}");
        }
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn kernels_compute() {
        assert_eq!(lookup("sum").unwrap()(&[1.0, 2.0, 3.5]), vec![6.5]);
        assert_eq!(lookup("dot").unwrap()(&[1.0, 2.0, 3.0, 4.0]), vec![11.0]);
        assert_eq!(lookup("scale2").unwrap()(&[1.5, -2.0]), vec![3.0, -4.0]);
        assert_eq!(lookup("sq_norm").unwrap()(&[3.0, 4.0]), vec![25.0]);
        let col = lookup("cholesky_col").unwrap()(&[4.0, 2.0, 6.0]);
        assert_eq!(col, vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn kernels_are_deterministic_under_reexecution() {
        // Recovery re-runs a kernel on a different machine; same input
        // must give bit-identical output.
        for n in names() {
            let k = lookup(n).unwrap();
            let args: Vec<f64> = (0..16).map(|i| (i as f64) * 0.37 - 2.0).collect();
            assert_eq!(k(&args), k(&args), "{n}");
        }
    }
}
