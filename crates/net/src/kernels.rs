//! Compatibility shim over the shared kernel registry.
//!
//! The registry of named pure functions moved to
//! [`jade_core::kernels`] when the declarative task-body IR landed:
//! kernels are now the instruction set of portable task bodies
//! ([`jade_core::ir::TaskBodyIr`]) executed by *every* backend, not a
//! net-only feature. This module keeps the old free-function surface
//! for callers that only want the builtin set; clusters and workers
//! carry a [`KernelRegistry`](jade_core::kernels::KernelRegistry)
//! value instead (see [`crate::cluster::NetConfig::registry`] and
//! [`crate::worker::WorkerOpts::registry`]), so two jobs in one
//! process can serve different kernel sets.
//!
//! Kernels must be deterministic: worker-loss recovery re-executes an
//! in-flight call on a survivor, and the result must not depend on
//! which machine finished it.

pub use jade_core::kernels::KernelFn;

/// Look up a kernel in the *builtin* registry by name.
pub fn lookup(name: &str) -> Option<KernelFn> {
    jade_core::kernels::KernelRegistry::builtin().lookup(name)
}

/// Names of every builtin kernel (unordered).
pub fn names() -> Vec<&'static str> {
    jade_core::kernels::KernelRegistry::builtin().names()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_kernel_resolves() {
        for n in names() {
            assert!(lookup(n).is_some(), "{n}");
        }
        assert!(lookup("nope").is_none());
    }

    #[test]
    fn kernels_compute() {
        assert_eq!(lookup("sum").unwrap()(&[1.0, 2.0, 3.5]), vec![6.5]);
        assert_eq!(lookup("dot").unwrap()(&[1.0, 2.0, 3.0, 4.0]), vec![11.0]);
        assert_eq!(lookup("scale2").unwrap()(&[1.5, -2.0]), vec![3.0, -4.0]);
        assert_eq!(lookup("sq_norm").unwrap()(&[3.0, 4.0]), vec![25.0]);
        let col = lookup("cholesky_col").unwrap()(&[4.0, 2.0, 6.0]);
        assert_eq!(col, vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn kernels_are_deterministic_under_reexecution() {
        // Recovery re-runs a kernel on a different machine; same input
        // must give bit-identical output.
        for n in names() {
            let k = lookup(n).unwrap();
            let args: Vec<f64> = (0..16).map(|i| (i as f64) * 0.37 - 2.0).collect();
            assert_eq!(k(&args), k(&args), "{n}");
        }
    }
}
