//! The coordinator's replica directory: which worker holds which
//! object payload at which version.
//!
//! The simulator validates the paper's locality heuristic against its
//! simulated object directory; this is the same bookkeeping for the
//! real distributed backend. The coordinator's store always holds the
//! master copy (task results are lifted back before a task completes),
//! so the directory tracks *replicas*: for every shipped object, the
//! current master version, its payload size, and the set of workers
//! holding that version. Placement scores a worker by the resident
//! bytes of a task's read set ([`Directory::resident_bytes`] feeding
//! [`jade_core::place::choose`]); shipping is skipped entirely for
//! replicas the chosen worker already holds (a *replica hit*).
//!
//! Coherence is by write-invalidation: any write to an object — a
//! remote task committing, or a local closure body taking a write
//! guard — advances the master version, which implicitly invalidates
//! every replica (they hold an older version). When a worker dies its
//! replicas die with it; re-sending a payload that only that worker
//! held is a *re-ship*, counted in
//! [`FaultStats::reshipped`](jade_core::stats::FaultStats).

use std::collections::HashMap;

/// Per-object directory entry.
#[derive(Debug, Clone)]
struct ObjEntry {
    /// Master version. 0 = the coordinator's initial value; bumped on
    /// every write.
    version: u64,
    /// Payload bytes of the current version's lowered value.
    bytes: u64,
    /// Workers holding the current version.
    holders: Vec<bool>,
    /// The current version was resident on a worker that died, so
    /// sending it again is recovery traffic (a re-ship).
    evicted: bool,
}

/// The coordinator-side replica directory. All methods take `&mut`;
/// the cluster wraps it in a mutex.
#[derive(Debug)]
pub struct Directory {
    workers: usize,
    objects: HashMap<u64, ObjEntry>,
}

impl Directory {
    /// An empty directory over `workers` machines.
    pub fn new(workers: usize) -> Self {
        Directory { workers, objects: HashMap::new() }
    }

    fn entry(&mut self, object: u64) -> &mut ObjEntry {
        let workers = self.workers;
        self.objects.entry(object).or_insert_with(|| ObjEntry {
            version: 0,
            bytes: 0,
            holders: vec![false; workers],
            evicted: false,
        })
    }

    /// The object's current master version (0 if never written).
    pub fn version(&self, object: u64) -> u64 {
        self.objects.get(&object).map_or(0, |e| e.version)
    }

    /// Whether `worker` holds `object` at exactly `version`.
    pub fn holds(&self, object: u64, version: u64, worker: usize) -> bool {
        self.objects
            .get(&object)
            .is_some_and(|e| e.version == version && e.holders.get(worker).copied().unwrap_or(false))
    }

    /// Record that `object@version` was shipped to `worker` with a
    /// `bytes`-byte payload. Returns `true` when this ship is recovery
    /// traffic (the version had been evicted with a dead worker).
    pub fn record_ship(&mut self, object: u64, version: u64, worker: usize, bytes: u64) -> bool {
        let e = self.entry(object);
        if e.version != version {
            // Shipping a fresh version supersedes the old replicas.
            e.version = version;
            e.holders.iter_mut().for_each(|h| *h = false);
            e.evicted = false;
        }
        let reship = e.evicted;
        e.evicted = false;
        e.bytes = bytes;
        if let Some(h) = e.holders.get_mut(worker) {
            *h = true;
        }
        reship
    }

    /// A remote task on `worker` committed a write: the master moves
    /// to `version` and `worker` is its sole holder (the payload lives
    /// in its cache; everyone else is invalidated).
    pub fn commit_remote_write(&mut self, object: u64, version: u64, worker: usize, bytes: u64) {
        let e = self.entry(object);
        e.version = version;
        e.bytes = bytes;
        e.evicted = false;
        for (i, h) in e.holders.iter_mut().enumerate() {
            *h = i == worker;
        }
    }

    /// A coordinator-local body wrote `object` through a guard: bump
    /// the master version, invalidating every replica.
    pub fn note_local_write(&mut self, object: u64) {
        let e = self.entry(object);
        e.version += 1;
        e.evicted = false;
        e.holders.iter_mut().for_each(|h| *h = false);
    }

    /// `worker` died: drop its replicas. An object whose *only*
    /// current-version holder was this worker is marked evicted, so
    /// the next ship of that version counts as recovery traffic.
    pub fn evict_worker(&mut self, worker: usize) {
        for e in self.objects.values_mut() {
            if e.holders.get(worker).copied().unwrap_or(false) {
                e.holders[worker] = false;
                if !e.holders.iter().any(|&h| h) {
                    e.evicted = true;
                }
            }
        }
    }

    /// Locality affinity: bytes of `objects` (by raw id) resident on
    /// `worker` at their current versions. The same number the
    /// simulator's directory feeds the shared placement policy.
    pub fn resident_bytes(&self, objects: &[u64], worker: usize) -> u64 {
        objects
            .iter()
            .filter_map(|o| self.objects.get(o))
            .filter(|e| e.holders.get(worker).copied().unwrap_or(false))
            .map(|e| e.bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_then_hit_then_invalidate() {
        let mut d = Directory::new(3);
        assert_eq!(d.version(7), 0);
        assert!(!d.holds(7, 0, 1));
        assert!(!d.record_ship(7, 0, 1, 24));
        assert!(d.holds(7, 0, 1));
        assert_eq!(d.resident_bytes(&[7], 1), 24);
        assert_eq!(d.resident_bytes(&[7], 0), 0);
        // A local write invalidates the replica.
        d.note_local_write(7);
        assert_eq!(d.version(7), 1);
        assert!(!d.holds(7, 0, 1));
        assert!(!d.holds(7, 1, 1));
    }

    #[test]
    fn remote_commit_makes_writer_sole_holder() {
        let mut d = Directory::new(2);
        d.record_ship(5, 0, 0, 16);
        d.record_ship(5, 0, 1, 16);
        d.commit_remote_write(5, 1, 1, 16);
        assert_eq!(d.version(5), 1);
        assert!(d.holds(5, 1, 1));
        assert!(!d.holds(5, 1, 0), "other replicas invalidated");
    }

    #[test]
    fn dead_sole_holder_marks_reship() {
        let mut d = Directory::new(2);
        d.record_ship(3, 0, 0, 8);
        d.commit_remote_write(3, 1, 0, 8);
        d.evict_worker(0);
        assert!(!d.holds(3, 1, 0));
        // Next ship of the evicted version is recovery traffic.
        assert!(d.record_ship(3, 1, 1, 8), "re-ship counted");
        assert!(!d.record_ship(3, 1, 1, 8), "only the first ship is recovery");
    }

    #[test]
    fn surviving_replica_is_not_a_reship() {
        let mut d = Directory::new(2);
        d.record_ship(3, 0, 0, 8);
        d.record_ship(3, 0, 1, 8);
        d.evict_worker(0);
        assert!(d.holds(3, 0, 1), "survivor keeps its replica");
        assert!(!d.record_ship(3, 0, 0, 8), "version still resident elsewhere");
    }
}
