//! # jade-bench — figure/table regeneration and benchmark helpers
//!
//! One binary per artifact of the paper's evaluation (see DESIGN.md's
//! experiment index):
//!
//! | binary             | paper artifact |
//! |--------------------|----------------|
//! | `fig4_taskgraph`   | Figure 4 — dynamic task graph of sparse Cholesky |
//! | `fig7_trace`       | Figure 7 — execution narrative on two message-passing machines |
//! | `fig9_lws_times`   | Figure 9 — LWS running times on iPSC/860, Mica, DASH |
//! | `fig10_lws_speedup`| Figure 10 — LWS speedups for the same runs |
//! | `t1_constructs`    | §7.3 in-text counts: lines + Jade constructs added |
//! | `exp_make`         | §7.1 — parallel make |
//! | `exp_video`        | §7.2 — HRV video pipeline throughput |
//! | `exp_dsm_baseline` | §6.1 — page-DSM false-sharing baseline |
//! | `exp_ablations`    | §5 — locality, latency hiding, throttling, §4.2 pipelining |

#![cfg_attr(test, deny(deprecated))]

use jade_apps::lws::{self, WaterSystem};
use jade_sim::{Platform, RunConfig, Runtime, SimExecutor, SimReport};

/// Run one LWS configuration on a simulated platform and report it
/// (through the uniform [`Runtime::execute`] entry point; the
/// simulator's report rides in the execution report's extras).
pub fn lws_sim(platform: Platform, n: usize, steps: usize, seed: u64) -> SimReport {
    let sys = WaterSystem::new(n, seed);
    let blocks = (4 * platform.len()).max(4);
    let mut rep = SimExecutor::new(platform)
        .execute(RunConfig::new(), move |ctx| lws::run_jade(ctx, &sys, blocks, steps, 0.002))
        .unwrap_or_else(|fault| panic!("{fault}"));
    *rep.extras.take().expect("sim extras").downcast::<SimReport>().expect("SimReport extras")
}

/// The machine counts used for the Figure 9/10 sweeps.
pub fn fig9_proc_counts(platform_name: &str) -> &'static [usize] {
    match platform_name {
        // The shared Ethernet stops being interesting past 16 nodes.
        "mica" => &[1, 2, 4, 8, 16],
        _ => &[1, 2, 4, 8, 16, 32],
    }
}

/// Build a platform preset by name.
pub fn platform_by_name(name: &str, machines: usize) -> Platform {
    match name {
        "dash" => Platform::dash(machines),
        "ipsc860" => Platform::ipsc860(machines),
        "mica" => Platform::mica(machines),
        "hetnet" => Platform::workstations(machines),
        other => panic!("unknown platform '{other}'"),
    }
}

/// Format a row of right-aligned cells.
pub fn row(cells: &[String], width: usize) -> String {
    cells.iter().map(|c| format!("{c:>width$}")).collect::<Vec<_>>().join(" ")
}

pub mod baseline {
    //! Scoped-threads baseline: what a plain pool with *per-task
    //! dispatch* costs without any of Jade's semantics. One
    //! mutex-protected FIFO of boxed closures with condvar parking —
    //! the rayon-style shape (spawn each task individually into a
    //! pool; workers park when dry). No declarations, no dependence
    //! tracking, no serial-order queues: the gap between this and the
    //! Jade executor is the price of the programming model's dynamic
    //! concurrency detection. Used by `exp_sched` (gap table) and the
    //! `runtime_micro` criterion group.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Instant;

    type Job = Box<dyn FnOnce() + Send + 'static>;

    struct BasePool {
        q: Mutex<(VecDeque<Job>, bool)>,
        cv: Condvar,
    }

    impl BasePool {
        fn new() -> Self {
            BasePool { q: Mutex::new((VecDeque::new(), false)), cv: Condvar::new() }
        }

        fn push(&self, job: Job) {
            self.q.lock().unwrap().0.push_back(job);
            self.cv.notify_one();
        }

        fn close(&self) {
            self.q.lock().unwrap().1 = true;
            self.cv.notify_all();
        }

        fn worker(&self) {
            loop {
                let job = {
                    let mut g = self.q.lock().unwrap();
                    loop {
                        if let Some(j) = g.0.pop_front() {
                            break j;
                        }
                        if g.1 {
                            return;
                        }
                        g = self.cv.wait(g).unwrap();
                    }
                };
                job();
            }
        }
    }

    /// Baseline counterpart of `exp_sched`'s independent workload:
    /// `tasks` closures, each bumping one of `objects` mutex-protected
    /// counters, dispatched one at a time through the pool. Returns
    /// tasks/second.
    pub fn independent_rate(workers: usize, tasks: u64, objects: usize) -> f64 {
        let slots: Arc<Vec<Mutex<u64>>> =
            Arc::new((0..objects).map(|_| Mutex::new(0u64)).collect());
        let pool = BasePool::new();
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| pool.worker());
            }
            for i in 0..tasks {
                let slots = slots.clone();
                let idx = (i as usize) % objects;
                pool.push(Box::new(move || {
                    *slots[idx].lock().unwrap() += 1;
                }));
            }
            pool.close();
        });
        let total: u64 = slots.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, tasks);
        tasks as f64 / start.elapsed().as_secs_f64()
    }

    /// Fork-join waves on the baseline pool: `fan` forked closures per
    /// wave, a counter join (condvar) between waves, and the join body
    /// dispatched as its own task — the same task shape as the Jade
    /// fork-join workload. Returns tasks/second over
    /// `waves * (fan + 1)` tasks.
    pub fn forkjoin_rate(workers: usize, waves: u64, fan: usize) -> f64 {
        let slots: Arc<Vec<Mutex<u64>>> =
            Arc::new((0..fan).map(|_| Mutex::new(0u64)).collect());
        let pool = BasePool::new();
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        let tasks = waves * (fan as u64 + 1);
        let start = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| pool.worker());
            }
            let wait_for = |n: usize| {
                let (m, cv) = &*gate;
                let mut done = m.lock().unwrap();
                while *done < n {
                    done = cv.wait(done).unwrap();
                }
                *done = 0;
            };
            let bump_done = |gate: &Arc<(Mutex<usize>, Condvar)>| {
                let (m, cv) = &**gate;
                *m.lock().unwrap() += 1;
                cv.notify_all();
            };
            for _ in 0..waves {
                for (idx, _) in slots.iter().enumerate() {
                    let slots = slots.clone();
                    let gate = gate.clone();
                    pool.push(Box::new(move || {
                        *slots[idx].lock().unwrap() += 1;
                        bump_done(&gate);
                    }));
                }
                wait_for(fan);
                let slots2 = slots.clone();
                let gate2 = gate.clone();
                pool.push(Box::new(move || {
                    let sum: u64 = slots2.iter().map(|m| *m.lock().unwrap()).sum();
                    std::hint::black_box(sum);
                    bump_done(&gate2);
                }));
                wait_for(1);
            }
            pool.close();
        });
        let total: u64 = slots.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, waves * fan as u64);
        tasks as f64 / start.elapsed().as_secs_f64()
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn baseline_shapes_complete_and_count() {
            // The rate functions assert the work landed exactly once;
            // a nonzero rate means the pool drained and joined cleanly.
            assert!(super::independent_rate(4, 500, 16) > 0.0);
            assert!(super::forkjoin_rate(4, 20, 8) > 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lws_sim_smoke() {
        let r = lws_sim(Platform::dash(2), 60, 1, 1);
        assert!(r.time > jade_sim::SimTime::ZERO);
        assert_eq!(r.machines, 2);
    }

    #[test]
    fn platform_lookup() {
        assert_eq!(platform_by_name("dash", 4).len(), 4);
        assert_eq!(platform_by_name("mica", 2).name, "mica");
    }

    #[test]
    #[should_panic(expected = "unknown platform")]
    fn unknown_platform_panics() {
        platform_by_name("cray", 1);
    }
}
