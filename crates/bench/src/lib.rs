//! # jade-bench — figure/table regeneration and benchmark helpers
//!
//! One binary per artifact of the paper's evaluation (see DESIGN.md's
//! experiment index):
//!
//! | binary             | paper artifact |
//! |--------------------|----------------|
//! | `fig4_taskgraph`   | Figure 4 — dynamic task graph of sparse Cholesky |
//! | `fig7_trace`       | Figure 7 — execution narrative on two message-passing machines |
//! | `fig9_lws_times`   | Figure 9 — LWS running times on iPSC/860, Mica, DASH |
//! | `fig10_lws_speedup`| Figure 10 — LWS speedups for the same runs |
//! | `t1_constructs`    | §7.3 in-text counts: lines + Jade constructs added |
//! | `exp_make`         | §7.1 — parallel make |
//! | `exp_video`        | §7.2 — HRV video pipeline throughput |
//! | `exp_dsm_baseline` | §6.1 — page-DSM false-sharing baseline |
//! | `exp_ablations`    | §5 — locality, latency hiding, throttling, §4.2 pipelining |

#![cfg_attr(test, deny(deprecated))]

use jade_apps::lws::{self, WaterSystem};
use jade_sim::{Platform, RunConfig, Runtime, SimExecutor, SimReport};

/// Run one LWS configuration on a simulated platform and report it
/// (through the uniform [`Runtime::execute`] entry point; the
/// simulator's report rides in the execution report's extras).
pub fn lws_sim(platform: Platform, n: usize, steps: usize, seed: u64) -> SimReport {
    let sys = WaterSystem::new(n, seed);
    let blocks = (4 * platform.len()).max(4);
    let mut rep = SimExecutor::new(platform)
        .execute(RunConfig::new(), move |ctx| lws::run_jade(ctx, &sys, blocks, steps, 0.002))
        .unwrap_or_else(|fault| panic!("{fault}"));
    *rep.extras.take().expect("sim extras").downcast::<SimReport>().expect("SimReport extras")
}

/// The machine counts used for the Figure 9/10 sweeps.
pub fn fig9_proc_counts(platform_name: &str) -> &'static [usize] {
    match platform_name {
        // The shared Ethernet stops being interesting past 16 nodes.
        "mica" => &[1, 2, 4, 8, 16],
        _ => &[1, 2, 4, 8, 16, 32],
    }
}

/// Build a platform preset by name.
pub fn platform_by_name(name: &str, machines: usize) -> Platform {
    match name {
        "dash" => Platform::dash(machines),
        "ipsc860" => Platform::ipsc860(machines),
        "mica" => Platform::mica(machines),
        "hetnet" => Platform::workstations(machines),
        other => panic!("unknown platform '{other}'"),
    }
}

/// Format a row of right-aligned cells.
pub fn row(cells: &[String], width: usize) -> String {
    cells.iter().map(|c| format!("{c:>width$}")).collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lws_sim_smoke() {
        let r = lws_sim(Platform::dash(2), 60, 1, 1);
        assert!(r.time > jade_sim::SimTime::ZERO);
        assert_eq!(r.machines, 2);
    }

    #[test]
    fn platform_lookup() {
        assert_eq!(platform_by_name("dash", 4).len(), 4);
        assert_eq!(platform_by_name("mica", 2).name, "mica");
    }

    #[test]
    #[should_panic(expected = "unknown platform")]
    fn unknown_platform_panics() {
        platform_by_name("cray", 1);
    }
}
