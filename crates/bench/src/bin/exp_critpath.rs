//! E-CRITPATH — critical-path analysis of the dynamic task graphs.
//!
//! Runs sparse Cholesky, the liquid water simulation (LWS), and
//! parallel make through the uniform [`Runtime::execute`] entry point
//! with full profiling, then reports for each application:
//!
//! * the critical path (longest dependence chain weighted by each
//!   task's measured busy time — `T_∞`, the span),
//! * the achievable speedup bound `W / T_∞` the access specifications
//!   expose (the quantitative form of the paper's §8 discussion), and
//! * the measured speedup `W / T_p` the simulated platform achieved.
//!
//! The bound must dominate the measured speedup on every run; the
//! binary asserts it. `--small` shrinks the inputs for CI;
//! `--trace-out PATH` additionally writes the Cholesky run's
//! per-machine timeline as Chrome-trace JSON (load it in
//! `chrome://tracing` or Perfetto).
//!
//! Run with: `cargo run --release -p jade-bench --bin exp_critpath`

use jade_apps::{cholesky, lws, pmake};
use jade_bench::platform_by_name;
use jade_core::runtime::{Report, RunConfig, Runtime};
use jade_sim::SimExecutor;

fn analyze<R>(name: &str, rep: &Report<R>) {
    let crit = rep.critical_path().expect("profiled run has trace + timeline");
    let bound = crit.parallelism_bound();
    let measured = crit.measured_speedup();
    println!("{name:>10}: {}", crit.summary());
    assert!(
        bound + 1e-9 >= measured,
        "{name}: critical-path bound {bound:.3}x fell below measured speedup {measured:.3}x"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| args.get(i + 1).expect("--trace-out needs a path").clone());

    let machines = 4;
    let platform = || platform_by_name("dash", machines);
    println!("critical-path analysis on simulated {} x{machines}", platform().name);

    // Sparse Cholesky factorization (§3).
    let n = if small { 24 } else { 120 };
    let a = cholesky::SparseSym::random_spd(n, 4, 92);
    let chol = SimExecutor::new(platform())
        .execute(RunConfig::new().profiled(), move |ctx| cholesky::factor_program(ctx, &a))
        .expect("clean run");
    analyze("cholesky", &chol);
    if let Some(path) = trace_out {
        let json = chol.timeline.as_ref().expect("profiled").to_chrome_json();
        std::fs::write(&path, json).expect("write chrome trace");
        println!("            wrote Chrome-trace JSON to {path}");
    }

    // Liquid water simulation, one timestep (§7.3).
    let molecules = if small { 24 } else { 120 };
    let sys = lws::WaterSystem::new(molecules, 7);
    let blocks = 2 * machines;
    let water = SimExecutor::new(platform())
        .execute(RunConfig::new().profiled(), move |ctx| {
            lws::run_jade(ctx, &sys, blocks, 1, 0.002)
        })
        .expect("clean run");
    analyze("lws", &water);

    // Parallel make over a random dependency DAG (§7.1).
    let targets = if small { 10 } else { 40 };
    let mk = pmake::Makefile::random_dag(targets, 17);
    let make = SimExecutor::new(platform())
        .execute(RunConfig::new().profiled(), move |ctx| pmake::make_jade(ctx, &mk))
        .expect("clean run");
    analyze("pmake", &make);

    println!("bound >= measured speedup held for every application");
}
