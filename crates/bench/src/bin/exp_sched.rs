//! E-SCHED — scheduler dispatch-throughput sweep.
//!
//! Floods the shared-memory executor with fine-grained *independent*
//! tasks (each task owns its object, so the dependency engine grants
//! every task immediately) and measures how many tasks per second the
//! scheduler can create, enable, dispatch, and retire at 1–16 workers.
//! Because the bodies are trivial, the number is a direct probe of the
//! scheduling/dependency hot path itself — the lock structure, not the
//! work, is what's being timed.
//!
//! A second workload ("shared") makes all tasks update one of a few
//! shared objects so the per-object serial-order queues, not just the
//! dispatch path, carry traffic.
//!
//! Run with: `cargo run --release -p jade-bench --bin exp_sched`
//! (`--small` shrinks the task count for CI, `--tasks N` overrides it.)

use jade_bench::baseline;
use jade_bench::row;
use jade_core::prelude::*;
use jade_threads::{RunConfig, Runtime, ThreadedExecutor, Throttle};
use std::time::Instant;

const WORKERS: &[usize] = &[1, 2, 4, 8, 16];

/// The E-SLAB regression floor for the shared×4 @8-workers config, in
/// ktask/s — the CI perf-smoke job fails below this.
const SMOKE_FLOOR_KTASKS: f64 = 434.9;

/// Run `tasks` independent fine-grained tasks and return tasks/second.
fn independent_rate(workers: usize, tasks: u64, objects: usize) -> f64 {
    let exec = ThreadedExecutor::new(workers);
    let start = Instant::now();
    let rep = exec
        .execute(RunConfig::new(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..objects).map(|_| ctx.create(0u64)).collect();
            for i in 0..tasks {
                let x = xs[(i as usize) % objects];
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
        })
        .expect("clean run");
    assert_eq!(rep.result, tasks, "every increment must land exactly once");
    tasks as f64 / start.elapsed().as_secs_f64()
}

/// All tasks funnel through `objects` shared counters: the per-object
/// serial-order queues serialize execution, so this measures queue
/// maintenance under dependence pressure rather than raw dispatch.
fn shared_rate(workers: usize, tasks: u64, objects: usize) -> f64 {
    let exec = ThreadedExecutor::new(workers);
    let start = Instant::now();
    let rep = exec
        .execute(RunConfig::new(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..objects).map(|_| ctx.create(0u64)).collect();
            for i in 0..tasks {
                let x = xs[(i as usize) % objects];
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
        })
        .expect("clean run");
    assert_eq!(rep.result, tasks);
    tasks as f64 / start.elapsed().as_secs_f64()
}

/// Fork-join waves through Jade declarations: `fan` writer tasks on
/// distinct objects per wave, then one join task reading all of them.
/// Each wave's joiner is enabled only once every forked writer
/// retires, so this exercises the multi-predecessor wake path (and,
/// for the writers of the *next* wave, the single-successor inline
/// continuation steal off the joiner). Returns tasks/second over
/// `waves * (fan + 1)` tasks.
fn forkjoin_rate(workers: usize, waves: u64, fan: usize) -> f64 {
    let exec = ThreadedExecutor::new(workers);
    let tasks = waves * (fan as u64 + 1);
    let start = Instant::now();
    let rep = exec
        .execute(RunConfig::new(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..fan).map(|_| ctx.create(0u64)).collect();
            for _ in 0..waves {
                for &x in &xs {
                    ctx.withonly("fork", |s| { s.rd_wr(x); }, move |c| {
                        *c.wr(&x) += 1;
                    });
                }
                let ys = xs.clone();
                ctx.withonly(
                    "join",
                    |s| {
                        for &x in &xs {
                            s.rd(x);
                        }
                    },
                    move |c| {
                        let sum: u64 = ys.iter().map(|x| *c.rd(x)).sum();
                        std::hint::black_box(sum);
                    },
                );
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
        })
        .expect("clean run");
    assert_eq!(rep.result, waves * fan as u64);
    tasks as f64 / start.elapsed().as_secs_f64()
}

/// One instrumented shared×N run: same body as [`shared_rate`] but
/// returns the runtime counters so the fast-path hit rates
/// (continuation steals, spec-cache hits, grant-cache hits) can be
/// reported per dispatched task.
fn shared_stats(workers: usize, tasks: u64, objects: usize) -> (f64, RuntimeStats) {
    let exec = ThreadedExecutor::new(workers);
    let start = Instant::now();
    let rep = exec
        .execute(RunConfig::new(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..objects).map(|_| ctx.create(0u64)).collect();
            for i in 0..tasks {
                let x = xs[(i as usize) % objects];
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
        })
        .expect("clean run");
    assert_eq!(rep.result, tasks);
    (tasks as f64 / start.elapsed().as_secs_f64(), rep.stats)
}

/// Steady-state churn: the creator is throttled so the live-set stays
/// small while many times that number of tasks stream through.
/// Returns (tasks/second, peak task slots, tasks created) — the slot
/// high-water mark is the direct probe of slab recycling: without it
/// the table grows one slot per task; with it the peak tracks the
/// throttle's live-set bound.
fn churn_stats(workers: usize, tasks: u64) -> (f64, u64, u64) {
    let exec = ThreadedExecutor::new(workers)
        .with_throttle(Throttle::SuspendCreator { hi: 32, lo: 16 });
    let start = Instant::now();
    let rep = exec
        .execute(RunConfig::new(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..64).map(|_| ctx.create(0u64)).collect();
            for i in 0..tasks {
                let x = xs[(i as usize) % 64];
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
        })
        .expect("clean run");
    assert_eq!(rep.result, tasks);
    let rate = tasks as f64 / start.elapsed().as_secs_f64();
    (rate, rep.stats.peak_task_slots, rep.stats.tasks_created)
}

fn sweep(name: &str, tasks: u64, f: impl Fn(usize, u64) -> f64) -> Vec<f64> {
    println!("\n{name} ({tasks} tasks; ktasks/s by worker count)");
    let header: Vec<String> =
        std::iter::once("workers".to_string()).chain(WORKERS.iter().map(|w| w.to_string())).collect();
    println!("{}", row(&header, 9));
    let mut rates = Vec::new();
    for &w in WORKERS {
        // Warm-up run, then take the best of three timed runs: on a
        // shared CI host the scheduler, not the noise, should be rated.
        f(w, tasks / 4);
        let best = (0..3).map(|_| f(w, tasks)).fold(f64::MIN, f64::max);
        rates.push(best);
    }
    let cells: Vec<String> = std::iter::once("ktask/s".to_string())
        .chain(rates.iter().map(|r| format!("{:.1}", r / 1e3)))
        .collect();
    println!("{}", row(&cells, 9));
    rates
}

/// Render one `"name": [v, v, ...]` JSON line of per-worker rates.
fn json_rates(name: &str, rates: &[f64]) -> String {
    let vals: Vec<String> = rates.iter().map(|r| format!("{:.1}", r / 1e3)).collect();
    format!("    \"{}\": [{}]", name, vals.join(", "))
}

/// Emit the machine-readable summary consumed by CI. Hand-rolled: the
/// bench crate deliberately has no serde dependency, and the schema is
/// a flat map of ktask/s arrays plus fast-path hit rates.
fn write_json(
    path: &str,
    tasks: u64,
    sweeps: &[(&str, Vec<f64>)],
    hits: &RuntimeStats,
    hit_rate: f64,
) {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"tasks\": {tasks},\n"));
    s.push_str(&format!(
        "  \"workers\": [{}],\n",
        WORKERS.iter().map(|w| w.to_string()).collect::<Vec<_>>().join(", ")
    ));
    s.push_str("  \"ktask_per_s\": {\n");
    let lines: Vec<String> = sweeps.iter().map(|(n, r)| json_rates(n, r)).collect();
    s.push_str(&lines.join(",\n"));
    s.push_str("\n  },\n");
    s.push_str("  \"fast_paths_shared_x4_w8\": {\n");
    s.push_str(&format!("    \"tasks_created\": {},\n", hits.tasks_created));
    s.push_str(&format!("    \"cont_steals\": {},\n", hits.cont_steals));
    s.push_str(&format!("    \"spec_cache_hits\": {},\n", hits.spec_cache_hits));
    s.push_str(&format!("    \"grant_cache_hits\": {},\n", hits.grant_cache_hits));
    s.push_str(&format!("    \"cont_steal_rate\": {:.4},\n", hits.cont_steals as f64 / hits.tasks_created.max(1) as f64));
    s.push_str(&format!("    \"spec_cache_hit_rate\": {:.4},\n", hits.spec_cache_hits as f64 / hits.tasks_created.max(1) as f64));
    s.push_str(&format!("    \"ktask_per_s\": {:.1}\n", hit_rate / 1e3));
    s.push_str("  }\n}\n");
    std::fs::write(path, s).expect("write BENCH_dispatch.json");
    println!("\nwrote {path}");
}

/// `--smoke`: the CI perf gate. One config only — shared×4 @8 workers,
/// the E-SLAB reference point — warm-up plus best-of-three, then a
/// hard assert against the recorded floor.
fn smoke(tasks: u64) {
    shared_rate(8, tasks / 4, 4); // warm-up
    let best = (0..3).map(|_| shared_rate(8, tasks, 4)).fold(f64::MIN, f64::max);
    println!("perf-smoke: shared x4 @8 workers: {:.1} ktask/s (floor {SMOKE_FLOOR_KTASKS})", best / 1e3);
    assert!(
        best / 1e3 >= SMOKE_FLOOR_KTASKS,
        "dispatch throughput regressed below the E-SLAB floor: {:.1} < {SMOKE_FLOOR_KTASKS} ktask/s",
        best / 1e3
    );
    println!("perf-smoke passed");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let tasks: u64 = args
        .iter()
        .position(|a| a == "--tasks")
        .map(|i| args[i + 1].parse().expect("--tasks needs a number"))
        .unwrap_or(if small { 2_000 } else { 20_000 });

    if args.iter().any(|a| a == "--smoke") {
        smoke(tasks);
        return;
    }
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args[i + 1].clone())
        .unwrap_or_else(|| "BENCH_dispatch.json".to_string());

    println!(
        "scheduler dispatch throughput sweep ({} hardware threads on this host)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // Independent tasks, one object per in-flight task slot: the pure
    // dispatch path. 64 objects keeps queue depth ~1 per object.
    let indep = sweep("independent", tasks, |w, n| independent_rate(w, n, 64));
    let base_indep =
        sweep("baseline independent (scoped threads)", tasks, |w, n| baseline::independent_rate(w, n, 64));

    // All traffic through 4 shared counters: queue-pressure regime.
    let shared = sweep("shared x4", tasks / 4, |w, n| shared_rate(w, n, 4));

    // Fork-join waves: fan=8 writers + 1 joiner per wave, Jade vs the
    // plain pool. Wave count chosen so total task count ≈ `tasks`.
    let fan = 8;
    let waves = (tasks / (fan as u64 + 1)).max(1);
    let fj = sweep("fork-join fan=8", waves, |w, n| forkjoin_rate(w, n, fan));
    let base_fj =
        sweep("baseline fork-join fan=8 (scoped threads)", waves, |w, n| baseline::forkjoin_rate(w, n, fan));

    // Gap table: Jade as a multiple of the no-semantics pool. <1.0×
    // means Jade is *faster* (its work-stealing deques beat the single
    // mutex-protected FIFO under contention).
    println!("\ngap vs scoped-threads baseline (Jade time ÷ baseline time; lower is better)");
    let header: Vec<String> =
        std::iter::once("shape".to_string()).chain(WORKERS.iter().map(|w| w.to_string())).collect();
    println!("{}", row(&header, 13));
    for (name, jade, base) in
        [("independent", &indep, &base_indep), ("fork-join", &fj, &base_fj)]
    {
        let cells: Vec<String> = std::iter::once(name.to_string())
            .chain(jade.iter().zip(base.iter()).map(|(j, b)| format!("{:.2}x", b / j)))
            .collect();
        println!("{}", row(&cells, 13));
    }

    // Instrumented run at the reference config for the JSON summary.
    let (hit_rate, hits) = shared_stats(8, tasks / 4, 4);
    println!(
        "\nfast paths @ shared x4, 8 workers: {} tasks, {} cont-steals, {} spec-cache hits, {} grant-cache hits",
        hits.tasks_created, hits.cont_steals, hits.spec_cache_hits, hits.grant_cache_hits
    );

    write_json(
        &json_path,
        tasks,
        &[
            ("independent", indep.clone()),
            ("baseline_independent", base_indep),
            ("shared_x4", shared),
            ("forkjoin_fan8", fj),
            ("baseline_forkjoin_fan8", base_fj),
        ],
        &hits,
        hit_rate,
    );

    // Throttled churn: live-set pinned at ≤32 while `tasks` stream
    // through — the slab-recycling regime. Peak slot count must track
    // the live-set, not the task count.
    println!("\nchurn (SuspendCreator hi=32/lo=16; slot slab recycling)");
    println!("{}", row(&["workers".into(), "ktask/s".into(), "peak slots".into(), "tasks".into()], 11));
    for &w in WORKERS {
        churn_stats(w, tasks / 4); // warm-up
        let (rate, peak, created) = churn_stats(w, tasks);
        println!(
            "{}",
            row(
                &[w.to_string(), format!("{:.1}", rate / 1e3), peak.to_string(), created.to_string()],
                11
            )
        );
        assert!(
            peak <= 96,
            "slab grew with task count ({peak} slots for {created} tasks): recycling broken"
        );
    }

    // The scheduler must not collapse as workers are added: the rate at
    // the largest worker count must hold a reasonable fraction of the
    // single-worker rate even on an oversubscribed host.
    let w1 = indep[0];
    let wmax = *indep.last().unwrap();
    println!("\nindependent: {:.1} ktask/s @1 worker, {:.1} ktask/s @16 workers", w1 / 1e3, wmax / 1e3);
    assert!(
        wmax > w1 * 0.05,
        "dispatch throughput collapsed with workers: {w1:.0} -> {wmax:.0} tasks/s"
    );
    println!("dispatch throughput held up under added workers");
}
