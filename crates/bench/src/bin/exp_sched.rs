//! E-SCHED — scheduler dispatch-throughput sweep.
//!
//! Floods the shared-memory executor with fine-grained *independent*
//! tasks (each task owns its object, so the dependency engine grants
//! every task immediately) and measures how many tasks per second the
//! scheduler can create, enable, dispatch, and retire at 1–16 workers.
//! Because the bodies are trivial, the number is a direct probe of the
//! scheduling/dependency hot path itself — the lock structure, not the
//! work, is what's being timed.
//!
//! A second workload ("shared") makes all tasks update one of a few
//! shared objects so the per-object serial-order queues, not just the
//! dispatch path, carry traffic.
//!
//! Run with: `cargo run --release -p jade-bench --bin exp_sched`
//! (`--small` shrinks the task count for CI, `--tasks N` overrides it.)

use jade_bench::row;
use jade_core::prelude::*;
use jade_threads::{RunConfig, Runtime, ThreadedExecutor, Throttle};
use std::time::Instant;

const WORKERS: &[usize] = &[1, 2, 4, 8, 16];

/// Run `tasks` independent fine-grained tasks and return tasks/second.
fn independent_rate(workers: usize, tasks: u64, objects: usize) -> f64 {
    let exec = ThreadedExecutor::new(workers);
    let start = Instant::now();
    let rep = exec
        .execute(RunConfig::new(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..objects).map(|_| ctx.create(0u64)).collect();
            for i in 0..tasks {
                let x = xs[(i as usize) % objects];
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
        })
        .expect("clean run");
    assert_eq!(rep.result, tasks, "every increment must land exactly once");
    tasks as f64 / start.elapsed().as_secs_f64()
}

/// All tasks funnel through `objects` shared counters: the per-object
/// serial-order queues serialize execution, so this measures queue
/// maintenance under dependence pressure rather than raw dispatch.
fn shared_rate(workers: usize, tasks: u64, objects: usize) -> f64 {
    let exec = ThreadedExecutor::new(workers);
    let start = Instant::now();
    let rep = exec
        .execute(RunConfig::new(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..objects).map(|_| ctx.create(0u64)).collect();
            for i in 0..tasks {
                let x = xs[(i as usize) % objects];
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
        })
        .expect("clean run");
    assert_eq!(rep.result, tasks);
    tasks as f64 / start.elapsed().as_secs_f64()
}

/// Steady-state churn: the creator is throttled so the live-set stays
/// small while many times that number of tasks stream through.
/// Returns (tasks/second, peak task slots, tasks created) — the slot
/// high-water mark is the direct probe of slab recycling: without it
/// the table grows one slot per task; with it the peak tracks the
/// throttle's live-set bound.
fn churn_stats(workers: usize, tasks: u64) -> (f64, u64, u64) {
    let exec = ThreadedExecutor::new(workers)
        .with_throttle(Throttle::SuspendCreator { hi: 32, lo: 16 });
    let start = Instant::now();
    let rep = exec
        .execute(RunConfig::new(), move |ctx| {
            let xs: Vec<Shared<u64>> = (0..64).map(|_| ctx.create(0u64)).collect();
            for i in 0..tasks {
                let x = xs[(i as usize) % 64];
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                    *c.wr(&x) += 1;
                });
            }
            xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
        })
        .expect("clean run");
    assert_eq!(rep.result, tasks);
    let rate = tasks as f64 / start.elapsed().as_secs_f64();
    (rate, rep.stats.peak_task_slots, rep.stats.tasks_created)
}

fn sweep(name: &str, tasks: u64, f: impl Fn(usize, u64) -> f64) -> Vec<f64> {
    println!("\n{name} ({tasks} tasks; ktasks/s by worker count)");
    let header: Vec<String> =
        std::iter::once("workers".to_string()).chain(WORKERS.iter().map(|w| w.to_string())).collect();
    println!("{}", row(&header, 9));
    let mut rates = Vec::new();
    for &w in WORKERS {
        // Warm-up run, then take the best of three timed runs: on a
        // shared CI host the scheduler, not the noise, should be rated.
        f(w, tasks / 4);
        let best = (0..3).map(|_| f(w, tasks)).fold(f64::MIN, f64::max);
        rates.push(best);
    }
    let cells: Vec<String> = std::iter::once("ktask/s".to_string())
        .chain(rates.iter().map(|r| format!("{:.1}", r / 1e3)))
        .collect();
    println!("{}", row(&cells, 9));
    rates
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let tasks: u64 = args
        .iter()
        .position(|a| a == "--tasks")
        .map(|i| args[i + 1].parse().expect("--tasks needs a number"))
        .unwrap_or(if small { 2_000 } else { 20_000 });

    println!(
        "scheduler dispatch throughput sweep ({} hardware threads on this host)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    // Independent tasks, one object per in-flight task slot: the pure
    // dispatch path. 64 objects keeps queue depth ~1 per object.
    let indep = sweep("independent", tasks, |w, n| independent_rate(w, n, 64));

    // All traffic through 4 shared counters: queue-pressure regime.
    sweep("shared x4", tasks / 4, |w, n| shared_rate(w, n, 4));

    // Throttled churn: live-set pinned at ≤32 while `tasks` stream
    // through — the slab-recycling regime. Peak slot count must track
    // the live-set, not the task count.
    println!("\nchurn (SuspendCreator hi=32/lo=16; slot slab recycling)");
    println!("{}", row(&["workers".into(), "ktask/s".into(), "peak slots".into(), "tasks".into()], 11));
    for &w in WORKERS {
        churn_stats(w, tasks / 4); // warm-up
        let (rate, peak, created) = churn_stats(w, tasks);
        println!(
            "{}",
            row(
                &[w.to_string(), format!("{:.1}", rate / 1e3), peak.to_string(), created.to_string()],
                11
            )
        );
        assert!(
            peak <= 96,
            "slab grew with task count ({peak} slots for {created} tasks): recycling broken"
        );
    }

    // The scheduler must not collapse as workers are added: the rate at
    // the largest worker count must hold a reasonable fraction of the
    // single-worker rate even on an oversubscribed host.
    let w1 = indep[0];
    let wmax = *indep.last().unwrap();
    println!("\nindependent: {:.1} ktask/s @1 worker, {:.1} ktask/s @16 workers", w1 / 1e3, wmax / 1e3);
    assert!(
        wmax > w1 * 0.05,
        "dispatch throughput collapsed with workers: {w1:.0} -> {wmax:.0} tasks/s"
    );
    println!("dispatch throughput held up under added workers");
}
