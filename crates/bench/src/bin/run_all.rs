//! Run every experiment binary in sequence and summarize pass/fail —
//! the one-command reproduction of the paper's evaluation.
//!
//! Run: `cargo run --release -p jade-bench --bin run_all`
//! (expects to be invoked from the workspace, via cargo)

use std::process::Command;

fn main() {
    let bins = [
        ("fig4_taskgraph", "Figure 4: dynamic task graph"),
        ("fig7_trace", "Figure 7: two-machine execution trace"),
        ("fig9_lws_times", "Figure 9: LWS running times"),
        ("fig10_lws_speedup", "Figure 10: LWS speedups"),
        ("t1_constructs", "§7.3 construct/line counts"),
        ("exp_make", "§7.1 parallel make"),
        ("exp_video", "§7.2 HRV video pipeline"),
        ("exp_dsm_baseline", "§6.1 page-DSM baseline"),
        ("exp_ablations", "§5 runtime-optimization ablations"),
        ("exp_faults", "fault-injection sweep (loss × crashes)"),
        ("exp_dist", "distributed backend: loss × kills over sockets"),
        ("exp_critpath", "critical path: speedup bound vs measured"),
        ("exp_serve", "job server: throughput/latency under load"),
    ];
    let mut failures = 0;
    for (bin, what) in bins {
        // Each binary asserts its own expected shape; exit status is
        // the verdict.
        let status = Command::new("cargo")
            .args(["run", "--release", "-q", "-p", "jade-bench", "--bin", bin])
            .stdout(std::process::Stdio::null())
            .status()
            .expect("spawn cargo");
        let ok = status.success();
        println!("{} {:22} {}", if ok { "PASS" } else { "FAIL" }, bin, what);
        if !ok {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} experiment(s) failed shape checks");
        std::process::exit(1);
    }
    println!("\nall paper artifacts reproduced (shapes asserted inside each binary).");
}
