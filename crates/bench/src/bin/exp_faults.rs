//! Fault-tolerance sweep: message-loss rate × transient crash count.
//!
//! For each point the same LWS workload runs under a seeded
//! [`FaultPlan`]; the table reports completion time, retransmissions
//! performed by the reliable-delivery layer, and crash-recovery
//! re-executions. Invariants checked on every point:
//!
//! * the computed result is bit-identical to the fault-free run
//!   (serial semantics hold under failure);
//! * loss > 0 forces retransmits, and every drop is recovered by
//!   exactly one retransmission;
//! * faults only ever cost time, never correctness.
//!
//! Run: `cargo run --release -p jade-bench --bin exp_faults`

use jade_apps::lws::{self, WaterSystem};
use jade_bench::row;
use jade_sim::{FaultPlan, Platform, SimExecutor, SimReport, SimSpan};

const MACHINES: usize = 4;
const MOLECULES: usize = 48;
const STEPS: usize = 2;

fn lws_faulted(plan: Option<FaultPlan>) -> ((Vec<f64>, WaterSystem), SimReport) {
    let sys = WaterSystem::new(MOLECULES, 7);
    let blocks = 4 * MACHINES;
    let mut exec = SimExecutor::new(Platform::mica(MACHINES));
    if let Some(p) = plan {
        exec = exec.faults(p);
    }
    exec.run(move |ctx| lws::run_jade(ctx, &sys, blocks, STEPS, 0.002))
}

fn main() {
    let losses = [0.0, 0.02, 0.05, 0.10];
    let crash_counts = [0usize, 1, 2];

    let (clean_value, clean) = lws_faulted(None);
    println!(
        "fault sweep: LWS, {MOLECULES} molecules x {STEPS} steps on {MACHINES} Mica workstations"
    );
    println!("fault-free baseline: {:.3}s\n", clean.time.as_secs_f64());

    let w = 12;
    println!(
        "{}",
        row(
            &["loss".into(), "crashes".into(), "time".into(), "slowdown".into(),
              "retransmits".into(), "timeouts".into(), "recoveries".into(), "degraded".into()],
            w
        )
    );

    for &loss in &losses {
        for &crashes in &crash_counts {
            let mut plan = FaultPlan::new(0xFA017 + crashes as u64).drop_prob(loss);
            for m in 0..crashes {
                // Crash distinct non-zero machines (machine 0 hosts the
                // root task's home store in this sweep's narrative, and
                // at least one machine must survive).
                plan = plan.crash(m + 1, 1 + m as u64, SimSpan::from_millis(30));
            }
            let (value, r) = lws_faulted(Some(plan));

            assert_eq!(
                value, clean_value,
                "loss={loss} crashes={crashes}: faults changed the computed result"
            );
            assert_eq!(
                r.net.retransmits, r.net.dropped,
                "every drop must be recovered by exactly one retransmission"
            );
            if loss > 0.0 {
                assert!(
                    r.net.retransmits > 0,
                    "loss={loss}: a lossy network must force retransmissions"
                );
            } else {
                assert_eq!(r.net.retransmits, 0, "no loss configured");
            }
            assert_eq!(r.faults.crashes, crashes as u64, "every armed crash fires once");

            println!(
                "{}",
                row(
                    &[
                        format!("{:.0}%", loss * 100.0),
                        format!("{crashes}"),
                        format!("{:.3}s", r.time.as_secs_f64()),
                        format!("{:.2}x", r.time.as_secs_f64() / clean.time.as_secs_f64()),
                        format!("{}", r.net.retransmits),
                        format!("{}", r.net.timeouts),
                        format!("{}", r.faults.recoveries),
                        format!("{}", r.faults.degraded),
                    ],
                    w
                )
            );
        }
    }

    println!("\nevery point matched the fault-free result bit-for-bit.");
}
