//! Distributed-backend sweep: worker count × injected loss × worker
//! kills, over real sockets.
//!
//! The same sparse-Cholesky workload runs under the `jade-net`
//! multi-process backend (thread-mode workers over Unix-domain
//! sockets, so the sweep is self-contained in one process; the wire
//! protocol, reliability layer, heartbeats and recovery paths are
//! identical to process mode). The table reports wall-clock time and
//! the run's `NetStats`/`FaultStats`. Invariants checked on every
//! point:
//!
//! * the factor is **bit-identical to `SerialRuntime`** — serial
//!   semantics hold through loss, retransmission and worker death;
//! * injected loss shows up as retransmissions, never as an error;
//! * every armed kill is detected (`crashes` matches) and recovered
//!   (`recoveries + degraded > 0` when any lease was in flight).
//!
//! Run: `cargo run --release -p jade-bench --bin exp_dist`

use std::time::{Duration, Instant};

use jade_apps::cholesky::{self, SparseSym};
use jade_bench::row;
use jade_core::runtime::{RunConfig, Runtime};
use jade_core::serial::SerialRuntime;
use jade_net::{ChaosSpec, NetConfig, NetExecutor};

const N: usize = 48;
const BAND: usize = 5;
const SEED: u64 = 17;

fn main() {
    let a = SparseSym::random_spd(N, BAND, SEED);
    let want = {
        let a = a.clone();
        SerialRuntime
            .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
            .expect("serial oracle")
            .result
            .cols
    };

    println!("distributed-backend sweep: sparse Cholesky, n={N} band={BAND}, Unix sockets");
    println!("(thread-mode workers: same wire protocol as process mode, one-process sweep)\n");
    let w = 12;
    println!(
        "{}",
        row(
            &[
                "workers".into(),
                "loss".into(),
                "kills".into(),
                "time".into(),
                "messages".into(),
                "retransmits".into(),
                "dropped".into(),
                "crashes".into(),
                "recov+degr".into(),
            ],
            w
        )
    );

    for &workers in &[2usize, 4] {
        for &(loss, kills) in &[(0.0, 0u32), (0.05, 0), (0.15, 0), (0.0, 1), (0.05, 1)] {
            let chaos: Vec<ChaosSpec> = (0..kills)
                .map(|k| ChaosSpec {
                    worker: k % workers as u32,
                    kill_after_grants: Some(2 + 3 * k),
                    hang_after_grants: None,
                    kill_after_kernels: None,
                })
                .collect();
            let cfg = NetConfig {
                loss: (loss > 0.0).then_some((0xD157 + kills as u64, loss)),
                retransmit_timeout: Duration::from_millis(5),
                chaos,
                ..NetConfig::threads(workers)
            };
            let t0 = Instant::now();
            let rep = {
                let a = a.clone();
                NetExecutor::new(cfg)
                    .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
                    .expect("every sweep point must complete")
            };
            let elapsed = t0.elapsed();
            assert_eq!(rep.result.cols, want, "result must match the serial oracle");
            let net = rep.net.expect("net backend reports NetStats");
            let faults = rep.faults.expect("net backend reports FaultStats");
            assert_eq!(faults.crashes as u32, kills, "every armed kill must be detected");
            if loss > 0.0 {
                assert!(net.dropped > 0, "injected loss must be observable");
            }
            println!(
                "{}",
                row(
                    &[
                        format!("{workers}"),
                        format!("{:.0}%", loss * 100.0),
                        format!("{kills}"),
                        format!("{:.3}s", elapsed.as_secs_f64()),
                        format!("{}", net.messages),
                        format!("{}", net.retransmits),
                        format!("{}", net.dropped),
                        format!("{}", faults.crashes),
                        format!("{}", faults.recoveries + faults.degraded),
                    ],
                    w
                )
            );
        }
    }
    println!("\nall points matched the serial oracle bit-for-bit");
}
