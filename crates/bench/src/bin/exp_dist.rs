//! Distributed-backend sweep: worker count × injected loss × worker
//! kills, over real sockets — § E-DIST of EXPERIMENTS.md.
//!
//! The same sparse-Cholesky workload runs under the `jade-net`
//! multi-process backend (thread-mode workers over Unix-domain
//! sockets, so the sweep is self-contained in one process; the wire
//! protocol, reliability layer, heartbeats and recovery paths are
//! identical to process mode). With the application kernel registry
//! linked, every task body lowers to the portable IR and executes on
//! a worker; the table reports wall-clock time, the run's
//! `NetStats`/`FaultStats`, bytes on the wire and the replica-cache
//! hit rate. Invariants checked on every point:
//!
//! * the factor is **bit-identical to `SerialRuntime`** — serial
//!   semantics hold through loss, retransmission and worker death;
//! * with live workers, **zero task bodies run coordinator-locally**:
//!   `tasks_shipped == tasks_created` and `degraded == 0` on clean
//!   points;
//! * injected loss shows up as retransmissions, never as an error;
//! * every armed kill is detected (`crashes` matches) and recovered
//!   (`recoveries + degraded > 0` when any work was in flight).
//!
//! A second table compares the locality-aware placement policy
//! against round-robin on the identical workload: scoring workers by
//! resident replica bytes must measurably cut both the miss rate and
//! the bytes shipped.
//!
//! Run: `cargo run --release -p jade-bench --bin exp_dist`

use std::time::{Duration, Instant};

use jade_apps::cholesky::{self, SparseSym};
use jade_bench::row;
use jade_core::runtime::{RunConfig, Runtime};
use jade_core::serial::SerialRuntime;
use jade_core::stats::NetStats;
use jade_net::{ChaosSpec, NetConfig, NetExecutor, PlacementPolicy};

const N: usize = 48;
const BAND: usize = 5;
const SEED: u64 = 17;

fn run_point(cfg: NetConfig, a: &SparseSym, want: &[Vec<f64>]) -> (Duration, NetStats, u64, u64) {
    let t0 = Instant::now();
    let rep = {
        let a = a.clone();
        NetExecutor::new(cfg)
            .with_registry(jade_apps::kernels::registry())
            .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
            .expect("every sweep point must complete")
    };
    let elapsed = t0.elapsed();
    assert_eq!(rep.result.cols, want, "result must match the serial oracle");
    let net = rep.net.expect("net backend reports NetStats");
    let faults = rep.faults.expect("net backend reports FaultStats");
    (elapsed, net, faults.crashes, faults.recoveries + faults.degraded + faults.reshipped)
}

fn main() {
    let a = SparseSym::random_spd(N, BAND, SEED);
    let serial = {
        let a = a.clone();
        SerialRuntime
            .execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
            .expect("serial oracle")
    };
    let want = serial.result.cols;
    let tasks = serial.stats.tasks_created;

    println!("distributed-backend sweep: sparse Cholesky, n={N} band={BAND}, Unix sockets");
    println!("(thread-mode workers: same wire protocol as process mode, one-process sweep)");
    println!("(task bodies ship as portable IR; 'hit' = replica-cache hit rate)\n");
    let w = 11;
    println!(
        "{}",
        row(
            &[
                "workers".into(),
                "loss".into(),
                "kills".into(),
                "time".into(),
                "messages".into(),
                "kbytes".into(),
                "retrans".into(),
                "shipped".into(),
                "payload-kb".into(),
                "hit".into(),
                "crashes".into(),
                "recovered".into(),
            ],
            w
        )
    );

    for &workers in &[2usize, 4] {
        for &(loss, kills) in &[(0.0, 0u32), (0.05, 0), (0.15, 0), (0.0, 1), (0.05, 1)] {
            let chaos: Vec<ChaosSpec> = (0..kills)
                .map(|k| ChaosSpec {
                    worker: k % workers as u32,
                    kill_after_grants: Some(2 + 3 * k),
                    hang_after_grants: None,
                    kill_after_kernels: None,
                    kill_after_tasks: None,
                })
                .collect();
            let cfg = NetConfig {
                loss: (loss > 0.0).then_some((0xD157 + kills as u64, loss)),
                retransmit_timeout: Duration::from_millis(5),
                chaos,
                ..NetConfig::threads(workers)
            };
            let (elapsed, net, crashes, recovered) = run_point(cfg, &a, &want);
            assert_eq!(crashes as u32, kills, "every armed kill must be detected");
            if loss > 0.0 {
                assert!(net.dropped > 0, "injected loss must be observable");
            }
            if kills == 0 {
                assert_eq!(
                    net.tasks_shipped, tasks,
                    "with live workers every task body must execute remotely"
                );
                assert_eq!(recovered, 0, "clean points must not degrade or recover");
            }
            println!(
                "{}",
                row(
                    &[
                        format!("{workers}"),
                        format!("{:.0}%", loss * 100.0),
                        format!("{kills}"),
                        format!("{:.3}s", elapsed.as_secs_f64()),
                        format!("{}", net.messages),
                        format!("{:.1}", net.bytes as f64 / 1024.0),
                        format!("{}", net.retransmits),
                        format!("{}", net.tasks_shipped),
                        format!("{:.1}", net.payload_bytes as f64 / 1024.0),
                        format!("{:.0}%", net.replica_hit_rate() * 100.0),
                        format!("{crashes}"),
                        format!("{recovered}"),
                    ],
                    w
                )
            );
        }
    }

    // Placement ablation: locality-aware vs round-robin on the
    // identical clean workload.
    println!("\nplacement ablation (4 workers, no loss, no kills):\n");
    println!(
        "{}",
        row(
            &["policy".into(), "payload-kb".into(), "misses".into(), "hits".into(), "hit".into()],
            w
        )
    );
    let mut bytes = [0u64; 2];
    let mut misses = [0u64; 2];
    for (slot, (label, policy)) in
        [("locality", PlacementPolicy::Locality), ("round-robin", PlacementPolicy::RoundRobin)]
            .into_iter()
            .enumerate()
    {
        let cfg = NetConfig { placement: policy, ..NetConfig::threads(4) };
        let (_, net, _, recovered) = run_point(cfg, &a, &want);
        assert_eq!(recovered, 0);
        bytes[slot] = net.payload_bytes;
        misses[slot] = net.replica_misses;
        println!(
            "{}",
            row(
                &[
                    label.into(),
                    format!("{:.1}", net.payload_bytes as f64 / 1024.0),
                    format!("{}", net.replica_misses),
                    format!("{}", net.replica_hits),
                    format!("{:.0}%", net.replica_hit_rate() * 100.0),
                ],
                w
            )
        );
    }
    assert!(
        misses[0] < misses[1] && bytes[0] < bytes[1],
        "locality placement must cut payload re-shipping: \
         {} vs {} misses, {} vs {} bytes",
        misses[0],
        misses[1],
        bytes[0],
        bytes[1]
    );
    println!(
        "\nlocality placement shipped {:.0}% fewer payload bytes than round-robin",
        (1.0 - bytes[0] as f64 / bytes[1] as f64) * 100.0
    );
    println!("all points matched the serial oracle bit-for-bit");
}
