//! §6.1 — the page-based distributed-shared-memory comparison.
//!
//! "If the program accesses an object that is smaller than a page, the
//! page coherence system will fetch the entire page. The comparatively
//! large size of pages also increases the probability of an
//! application suffering from excessive communication caused by false
//! sharing. ... This problem does not occur in Jade because all data
//! sharing takes place at the level of individual objects."
//!
//! The workload writes many small objects from alternating machines;
//! we run it under Jade's object-granularity coherence and under the
//! page-granularity baseline and compare traffic.
//!
//! Run: `cargo run --release -p jade-bench --bin exp_dsm_baseline`

use jade_core::prelude::*;
use jade_bench::row;
use jade_sim::{Granularity, Platform, SimExecutor};

fn small_object_workload<C: JadeCtx>(ctx: &mut C) -> f64 {
    // 64 small (few-hundred-byte) objects, each updated 4 times.
    // Small objects co-reside on 4 KiB pages, so page-grain coherence
    // false-shares heavily.
    let objs: Vec<Shared<Vec<f64>>> =
        (0..64).map(|i| ctx.create_named(&format!("cell{i}"), vec![i as f64; 24])).collect();
    for _round in 0..4 {
        for &o in &objs {
            ctx.withonly(
                "update",
                |s| {
                    s.rd_wr(o);
                },
                move |c| {
                    c.charge(3e5);
                    for v in c.wr(&o).iter_mut() {
                        *v += 1.0;
                    }
                },
            );
        }
    }
    objs.iter().map(|o| c_sum(ctx, o)).sum()
}

fn c_sum<C: JadeCtx>(ctx: &mut C, o: &Shared<Vec<f64>>) -> f64 {
    ctx.rd(o).iter().sum()
}

fn main() {
    println!("small-object workload on 4 Mica workstations: Jade objects vs page DSM\n");
    println!(
        "{}",
        row(
            &["granularity".into(), "sim time".into(), "msgs".into(), "KB moved".into(), "invalidations".into()],
            14
        )
    );
    let mut rows = Vec::new();
    for (name, gran) in [
        ("object", Granularity::Object),
        ("page-4K", Granularity::Page(4096)),
        ("page-8K", Granularity::Page(8192)),
    ] {
        let (v, report) = SimExecutor::new(Platform::mica(4))
            .granularity(gran)
            .run(small_object_workload);
        println!(
            "{}",
            row(
                &[
                    name.to_string(),
                    format!("{:.3}s", report.time.as_secs_f64()),
                    report.net.messages.to_string(),
                    format!("{}", report.net.bytes / 1024),
                    report.traffic.invalidations.to_string(),
                ],
                14
            )
        );
        rows.push((v, report));
    }
    // Same results everywhere; far more traffic under page coherence.
    assert_eq!(rows[0].0, rows[1].0);
    assert_eq!(rows[0].0, rows[2].0);
    assert!(
        rows[1].1.net.bytes > rows[0].1.net.bytes * 3,
        "4K pages must move several times the bytes objects do"
    );
    assert!(
        rows[2].1.net.bytes >= rows[1].1.net.bytes,
        "bigger pages, more false sharing"
    );
    assert!(rows[1].1.time >= rows[0].1.time, "the extra traffic must cost time");
    println!("\nJade's object-granularity coherence moves only what tasks declare;");
    println!("page granularity drags page-mates along and invalidates bystanders (§6.1).");
}
