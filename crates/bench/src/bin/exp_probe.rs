//! E-SCHED companion probe: serial per-task cost of the sharded
//! dependency engine, split by lifecycle phase (alloc / attach /
//! start / finish), plus a create-burst/drain pattern that regresses
//! the former quadratic recomputation (queue depth grows to ~1500
//! during the burst; per-task cost must stay flat). Numbers feed
//! `EXPERIMENTS.md § E-SCHED`.
use jade_core::engine::ShardedEngine;
use jade_core::ids::{Placement, TaskId};
use jade_core::spec::SpecBuilder;
use std::time::Instant;

fn main() {
    let n: u64 = 100_000;
    // 1) pure lifecycle, distinct object per task (always ready)
    let eng = ShardedEngine::new();
    let oids: Vec<_> = (0..64).map(|_| eng.create_object(TaskId::ROOT)).collect();
    let (mut t_alloc, mut t_attach, mut t_start, mut t_finish) = (0u128, 0u128, 0u128, 0u128);
    let t0 = Instant::now();
    for i in 0..n {
        let mut sb = SpecBuilder::new();
        sb.rd_wr(oids[(i % 64) as usize]);
        let c0 = Instant::now();
        let tid = eng.alloc_task(TaskId::ROOT, "t", Placement::Any);
        let c1 = Instant::now();
        let _w = eng.attach_task(tid, sb.build().0).unwrap();
        let c2 = Instant::now();
        eng.start_task(tid);
        let c3 = Instant::now();
        let _w2 = eng.finish_task(tid);
        let c4 = Instant::now();
        t_alloc += (c1 - c0).as_nanos();
        t_attach += (c2 - c1).as_nanos();
        t_start += (c3 - c2).as_nanos();
        t_finish += (c4 - c3).as_nanos();
    }
    let dt = t0.elapsed();
    println!(
        "engine alloc+attach+start+finish (64-obj round robin): {:.0} ns/task ({:.0} ktask/s)",
        dt.as_nanos() as f64 / n as f64,
        n as f64 / dt.as_secs_f64() / 1e3
    );
    println!(
        "  alloc {} ns  attach {} ns  start {} ns  finish {} ns",
        t_alloc / n as u128,
        t_attach / n as u128,
        t_start / n as u128,
        t_finish / n as u128
    );

    // 2) creation burst then drain, mimicking exp_sched's structure
    let eng = ShardedEngine::new();
    let oids: Vec<_> = (0..64).map(|_| eng.create_object(TaskId::ROOT)).collect();
    let t0 = Instant::now();
    let tids: Vec<_> = (0..n)
        .map(|i| {
            let mut sb = SpecBuilder::new();
            sb.rd_wr(oids[(i % 64) as usize]);
            let tid = eng.alloc_task(TaskId::ROOT, "t", Placement::Any);
            let _w = eng.attach_task(tid, sb.build().0).unwrap();
            tid
        })
        .collect();
    let t_create = t0.elapsed();
    let t1 = Instant::now();
    for tid in tids {
        eng.start_task(tid);
        let _w = eng.finish_task(tid);
    }
    let t_drain = t1.elapsed();
    println!(
        "burst: create {:.0} ns/task, drain {:.0} ns/task",
        t_create.as_nanos() as f64 / n as f64,
        t_drain.as_nanos() as f64 / n as f64
    );
}
