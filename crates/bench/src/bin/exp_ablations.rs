//! Ablations of the §5 runtime optimizations and the §4.2 pipelining
//! construct — each knob toggled with everything else fixed.
//!
//! * A1 locality heuristic on/off (traffic on Mica);
//! * A2 latency-hiding lookahead 0 vs 2 (iPSC/860 fetch stalls);
//! * A3 task-creation throttling (peak live tasks under a task flood);
//! * A4 `df_rd` pipelining vs task-boundary sync for factor+solve.
//!
//! Run: `cargo run --release -p jade-bench --bin exp_ablations`

use jade_apps::cholesky::{self, SparsePattern, SparseSym, SubstMode};
use jade_core::prelude::*;
use jade_sim::{Platform, SimExecutor};

fn tridiagonal(n: usize) -> SparseSym {
    let rows = (0..n).map(|i| if i + 1 < n { vec![i + 1] } else { vec![] }).collect();
    let pattern = SparsePattern::new(n, rows).with_fill();
    let mut m = SparseSym::zero(pattern);
    for i in 0..n {
        m.cols[i][0] = 4.0 + (i % 3) as f64;
        for v in m.cols[i].iter_mut().skip(1) {
            *v = -1.0;
        }
    }
    m
}

fn main() {
    // ---- A1: locality heuristic --------------------------------------
    let a = SparseSym::random_spd(120, 5, 42);
    let run_locality = |on: bool| {
        let a = a.clone();
        SimExecutor::new(Platform::mica(4))
            .locality(on)
            .run(move |ctx| cholesky::factor_program(ctx, &a))
            .1
    };
    let with_loc = run_locality(true);
    let without_loc = run_locality(false);
    println!("A1 locality heuristic (sparse Cholesky, 4 Mica workstations):");
    println!(
        "  on : {:.3}s, {} KB moved   off: {:.3}s, {} KB moved",
        with_loc.time.as_secs_f64(),
        with_loc.net.bytes / 1024,
        without_loc.time.as_secs_f64(),
        without_loc.net.bytes / 1024
    );
    assert!(
        with_loc.net.bytes <= without_loc.net.bytes,
        "locality must not increase traffic"
    );

    // ---- A2: latency hiding (assignment lookahead) --------------------
    let a2 = SparseSym::random_spd(120, 5, 43);
    let run_lookahead = |depth: usize| {
        let a = a2.clone();
        SimExecutor::new(Platform::ipsc860(4))
            .lookahead(depth)
            .run(move |ctx| cholesky::factor_program(ctx, &a))
            .1
    };
    let no_prefetch = run_lookahead(0);
    let prefetch = run_lookahead(2);
    println!("\nA2 latency hiding (sparse Cholesky, 4 iPSC/860 nodes):");
    println!(
        "  lookahead 0: {:.3}s    lookahead 2: {:.3}s   ({:.1}% better)",
        no_prefetch.time.as_secs_f64(),
        prefetch.time.as_secs_f64(),
        (1.0 - prefetch.time.as_secs_f64() / no_prefetch.time.as_secs_f64()) * 100.0
    );
    assert!(
        prefetch.time.as_secs_f64() <= no_prefetch.time.as_secs_f64() * 1.02,
        "prefetching fetches while computing; it must not hurt"
    );

    // ---- A3: task-creation throttling ---------------------------------
    fn flood<C: JadeCtx>(ctx: &mut C) -> f64 {
        let acc = ctx.create(0.0f64);
        for _ in 0..256 {
            ctx.withonly("t", |s| { s.rd_wr(acc); }, move |c| {
                c.charge(5e4);
                *c.wr(&acc) += 1.0;
            });
        }
        *ctx.rd(&acc)
    }
    let (_, unthrottled) = SimExecutor::new(Platform::dash(4)).run(flood);
    let (_, throttled) = SimExecutor::new(Platform::dash(4)).throttle(16, 8).run(flood);
    println!("\nA3 task-creation throttling (256-task flood, 4 DASH nodes):");
    println!(
        "  off: peak {} live tasks, {:.3}s    on(16/8): peak {} live tasks, {:.3}s",
        unthrottled.stats.peak_live_tasks,
        unthrottled.time.as_secs_f64(),
        throttled.stats.peak_live_tasks,
        throttled.time.as_secs_f64()
    );
    assert!(throttled.stats.peak_live_tasks <= 17);
    assert!(unthrottled.stats.peak_live_tasks > 64, "the flood must actually flood");

    // ---- A4: §4.2 pipelining ------------------------------------------
    // First, the exact composition the paper discusses — factor then
    // back-substitute a chain-structured (tridiagonal) matrix. At this
    // matrix's grain the per-column flop counts are dwarfed by task
    // overheads, so both modes cost about the same: the grain-size
    // caveat of §8 in action. We report it, then demonstrate the
    // mechanism at a coarse grain where it matters.
    let chain = tridiagonal(160);
    let b: Vec<f64> = (0..160).map(|i| 1.0 + (i % 7) as f64).collect();
    let run_subst = |mode: SubstMode| {
        let (a, b) = (chain.clone(), b.clone());
        SimExecutor::new(Platform::dash(2))
            .run(move |ctx| cholesky::factor_then_subst(ctx, &a, &b, mode))
            .1
    };
    let boundary = run_subst(SubstMode::TaskBoundary);
    let pipelined = run_subst(SubstMode::Pipelined);
    println!("\nA4a factor+subst, fine-grain tridiagonal (2 DASH nodes):");
    println!(
        "  task-boundary: {:.1}ms    pipelined(df_rd): {:.1}ms   (overhead-dominated: ~no difference, the §8 grain-size limit)",
        boundary.time.as_millis_f64(),
        pipelined.time.as_millis_f64(),
    );
    assert!(pipelined.stats.with_conts > 0, "the pipeline must issue with-conts");

    // Coarse-grain producer/consumer over the same column structure:
    // each "factor" task charges real work per column; the consumer
    // either declares rd on every column (task-boundary) or df_rd +
    // per-column with-cont (pipelined).
    fn pipeline_workload<C: JadeCtx>(ctx: &mut C, pipelined: bool) -> f64 {
        let n = 24usize;
        let cols: Vec<Shared<Vec<f64>>> =
            (0..n).map(|i| ctx.create_named(&format!("col{i}"), vec![0.0; 256])).collect();
        let out = ctx.create_named("out", 0.0f64);
        for (i, &col) in cols.iter().enumerate() {
            // The chain: each column depends on the previous one.
            let prev = if i > 0 { Some(cols[i - 1]) } else { None };
            ctx.withonly(
                "factor",
                |s| {
                    s.rd_wr(col);
                    if let Some(p) = prev {
                        s.rd(p);
                    }
                },
                move |c| {
                    c.charge(4e6);
                    let seed = prev.map(|p| c.rd(&p)[0]).unwrap_or(1.0);
                    for (k, v) in c.wr(&col).iter_mut().enumerate() {
                        *v = seed + k as f64;
                    }
                },
            );
        }
        let spec_cols = cols.clone();
        let body_cols = cols.clone();
        ctx.withonly(
            "backsubst",
            |s| {
                s.rd_wr(out);
                for &c in &spec_cols {
                    if pipelined {
                        s.df_rd(c);
                    } else {
                        s.rd(c);
                    }
                }
            },
            move |cc| {
                let mut acc = 0.0;
                for &col in &body_cols {
                    if pipelined {
                        cc.with_cont(|b| {
                            b.to_rd(col);
                        });
                    }
                    cc.charge(4e6);
                    acc += cc.rd(&col)[0];
                    if pipelined {
                        cc.with_cont(|b| {
                            b.no_rd(col);
                        });
                    }
                }
                *cc.wr(&out) = acc;
            },
        );
        *ctx.rd(&out)
    }
    let (v_b, coarse_boundary) =
        SimExecutor::new(Platform::dash(2)).run(|ctx| pipeline_workload(ctx, false));
    let (v_p, coarse_pipelined) =
        SimExecutor::new(Platform::dash(2)).run(|ctx| pipeline_workload(ctx, true));
    assert_eq!(v_b, v_p, "both modes compute the same value");
    println!("\nA4b factor+subst, coarse-grain chain (2 DASH nodes):");
    println!(
        "  task-boundary: {:.1}ms    pipelined(df_rd): {:.1}ms   ({:.1}% better)",
        coarse_boundary.time.as_millis_f64(),
        coarse_pipelined.time.as_millis_f64(),
        (1.0 - coarse_pipelined.time.as_secs_f64() / coarse_boundary.time.as_secs_f64()) * 100.0
    );
    assert!(
        coarse_pipelined.time.as_secs_f64() < coarse_boundary.time.as_secs_f64() * 0.8,
        "at coarse grain, the §4.2 pipeline must overlap substantially"
    );
    assert!(
        coarse_pipelined.stats.with_cont_blocks > 0,
        "the coarse pipeline must actually synchronize mid-task"
    );

    println!("\nall four runtime mechanisms pull their weight.");
}
