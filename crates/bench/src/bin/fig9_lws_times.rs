//! Figure 9 — running times for the Liquid Water Simulation on the
//! Intel iPSC/860, the Mica Ethernet array and the Stanford DASH,
//! versus processor count. 2197 molecules, as in the paper.
//!
//! Absolute 1992 seconds are not reproducible; the *shape* is the
//! target: all three platforms descend with added processors, DASH
//! scales furthest, the iPSC/860 tracks it closely, and Mica's shared
//! 10 Mbit Ethernet flattens early.
//!
//! Run: `cargo run --release -p jade-bench --bin fig9_lws_times`
//! (pass a molecule count to override, e.g. `-- 500` for a quick run)

use jade_bench::{fig9_proc_counts, lws_sim, platform_by_name, row};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2197);
    let steps = 1;
    println!("LWS running times, {n} molecules, {steps} interaction step (simulated seconds)\n");

    let platforms = ["dash", "ipsc860", "mica"];
    let all_procs: Vec<usize> = vec![1, 2, 4, 8, 16, 32];
    let header: Vec<String> = std::iter::once("procs".to_string())
        .chain(platforms.iter().map(|p| p.to_string()))
        .collect();
    println!("{}", row(&header, 10));

    let mut table: Vec<Vec<String>> = Vec::new();
    for &p in &all_procs {
        let mut cells = vec![p.to_string()];
        for name in platforms {
            if fig9_proc_counts(name).contains(&p) {
                let r = lws_sim(platform_by_name(name, p), n, steps, 2197);
                cells.push(format!("{:.3}", r.time.as_secs_f64()));
            } else {
                cells.push("-".to_string());
            }
        }
        println!("{}", row(&cells, 10));
        table.push(cells);
    }

    // Shape assertions (the figure's qualitative content).
    let t = |r: usize, c: usize| table[r][c].parse::<f64>().unwrap();
    // Times fall from 1 to 8 processors on every platform.
    for c in 1..=3 {
        assert!(t(3, c) < t(0, c), "platform {} does not speed up", platforms[c - 1]);
    }
    // At 16 processors DASH beats Mica (Ethernet saturation).
    assert!(t(4, 1) < t(4, 3), "DASH should beat Mica at 16 procs");
    println!("\nshape: every platform speeds up; DASH < iPSC/860 << Mica at scale, as in Figure 9.");
}
