//! §7.2 — the HRV video pipeline: frames flow from the SPARC host's
//! digitizer through i860 accelerators to the display. Throughput
//! versus accelerator count, with the capture stage as the eventual
//! bottleneck.
//!
//! Run: `cargo run --release -p jade-bench --bin exp_video`

use jade_apps::video;
use jade_bench::row;
use jade_sim::{Platform, SimExecutor};

fn main() {
    let frames = 32;
    let (w, h) = (320, 240);
    let reference = video::video_serial(frames, w, h);

    println!("HRV pipeline: {frames} frames of {w}x{h} video\n");
    println!("{}", row(&["accels".into(), "sim time".into(), "frames/s".into(), "moves".into(), "conversions".into()], 12));

    let mut fps = Vec::new();
    for accels in [1usize, 2, 3, 4, 6] {
        let (result, report) = SimExecutor::new(Platform::hrv(accels))
            .run(move |ctx| video::video_pipeline(ctx, frames, w, h));
        assert_eq!(result, reference, "pipeline corrupted a frame");
        let f = frames as f64 / report.time.as_secs_f64();
        fps.push(f);
        println!(
            "{}",
            row(
                &[
                    accels.to_string(),
                    format!("{:.1}ms", report.time.as_millis_f64()),
                    format!("{f:.1}"),
                    report.traffic.moves.to_string(),
                    report.traffic.conversions.to_string(),
                ],
                12
            )
        );
    }

    assert!(fps[1] > fps[0] * 1.4, "second accelerator must raise throughput");
    let last = *fps.last().unwrap();
    assert!(
        last / fps[2] < 1.15,
        "throughput must saturate once capture is the bottleneck"
    );
    println!("\nshape: throughput scales with accelerators, then saturates at the");
    println!("SPARC capture stage — and every frame's SPARC->i860 hop is format-converted.");
}
