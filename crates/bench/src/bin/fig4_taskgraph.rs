//! Figure 4 — the dynamic task graph of the sparse Cholesky
//! factorization on the paper's small example matrix.
//!
//! Prints the tasks the Jade implementation creates, the dependence
//! edges it discovers between conflicting access declarations, the
//! critical path, and a Graphviz rendering.
//!
//! Run: `cargo run --release -p jade-bench --bin fig4_taskgraph`

use jade_apps::cholesky::{self, SparseSym};

fn main() {
    let a = SparseSym::paper_example();
    println!("matrix: n=5, pattern (below-diagonal rows per column):");
    for (i, rows) in a.pattern.rows.iter().enumerate() {
        println!("  column {i}: {rows:?}");
    }
    let (_, trace) = jade_core::serial::run_traced(|ctx| cholesky::factor_program(ctx, &a));

    println!("\n== dynamic task graph (task <- [predecessors]) ==");
    print!("{}", trace.to_text());

    let tasks = trace.tasks().iter().filter(|t| !t.is_root()).count();
    let edges = trace
        .edges()
        .iter()
        .filter(|e| !e.from.is_root() && !e.to.is_root())
        .count();
    println!("\ntasks: {tasks}   edges: {edges}   critical path: {} tasks", trace.critical_path_len());

    println!("\n== graphviz ==");
    print!("{}", trace.to_dot());

    // Sanity: the structure the paper draws.
    let find = |label: &str| {
        *trace
            .tasks()
            .iter()
            .find(|t| trace.label(**t) == label)
            .unwrap_or_else(|| panic!("missing task {label}"))
    };
    let i0 = find("Internal(0)");
    let e03 = find("External(0->3)");
    let e04 = find("External(0->4)");
    assert!(trace.successors(i0).contains(&e03));
    assert!(trace.successors(i0).contains(&e04));
    let i1 = find("Internal(1)");
    let e12 = find("External(1->2)");
    assert!(trace.successors(i1).contains(&e12));
    assert!(!trace.successors(i0).contains(&i1), "Internal(0) and Internal(1) are independent");
    println!("\nstructure checks out: externals depend on their internal update,");
    println!("columns 0 and 1 factor concurrently — the concurrency of Figure 4.");
}
