//! §7.3's in-text "table": porting LWS to Jade grew the program from
//! 1216 to 1358 lines of C and required 23 Jade constructs.
//!
//! We report the equivalent static counts for this reproduction: the
//! source lines of the serial LWS modules versus the Jade version,
//! and the number of Jade constructs (`withonly` / `with_cont` /
//! `create`) the port added.
//!
//! Run: `cargo run --release -p jade-bench --bin t1_constructs`

fn count_lines(src: &str) -> (usize, usize) {
    let total = src.lines().count();
    let code = src
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count();
    (total, code)
}

fn count_tokens(src: &str, needle: &str) -> usize {
    src.matches(needle).count()
}

fn main() {
    let model = include_str!("../../../apps/src/lws/model.rs");
    let serial = include_str!("../../../apps/src/lws/serial.rs");
    let jade = include_str!("../../../apps/src/lws/jade.rs");

    let (model_total, model_code) = count_lines(model);
    let (serial_total, serial_code) = count_lines(serial);
    let (jade_total, jade_code) = count_lines(jade);

    println!("LWS source accounting (this reproduction)\n");
    println!("{:<28}{:>12}{:>12}", "module", "lines", "code lines");
    println!("{:<28}{:>12}{:>12}", "lws/model.rs  (shared)", model_total, model_code);
    println!("{:<28}{:>12}{:>12}", "lws/serial.rs (serial)", serial_total, serial_code);
    println!("{:<28}{:>12}{:>12}", "lws/jade.rs   (Jade port)", jade_total, jade_code);

    let withonly = count_tokens(jade, ".withonly(") + count_tokens(jade, ".withonly_ir(");
    let with_cont = count_tokens(jade, ".with_cont(");
    let creates = count_tokens(jade, ".create_named(");
    let rd = count_tokens(jade, "s.rd(") + count_tokens(jade, "s.rd_wr(");
    let wr = count_tokens(jade, "s.wr(");
    let dfs = count_tokens(jade, "s.df_rd(") + count_tokens(jade, "s.df_wr(");

    println!("\nJade constructs in the LWS port:");
    println!("  withonly sites:            {withonly}");
    println!("  with-cont sites:           {with_cont}");
    println!("  shared-object allocations: {creates}");
    println!("  access declarations (rd/rd_wr/wr/df_*): {}", rd + wr + dfs);
    println!(
        "  total Jade constructs:     {}",
        withonly + with_cont + creates + rd + wr + dfs
    );
    println!("\npaper (§7.3): 1216 -> 1358 lines of C, 23 Jade constructs added;");
    println!("the port's footprint is the same species: a handful of task and");
    println!("declaration sites layered over unchanged numerical code.");

    assert!(withonly >= 3, "LWS must create force/reduce/integrate tasks");
    assert!(creates >= 4, "positions/velocities/forces/energies objects expected");
}
