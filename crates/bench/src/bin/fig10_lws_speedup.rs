//! Figure 10 — speedups for the Liquid Water Simulation runs of
//! Figure 9 (each platform's time at P processors relative to its own
//! 1-processor time).
//!
//! Run: `cargo run --release -p jade-bench --bin fig10_lws_speedup`
//! (pass a molecule count to override, e.g. `-- 500`)

use jade_bench::{fig9_proc_counts, lws_sim, platform_by_name, row};

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2197);
    let steps = 1;
    println!("LWS speedups, {n} molecules, {steps} interaction step\n");

    let platforms = ["dash", "ipsc860", "mica"];
    let procs = [1usize, 2, 4, 8, 16, 32];
    let header: Vec<String> = std::iter::once("procs".to_string())
        .chain(platforms.iter().map(|p| p.to_string()))
        .collect();
    println!("{}", row(&header, 10));

    let mut speedups: Vec<Vec<Option<f64>>> = Vec::new();
    let mut base: Vec<f64> = Vec::new();
    for name in platforms {
        base.push(lws_sim(platform_by_name(name, 1), n, steps, 2197).time.as_secs_f64());
    }
    for &p in &procs {
        let mut cells = vec![p.to_string()];
        let mut rowvals = Vec::new();
        for (ci, name) in platforms.iter().enumerate() {
            if fig9_proc_counts(name).contains(&p) {
                let t = lws_sim(platform_by_name(name, p), n, steps, 2197).time.as_secs_f64();
                let s = base[ci] / t;
                cells.push(format!("{s:.2}"));
                rowvals.push(Some(s));
            } else {
                cells.push("-".to_string());
                rowvals.push(None);
            }
        }
        println!("{}", row(&cells, 10));
        speedups.push(rowvals);
    }

    // Shape assertions: good scaling on DASH/iPSC at 8 procs, Mica
    // clearly behind at 8+; DASH ahead of Mica at 16.
    let s = |r: usize, c: usize| speedups[r][c].unwrap();
    assert!(s(3, 0) > 5.0, "DASH speedup at 8 procs too low: {}", s(3, 0));
    assert!(s(3, 1) > 4.0, "iPSC speedup at 8 procs too low: {}", s(3, 1));
    assert!(s(4, 0) > s(4, 2), "DASH must out-scale Mica at 16 procs");
    assert!(s(3, 2) < s(3, 0), "Mica must trail DASH at 8 procs");
    println!("\nshape: near-linear DASH, close iPSC/860, early-saturating Mica — Figure 10.");
}
