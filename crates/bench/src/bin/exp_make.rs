//! §7.1 — parallel make. "The performance of the make program is
//! limited by the amount of parallelism in the recompilation process":
//! we sweep makefile shapes (chain = none, wide = maximal, project =
//! realistic) across machine counts and report simulated build times.
//!
//! Run: `cargo run --release -p jade-bench --bin exp_make`

use jade_apps::pmake::{self, Makefile};
use jade_bench::row;
use jade_sim::{Platform, SimExecutor};

fn build_time(mk: &Makefile, machines: usize) -> f64 {
    let mk = mk.clone();
    let (_, report) = SimExecutor::new(Platform::workstations(machines))
        .run(move |ctx| pmake::make_jade(ctx, &mk));
    report.time.as_secs_f64()
}

fn main() {
    let shapes: Vec<(&str, Makefile)> = vec![
        ("chain(12)", Makefile::chain(12, 8e6)),
        ("wide(12)", Makefile::wide(12, 8e6)),
        ("project(12)", Makefile::project(12, 8e6, 12e6)),
        ("random_dag(24)", Makefile::random_dag(24, 7)),
    ];
    let procs = [1usize, 2, 4, 8];

    println!("parallel make on a workstation network (simulated seconds)\n");
    let header: Vec<String> = std::iter::once("makefile".to_string())
        .chain(procs.iter().map(|p| format!("{p} ws")))
        .chain(std::iter::once("speedup@8".to_string()))
        .collect();
    println!("{}", row(&header, 14));

    for (name, mk) in &shapes {
        let times: Vec<f64> = procs.iter().map(|&p| build_time(mk, p)).collect();
        let mut cells = vec![name.to_string()];
        cells.extend(times.iter().map(|t| format!("{t:.3}")));
        cells.push(format!("{:.2}", times[0] / times[3]));
        println!("{}", row(&cells, 14));
    }

    // Shape checks: chain gains ~nothing, wide gains a lot, project in
    // between (its link step serializes the tail).
    let chain_speed = build_time(&shapes[0].1, 1) / build_time(&shapes[0].1, 8);
    let wide_speed = build_time(&shapes[1].1, 1) / build_time(&shapes[1].1, 8);
    let proj_speed = build_time(&shapes[2].1, 1) / build_time(&shapes[2].1, 8);
    assert!(chain_speed < 1.3, "chain must not speed up ({chain_speed:.2})");
    assert!(wide_speed > 3.0, "wide must speed up ({wide_speed:.2})");
    assert!(
        proj_speed > chain_speed && proj_speed < wide_speed + 0.5,
        "project ({proj_speed:.2}) should land between chain and wide"
    );
    println!("\nconcurrency is the makefile DAG's: chain ~1x, wide ~linear, project in between (§7.1).");
}
