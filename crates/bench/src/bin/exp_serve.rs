//! E-SERVE — job-server throughput/latency sweep.
//!
//! Measures the session layer itself: N client threads submit a
//! stream of pmake jobs into one `Session` over the shared-memory
//! executor (retrying on `Saturated` backpressure) and we record
//! end-to-end job latency (submit accept → report in hand) and total
//! throughput. Sweeping clients at a fixed job size shows how the
//! weighted-fair admission path scales with offered load; sweeping
//! job size at fixed clients separates the per-job serving overhead
//! from the work itself.
//!
//! The run double-checks serving semantics while it measures: every
//! job's result must equal the serial oracle, and every drain must
//! settle the admission counters.
//!
//! Run with: `cargo run --release -p jade-bench --bin exp_serve`
//! (`--small` shrinks the grid for CI, `--jobs N` jobs per client.)

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use jade_bench::row;
use jade_core::serve::{ServeConfig, SubmitError};
use jade_threads::{RunConfig, Runtime, ThreadedExecutor};

/// One cell of the sweep: `clients` submitter threads x `jobs` each,
/// pmake DAGs of `targets` targets, on a session with `slots` slots.
/// Returns (jobs/second, p50 latency, p99 latency).
fn serve_cell(
    clients: usize,
    jobs: usize,
    targets: usize,
    slots: usize,
) -> (f64, Duration, Duration) {
    let mk = Arc::new(jade_apps::pmake::Makefile::random_dag(targets, 3));
    let oracle = {
        let mk = mk.clone();
        jade_core::serial::SerialRuntime
            .execute(RunConfig::new(), move |ctx| jade_apps::pmake::make_jade(ctx, &mk))
            .expect("oracle run")
            .result
    };

    let exec = ThreadedExecutor::new(slots.max(2));
    let session =
        Arc::new(exec.open_session(ServeConfig::new().with_slots(slots).with_queue_cap(2 * slots)));
    let (lat_tx, lat_rx) = mpsc::channel::<Duration>();

    let wall = Instant::now();
    let submitters: Vec<_> = (0..clients)
        .map(|_| {
            let session = session.clone();
            let mk = mk.clone();
            let oracle = oracle.clone();
            let lat_tx = lat_tx.clone();
            std::thread::spawn(move || {
                for _ in 0..jobs {
                    let accepted = loop {
                        let mk = mk.clone();
                        match session.submit(RunConfig::new(), move |ctx| {
                            jade_apps::pmake::make_jade(ctx, &mk)
                        }) {
                            Ok(h) => break (Instant::now(), h),
                            Err(SubmitError::Saturated { .. }) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("submit failed: {e}"),
                        }
                    };
                    let rep = accepted.1.wait().expect("job completes");
                    assert_eq!(rep.result, oracle, "serving changed the answer");
                    lat_tx.send(accepted.0.elapsed()).unwrap();
                }
            })
        })
        .collect();
    for s in submitters {
        s.join().expect("submitter clean");
    }
    let elapsed = wall.elapsed();
    drop(lat_tx);

    let summary = Arc::into_inner(session).expect("all handles returned").drain();
    assert!(summary.stats.is_settled(), "drain did not settle: {}", summary.stats);
    let total = (clients * jobs) as u64;
    assert_eq!(summary.stats.completed, total);

    let mut lats: Vec<Duration> = lat_rx.into_iter().collect();
    lats.sort();
    let pct = |p: f64| lats[((lats.len() - 1) as f64 * p) as usize];
    (total as f64 / elapsed.as_secs_f64(), pct(0.50), pct(0.99))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let jobs: usize = args
        .iter()
        .position(|a| a == "--jobs")
        .map(|i| args[i + 1].parse().expect("--jobs needs a number"))
        .unwrap_or(if small { 8 } else { 32 });
    let slots = 4;

    println!(
        "job-server sweep: pmake jobs, {slots}-slot session on the threaded backend \
         ({} hardware threads; {jobs} jobs/client; best-effort timings)",
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    );

    println!("\nclients sweep (16-target DAGs)");
    println!("{}", row(&["clients".into(), "jobs/s".into(), "p50 ms".into(), "p99 ms".into()], 9));
    for &clients in &[1usize, 2, 4, 8, 16] {
        serve_cell(clients, jobs / 4, 16, slots); // warm-up
        let (rate, p50, p99) = serve_cell(clients, jobs, 16, slots);
        println!(
            "{}",
            row(
                &[
                    clients.to_string(),
                    format!("{rate:.0}"),
                    format!("{:.2}", p50.as_secs_f64() * 1e3),
                    format!("{:.2}", p99.as_secs_f64() * 1e3),
                ],
                9
            )
        );
    }

    println!("\njob-size sweep (8 clients)");
    println!("{}", row(&["targets".into(), "jobs/s".into(), "p50 ms".into(), "p99 ms".into()], 9));
    for &targets in &[4usize, 16, 64, 128] {
        serve_cell(8, jobs / 4, targets, slots); // warm-up
        let (rate, p50, p99) = serve_cell(8, jobs, targets, slots);
        println!(
            "{}",
            row(
                &[
                    targets.to_string(),
                    format!("{rate:.0}"),
                    format!("{:.2}", p50.as_secs_f64() * 1e3),
                    format!("{:.2}", p99.as_secs_f64() * 1e3),
                ],
                9
            )
        );
    }

    println!("\nall reports matched the serial oracle; every drain settled");
}
