//! Figure 7 — tracing a Jade execution on two message-passing
//! machines: task shipping to the idle machine, object moves (with
//! invalidation of the old version), read replication, suspension on
//! dynamic conflicts, and latency hiding.
//!
//! Run: `cargo run --release -p jade-bench --bin fig7_trace`

use jade_apps::cholesky::{self, SparseSym};
use jade_sim::{Platform, SimExecutor};

fn main() {
    // The paper's example factors a 5-column sparse matrix on two
    // machines connected by a network (a Mica-like pair here).
    let a = SparseSym::paper_example();
    let (l, report) = SimExecutor::new(Platform::mica(2))
        .logged()
        .run(move |ctx| cholesky::factor_program(ctx, &a));

    println!("== Figure 7: executing the Jade sparse Cholesky on two machines ==\n");
    print!("{}", report.log.as_deref().unwrap_or(""));

    println!("\n== summary ==");
    println!("simulated completion: {}", report.time);
    println!(
        "object moves: {}   read copies: {}   ownership upgrades: {}   invalidations: {}",
        report.traffic.moves, report.traffic.copies, report.traffic.upgrades,
        report.traffic.invalidations
    );
    println!(
        "messages: {}   bytes: {}   medium contention: {:.3}ms",
        report.net.messages,
        report.net.bytes,
        report.net.contention.as_secs_f64() * 1e3
    );

    // The checks that correspond to the paper's narration:
    let log = report.log.as_deref().unwrap();
    assert!(log.contains("moved from machine 0 to idle machine 1"),
        "some task must be shipped to the idle machine (Fig 7(b)-(c))");
    assert!(report.traffic.moves > 0, "write access must move a column (Fig 7(c))");
    assert!(report.traffic.copies > 0, "read access must replicate (Fig 7(c))");
    assert!(report.traffic.invalidations > 0, "old versions must be invalidated");
    // The factored matrix is still correct.
    let a2 = SparseSym::paper_example();
    let mut want = a2.clone();
    cholesky::serial::factor(&mut want);
    assert_eq!(l.cols, want.cols, "distributed execution preserved serial semantics");
    println!("\nresult identical to the serial factorization — serial semantics preserved.");
}
