//! Microbenchmarks of the runtime costs the paper's §8 discusses:
//! "The run-time overhead associated with detecting and managing
//! dynamic concurrency limits the grain size that Jade programs can
//! efficiently use." Task creation/retirement, dynamic access checks,
//! with-cont updates, and the typed transport with and without format
//! conversion.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use jade_core::graph::DepGraph;
use jade_core::ids::{Placement, TaskId};
use jade_core::prelude::*;
use jade_core::spec::SpecBuilder;
use jade_threads::{RunConfig, Runtime, ThreadedExecutor};
use jade_transport::{DataLayout, Message, MsgKind, PortDecoder, PortEncoder, Portable};

fn engine_task_lifecycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("create+finish independent task", |b| {
        b.iter_batched_ref(
            || {
                let mut g = DepGraph::new();
                let o = g.create_object(TaskId::ROOT);
                (g, o)
            },
            |(g, o)| {
                let mut sb = SpecBuilder::new();
                sb.rd_wr(*o);
                let (tid, _) = g
                    .create_task(TaskId::ROOT, "t", sb.build().0, Placement::Any)
                    .unwrap();
                g.start_task(tid);
                g.finish_task(tid);
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("access check (granted)", |b| {
        let mut g = DepGraph::new();
        let o = g.create_object(TaskId::ROOT);
        let mut sb = SpecBuilder::new();
        sb.rd_wr(o);
        let (tid, _) = g.create_task(TaskId::ROOT, "t", sb.build().0, Placement::Any).unwrap();
        g.start_task(tid);
        b.iter(|| {
            black_box(g.check_access(tid, o, AccessKind::Read).unwrap());
        })
    });
    g.bench_function("with_cont convert+retire", |b| {
        b.iter_batched_ref(
            || {
                let mut g = DepGraph::new();
                let o = g.create_object(TaskId::ROOT);
                let mut sb = SpecBuilder::new();
                sb.df_rd(o);
                let (t1, _) =
                    g.create_task(TaskId::ROOT, "t1", sb.build().0, Placement::Any).unwrap();
                g.start_task(t1);
                (g, o, t1)
            },
            |(g, o, t1)| {
                let (blocked, _) = g
                    .with_cont(*t1, vec![(*o, jade_core::spec::ContOp::ToRd)])
                    .unwrap();
                assert!(!blocked);
                g.with_cont(*t1, vec![(*o, jade_core::spec::ContOp::NoRd)]).unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn threaded_task_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("threaded");
    g.sample_size(10);
    for tasks in [256u64, 1024] {
        g.throughput(Throughput::Elements(tasks));
        g.bench_function(format!("{tasks} tasks, 4 workers"), |b| {
            let exec = ThreadedExecutor::new(4);
            b.iter(|| {
                let rep = exec
                    .execute(RunConfig::new(), move |ctx| {
                        let xs: Vec<Shared<f64>> = (0..32).map(|i| ctx.create(i as f64)).collect();
                        for i in 0..tasks {
                            let x = xs[(i % 32) as usize];
                            ctx.withonly("inc", |s| { s.rd_wr(x); }, move |c| {
                                *c.wr(&x) += 1.0;
                            });
                        }
                        xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
                    })
                    .expect("clean run");
                black_box(rep.result);
            })
        });
    }
    g.finish();
}

fn sharded_engine_lifecycle(c: &mut Criterion) {
    // The sharded engine's counterpart of the `engine` group above:
    // the same one-task lifecycle through the lock-table commit path
    // the work-stealing executor uses.
    use jade_core::engine::ShardedEngine;
    let mut g = c.benchmark_group("sharded-engine");
    g.throughput(Throughput::Elements(1));
    g.bench_function("alloc+attach+start+finish independent task", |b| {
        b.iter_batched_ref(
            || {
                let eng = ShardedEngine::new();
                let o = eng.create_object(TaskId::ROOT);
                (eng, o)
            },
            |(eng, o)| {
                let mut sb = SpecBuilder::new();
                sb.rd_wr(*o);
                let tid = eng.alloc_task(TaskId::ROOT, "t", Placement::Any);
                eng.attach_task(tid, sb.build().0).unwrap();
                eng.start_task(tid);
                eng.finish_task(tid);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Create/finish churn at a fixed live-set size: the steady-state
/// regime the generational slot slab is built for. Every iteration
/// retires the oldest live task and creates a replacement through the
/// caller-owned scratch buffers, so after warm-up the engine performs
/// zero slab growth and zero transient allocation — the measured cost
/// is pure slot-recycling plus queue maintenance.
fn slot_recycle_churn(c: &mut Criterion) {
    use jade_core::engine::{EngineScratch, ShardedEngine};
    use std::collections::VecDeque;
    let mut g = c.benchmark_group("slot-recycle");
    g.throughput(Throughput::Elements(1));
    for live in [1usize, 8, 64] {
        g.bench_function(format!("create/finish churn, live-set {live}"), |b| {
            let eng = ShardedEngine::new();
            let objs: Vec<_> = (0..live).map(|_| eng.create_object(TaskId::ROOT)).collect();
            let mut scratch = EngineScratch::default();
            let mut window: VecDeque<(jade_core::ids::TaskId, usize)> = VecDeque::new();
            for (i, &o) in objs.iter().enumerate() {
                let mut sb = SpecBuilder::new();
                sb.rd_wr(o);
                let tid = eng.alloc_task(TaskId::ROOT, "t", Placement::Any);
                eng.attach_task_with(tid, &sb.build().0, &mut scratch).unwrap();
                eng.start_task(tid);
                window.push_back((tid, i));
            }
            b.iter(|| {
                let (tid, slot) = window.pop_front().expect("window is non-empty");
                eng.finish_task_with(tid, &mut scratch);
                let mut sb = SpecBuilder::new();
                sb.rd_wr(objs[slot]);
                let t2 = eng.alloc_task(TaskId::ROOT, "t", Placement::Any);
                eng.attach_task_with(t2, &sb.build().0, &mut scratch).unwrap();
                eng.start_task(t2);
                window.push_back((t2, slot));
            });
            while let Some((tid, _)) = window.pop_front() {
                eng.finish_task_with(tid, &mut scratch);
            }
            // The whole point: the slab never outgrows the live-set
            // (modulo per-shard slack), however long the bench ran.
            let peak = eng.stats.snapshot().peak_task_slots;
            assert!(
                peak <= (live as u64) + 17,
                "slab leaked: peak {peak} slots for live-set {live}"
            );
            black_box(peak);
        });
    }
    g.finish();
}

/// Spawn/dispatch throughput of the work-stealing scheduler on the
/// E-SCHED fine-grained independent workload (trivial bodies, one
/// object per in-flight task slot), swept across worker counts. The
/// interesting read-out is the *shape*: the sharded scheduler must not
/// lose throughput as workers are added the way a global-lock
/// scheduler convoys.
fn dispatch_throughput(c: &mut Criterion) {
    const TASKS: u64 = 2048;
    let mut g = c.benchmark_group("dispatch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(TASKS));
    for workers in [1usize, 2, 4, 8, 16] {
        g.bench_function(format!("independent tasks, {workers} workers"), |b| {
            let exec = ThreadedExecutor::new(workers);
            b.iter(|| {
                let rep = exec
                    .execute(RunConfig::new(), move |ctx| {
                        let xs: Vec<Shared<u64>> = (0..64).map(|_| ctx.create(0u64)).collect();
                        for i in 0..TASKS {
                            let x = xs[(i % 64) as usize];
                            ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| {
                                *c.wr(&x) += 1;
                            });
                        }
                        xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
                    })
                    .expect("clean run");
                assert_eq!(black_box(rep.result), TASKS);
            })
        });
    }
    g.finish();
}

/// The rayon-parity reference points: the same independent and
/// fork-join task shapes as `dispatch`/`exp_sched`, but run on a plain
/// scoped-threads pool with per-task dispatch and no Jade semantics
/// (see `jade_bench::baseline`). Read next to the `dispatch` group:
/// the ratio is the dynamic-concurrency-detection overhead.
fn baseline_pool_throughput(c: &mut Criterion) {
    const TASKS: u64 = 2048;
    let mut g = c.benchmark_group("baseline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(TASKS));
    for workers in [1usize, 2, 4, 8] {
        g.bench_function(format!("independent tasks (scoped pool), {workers} workers"), |b| {
            b.iter(|| black_box(jade_bench::baseline::independent_rate(workers, TASKS, 64)))
        });
    }
    const FAN: usize = 8;
    const WAVES: u64 = TASKS / (FAN as u64 + 1);
    g.throughput(Throughput::Elements(WAVES * (FAN as u64 + 1)));
    for workers in [1usize, 4, 8] {
        g.bench_function(format!("fork-join fan=8 (scoped pool), {workers} workers"), |b| {
            b.iter(|| black_box(jade_bench::baseline::forkjoin_rate(workers, WAVES, FAN)))
        });
    }
    g.finish();
}

/// Jade fork-join waves (fan writers + a joining reader per wave) at
/// the shape the `baseline` group mirrors without semantics.
fn forkjoin_throughput(c: &mut Criterion) {
    const FAN: usize = 8;
    const WAVES: u64 = 227;
    let mut g = c.benchmark_group("forkjoin");
    g.sample_size(10);
    g.throughput(Throughput::Elements(WAVES * (FAN as u64 + 1)));
    for workers in [1usize, 4, 8] {
        g.bench_function(format!("fork-join fan=8, {workers} workers"), |b| {
            let exec = ThreadedExecutor::new(workers);
            b.iter(|| {
                let rep = exec
                    .execute(RunConfig::new(), move |ctx| {
                        let xs: Vec<Shared<u64>> = (0..FAN).map(|_| ctx.create(0u64)).collect();
                        for _ in 0..WAVES {
                            for &x in &xs {
                                ctx.withonly("fork", |s| { s.rd_wr(x); }, move |c| {
                                    *c.wr(&x) += 1;
                                });
                            }
                            let ys = xs.clone();
                            ctx.withonly(
                                "join",
                                |s| {
                                    for &x in &xs {
                                        s.rd(x);
                                    }
                                },
                                move |c| {
                                    black_box(ys.iter().map(|x| *c.rd(x)).sum::<u64>());
                                },
                            );
                        }
                        xs.iter().map(|x| *ctx.rd(x)).sum::<u64>()
                    })
                    .expect("clean run");
                assert_eq!(black_box(rep.result), WAVES * FAN as u64);
            })
        });
    }
    g.finish();
}

fn transport_conversion(c: &mut Criterion) {
    let column: Vec<f64> = (0..4096).map(|i| i as f64 * 0.5).collect();
    let bytes = 8 * column.len() as u64;
    let mut g = c.benchmark_group("transport");
    g.throughput(Throughput::Bytes(bytes));
    g.bench_function("encode+decode column, native layout", |b| {
        b.iter(|| {
            let mut e = PortEncoder::new(DataLayout::x86_64());
            column.encode(&mut e);
            let buf = e.finish();
            let mut d = PortDecoder::new(&buf, DataLayout::x86_64());
            black_box(Vec::<f64>::decode(&mut d).expect("intact buffer"));
        })
    });
    g.bench_function("encode+decode column, byte-swapped wire", |b| {
        b.iter(|| {
            let mut e = PortEncoder::new(DataLayout::sparc());
            column.encode(&mut e);
            let buf = e.finish();
            let mut d = PortDecoder::new(&buf, DataLayout::sparc());
            black_box(Vec::<f64>::decode(&mut d).expect("intact buffer"));
        })
    });
    g.bench_function("message pack+unpack (typed, sparc wire)", |b| {
        b.iter(|| {
            let msg = Message::pack(MsgKind::ObjectMove, 0, 1, 7, DataLayout::sparc(), &column);
            black_box(msg.unpack::<Vec<f64>>());
        })
    });
    g.finish();
}

fn serial_elision_overhead(c: &mut Criterion) {
    // The cost of running a Jade program serially versus plain code:
    // the paper's hierarchical-model argument wants this small.
    let mut g = c.benchmark_group("elision");
    g.throughput(Throughput::Elements(512));
    g.bench_function("serial elision, 512 checked tasks", |b| {
        b.iter(|| {
            let (v, _) = jade_core::serial::run(|ctx| {
                let acc = ctx.create(0.0f64);
                for _ in 0..512 {
                    ctx.withonly("t", |s| { s.rd_wr(acc); }, move |c| {
                        *c.wr(&acc) += 1.0;
                    });
                }
                *ctx.rd(&acc)
            });
            black_box(v)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    engine_task_lifecycle,
    sharded_engine_lifecycle,
    slot_recycle_churn,
    dispatch_throughput,
    forkjoin_throughput,
    baseline_pool_throughput,
    threaded_task_throughput,
    transport_conversion,
    serial_elision_overhead
);
criterion_main!(benches);
