//! Figure-level workloads under Criterion, at reduced size so the
//! statistical runner stays fast. The full-size tables come from the
//! `fig9_lws_times` / `fig10_lws_speedup` binaries; these benches
//! track the *wall-clock cost of simulating them* and the real
//! shared-memory performance of the applications.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use jade_apps::cholesky::{self, SparseSym};
use jade_apps::lws::{self, WaterSystem};
use jade_apps::video;
use jade_bench::lws_sim;
use jade_sim::{Platform, SimExecutor};
use jade_threads::{RunConfig, Runtime, ThreadedExecutor};

fn fig9_small(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9-small");
    g.sample_size(10);
    for name in ["dash", "ipsc860", "mica"] {
        g.bench_function(format!("lws n=300 x8 on {name}"), |b| {
            b.iter(|| {
                let platform = jade_bench::platform_by_name(name, 8);
                black_box(lws_sim(platform, 300, 1, 42).time)
            })
        });
    }
    g.finish();
}

fn cholesky_threaded(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky");
    g.sample_size(10);
    let a = SparseSym::random_spd(150, 6, 9);
    g.bench_function("serial factor n=150", |b| {
        b.iter_batched_ref(
            || a.clone(),
            cholesky::serial::factor,
            criterion::BatchSize::SmallInput,
        )
    });
    for workers in [1usize, 4] {
        g.bench_function(format!("jade threaded factor n=150, {workers}w"), |b| {
            let exec = ThreadedExecutor::new(workers);
            b.iter(|| {
                let a = a.clone();
                black_box(
                    exec.execute(RunConfig::new(), move |ctx| cholesky::factor_program(ctx, &a))
                        .expect("clean run")
                        .result,
                )
            })
        });
    }
    g.finish();
}

fn lws_threaded(c: &mut Criterion) {
    let mut g = c.benchmark_group("lws-threads");
    g.sample_size(10);
    let sys = WaterSystem::new(512, 3);
    g.bench_function("serial n=512 1 step", |b| {
        b.iter_batched_ref(
            || sys.clone(),
            |s| black_box(lws::serial::run(s, 1, 0.002)),
            criterion::BatchSize::SmallInput,
        )
    });
    for workers in [1usize, 4] {
        g.bench_function(format!("jade threaded n=512 1 step, {workers}w"), |b| {
            let exec = ThreadedExecutor::new(workers);
            b.iter(|| {
                let s = sys.clone();
                black_box(
                    exec.execute(RunConfig::new(), move |ctx| lws::run_jade(ctx, &s, 8, 1, 0.002))
                        .expect("clean run")
                        .result,
                )
            })
        });
    }
    g.finish();
}

fn video_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("video");
    g.sample_size(10);
    g.bench_function("hrv pipeline 8 frames x2 accels (simulated)", |b| {
        b.iter(|| {
            let (r, _) = SimExecutor::new(Platform::hrv(2))
                .run(|ctx| video::video_pipeline(ctx, 8, 160, 120));
            black_box(r)
        })
    });
    g.finish();
}

criterion_group!(benches, fig9_small, cholesky_threaded, lws_threaded, video_sim);
criterion_main!(benches);
