//! Criterion versions of the design-choice ablations (DESIGN.md
//! A1-A4): each measures the simulated completion time under both
//! settings so regressions in either the mechanism or its benefit are
//! caught by `cargo bench`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use jade_apps::cholesky::{self, SparseSym, SubstMode};
use jade_sim::{Platform, SimExecutor};

fn locality_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("A1-locality");
    g.sample_size(10);
    let a = SparseSym::random_spd(80, 4, 5);
    for on in [true, false] {
        g.bench_function(format!("cholesky mica x4, locality={on}"), |b| {
            b.iter(|| {
                let a = a.clone();
                let (_, r) = SimExecutor::new(Platform::mica(4))
                    .locality(on)
                    .run(move |ctx| cholesky::factor_program(ctx, &a));
                black_box(r.time)
            })
        });
    }
    g.finish();
}

fn lookahead_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("A2-latency-hiding");
    g.sample_size(10);
    let a = SparseSym::random_spd(80, 4, 6);
    for depth in [0usize, 2] {
        g.bench_function(format!("cholesky ipsc860 x4, lookahead={depth}"), |b| {
            b.iter(|| {
                let a = a.clone();
                let (_, r) = SimExecutor::new(Platform::ipsc860(4))
                    .lookahead(depth)
                    .run(move |ctx| cholesky::factor_program(ctx, &a));
                black_box(r.time)
            })
        });
    }
    g.finish();
}

fn granularity_ablation(c: &mut Criterion) {
    // Columnwise vs supernodal task/data grain (§3.2).
    let mut g = c.benchmark_group("grain-supernodes");
    g.sample_size(10);
    let a = SparseSym::random_spd(100, 6, 7);
    g.bench_function("columnwise dash x4", |b| {
        b.iter(|| {
            let a = a.clone();
            let (_, r) = SimExecutor::new(Platform::dash(4))
                .run(move |ctx| cholesky::factor_program(ctx, &a));
            black_box(r.time)
        })
    });
    g.bench_function("supernodal dash x4", |b| {
        b.iter(|| {
            let a = a.clone();
            let (_, r) = SimExecutor::new(Platform::dash(4))
                .run(move |ctx| cholesky::factor_super_program(ctx, &a));
            black_box(r.time)
        })
    });
    g.finish();
}

fn pipelining_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("A4-pipelining");
    g.sample_size(10);
    let a = SparseSym::random_spd(80, 4, 8);
    let rhs: Vec<f64> = (0..80).map(|i| 1.0 + i as f64).collect();
    for mode in [SubstMode::TaskBoundary, SubstMode::Pipelined] {
        g.bench_function(format!("factor+subst dash x2, {mode:?}"), |b| {
            b.iter(|| {
                let (a, rhs) = (a.clone(), rhs.clone());
                let (_, r) = SimExecutor::new(Platform::dash(2))
                    .run(move |ctx| cholesky::factor_then_subst(ctx, &a, &rhs, mode));
                black_box(r.time)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    locality_ablation,
    lookahead_ablation,
    granularity_ablation,
    pipelining_ablation
);
criterion_main!(benches);
