//! Simulation results: what a run reports back.

use jade_core::stats::RuntimeStats;

use crate::faults::FaultStats;
use crate::network::NetStats;
use crate::time::{SimSpan, SimTime};

/// Object-manager traffic counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ObjTraffic {
    /// Authoritative versions moved (write fetches).
    pub moves: u64,
    /// Read replicas created.
    pub copies: u64,
    /// Ownership transfers satisfied without data (a valid replica was
    /// already resident at the new writer).
    pub upgrades: u64,
    /// Replicas invalidated by writes.
    pub invalidations: u64,
    /// Transfers that crossed data formats (byte order / padding).
    pub conversions: u64,
}

/// Everything a simulated execution reports.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Platform name ("dash", "ipsc860", "mica", ...).
    pub platform: String,
    /// Machine count.
    pub machines: usize,
    /// Simulated completion time (all tasks finished).
    pub time: SimTime,
    /// Dependency-engine counters.
    pub stats: RuntimeStats,
    /// Network counters.
    pub net: NetStats,
    /// Object-manager counters.
    pub traffic: ObjTraffic,
    /// Fault-injection and recovery counters (all zero without a
    /// fault plan).
    pub faults: FaultStats,
    /// Per-machine compute-busy time.
    pub busy: Vec<SimSpan>,
    /// The rendered Figure 7-style narrative, when logging was on.
    pub log: Option<String>,
    /// The dynamic task graph, when tracing was on.
    pub trace: Option<jade_core::trace::TaskGraphTrace>,
}

impl SimReport {
    /// Mean machine utilization over the run: busy time / (machines ×
    /// completion time).
    pub fn utilization(&self) -> f64 {
        if self.time == SimTime::ZERO || self.machines == 0 {
            return 0.0;
        }
        let busy: f64 = self.busy.iter().map(|b| b.as_secs_f64()).sum();
        busy / (self.machines as f64 * self.time.as_secs_f64())
    }

    /// Speedup relative to a baseline (typically the 1-machine run of
    /// the same workload): `base_time / this_time`.
    pub fn speedup_vs(&self, base: &SimReport) -> f64 {
        base.time.as_secs_f64() / self.time.as_secs_f64()
    }
}

impl std::fmt::Display for SimReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} x{}: {} (util {:.0}%)",
            self.platform,
            self.machines,
            self.time,
            self.utilization() * 100.0
        )?;
        writeln!(
            f,
            "  net: {} msgs, {} bytes, contention {:.3}s",
            self.net.messages,
            self.net.bytes,
            self.net.contention.as_secs_f64()
        )?;
        write!(
            f,
            "  objects: {} moves, {} copies, {} upgrades, {} invalidations, {} conversions",
            self.traffic.moves,
            self.traffic.copies,
            self.traffic.upgrades,
            self.traffic.invalidations,
            self.traffic.conversions
        )?;
        if self.faults.crashes > 0 || self.net.retransmits > 0 || self.net.dropped > 0 {
            write!(
                f,
                "\n  faults: {} crashes, {} recoveries, {} degraded; {} dropped, \
                 {} timeouts, {} retransmits",
                self.faults.crashes,
                self.faults.recoveries,
                self.faults.degraded,
                self.net.dropped,
                self.net.timeouts,
                self.net.retransmits
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(machines: usize, secs: f64, busy_each: f64) -> SimReport {
        SimReport {
            platform: "test".into(),
            machines,
            time: SimTime((secs * 1e9) as u64),
            stats: RuntimeStats::default(),
            net: NetStats::default(),
            traffic: ObjTraffic::default(),
            faults: FaultStats::default(),
            busy: vec![SimSpan((busy_each * 1e9) as u64); machines],
            log: None,
            trace: None,
        }
    }

    #[test]
    fn utilization_and_speedup() {
        let base = report(1, 10.0, 10.0);
        let par = report(4, 3.0, 2.5);
        assert!((base.utilization() - 1.0).abs() < 1e-9);
        assert!((par.utilization() - 2.5 / 3.0).abs() < 1e-9);
        assert!((par.speedup_vs(&base) - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn display_compiles_counters() {
        let s = report(2, 1.0, 0.5).to_string();
        assert!(s.contains("util"));
        assert!(s.contains("moves"));
    }
}
