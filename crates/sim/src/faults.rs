//! Deterministic fault injection for the simulated platform.
//!
//! A [`FaultPlan`] describes, from a single seed, every fault a run
//! will experience: message drops (with ack/timeout/retransmission
//! recovery), delay spikes, transient machine crashes at task
//! boundaries, and per-machine slowdown windows. Because the event
//! loop is deterministic and every random draw comes from one seeded
//! generator consumed in loop order, the same plan produces the same
//! fault sequence — and therefore the same event trace — on every run.
//!
//! The recovery model follows from Jade's semantics: a task's access
//! specification fences all of its effects, and effects commit only
//! when the task finishes, so a task lost to a crash can simply be
//! re-executed elsewhere. Crashes fire at *task boundaries* (the
//! victim has no live task contexts), so there are never uncommitted
//! writes to roll back; the directory reassigns residency to surviving
//! replicas, and values solely resident on the crashed machine remain
//! on its stable store, reachable again when the machine rejoins.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::time::{SimSpan, SimTime};

/// One transient machine crash: `machine` goes down at its next clean
/// task boundary once it has started `after_starts` tasks, and rejoins
/// `down_for` later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashSpec {
    /// The machine that crashes.
    pub machine: usize,
    /// Task starts on the machine before the crash arms.
    pub after_starts: u64,
    /// Outage duration before the machine rejoins.
    pub down_for: SimSpan,
}

/// A window during which a machine runs slower (e.g. paging, a co-
/// scheduled job): its CPU speed is divided by `factor` while
/// simulated time is inside `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownWindow {
    /// The affected machine.
    pub machine: usize,
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
    /// Speed divisor (≥ 1.0).
    pub factor: f64,
}

/// A seeded, fully deterministic description of the faults a simulated
/// run experiences.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every probabilistic draw (message drops, spikes).
    pub seed: u64,
    /// Probability each message transmission is dropped.
    pub drop_prob: f64,
    /// Probability a delivered message suffers an extra delay spike.
    pub delay_spike_prob: f64,
    /// The extra delay added to spiked messages.
    pub delay_spike: SimSpan,
    /// Sender timeout before the first retransmission; doubles per
    /// attempt (bounded exponential backoff).
    pub retransmit_timeout: SimSpan,
    /// Backoff doubling cap, as a multiple of `retransmit_timeout`.
    pub backoff_cap: u64,
    /// Transmissions attempted per message before the link layer is
    /// assumed to get it through regardless (keeps delivery bounded).
    pub max_msg_attempts: u32,
    /// Executions attempted per task before recovery degrades it to
    /// the first surviving machine (serial fallback).
    pub max_task_attempts: u32,
    /// Transient machine crashes.
    pub crashes: Vec<CrashSpec>,
    /// Per-machine slowdown windows.
    pub slowdowns: Vec<SlowdownWindow>,
}

impl FaultPlan {
    /// A plan with no faults, from which builder methods add them.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_prob: 0.0,
            delay_spike_prob: 0.0,
            delay_spike: SimSpan::ZERO,
            retransmit_timeout: SimSpan::from_millis(2),
            backoff_cap: 8,
            max_msg_attempts: 16,
            max_task_attempts: 3,
            crashes: Vec::new(),
            slowdowns: Vec::new(),
        }
    }

    /// Drop each transmission with probability `p` (clamped to
    /// `[0, 1)`; reliable delivery retransmits after a timeout).
    pub fn drop_prob(mut self, p: f64) -> Self {
        self.drop_prob = p.clamp(0.0, 0.999_999);
        self
    }

    /// Add delay spikes: with probability `p` a delivered message
    /// arrives `extra` late.
    pub fn delay_spikes(mut self, p: f64, extra: SimSpan) -> Self {
        self.delay_spike_prob = p.clamp(0.0, 1.0);
        self.delay_spike = extra;
        self
    }

    /// Add a transient crash of `machine` after it has started
    /// `after_starts` tasks, lasting `down_for`.
    pub fn crash(mut self, machine: usize, after_starts: u64, down_for: SimSpan) -> Self {
        self.crashes.push(CrashSpec { machine, after_starts, down_for });
        self
    }

    /// Add a slowdown window on `machine`.
    pub fn slowdown(mut self, machine: usize, from: SimTime, until: SimTime, factor: f64) -> Self {
        self.slowdowns.push(SlowdownWindow { machine, from, until, factor: factor.max(1.0) });
        self
    }

    /// Override the re-execution budget per task.
    pub fn max_task_attempts(mut self, n: u32) -> Self {
        self.max_task_attempts = n.max(1);
        self
    }
}

/// Fault and recovery counters a faulted run reports.
///
/// This is the *uniform* fault vocabulary from `jade-core`, shared
/// with the real multi-process backend so both report recovery the
/// same way ([`jade_core::runtime::Report::faults`]). In the sim:
/// `crashes` counts transient machine crashes that fired, `recoveries`
/// counts forced task re-executions (a task reassigned twice counts
/// twice), and `degraded` counts tasks that exhausted their budget and
/// were pinned to the first surviving machine.
pub use jade_core::stats::FaultStats;

/// Live injection state for one run: the seeded generator plus which
/// crashes have fired, and the reliability counters that surface in
/// [`crate::NetStats`].
#[derive(Debug)]
pub(crate) struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    fired: Vec<bool>,
    /// Retransmissions performed (drops recovered from).
    pub retransmits: u64,
    /// Sender timeouts observed (equals retransmits in this model).
    pub timeouts: u64,
    /// Transmissions lost on the wire.
    pub dropped: u64,
}

impl FaultInjector {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed);
        let fired = vec![false; plan.crashes.len()];
        FaultInjector { plan, rng, fired, retransmits: 0, timeouts: 0, dropped: 0 }
    }

    pub(crate) fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether this transmission is lost. Draws from the seeded
    /// stream even at probability zero would be wasteful, so zero
    /// short-circuits without consuming randomness.
    pub(crate) fn roll_drop(&mut self) -> bool {
        self.plan.drop_prob > 0.0 && self.rng.gen_bool(self.plan.drop_prob)
    }

    /// Extra latency this delivery suffers, if it spikes.
    pub(crate) fn roll_spike(&mut self) -> Option<SimSpan> {
        if self.plan.delay_spike_prob > 0.0 && self.rng.gen_bool(self.plan.delay_spike_prob) {
            Some(self.plan.delay_spike)
        } else {
            None
        }
    }

    /// Sender backoff before retransmission `attempt` (1-based):
    /// bounded exponential, `timeout × min(2^(attempt-1), cap)`.
    pub(crate) fn backoff(&self, attempt: u32) -> SimSpan {
        let mult = 1u64.checked_shl(attempt.saturating_sub(1)).unwrap_or(u64::MAX);
        SimSpan(self.plan.retransmit_timeout.0.saturating_mul(mult.min(self.plan.backoff_cap)))
    }

    /// Index of an armed, unfired crash for `machine` given its start
    /// count, if any.
    pub(crate) fn armed_crash(&self, machine: usize, starts: u64) -> Option<usize> {
        self.plan
            .crashes
            .iter()
            .enumerate()
            .find(|(i, c)| !self.fired[*i] && c.machine == machine && starts >= c.after_starts)
            .map(|(i, _)| i)
    }

    /// Commit crash `idx` as fired; returns its outage duration.
    pub(crate) fn fire_crash(&mut self, idx: usize) -> SimSpan {
        self.fired[idx] = true;
        self.plan.crashes[idx].down_for
    }

    /// The CPU speed divisor for `machine` at `now` (1.0 when no
    /// window applies; overlapping windows compound).
    pub(crate) fn slowdown(&self, machine: usize, now: SimTime) -> f64 {
        self.plan
            .slowdowns
            .iter()
            .filter(|w| w.machine == machine && w.from <= now && now < w.until)
            .map(|w| w.factor)
            .product::<f64>()
            .max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_accumulates() {
        let p = FaultPlan::new(7)
            .drop_prob(0.1)
            .delay_spikes(0.05, SimSpan::from_millis(3))
            .crash(1, 2, SimSpan::from_millis(50))
            .slowdown(0, SimTime(0), SimTime(1000), 2.0);
        assert_eq!(p.seed, 7);
        assert_eq!(p.crashes.len(), 1);
        assert_eq!(p.slowdowns.len(), 1);
        assert!(p.drop_prob > 0.0);
    }

    #[test]
    fn drop_rolls_are_deterministic_per_seed() {
        let rolls = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::new(seed).drop_prob(0.5));
            (0..64).map(|_| inj.roll_drop()).collect::<Vec<bool>>()
        };
        assert_eq!(rolls(1), rolls(1));
        assert_ne!(rolls(1), rolls(2));
        assert!(rolls(1).iter().any(|&b| b) && rolls(1).iter().any(|&b| !b));
    }

    #[test]
    fn backoff_is_bounded_exponential() {
        let inj = FaultInjector::new(FaultPlan::new(0));
        let t = inj.plan().retransmit_timeout.0;
        assert_eq!(inj.backoff(1).0, t);
        assert_eq!(inj.backoff(2).0, 2 * t);
        assert_eq!(inj.backoff(3).0, 4 * t);
        // Capped at backoff_cap × timeout.
        assert_eq!(inj.backoff(30).0, inj.plan().backoff_cap * t);
    }

    #[test]
    fn crash_arms_at_threshold_and_fires_once() {
        let mut inj = FaultInjector::new(FaultPlan::new(0).crash(2, 3, SimSpan::from_millis(10)));
        assert!(inj.armed_crash(2, 2).is_none());
        assert!(inj.armed_crash(1, 99).is_none());
        let idx = inj.armed_crash(2, 3).expect("armed");
        assert_eq!(inj.fire_crash(idx), SimSpan::from_millis(10));
        assert!(inj.armed_crash(2, 99).is_none(), "a crash fires once");
    }

    #[test]
    fn slowdown_windows_apply_in_range_only() {
        let inj = FaultInjector::new(FaultPlan::new(0).slowdown(
            1,
            SimTime(100),
            SimTime(200),
            3.0,
        ));
        assert_eq!(inj.slowdown(1, SimTime(50)), 1.0);
        assert_eq!(inj.slowdown(1, SimTime(150)), 3.0);
        assert_eq!(inj.slowdown(1, SimTime(200)), 1.0);
        assert_eq!(inj.slowdown(0, SimTime(150)), 1.0);
    }
}
