//! Task processes: running real Rust task bodies under simulated time.
//!
//! Task bodies are ordinary closures (the same closures the serial and
//! threaded executors run), so the simulation computes *real data
//! values* — determinism tests compare them bitwise against the serial
//! elision. Each *started* task runs on its own OS thread, but the
//! simulator enforces strict alternation: exactly one thread (either
//! the event loop or a single task process) runs at any moment,
//! synchronized by rendezvous channels. The event loop *steps* a task
//! by sending it a response and blocking until the task's next
//! request. This makes the simulation fully deterministic while
//! letting task bodies block mid-execution (`with-cont`, ceded
//! accesses) exactly like the paper's tasks do.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crossbeam::channel::{bounded, Receiver, Sender};
use jade_core::error::JadeError;
use jade_core::ids::{ObjectId, Placement, TaskId};
use jade_core::spec::{ContOp, Declaration};
use jade_core::store::Slot;

/// A task body as shipped to the simulator.
pub type SimBody = Box<dyn FnOnce(&mut crate::runtime::SimCtx) + Send + 'static>;

/// Requests a task process sends to the event loop.
pub enum ProcReq {
    /// Account compute work (advances the machine's clock).
    Charge(f64),
    /// `withonly`: create a child task.
    Withonly {
        /// Task label for traces.
        label: String,
        /// Built declarations.
        decls: Vec<Declaration>,
        /// Placement request.
        placement: Placement,
        /// The child's body.
        body: SimBody,
    },
    /// `with-cont`: update the access specification.
    WithCont(Vec<(ObjectId, ContOp)>),
    /// Checked access to an object; the loop replies with the local
    /// version's slot once the access is enabled and resident.
    Access {
        /// Object to access.
        object: ObjectId,
        /// Read or write.
        kind: jade_core::spec::AccessKind,
    },
    /// Allocate a shared object (the slot carries the initial value).
    CreateObject {
        /// Debug name.
        name: String,
        /// Initial local version.
        slot: Slot,
    },
    /// Body returned normally.
    Done,
    /// Body panicked; the message describes the panic. When the panic
    /// was raised by `jade_core::ctx::violation`, the typed error is
    /// recovered from the proc thread's thread-local and carried
    /// alongside so the loop can surface a typed `JadeFault`.
    Panicked {
        /// The panic payload rendered as text.
        message: String,
        /// The typed violation, when the panic came from `violation`.
        violation: Option<JadeError>,
    },
}

impl std::fmt::Debug for ProcReq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcReq::Charge(w) => write!(f, "Charge({w})"),
            ProcReq::Withonly { label, .. } => write!(f, "Withonly({label})"),
            ProcReq::WithCont(ops) => write!(f, "WithCont({} ops)", ops.len()),
            ProcReq::Access { object, kind } => write!(f, "Access({object}, {kind})"),
            ProcReq::CreateObject { name, .. } => write!(f, "CreateObject({name})"),
            ProcReq::Done => write!(f, "Done"),
            ProcReq::Panicked { message, .. } => write!(f, "Panicked({message})"),
        }
    }
}

/// Responses the event loop sends to a task process.
pub enum ProcResp {
    /// Continue (charge elapsed, child created, with-cont satisfied).
    Proceed,
    /// The requested object's local version.
    Object(Slot),
    /// The new object's id.
    Created(ObjectId),
    /// A programming-model violation; the ctx panics with it.
    Violation(JadeError),
}

impl std::fmt::Debug for ProcResp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProcResp::Proceed => write!(f, "Proceed"),
            ProcResp::Object(_) => write!(f, "Object"),
            ProcResp::Created(o) => write!(f, "Created({o})"),
            ProcResp::Violation(e) => write!(f, "Violation({e})"),
        }
    }
}

/// The event-loop side of one task process.
pub struct ProcHandle {
    req_rx: Receiver<ProcReq>,
    resp_tx: Sender<ProcResp>,
    _join: std::thread::JoinHandle<()>,
}

impl ProcHandle {
    /// Send a response to the task and block until its next request —
    /// the strict-alternation step that keeps the simulation
    /// deterministic.
    pub fn step(&self, resp: ProcResp) -> ProcReq {
        self.resp_tx
            .send(resp)
            .expect("task process hung up before its Done/Panicked request");
        self.req_rx.recv().unwrap_or_else(|_| ProcReq::Panicked {
            message: "task process vanished".to_string(),
            violation: None,
        })
    }
}

/// Channel set a [`crate::runtime::SimCtx`] uses to talk to the loop.
pub struct ProcChannels {
    /// Send requests to the event loop.
    pub req_tx: Sender<ProcReq>,
    /// Receive responses from the event loop.
    pub resp_rx: Receiver<ProcResp>,
}

/// Spawn a task process. The returned handle is parked until the loop
/// performs its first [`ProcHandle::step`] (which delivers
/// `ProcResp::Proceed` and waits for the body's first request).
pub fn spawn_proc(
    task: TaskId,
    machines: usize,
    body: SimBody,
) -> ProcHandle {
    // Rendezvous-ish channels: capacity 1 is enough since alternation
    // guarantees at most one message in flight per direction.
    let (req_tx, req_rx) = bounded::<ProcReq>(1);
    let (resp_tx, resp_rx) = bounded::<ProcResp>(1);
    let join = std::thread::Builder::new()
        .name(format!("jade-sim-{task}"))
        .stack_size(1 << 20)
        .spawn(move || {
            let chans = ProcChannels { req_tx: req_tx.clone(), resp_rx };
            let mut ctx = crate::runtime::SimCtx::new(task, machines, chans);
            // Wait for the loop's go signal.
            match ctx.wait_go() {
                Ok(()) => {}
                Err(()) => return,
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut ctx)));
            let msg = match outcome {
                Ok(()) => {
                    if ctx.holds_any() {
                        ProcReq::Panicked {
                            message: format!(
                                "task {task} completed while still holding an access guard"
                            ),
                            violation: Some(JadeError::GuardLeaked { task }),
                        }
                    } else {
                        ProcReq::Done
                    }
                }
                Err(p) => {
                    let m = p
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "task panicked".to_string());
                    // Trust the thread-local only when the payload is
                    // the exact message `violation` raised (mirrors the
                    // threaded executor's classification).
                    let violation = jade_core::ctx::take_violation().filter(|err| {
                        m == format!("Jade programming model violation: {err}")
                    });
                    ProcReq::Panicked { message: m, violation }
                }
            };
            let _ = req_tx.send(msg);
        })
        .expect("spawn task process");
    ProcHandle { req_rx, resp_tx, _join: join }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawn_step_done_handshake() {
        let h = spawn_proc(TaskId(1), 1, Box::new(|_ctx| {}));
        // First step delivers Proceed; an empty body immediately Done-s.
        match h.step(ProcResp::Proceed) {
            ProcReq::Done => {}
            other => panic!("expected Done, got {other:?}"),
        }
    }

    #[test]
    fn panicking_body_reports() {
        let h = spawn_proc(TaskId(2), 1, Box::new(|_ctx| panic!("boom {}", 42)));
        match h.step(ProcResp::Proceed) {
            ProcReq::Panicked { message, violation } => {
                assert!(message.contains("boom 42"));
                assert!(violation.is_none(), "plain panic carries no violation");
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
    }

    #[test]
    fn charge_roundtrip() {
        let h = spawn_proc(
            TaskId(3),
            1,
            Box::new(|ctx| {
                use jade_core::ctx::JadeCtx;
                ctx.charge(5.0);
            }),
        );
        match h.step(ProcResp::Proceed) {
            ProcReq::Charge(w) => assert_eq!(w, 5.0),
            other => panic!("expected Charge, got {other:?}"),
        }
        match h.step(ProcResp::Proceed) {
            ProcReq::Done => {}
            other => panic!("expected Done, got {other:?}"),
        }
    }
}
