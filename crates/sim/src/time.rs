//! Simulated time.
//!
//! The simulator measures time in integer nanoseconds so that event
//! ordering is exact and runs are bit-reproducible; work is expressed
//! in abstract *work units* (what `JadeCtx::charge` accounts) and
//! converted to time through a machine's speed in units/second.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Convert to seconds (for reports).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Convert to milliseconds (for reports).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.1}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimSpan(pub u64);

impl SimSpan {
    /// Zero-length span.
    pub const ZERO: SimSpan = SimSpan(0);

    /// Build a span from seconds, rounding to whole nanoseconds.
    #[inline]
    pub fn from_secs_f64(s: f64) -> SimSpan {
        debug_assert!(s >= 0.0 && s.is_finite(), "invalid span {s}");
        SimSpan((s * 1e9).round() as u64)
    }

    /// Build a span from microseconds.
    #[inline]
    pub fn from_micros(us: u64) -> SimSpan {
        SimSpan(us * 1_000)
    }

    /// Build a span from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> SimSpan {
        SimSpan(ms * 1_000_000)
    }

    /// Span needed to execute `work` units at `speed` units/second.
    #[inline]
    pub fn from_work(work: f64, speed: f64) -> SimSpan {
        debug_assert!(speed > 0.0, "machine speed must be positive");
        SimSpan::from_secs_f64(work / speed)
    }

    /// Span needed to transfer `bytes` at `bandwidth` bytes/second.
    #[inline]
    pub fn from_bytes(bytes: usize, bandwidth: f64) -> SimSpan {
        debug_assert!(bandwidth > 0.0, "bandwidth must be positive");
        SimSpan::from_secs_f64(bytes as f64 / bandwidth)
    }

    /// Convert to seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
}

impl Add<SimSpan> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimSpan> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimSpan) {
        self.0 += rhs.0;
    }
}

impl Add for SimSpan {
    type Output = SimSpan;
    #[inline]
    fn add(self, rhs: SimSpan) -> SimSpan {
        SimSpan(self.0 + rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimSpan;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimSpan {
        SimSpan(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_to_span_deterministic() {
        // 1000 work units at 2000 units/sec = 0.5 s.
        assert_eq!(SimSpan::from_work(1000.0, 2000.0), SimSpan(500_000_000));
    }

    #[test]
    fn bytes_to_span() {
        // 1 MB at 1 MB/s = 1 s.
        assert_eq!(SimSpan::from_bytes(1_000_000, 1e6), SimSpan(1_000_000_000));
    }

    #[test]
    fn arithmetic_and_ordering() {
        let t = SimTime(100) + SimSpan(50);
        assert_eq!(t, SimTime(150));
        assert!(SimTime(10) < SimTime(20));
        assert_eq!(SimTime(150) - SimTime(100), SimSpan(50));
        assert_eq!(SimTime(10).max(SimTime(20)), SimTime(20));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime(500)), "500ns");
        assert_eq!(format!("{}", SimTime(1_500)), "1.5us");
        assert_eq!(format!("{}", SimTime(2_500_000)), "2.500ms");
        assert_eq!(format!("{}", SimTime(3_250_000_000)), "3.250s");
    }
}
