//! Platform presets: the machines the paper measured on.
//!
//! The absolute constants are order-of-magnitude calibrations of the
//! 1992 hardware; the reproduction targets the *shape* of Figures 9
//! and 10 (DASH scales best, the iPSC/860 close behind, Mica's shared
//! Ethernet saturates early), not the absolute seconds.

use jade_core::ids::DeviceClass;
use jade_transport::DataLayout;

use crate::machine::MachineSpec;
use crate::network::{BusNetwork, EthernetNetwork, HypercubeNetwork, NetworkModel};
use crate::time::SimSpan;

/// Which interconnect a platform uses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkKind {
    /// Shared fast interconnect: `latency`, per-link bytes/second.
    Bus {
        /// Per-message latency.
        latency: SimSpan,
        /// Per-link bandwidth (bytes/second).
        bandwidth: f64,
    },
    /// Hypercube: base latency, per-hop latency, per-link bandwidth.
    Hypercube {
        /// Fixed protocol latency per message.
        base: SimSpan,
        /// Additional latency per hop.
        hop: SimSpan,
        /// Per-link bandwidth (bytes/second).
        bandwidth: f64,
    },
    /// Single shared segment: latency, total medium bytes/second.
    Ethernet {
        /// Per-message latency (protocol stack).
        latency: SimSpan,
        /// Shared medium bandwidth (bytes/second).
        bandwidth: f64,
    },
}

/// A complete platform: machines plus interconnect.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Short name used in reports ("dash", "ipsc860", "mica", ...).
    pub name: String,
    /// The machines, indexed by `MachineId`.
    pub machines: Vec<MachineSpec>,
    /// Interconnect model parameters.
    pub network: NetworkKind,
    /// Fixed runtime overhead charged on the creating machine per
    /// `withonly` (task-descriptor construction + queue insertion).
    pub task_create_overhead: SimSpan,
    /// Overhead charged on a machine when it starts a shipped task
    /// (descriptor unpack, global→local translation setup).
    pub task_dispatch_overhead: SimSpan,
    /// Per-byte CPU cost of data-format conversion on receive, applied
    /// only when sender and receiver layouts differ.
    pub convert_cost_per_byte: SimSpan,
}

impl Platform {
    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the platform has no machines (never true for presets).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Instantiate the network model.
    pub fn build_network(&self) -> Box<dyn NetworkModel> {
        match self.network {
            NetworkKind::Bus { latency, bandwidth } => {
                Box::new(BusNetwork::new(self.len(), latency, bandwidth))
            }
            NetworkKind::Hypercube { base, hop, bandwidth } => {
                Box::new(HypercubeNetwork::new(self.len(), base, hop, bandwidth))
            }
            NetworkKind::Ethernet { latency, bandwidth } => {
                Box::new(EthernetNetwork::new(latency, bandwidth))
            }
        }
    }

    /// The Stanford DASH: homogeneous MIPS nodes on a fast
    /// shared-memory interconnect. Transfers model remote cache/
    /// memory fills: microsecond latency, tens of MB/s.
    pub fn dash(n: usize) -> Platform {
        Platform {
            name: "dash".to_string(),
            machines: (0..n)
                .map(|i| MachineSpec::cpu(format!("dash-{i}"), 25e6, DataLayout::mips_be()))
                .collect(),
            network: NetworkKind::Bus { latency: SimSpan::from_micros(3), bandwidth: 60e6 },
            task_create_overhead: SimSpan::from_micros(30),
            task_dispatch_overhead: SimSpan::from_micros(20),
            convert_cost_per_byte: SimSpan(0),
        }
    }

    /// The Intel iPSC/860: i860 nodes (fast floating point) on a
    /// hypercube with ~70 µs message latency and ~2.8 MB/s links.
    pub fn ipsc860(n: usize) -> Platform {
        Platform {
            name: "ipsc860".to_string(),
            machines: (0..n)
                .map(|i| MachineSpec::cpu(format!("i860-{i}"), 40e6, DataLayout::i860()))
                .collect(),
            network: NetworkKind::Hypercube {
                base: SimSpan::from_micros(70),
                hop: SimSpan::from_micros(11),
                bandwidth: 2.8e6,
            },
            task_create_overhead: SimSpan::from_micros(60),
            task_dispatch_overhead: SimSpan::from_micros(120),
            convert_cost_per_byte: SimSpan(0),
        }
    }

    /// Mica: SPARC ELC workstations on one shared 10 Mbit Ethernet
    /// running PVM — multi-millisecond protocol latency, ~1 MB/s of
    /// usable shared bandwidth.
    pub fn mica(n: usize) -> Platform {
        Platform {
            name: "mica".to_string(),
            machines: (0..n)
                .map(|i| MachineSpec::cpu(format!("elc-{i}"), 18e6, DataLayout::sparc()))
                .collect(),
            network: NetworkKind::Ethernet {
                latency: SimSpan::from_millis(4),
                bandwidth: 1.0e6,
            },
            task_create_overhead: SimSpan::from_micros(120),
            task_dispatch_overhead: SimSpan::from_micros(800),
            convert_cost_per_byte: SimSpan(0),
        }
    }

    /// A heterogeneous network of workstations (§7): big-endian SPARC
    /// Suns and little-endian MIPS DECstations on one Ethernet, so
    /// every cross-architecture transfer exercises format conversion.
    pub fn workstations(n: usize) -> Platform {
        Platform {
            name: "hetnet".to_string(),
            machines: (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        MachineSpec::cpu(format!("sun-{i}"), 20e6, DataLayout::sparc())
                    } else {
                        MachineSpec::cpu(format!("dec-{i}"), 22e6, DataLayout::mips_le())
                    }
                })
                .collect(),
            network: NetworkKind::Ethernet {
                latency: SimSpan::from_millis(2),
                bandwidth: 1.1e6,
            },
            task_create_overhead: SimSpan::from_micros(80),
            task_dispatch_overhead: SimSpan::from_micros(400),
            convert_cost_per_byte: SimSpan(30), // ~33 MB/s byte-swap
        }
    }

    /// The Sun HRV workstation (§7.2): one SPARC host with the video
    /// digitizer, plus `accels` i860 boards that transform and display
    /// frames, on the internal high-speed network.
    pub fn hrv(accels: usize) -> Platform {
        let mut machines = vec![MachineSpec::cpu("sparc-host", 20e6, DataLayout::sparc())
            .with_device(DeviceClass::FrameSource)];
        for i in 0..accels.max(1) {
            machines.push(
                MachineSpec::cpu(format!("i860-{i}"), 50e6, DataLayout::i860())
                    .with_device(DeviceClass::Accelerator)
                    .with_device(DeviceClass::Display),
            );
        }
        Platform {
            name: "hrv".to_string(),
            machines,
            network: NetworkKind::Bus { latency: SimSpan::from_micros(15), bandwidth: 40e6 },
            task_create_overhead: SimSpan::from_micros(40),
            task_dispatch_overhead: SimSpan::from_micros(50),
            convert_cost_per_byte: SimSpan(30),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        assert_eq!(Platform::dash(8).len(), 8);
        assert_eq!(Platform::ipsc860(16).len(), 16);
        assert_eq!(Platform::mica(4).len(), 4);
        let hrv = Platform::hrv(3);
        assert_eq!(hrv.len(), 4);
        assert!(hrv.machines[0].has_device(DeviceClass::FrameSource));
        assert!(hrv.machines[1].has_device(DeviceClass::Accelerator));
    }

    #[test]
    fn heterogeneous_platforms_mix_layouts() {
        let p = Platform::workstations(4);
        assert!(p.machines[0].layout.conversion_required(&p.machines[1].layout));
    }

    #[test]
    fn network_builders_match_kind() {
        assert_eq!(Platform::dash(2).build_network().name(), "bus");
        assert_eq!(Platform::ipsc860(2).build_network().name(), "hypercube");
        assert_eq!(Platform::mica(2).build_network().name(), "ethernet");
    }
}
