//! Machine descriptions for heterogeneous platforms.
//!
//! The paper runs the same Jade program on SGI multiprocessor nodes,
//! iPSC/860 i860 nodes, SPARC ELC workstations, and the HRV
//! workstation's SPARC + i860 functional units. A [`MachineSpec`]
//! captures what the runtime needs to know about one such machine:
//! how fast it executes task work, what its native data layout is
//! (driving format conversion on transfers), and which special-purpose
//! device classes it provides (driving `Placement::Device`
//! constraints, §4.5/§7.2).

use jade_core::ids::DeviceClass;
use jade_transport::DataLayout;

/// Static description of one machine in a platform.
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Human-readable name for traces ("sparc-0", "i860-3", ...).
    pub name: String,
    /// Execution speed in work units per second. Work units are
    /// calibrated as floating-point-operation equivalents, so 1992-era
    /// machines sit in the tens of millions (e.g. 25e6 for a DASH
    /// MIPS node). A task charging `w` units occupies the machine for
    /// `w / speed` seconds.
    pub speed: f64,
    /// Native data representation; transfers between machines with
    /// different layouts go through format conversion.
    pub layout: DataLayout,
    /// Special-purpose capabilities this machine provides.
    pub devices: Vec<DeviceClass>,
}

impl MachineSpec {
    /// A plain CPU machine.
    pub fn cpu(name: impl Into<String>, speed: f64, layout: DataLayout) -> Self {
        MachineSpec { name: name.into(), speed, layout, devices: vec![DeviceClass::Cpu] }
    }

    /// Add a device capability.
    pub fn with_device(mut self, d: DeviceClass) -> Self {
        if !self.devices.contains(&d) {
            self.devices.push(d);
        }
        self
    }

    /// Whether the machine provides a device class. Every machine
    /// counts as a `Cpu`.
    pub fn has_device(&self, d: DeviceClass) -> bool {
        d == DeviceClass::Cpu || self.devices.contains(&d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_queries() {
        let m = MachineSpec::cpu("sparc-0", 20e6, DataLayout::sparc())
            .with_device(DeviceClass::FrameSource);
        assert!(m.has_device(DeviceClass::Cpu));
        assert!(m.has_device(DeviceClass::FrameSource));
        assert!(!m.has_device(DeviceClass::Accelerator));
    }

    #[test]
    fn with_device_deduplicates() {
        let m = MachineSpec::cpu("a", 1.0, DataLayout::x86_64())
            .with_device(DeviceClass::Display)
            .with_device(DeviceClass::Display);
        assert_eq!(m.devices.iter().filter(|d| **d == DeviceClass::Display).count(), 1);
    }
}
