//! Scheduling policy helpers: placement eligibility, the locality
//! heuristic, and heterogeneous load balancing.
//!
//! The paper's §5: the implementation "keeps track of which processors
//! may be idle and dynamically assigns executable tasks to processors
//! which may become idle" (load balancing — especially important when
//! machines have different speeds) and "uses a heuristic that attempts
//! to execute tasks on the same processor if they access some of the
//! same objects" (locality).

use jade_core::ids::{DeviceClass, ObjectId, Placement};
// The load/affinity/speed policy itself now lives in `jade-core` so
// the real distributed backend dispatches through the identical code
// path the simulator validates at scale.
pub use jade_core::place::{choose, Candidate};

use crate::machine::MachineSpec;
use crate::objmgr::ObjDirectory;

/// Whether a machine satisfies a task's placement request (§4.5).
pub fn eligible(spec: &MachineSpec, machine_index: usize, placement: Placement) -> bool {
    match placement {
        Placement::Any => true,
        Placement::Machine(m) => m.0 as usize == machine_index,
        Placement::Device(d) => {
            if d == DeviceClass::Cpu {
                true
            } else {
                spec.has_device(d)
            }
        }
    }
}

/// Compute a task's affinity to a machine: bytes of its declared
/// objects already valid there.
pub fn affinity(dir: &ObjDirectory, objects: &[ObjectId], machine: usize) -> u64 {
    dir.resident_bytes(objects, machine)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objmgr::Granularity;
    use jade_core::ids::MachineId;
    use jade_transport::DataLayout;

    fn cand(machine: usize, load: usize, speed: f64, affinity: u64) -> Candidate {
        Candidate { machine, load, speed, affinity }
    }

    #[test]
    fn placement_eligibility() {
        let cpu = MachineSpec::cpu("a", 1.0, DataLayout::x86_64());
        let accel = MachineSpec::cpu("b", 1.0, DataLayout::i860())
            .with_device(DeviceClass::Accelerator);
        assert!(eligible(&cpu, 0, Placement::Any));
        assert!(eligible(&cpu, 3, Placement::Machine(MachineId(3))));
        assert!(!eligible(&cpu, 2, Placement::Machine(MachineId(3))));
        assert!(!eligible(&cpu, 0, Placement::Device(DeviceClass::Accelerator)));
        assert!(eligible(&accel, 0, Placement::Device(DeviceClass::Accelerator)));
    }

    #[test]
    fn load_dominates_affinity() {
        // An idle machine wins even against strong affinity elsewhere:
        // the paper's load balancer feeds idle processors first.
        let got = choose(&[cand(0, 0, 2.0, 0), cand(1, 3, 1.0, 4096)]);
        assert_eq!(got, Some(0));
    }

    #[test]
    fn affinity_breaks_load_ties() {
        let got = choose(&[cand(0, 1, 1.0, 0), cand(1, 1, 1.0, 4096)]);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn load_then_speed_then_index() {
        assert_eq!(choose(&[cand(0, 1, 1.0, 0), cand(1, 0, 1.0, 0)]), Some(1));
        assert_eq!(choose(&[cand(0, 0, 1.0, 0), cand(1, 0, 2.0, 0)]), Some(1));
        assert_eq!(choose(&[cand(0, 0, 1.0, 0), cand(1, 0, 1.0, 0)]), Some(0));
        assert_eq!(choose(&[]), None);
    }

    #[test]
    fn affinity_reads_directory() {
        let mut d = ObjDirectory::new(Granularity::Object);
        d.register(ObjectId(1), 2, 500);
        assert_eq!(affinity(&d, &[ObjectId(1)], 2), 500);
        assert_eq!(affinity(&d, &[ObjectId(1)], 0), 0);
    }
}
