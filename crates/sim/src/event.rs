//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`; the sequence number makes
//! ties deterministic (insertion order), which in turn makes entire
//! simulations bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use jade_core::ids::TaskId;

use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task's charged compute span (or runtime overhead) elapsed:
    /// step the task process again.
    Resume(TaskId),
    /// A fetched object version arrived at the machine hosting `task`.
    FetchArrive {
        /// The task whose fetch completed.
        task: TaskId,
        /// How many bytes arrived (for logging).
        bytes: u64,
    },
    /// A machine may be able to start its next queued task.
    TryStart(usize),
    /// The executing CPU slice on a machine ended (time-sliced
    /// processor model).
    SliceDone(usize),
    /// A transiently crashed machine comes back up.
    Rejoin(usize),
}

#[derive(Debug)]
struct HeapEvent {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for HeapEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEvent {}
impl PartialOrd for HeapEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other.time.cmp(&self.time).then(other.seq.cmp(&self.seq))
    }
}

/// Deterministic min-heap of simulation events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` to fire at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEvent { time, seq, kind });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        self.heap.pop().map(|e| (e.time, e.kind))
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut q = EventQueue::new();
        q.push(SimTime(50), EventKind::TryStart(1));
        q.push(SimTime(10), EventKind::Resume(TaskId(1)));
        q.push(SimTime(50), EventKind::TryStart(2));
        q.push(SimTime(10), EventKind::Resume(TaskId(2)));
        let order: Vec<(SimTime, EventKind)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(
            order,
            vec![
                (SimTime(10), EventKind::Resume(TaskId(1))),
                (SimTime(10), EventKind::Resume(TaskId(2))),
                (SimTime(50), EventKind::TryStart(1)),
                (SimTime(50), EventKind::TryStart(2)),
            ]
        );
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(1), EventKind::TryStart(0));
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
