//! Network models for the platforms the paper evaluates on.
//!
//! Each model answers one question for the object manager: *when does
//! a message of `n` bytes sent from machine `s` at time `t` arrive at
//! machine `d`?* — while tracking the occupancy state that produces
//! contention:
//!
//! * [`BusNetwork`] — a fast shared bus / interconnect: the DASH
//!   shared-memory machine (remote cache fills) and the HRV
//!   workstation's internal high-speed network. Low latency, high
//!   bandwidth, generous parallelism.
//! * [`HypercubeNetwork`] — the Intel iPSC/860: per-hop latency over a
//!   hypercube topology with per-node serialized send DMA.
//! * [`EthernetNetwork`] — the Mica array of SPARC ELCs on one shared
//!   10 Mbit Ethernet: every byte of every message competes for a
//!   single medium, which is what flattens Mica's speedup curve in
//!   Figures 9/10.

use crate::time::{SimSpan, SimTime};

/// Accumulated network statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct NetStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload + header bytes moved.
    pub bytes: u64,
    /// Total time messages spent queued for a busy medium/link.
    pub contention: SimSpan,
    /// Retransmissions performed by the reliable-delivery layer (only
    /// non-zero under a fault plan with message drops).
    pub retransmits: u64,
    /// Sender timeouts that triggered those retransmissions.
    pub timeouts: u64,
    /// Transmissions lost on the wire.
    pub dropped: u64,
}

/// A point-to-point message-delivery model with internal occupancy
/// state. Implementations must be deterministic.
pub trait NetworkModel: Send {
    /// Schedule a transfer; returns the arrival time at `dst`.
    fn transfer(&mut self, now: SimTime, src: usize, dst: usize, bytes: usize) -> SimTime;

    /// Statistics accumulated so far.
    fn stats(&self) -> NetStats;

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

/// Shared high-bandwidth interconnect (DASH remote fills, HRV
/// internal network). Messages pay latency plus size/bandwidth;
/// the fabric supports many concurrent transfers, so only per-node
/// send serialization is modelled.
#[derive(Debug)]
pub struct BusNetwork {
    latency: SimSpan,
    bandwidth: f64,
    tx_free: Vec<SimTime>,
    stats: NetStats,
}

impl BusNetwork {
    /// Create a bus with the given per-message latency and per-link
    /// bandwidth (bytes/second) for `n` machines.
    pub fn new(n: usize, latency: SimSpan, bandwidth: f64) -> Self {
        BusNetwork { latency, bandwidth, tx_free: vec![SimTime::ZERO; n], stats: NetStats::default() }
    }
}

impl NetworkModel for BusNetwork {
    fn transfer(&mut self, now: SimTime, src: usize, dst: usize, bytes: usize) -> SimTime {
        let _ = dst;
        let start = now.max(self.tx_free[src]);
        self.stats.contention = self.stats.contention + (start - now);
        let xfer = SimSpan::from_bytes(bytes, self.bandwidth);
        let sender_done = start + xfer;
        self.tx_free[src] = sender_done;
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;
        sender_done + self.latency
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "bus"
    }
}

/// Hypercube message passing (iPSC/860): latency = base + hops × hop
/// cost, with hops the Hamming distance between node numbers; each
/// node's send DMA is serialized.
#[derive(Debug)]
pub struct HypercubeNetwork {
    base_latency: SimSpan,
    hop_latency: SimSpan,
    bandwidth: f64,
    tx_free: Vec<SimTime>,
    stats: NetStats,
}

impl HypercubeNetwork {
    /// Create a hypercube for `n` nodes (rounded up to a power of two
    /// for hop computation).
    pub fn new(n: usize, base_latency: SimSpan, hop_latency: SimSpan, bandwidth: f64) -> Self {
        HypercubeNetwork {
            base_latency,
            hop_latency,
            bandwidth,
            tx_free: vec![SimTime::ZERO; n],
            stats: NetStats::default(),
        }
    }

    fn hops(src: usize, dst: usize) -> u64 {
        ((src ^ dst) as u64).count_ones() as u64
    }
}

impl NetworkModel for HypercubeNetwork {
    fn transfer(&mut self, now: SimTime, src: usize, dst: usize, bytes: usize) -> SimTime {
        let start = now.max(self.tx_free[src]);
        self.stats.contention = self.stats.contention + (start - now);
        let xfer = SimSpan::from_bytes(bytes, self.bandwidth);
        let sender_done = start + xfer;
        self.tx_free[src] = sender_done;
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;
        let hops = Self::hops(src, dst).max(1);
        sender_done + self.base_latency + SimSpan(self.hop_latency.0 * hops)
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "hypercube"
    }
}

/// A single shared Ethernet segment: all messages serialize through
/// one medium. High per-message latency (protocol stack) plus shared
/// bandwidth — the defining bottleneck of the Mica platform.
#[derive(Debug)]
pub struct EthernetNetwork {
    latency: SimSpan,
    bandwidth: f64,
    medium_free: SimTime,
    stats: NetStats,
}

impl EthernetNetwork {
    /// Create a shared segment with per-message latency and total
    /// medium bandwidth (bytes/second).
    pub fn new(latency: SimSpan, bandwidth: f64) -> Self {
        EthernetNetwork { latency, bandwidth, medium_free: SimTime::ZERO, stats: NetStats::default() }
    }
}

impl NetworkModel for EthernetNetwork {
    fn transfer(&mut self, now: SimTime, _src: usize, _dst: usize, bytes: usize) -> SimTime {
        let start = now.max(self.medium_free);
        self.stats.contention = self.stats.contention + (start - now);
        let xfer = SimSpan::from_bytes(bytes, self.bandwidth);
        let medium_done = start + xfer;
        self.medium_free = medium_done;
        self.stats.messages += 1;
        self.stats.bytes += bytes as u64;
        medium_done + self.latency
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "ethernet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_is_fast_and_parallel_across_senders() {
        let mut net = BusNetwork::new(4, SimSpan::from_micros(1), 100e6);
        let a = net.transfer(SimTime::ZERO, 0, 1, 100_000);
        let b = net.transfer(SimTime::ZERO, 2, 3, 100_000);
        // Different senders do not contend.
        assert_eq!(a, b);
        assert_eq!(net.stats().messages, 2);
    }

    #[test]
    fn bus_serializes_per_sender() {
        let mut net = BusNetwork::new(2, SimSpan::ZERO, 1e6);
        let first = net.transfer(SimTime::ZERO, 0, 1, 1_000_000); // 1s on the wire
        let second = net.transfer(SimTime::ZERO, 0, 1, 1_000_000);
        assert_eq!(first, SimTime(1_000_000_000));
        assert_eq!(second, SimTime(2_000_000_000));
        assert_eq!(net.stats().contention, SimSpan(1_000_000_000));
    }

    #[test]
    fn hypercube_hop_count() {
        assert_eq!(HypercubeNetwork::hops(0, 7), 3);
        assert_eq!(HypercubeNetwork::hops(5, 4), 1);
        assert_eq!(HypercubeNetwork::hops(3, 3), 0);
    }

    #[test]
    fn hypercube_latency_grows_with_distance() {
        let mut net =
            HypercubeNetwork::new(8, SimSpan::from_micros(70), SimSpan::from_micros(10), 2.8e6);
        let near = net.transfer(SimTime::ZERO, 0, 1, 0);
        let mut net2 =
            HypercubeNetwork::new(8, SimSpan::from_micros(70), SimSpan::from_micros(10), 2.8e6);
        let far = net2.transfer(SimTime::ZERO, 0, 7, 0);
        assert!(far > near);
    }

    #[test]
    fn ethernet_serializes_everything() {
        let mut net = EthernetNetwork::new(SimSpan::from_millis(1), 1.25e6);
        let t1 = net.transfer(SimTime::ZERO, 0, 1, 125_000); // 0.1 s on the wire
        let t2 = net.transfer(SimTime::ZERO, 2, 3, 125_000); // must queue behind it
        assert_eq!(t1, SimTime(101_000_000));
        assert_eq!(t2, SimTime(201_000_000));
        assert!(net.stats().contention > SimSpan::ZERO);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut net = EthernetNetwork::new(SimSpan::from_millis(2), 1.25e6);
            (0..10)
                .map(|i| net.transfer(SimTime(i * 1000), (i % 4) as usize, 3, 5000 * i as usize).0)
                .collect::<Vec<u64>>()
        };
        assert_eq!(run(), run());
    }
}
