//! # jade-sim — the heterogeneous message-passing Jade implementation
//!
//! A deterministic discrete-event simulation of the environments the
//! paper ran on — the Stanford DASH, the Intel iPSC/860, the Mica
//! Ethernet array of SPARC ELCs, heterogeneous networks of Suns and
//! DECstations, and the HRV video workstation — together with the
//! distributed Jade runtime that executes unmodified Jade programs on
//! them: object migration/replication with typed format conversion,
//! dynamic load balancing, the locality heuristic, latency hiding and
//! task throttling (paper §5).
//!
//! Task bodies are real Rust closures computing real values: the
//! simulation's *results* are bit-identical to the serial elision (the
//! determinism tests assert this), while its *timing* comes from the
//! platform models. This is what lets the benchmark harness regenerate
//! the shape of the paper's Figures 9 and 10 on a laptop.
//!
//! ```
//! use jade_core::prelude::*;
//! use jade_sim::{Platform, SimExecutor};
//!
//! let exec = SimExecutor::new(Platform::mica(4));
//! let (v, report) = exec.run(|ctx| {
//!     let xs: Vec<Shared<f64>> = (0..8).map(|i| ctx.create(i as f64)).collect();
//!     for &x in &xs {
//!         ctx.withonly("square", |s| { s.rd_wr(x); }, move |c| {
//!             c.charge(1e5); // simulated work units
//!             let v = *c.rd(&x);
//!             *c.wr(&x) = v * v;
//!         });
//!     }
//!     xs.iter().map(|x| *ctx.rd(x)).sum::<f64>()
//! });
//! assert_eq!(v, (0..8).map(|i| (i * i) as f64).sum::<f64>());
//! assert!(report.time > jade_sim::SimTime::ZERO);
//! ```
//!
//! Programs can also run through the uniform entry point
//! [`jade_core::runtime::Runtime::execute`] with a
//! [`RunConfig`](jade_core::runtime::RunConfig); the report carries
//! the result, statistics and any requested artifacts (timeline,
//! contention, task graph), with the full [`SimReport`] in
//! [`Report::extras`](jade_core::runtime::Report::extras).
//!
//! ## Access specifications
//!
//! Task specifications use the shared builders from `jade_core::spec`,
//! re-exported here so both frontends present the identical surface:
//! [`SpecBuilder`] with `rd`/`wr`/`rd_wr` (immediate declarations),
//! `df_rd`/`df_wr` (deferred declarations), and [`ContBuilder`] with
//! `to_rd`/`to_wr` (convert deferred to immediate) and `no_rd`/`no_wr`
//! (retire a declaration early).

#![cfg_attr(test, deny(deprecated))]

pub mod event;
pub mod faults;
pub mod machine;
pub mod network;
pub mod objmgr;
pub mod platform;
pub mod proc;
pub mod report;
pub mod runtime;
pub mod sched;
pub mod time;
pub mod tracelog;

pub use faults::{CrashSpec, FaultPlan, FaultStats, SlowdownWindow};
pub use machine::MachineSpec;
pub use network::NetStats;
pub use objmgr::Granularity;
pub use platform::{NetworkKind, Platform};
pub use report::{ObjTraffic, SimReport};
pub use runtime::{SimConfig, SimCtx, SimExecutor, SuspendCreator};
pub use time::{SimSpan, SimTime};

// The spec-builder surface, identical in jade-threads and jade-sim.
pub use jade_core::runtime::{CancelSignal, Report, RunConfig, Runtime};
pub use jade_core::spec::{ContBuilder, SpecBuilder};

// The job-submission surface, identical in every backend crate.
pub use jade_core::serve::{
    ClientId, DrainSummary, JobHandle, JobId, JobReport, JobStatus, ServeConfig, Session,
    SubmitError,
};
pub use jade_core::stats::ServeStats;
