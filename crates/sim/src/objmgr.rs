//! The distributed object manager: directories, migration,
//! replication and invalidation.
//!
//! In a message-passing environment the Jade implementation "moves or
//! copies objects between machines as necessary to implement the
//! shared address space abstraction" (§5). This module decides *what
//! must move* for a task's enabled access:
//!
//! * a **write** access moves the authoritative version to the
//!   accessing machine and invalidates every replica (Figure 7(c):
//!   "the implementation has moved column 0 ... and deallocated the
//!   version on the first machine");
//! * a **read** access replicates the object, leaving the source
//!   intact so machines read concurrently ("Object Replication", §5);
//! * a writer that already holds a valid replica upgrades ownership
//!   with a control message instead of re-sending the data.
//!
//! The same module also implements the **page-granularity baseline**
//! of §6.1: with [`Granularity::Page`], residency, transfer sizes and
//! invalidation are accounted per virtual-memory page, so objects that
//! share a page *false-share* — a write to one object invalidates its
//! page-mates' residency everywhere, reproducing the extra traffic the
//! paper attributes to page-based distributed shared memory. (Object
//! *values* are still sourced from the object's last writer so results
//! stay exact; only traffic accounting is page-granular. Real
//! page-DSM would serialize such writers and ping-pong even more, so
//! the baseline is, if anything, optimistic.)

use std::collections::HashMap;

use jade_core::ids::ObjectId;

/// Sharing granularity of the coherence protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Jade's model: individual shared objects.
    Object,
    /// Page-based DSM baseline with the given page size in bytes.
    Page(usize),
}

/// One data or control message the plan requires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Source machine.
    pub from: usize,
    /// Payload bytes on the wire (page size in page mode, encoded
    /// object size in object mode, or a small control message).
    pub bytes: usize,
    /// Whether this transfer carries object data (drives value
    /// movement and format conversion) or is control-only.
    pub data: bool,
}

/// The result of planning a fetch.
#[derive(Debug, Default, Clone)]
pub struct FetchPlan {
    /// Messages to schedule (possibly empty if already resident).
    pub transfers: Vec<Transfer>,
    /// Machines whose replica of the object was invalidated (write
    /// fetches only). The runtime drops their store slots.
    pub invalidate: Vec<usize>,
    /// Whether this was an ownership upgrade without data.
    pub upgraded: bool,
    /// Whether the requesting machine must re-materialize the value
    /// from `value_source` (i.e. its local version is missing/stale).
    pub need_value: bool,
    /// Machine holding the authoritative value before this fetch.
    pub value_source: usize,
}

#[derive(Debug)]
struct ObjEntry {
    owner: usize,
    copies: Vec<usize>,
    size: usize,
    first_page: u64,
    page_count: u64,
}

#[derive(Debug, Default)]
struct PageEntry {
    owner: usize,
    copies: Vec<usize>,
}

/// Size of a control/request message on the wire.
pub const CTRL_BYTES: usize = 64;

/// Directory of object (and, in page mode, page) residency.
#[derive(Debug)]
pub struct ObjDirectory {
    gran: Granularity,
    objs: HashMap<ObjectId, ObjEntry>,
    pages: HashMap<u64, PageEntry>,
    next_addr: u64,
}

fn insert_unique(v: &mut Vec<usize>, m: usize) {
    if !v.contains(&m) {
        v.push(m);
    }
}

impl ObjDirectory {
    /// Create a directory with the given granularity.
    pub fn new(gran: Granularity) -> Self {
        ObjDirectory { gran, objs: HashMap::new(), pages: HashMap::new(), next_addr: 0 }
    }

    /// The configured granularity.
    pub fn granularity(&self) -> Granularity {
        self.gran
    }

    /// Register a newly created object, resident at its creator.
    pub fn register(&mut self, oid: ObjectId, machine: usize, size: usize) {
        let (first_page, page_count) = match self.gran {
            Granularity::Object => (0, 0),
            Granularity::Page(ps) => {
                let ps = ps as u64;
                // Bump allocation in a flat address space, 8-byte
                // aligned: small objects share pages (false sharing).
                let addr = (self.next_addr + 7) & !7;
                let sz = size.max(1) as u64;
                self.next_addr = addr + sz;
                let first = addr / ps;
                let last = (addr + sz - 1) / ps;
                for p in first..=last {
                    let e = self.pages.entry(p).or_default();
                    e.owner = machine;
                    insert_unique(&mut e.copies, machine);
                }
                (first, last - first + 1)
            }
        };
        self.objs.insert(
            oid,
            ObjEntry { owner: machine, copies: vec![machine], size, first_page, page_count },
        );
    }

    /// Current authoritative holder of the object's value.
    pub fn owner(&self, oid: ObjectId) -> usize {
        self.objs[&oid].owner
    }

    /// Whether `machine` holds a valid version for reading.
    pub fn readable_at(&self, oid: ObjectId, machine: usize) -> bool {
        self.objs[&oid].copies.contains(&machine)
    }

    /// Bytes of the listed objects' data currently valid at `machine`
    /// — the locality-heuristic affinity score.
    pub fn resident_bytes(&self, objects: &[ObjectId], machine: usize) -> u64 {
        objects
            .iter()
            .filter_map(|o| self.objs.get(o))
            .filter(|e| e.copies.contains(&machine))
            .map(|e| e.size as u64)
            .sum()
    }

    /// Record that the object's encoded size changed (it was written);
    /// keeps transfer accounting honest for growing objects.
    pub fn update_size(&mut self, oid: ObjectId, size: usize) {
        if let Some(e) = self.objs.get_mut(&oid) {
            e.size = size;
        }
    }

    fn pages_of(&self, e: &ObjEntry) -> std::ops::Range<u64> {
        e.first_page..e.first_page + e.page_count
    }

    /// Plan (and commit, in directory state) the residency changes for
    /// `machine` to perform a `write`/read access to `oid`. The
    /// returned plan tells the runtime what messages to schedule and
    /// which store slots to drop.
    pub fn plan_fetch(&mut self, oid: ObjectId, machine: usize, write: bool) -> FetchPlan {
        match self.gran {
            Granularity::Object => self.plan_object(oid, machine, write),
            Granularity::Page(_) => self.plan_page(oid, machine, write),
        }
    }

    fn plan_object(&mut self, oid: ObjectId, machine: usize, write: bool) -> FetchPlan {
        let e = self.objs.get_mut(&oid).expect("fetch of unregistered object");
        let mut plan = FetchPlan { value_source: e.owner, ..Default::default() };
        if write {
            if e.owner == machine {
                // Already own it; invalidate any other replica.
                plan.invalidate = e.copies.iter().copied().filter(|&m| m != machine).collect();
                e.copies.retain(|&m| m == machine);
                return plan;
            }
            if e.copies.contains(&machine) {
                // Valid replica present: ownership upgrade, no data.
                plan.transfers.push(Transfer { from: e.owner, bytes: CTRL_BYTES, data: false });
                plan.upgraded = true;
            } else {
                plan.transfers.push(Transfer { from: e.owner, bytes: e.size, data: true });
                plan.need_value = true;
            }
            plan.invalidate = e.copies.iter().copied().filter(|&m| m != machine).collect();
            e.owner = machine;
            e.copies = vec![machine];
        } else {
            if e.copies.contains(&machine) {
                return plan;
            }
            plan.transfers.push(Transfer { from: e.owner, bytes: e.size, data: true });
            plan.need_value = true;
            insert_unique(&mut e.copies, machine);
        }
        plan
    }

    fn plan_page(&mut self, oid: ObjectId, machine: usize, write: bool) -> FetchPlan {
        let Granularity::Page(ps) = self.gran else { unreachable!() };
        let (pages, owner_before, had_copy) = {
            let e = &self.objs[&oid];
            (self.pages_of(e), e.owner, e.copies.contains(&machine))
        };
        let mut plan = FetchPlan { value_source: owner_before, ..Default::default() };
        for p in pages {
            let pe = self.pages.get_mut(&p).expect("page registered");
            if write {
                if pe.owner != machine {
                    plan.transfers.push(Transfer { from: pe.owner, bytes: ps, data: true });
                }
                for &m in &pe.copies {
                    if m != machine && !plan.invalidate.contains(&m) {
                        plan.invalidate.push(m);
                    }
                }
                pe.owner = machine;
                pe.copies = vec![machine];
            } else if !pe.copies.contains(&machine) {
                plan.transfers.push(Transfer { from: pe.owner, bytes: ps, data: true });
                insert_unique(&mut pe.copies, machine);
            }
        }
        // Object-level value validity (keeps results exact even though
        // accounting is page-granular).
        let e = self.objs.get_mut(&oid).expect("fetch of unregistered object");
        if write {
            plan.need_value = e.owner != machine && !had_copy;
            e.owner = machine;
            e.copies = vec![machine];
        } else if !had_copy {
            plan.need_value = true;
            insert_unique(&mut e.copies, machine);
        }
        if plan.need_value && plan.transfers.is_empty() {
            // Pages looked resident but the value was stale (a page
            // mate's traffic kept the page around): real DSM would
            // have invalidated it — charge one page fetch.
            plan.transfers.push(Transfer { from: plan.value_source, bytes: ps, data: true });
        }
        plan
    }

    /// A machine crashed: reassign residency away from it. Objects it
    /// owned whose replicas survive elsewhere get a surviving replica
    /// elected as the new owner (replicas hold the authoritative value
    /// — any write would have invalidated them); its replica markers
    /// are dropped so post-rejoin reads refetch. Objects solely
    /// resident on the crashed machine keep it as owner: the value
    /// survives on its stable store and becomes reachable again at
    /// rejoin. Returns `(object, new_owner)` for each ownership move.
    pub fn fail_machine(&mut self, machine: usize) -> Vec<(ObjectId, usize)> {
        let mut moved = Vec::new();
        let mut oids: Vec<ObjectId> = self.objs.keys().copied().collect();
        oids.sort_unstable();
        for oid in oids {
            let e = self.objs.get_mut(&oid).expect("key just listed");
            let Some(&survivor) = e.copies.iter().find(|&&c| c != machine) else {
                continue;
            };
            if e.owner == machine {
                e.owner = survivor;
                moved.push((oid, survivor));
            }
            e.copies.retain(|&c| c != machine);
        }
        let mut pages: Vec<u64> = self.pages.keys().copied().collect();
        pages.sort_unstable();
        for p in pages {
            let pe = self.pages.get_mut(&p).expect("key just listed");
            let Some(&survivor) = pe.copies.iter().find(|&&c| c != machine) else {
                continue;
            };
            if pe.owner == machine {
                pe.owner = survivor;
            }
            pe.copies.retain(|&c| c != machine);
        }
        moved
    }

    /// Drop `machine`'s replica markers for an object (used when the
    /// runtime processes invalidations).
    pub fn forget_replica(&mut self, oid: ObjectId, machine: usize) {
        if let Some(e) = self.objs.get_mut(&oid) {
            if e.owner != machine {
                e.copies.retain(|&m| m != machine);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O: ObjectId = ObjectId(1);
    const P: ObjectId = ObjectId(2);

    #[test]
    fn read_replicates_write_invalidates() {
        let mut d = ObjDirectory::new(Granularity::Object);
        d.register(O, 0, 800);
        // Machine 1 reads: one data transfer, both hold copies.
        let r = d.plan_fetch(O, 1, false);
        assert_eq!(r.transfers, vec![Transfer { from: 0, bytes: 800, data: true }]);
        assert!(d.readable_at(O, 0) && d.readable_at(O, 1));
        // Machine 2 reads from the owner.
        let r2 = d.plan_fetch(O, 2, false);
        assert_eq!(r2.transfers[0].from, 0);
        // Machine 1 writes: upgrade (it holds a copy), others invalid.
        let w = d.plan_fetch(O, 1, true);
        assert!(w.upgraded);
        assert_eq!(w.transfers[0].bytes, CTRL_BYTES);
        assert_eq!(w.invalidate, vec![0, 2]);
        assert_eq!(d.owner(O), 1);
        assert!(!d.readable_at(O, 0));
    }

    #[test]
    fn repeated_read_is_free() {
        let mut d = ObjDirectory::new(Granularity::Object);
        d.register(O, 0, 100);
        d.plan_fetch(O, 1, false);
        let again = d.plan_fetch(O, 1, false);
        assert!(again.transfers.is_empty());
    }

    #[test]
    fn write_without_copy_moves_data() {
        let mut d = ObjDirectory::new(Granularity::Object);
        d.register(O, 0, 500);
        let w = d.plan_fetch(O, 3, true);
        assert_eq!(w.transfers, vec![Transfer { from: 0, bytes: 500, data: true }]);
        assert!(w.need_value && !w.upgraded);
        assert_eq!(w.invalidate, vec![0]);
    }

    #[test]
    fn locality_score_counts_resident_bytes() {
        let mut d = ObjDirectory::new(Granularity::Object);
        d.register(O, 0, 100);
        d.register(P, 1, 900);
        assert_eq!(d.resident_bytes(&[O, P], 0), 100);
        assert_eq!(d.resident_bytes(&[O, P], 1), 900);
        d.plan_fetch(P, 0, false);
        assert_eq!(d.resident_bytes(&[O, P], 0), 1000);
    }

    #[test]
    fn page_mode_false_sharing() {
        // Two small objects land on the same 4 KiB page.
        let mut d = ObjDirectory::new(Granularity::Page(4096));
        d.register(O, 0, 64);
        d.register(P, 0, 64);
        // Machine 1 reads O: fetches the shared page.
        let r = d.plan_fetch(O, 1, false);
        assert_eq!(r.transfers, vec![Transfer { from: 0, bytes: 4096, data: true }]);
        // Machine 2 writes P: invalidates the page at 0 AND 1 even
        // though machine 1 only ever touched O — false sharing.
        let w = d.plan_fetch(P, 2, true);
        assert!(w.invalidate.contains(&1));
        // Machine 1 re-reads O: the page must come back.
        let r2 = d.plan_fetch(O, 1, false);
        assert_eq!(r2.transfers.len(), 1);
        assert_eq!(r2.transfers[0].from, 2);
    }

    #[test]
    fn page_mode_large_object_spans_pages() {
        let mut d = ObjDirectory::new(Granularity::Page(4096));
        d.register(O, 0, 10_000); // 3 pages
        let r = d.plan_fetch(O, 1, false);
        assert_eq!(r.transfers.len(), 3);
        assert!(r.transfers.iter().all(|t| t.bytes == 4096));
    }

    #[test]
    fn object_mode_rewrite_by_owner_is_free() {
        let mut d = ObjDirectory::new(Granularity::Object);
        d.register(O, 0, 100);
        let w = d.plan_fetch(O, 0, true);
        assert!(w.transfers.is_empty() && w.invalidate.is_empty());
    }
}
