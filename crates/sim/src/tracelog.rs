//! Simulation event log — the raw material for reproducing Figure 7,
//! the paper's step-by-step picture of a Jade program executing on two
//! message-passing machines (task shipping, object moves/copies,
//! latency hiding).

use std::fmt::Write as _;

use jade_core::ids::{ObjectId, TaskId};

use crate::time::SimTime;

/// One logged simulation event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEventKind {
    /// A task was created by `withonly` on `machine`.
    TaskCreated {
        /// New task.
        task: TaskId,
        /// Label.
        label: String,
        /// Machine the creator executed on.
        machine: usize,
    },
    /// A ready task was assigned to a machine (possibly shipped).
    TaskAssigned {
        /// Task.
        task: TaskId,
        /// Source machine (creator side).
        from: usize,
        /// Destination machine.
        to: usize,
    },
    /// A task began executing.
    TaskStarted {
        /// Task.
        task: TaskId,
        /// Executing machine.
        machine: usize,
    },
    /// A task finished.
    TaskFinished {
        /// Task.
        task: TaskId,
        /// Executing machine.
        machine: usize,
    },
    /// A task suspended (with-cont conversion or ceded access).
    TaskBlocked {
        /// Task.
        task: TaskId,
    },
    /// A suspended task resumed.
    TaskResumed {
        /// Task.
        task: TaskId,
    },
    /// An object's authoritative version moved (write access); the
    /// old version is deallocated/invalidated.
    ObjectMoved {
        /// Object.
        object: ObjectId,
        /// Previous owner.
        from: usize,
        /// New owner.
        to: usize,
        /// Wire bytes.
        bytes: u64,
        /// Whether format conversion was required.
        converted: bool,
    },
    /// An object was replicated for read access; the source keeps its
    /// version so machines read concurrently.
    ObjectCopied {
        /// Object.
        object: ObjectId,
        /// Source machine.
        from: usize,
        /// Replica destination.
        to: usize,
        /// Wire bytes.
        bytes: u64,
        /// Whether format conversion was required.
        converted: bool,
    },
    /// A started-but-waiting task is stalled on an in-flight fetch —
    /// the window the runtime hides by running other tasks.
    FetchPending {
        /// Waiting task.
        task: TaskId,
        /// Object in flight.
        object: ObjectId,
    },
    /// A machine transiently crashed at a task boundary.
    MachineCrashed {
        /// The machine that went down.
        machine: usize,
    },
    /// A crashed machine rejoined the platform.
    MachineRecovered {
        /// The machine that came back.
        machine: usize,
    },
    /// An unstarted task was taken from a crashed machine for
    /// re-execution elsewhere.
    TaskReassigned {
        /// The recovered task.
        task: TaskId,
        /// The machine that crashed with the task queued.
        from: usize,
    },
}

/// Time-stamped event log.
#[derive(Debug, Default)]
pub struct SimLog {
    enabled: bool,
    events: Vec<(SimTime, SimEventKind)>,
}

impl SimLog {
    /// Create a log; disabled logs drop events cheaply.
    pub fn new(enabled: bool) -> Self {
        SimLog { enabled, events: Vec::new() }
    }

    /// Record an event (no-op when disabled).
    #[inline]
    pub fn push(&mut self, t: SimTime, e: SimEventKind) {
        if self.enabled {
            self.events.push((t, e));
        }
    }

    /// All recorded events in time order (the loop only appends with
    /// nondecreasing time).
    pub fn events(&self) -> &[(SimTime, SimEventKind)] {
        &self.events
    }

    /// Render the log as a Figure 7-style narrative.
    pub fn render(&self, labels: impl Fn(TaskId) -> String) -> String {
        let mut s = String::new();
        for (t, e) in &self.events {
            let line = match e {
                SimEventKind::TaskCreated { task, label, machine } => {
                    format!("machine {machine} creates task {} [{label}]", task)
                }
                SimEventKind::TaskAssigned { task, from, to } => {
                    if from == to {
                        format!("task {} [{}] assigned locally to machine {to}", task, labels(*task))
                    } else {
                        format!(
                            "task {} [{}] moved from machine {from} to idle machine {to}",
                            task,
                            labels(*task)
                        )
                    }
                }
                SimEventKind::TaskStarted { task, machine } => {
                    format!("machine {machine} starts task {} [{}]", task, labels(*task))
                }
                SimEventKind::TaskFinished { task, machine } => {
                    format!("machine {machine} finishes task {} [{}]", task, labels(*task))
                }
                SimEventKind::TaskBlocked { task } => {
                    format!("task {} [{}] suspends (waiting on earlier task)", task, labels(*task))
                }
                SimEventKind::TaskResumed { task } => {
                    format!("task {} [{}] resumes", task, labels(*task))
                }
                SimEventKind::ObjectMoved { object, from, to, bytes, converted } => format!(
                    "{object} moved machine {from} -> {to} ({bytes} bytes{}); old version invalidated",
                    if *converted { ", format-converted" } else { "" }
                ),
                SimEventKind::ObjectCopied { object, from, to, bytes, converted } => format!(
                    "{object} copied machine {from} -> {to} ({bytes} bytes{}); both may read concurrently",
                    if *converted { ", format-converted" } else { "" }
                ),
                SimEventKind::FetchPending { task, object } => format!(
                    "task {} [{}] waits for {object} in transit (latency hidden by other tasks)",
                    task,
                    labels(*task)
                ),
                SimEventKind::MachineCrashed { machine } => format!(
                    "machine {machine} crashes (transient); queued tasks will re-execute elsewhere"
                ),
                SimEventKind::MachineRecovered { machine } => {
                    format!("machine {machine} rejoins the platform")
                }
                SimEventKind::TaskReassigned { task, from } => format!(
                    "task {} [{}] recovered from crashed machine {from} for re-execution",
                    task,
                    labels(*task)
                ),
            };
            let _ = writeln!(s, "[{t:>12}] {line}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = SimLog::new(false);
        log.push(SimTime(1), SimEventKind::TaskBlocked { task: TaskId(1) });
        assert!(log.events().is_empty());
    }

    #[test]
    fn render_produces_narrative() {
        let mut log = SimLog::new(true);
        log.push(
            SimTime(1_000),
            SimEventKind::TaskCreated { task: TaskId(1), label: "Internal(0)".into(), machine: 0 },
        );
        log.push(
            SimTime(2_000),
            SimEventKind::TaskAssigned { task: TaskId(1), from: 0, to: 1 },
        );
        log.push(
            SimTime(3_000),
            SimEventKind::ObjectMoved {
                object: ObjectId(0),
                from: 0,
                to: 1,
                bytes: 128,
                converted: true,
            },
        );
        let out = log.render(|_| "Internal(0)".to_string());
        assert!(out.contains("creates task"));
        assert!(out.contains("moved from machine 0 to idle machine 1"));
        assert!(out.contains("format-converted"));
    }
}
