//! The distributed Jade runtime over the discrete-event simulator.
//!
//! [`SimExecutor`] executes an unmodified Jade program on a simulated
//! heterogeneous message-passing platform, implementing the runtime
//! responsibilities the paper lists in §5:
//!
//! * **Parallel execution** — the shared [`DepGraph`] engine decides
//!   which tasks may run; ready tasks are distributed over machines.
//! * **Object management** — the [`ObjDirectory`] moves/copies object
//!   versions; every transfer passes through the typed transport with
//!   the sender's data layout, so heterogeneous runs exercise format
//!   conversion on real bytes.
//! * **Dynamic load balancing & locality** — see [`crate::sched`].
//! * **Latency hiding** — ready tasks are assigned to machines up to a
//!   configurable lookahead; their object fetches proceed while the
//!   machine executes other tasks (Figure 7(f)).
//! * **Throttling** — optional suspend-the-creator watermarks.
//!
//! Each machine's CPU is a preemptive, time-sliced run queue (compute
//! bursts execute in quanta; runtime work such as task creation and
//! dispatch is prioritized). Any number of *suspended* tasks may be
//! resident on a machine — a task blocked in a `with-cont` releases
//! the CPU, which is what lets the pipelined back-substitution of
//! §4.2 overlap with the factorization.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::bounded;
use jade_core::ctx::{violation, HoldSet, JadeCtx, ReadGuard, WriteGuard};
use jade_core::error::{JadeError, JadeFault};
use jade_core::graph::{AccessStatus, DepGraph, Wake};
use jade_core::handle::{Object, Shared};
use jade_core::ids::{ObjectId, TaskId};
use jade_core::observe::{Event as ObsEvent, EventKind as ObsKind, ObserverArtifacts, ObserverHub};
use jade_core::readyq::{FifoReadyQueue, ReadyQueue};
use jade_core::runtime::{CancelSignal, Report, RunConfig, Runtime, Throttle};
use jade_core::spec::{AccessKind, ContBuilder, ContOp, DeclState, SpecBuilder};
use jade_core::store::{ObjectStore, Slot};
use jade_transport::message::HEADER_WIRE_BYTES;
use jade_transport::{PortDecoder, PortEncoder};

use crate::event::{EventKind, EventQueue};
use crate::faults::{FaultInjector, FaultPlan, FaultStats};
use crate::network::NetworkModel;
use crate::objmgr::{Granularity, ObjDirectory, CTRL_BYTES};
use crate::platform::Platform;
use crate::proc::{spawn_proc, ProcChannels, ProcHandle, ProcReq, ProcResp, SimBody};
use crate::report::{ObjTraffic, SimReport};
use crate::sched::{affinity, choose, eligible, Candidate};
use crate::time::{SimSpan, SimTime};
use crate::tracelog::{SimEventKind, SimLog};

/// Wire size of a shipped task descriptor (id, spec, closure token).
const DESC_BYTES: usize = 256;

/// Task-creation throttling for the simulator: suspend the creating
/// task at `hi` live tasks until the count falls below `lo`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspendCreator {
    /// High watermark.
    pub hi: u64,
    /// Low watermark.
    pub lo: u64,
}

/// Configuration of a simulated execution.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The platform to simulate.
    pub platform: Platform,
    /// Enable the locality heuristic (§5). Ablation A1.
    pub locality: bool,
    /// Tasks (beyond the one executing) that may be assigned to a
    /// machine so their fetches overlap execution (§5 latency hiding,
    /// Figure 7(f)). 0 disables prefetching. Ablation A2.
    pub lookahead: usize,
    /// Optional suspend-creator throttling (§3.3). Ablation A3.
    pub throttle: Option<SuspendCreator>,
    /// Coherence granularity: Jade objects, or the page-DSM baseline
    /// of §6.1 (experiment B-DSM).
    pub granularity: Granularity,
    /// Record the Figure 7-style event narrative.
    pub log: bool,
    /// Capture the dynamic task graph (Figure 4).
    pub trace: bool,
    /// Deterministic fault injection: message drops (recovered by
    /// retransmission), delay spikes, transient machine crashes (tasks
    /// re-execute elsewhere), slowdown windows. `None` = fault-free.
    pub faults: Option<FaultPlan>,
}

impl SimConfig {
    /// Default configuration for a platform: locality on, lookahead 2,
    /// no throttle, object granularity.
    pub fn new(platform: Platform) -> Self {
        SimConfig {
            platform,
            locality: true,
            lookahead: 2,
            throttle: None,
            granularity: Granularity::Object,
            log: false,
            trace: false,
            faults: None,
        }
    }
}

/// Entry point: a configured simulated Jade executor.
#[derive(Debug, Clone)]
pub struct SimExecutor {
    cfg: SimConfig,
}

impl SimExecutor {
    /// Executor with default config for `platform`.
    pub fn new(platform: Platform) -> Self {
        SimExecutor { cfg: SimConfig::new(platform) }
    }

    /// Executor from an explicit config.
    pub fn from_config(cfg: SimConfig) -> Self {
        SimExecutor { cfg }
    }

    /// Toggle the locality heuristic.
    pub fn locality(mut self, on: bool) -> Self {
        self.cfg.locality = on;
        self
    }

    /// Set the per-machine assignment lookahead (latency hiding).
    pub fn lookahead(mut self, n: usize) -> Self {
        self.cfg.lookahead = n;
        self
    }

    /// Enable suspend-creator throttling.
    pub fn throttle(mut self, hi: u64, lo: u64) -> Self {
        self.cfg.throttle = Some(SuspendCreator { hi, lo });
        self
    }

    /// Use the page-DSM baseline coherence granularity.
    pub fn granularity(mut self, g: Granularity) -> Self {
        self.cfg.granularity = g;
        self
    }

    /// Record the Figure 7 narrative log.
    pub fn logged(mut self) -> Self {
        self.cfg.log = true;
        self
    }

    /// Capture the dynamic task graph.
    pub fn traced(mut self) -> Self {
        self.cfg.trace = true;
        self
    }

    /// Inject the given deterministic fault plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = Some(plan);
        self
    }

    /// Execute a Jade program on the simulated platform.
    pub fn run<R, F>(&self, program: F) -> (R, SimReport)
    where
        R: Send + 'static,
        F: FnOnce(&mut SimCtx) -> R + Send + 'static,
    {
        let (tx, rx) = bounded::<R>(1);
        let body: SimBody = Box::new(move |ctx| {
            let r = program(ctx);
            let _ = tx.send(r);
        });
        let report = Loop::execute(self.cfg.clone(), body);
        let result = rx.try_recv().expect("root program produced no result");
        (result, report)
    }
}

#[derive(Debug)]
enum BlockedOp {
    /// Engine said MustWait on an access; retry residency after wake.
    AccessWait { object: ObjectId, kind: AccessKind },
    /// Access granted; waiting for the object to arrive.
    AccessFetch { object: ObjectId },
    /// Engine said MustWait inside a with-cont.
    ContWait { converted: Vec<(ObjectId, AccessKind)> },
    /// with-cont granted; waiting for converted objects to arrive.
    ContFetch,
    /// Creator suspended by the throttle watermarks.
    Throttle,
}

/// One simulated machine's dynamic state. The CPU is a time-sliced
/// run queue: compute bursts execute in quanta so that short runtime
/// operations (task creation, dispatch) are not starved behind long
/// application charges — modelling a preemptive 1992 Unix scheduler.
struct Mach {
    runq: VecDeque<(TaskId, f64)>,
    active: Option<(TaskId, f64)>,
    busy: SimSpan,
    load: i64,
    /// Started, unfinished, unblocked tasks (the machine executes one
    /// task context at a time, like a real Jade node; queued tasks
    /// stay stealable until started).
    running: i64,
    pending: VecDeque<TaskId>,
}

/// Scheduling quantum of the simulated machines' CPUs.
const QUANTUM_SECS: f64 = 0.01;

/// Why the event loop stopped early: a task panicked (possibly a
/// typed programming-model violation) or scheduling became impossible.
#[derive(Debug)]
struct Poison {
    /// The task the failure is attributed to.
    task: TaskId,
    /// Human-readable description (the legacy panic payload).
    message: String,
    /// The typed violation, when the panic came from `violation`.
    violation: Option<JadeError>,
}

struct Loop {
    cfg: SimConfig,
    now: SimTime,
    events: EventQueue,
    engine: DepGraph,
    net: Box<dyn NetworkModel>,
    mach: Vec<Mach>,
    stores: Vec<ObjectStore>,
    dir: ObjDirectory,
    procs: HashMap<TaskId, ProcHandle>,
    bodies: HashMap<TaskId, SimBody>,
    ready_pool: FifoReadyQueue,
    assigned: HashMap<TaskId, usize>,
    creator_machine: HashMap<TaskId, usize>,
    pending_fetches: HashMap<TaskId, usize>,
    blocked: HashMap<TaskId, BlockedOp>,
    throttle_waiters: VecDeque<TaskId>,
    /// Set when wake application queued ready tasks; the event loop
    /// flushes it with one `schedule_assignments` pass per iteration,
    /// so a burst of same-tick wakes is coalesced into one placement
    /// scan instead of one per wake wave.
    dispatch_pending: bool,
    unfinished: u64,
    root_done: bool,
    traffic: ObjTraffic,
    log: SimLog,
    poison: Option<Poison>,
    /// External cooperative cancellation, polled once per event-loop
    /// iteration (the simulator's natural task boundary).
    cancel: Option<CancelSignal>,
    /// Set when the loop stopped because `cancel` tripped.
    cancelled: bool,
    hub: ObserverHub,
    injector: Option<FaultInjector>,
    /// Per-machine end of the current outage (ZERO = never crashed).
    down_until: Vec<SimTime>,
    /// Tasks started per machine — the crash-arming clock.
    starts: Vec<u64>,
    /// Re-executions per task under crash recovery.
    attempts: HashMap<TaskId, u32>,
    /// In-flight fetch counts for tasks whose assignment was revoked
    /// by a crash; arrivals are swallowed instead of waking anyone.
    stale_fetches: HashMap<TaskId, usize>,
    fstats: FaultStats,
}

impl Loop {
    fn execute(cfg: SimConfig, root_body: SimBody) -> SimReport {
        let (report, poison, _cancelled, _arts) =
            Loop::execute_observed(cfg, ObserverHub::inactive(), None, root_body);
        if let Some(p) = poison {
            panic!("{}", p.message);
        }
        report
    }

    /// Run with an observer hub installed; returns the report, any
    /// poison (instead of panicking, so callers can surface a typed
    /// fault), whether the run stopped on a tripped `cancel` signal,
    /// and the artifacts the hub's built-in observers produced.
    fn execute_observed(
        cfg: SimConfig,
        hub: ObserverHub,
        cancel: Option<CancelSignal>,
        root_body: SimBody,
    ) -> (SimReport, Option<Poison>, bool, ObserverArtifacts) {
        let n = cfg.platform.len();
        assert!(n > 0, "platform needs at least one machine");
        let mut engine = DepGraph::new();
        if cfg.trace {
            engine.enable_trace();
        }
        let mut lp = Loop {
            now: SimTime::ZERO,
            events: EventQueue::new(),
            engine,
            net: cfg.platform.build_network(),
            mach: (0..n)
                .map(|_| Mach {
                    runq: VecDeque::new(),
                    active: None,
                    busy: SimSpan::ZERO,
                    load: 0,
                    running: 0,
                    pending: VecDeque::new(),
                })
                .collect(),
            stores: (0..n).map(|_| ObjectStore::new()).collect(),
            dir: ObjDirectory::new(cfg.granularity),
            procs: HashMap::new(),
            bodies: HashMap::new(),
            ready_pool: FifoReadyQueue::new(),
            assigned: HashMap::new(),
            creator_machine: HashMap::new(),
            pending_fetches: HashMap::new(),
            blocked: HashMap::new(),
            throttle_waiters: VecDeque::new(),
            dispatch_pending: false,
            unfinished: 0,
            root_done: false,
            traffic: ObjTraffic::default(),
            log: SimLog::new(cfg.log),
            poison: None,
            cancel,
            cancelled: false,
            injector: cfg.faults.clone().map(FaultInjector::new),
            down_until: vec![SimTime::ZERO; n],
            starts: vec![0; n],
            attempts: HashMap::new(),
            stale_fetches: HashMap::new(),
            fstats: FaultStats::default(),
            hub,
            cfg,
        };
        let report = lp.run_loop(root_body);
        let poison = lp.poison.take();
        let cancelled = lp.cancelled;
        let hub = std::mem::replace(&mut lp.hub, ObserverHub::inactive());
        let arts = hub.finish(report.time.0.max(1));
        (report, poison, cancelled, arts)
    }

    fn run_loop(&mut self, root_body: SimBody) -> SimReport {
        // The main program runs as the root task on machine 0.
        self.assigned.insert(TaskId::ROOT, 0);
        self.mach[0].load += 1;
        self.mach[0].running += 1;
        self.procs
            .insert(TaskId::ROOT, spawn_proc(TaskId::ROOT, self.cfg.platform.len(), root_body));
        self.drive(TaskId::ROOT, ProcResp::Proceed);
        self.flush_dispatch();

        while !(self.root_done && self.unfinished == 0) {
            if self.poison.is_some() {
                break;
            }
            if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                self.cancelled = true;
                break;
            }
            let Some((t, ev)) = self.events.pop() else {
                panic!(
                    "jade-sim: simulation stalled with {} unfinished task(s) \
                     (root_done={}) — this indicates a runtime bug",
                    self.unfinished, self.root_done
                );
            };
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            match ev {
                EventKind::Resume(tid) => {
                    if self.procs.contains_key(&tid) {
                        self.drive(tid, ProcResp::Proceed);
                    }
                }
                EventKind::FetchArrive { task, .. } => {
                    // Fetches started for an assignment a crash later
                    // revoked still arrive; swallow them.
                    if let Some(c) = self.stale_fetches.get_mut(&task) {
                        *c -= 1;
                        if *c == 0 {
                            self.stale_fetches.remove(&task);
                        }
                        continue;
                    }
                    let left = {
                        let c = self
                            .pending_fetches
                            .get_mut(&task)
                            .expect("fetch arrival without pending count");
                        *c -= 1;
                        *c
                    };
                    if left == 0 {
                        self.pending_fetches.remove(&task);
                        self.on_fetches_done(task);
                    }
                }
                EventKind::TryStart(m) => self.try_start(m),
                EventKind::SliceDone(m) => self.on_slice_done(m),
                EventKind::Rejoin(m) => {
                    self.log.push(self.now, SimEventKind::MachineRecovered { machine: m });
                    // Ready tasks that found no surviving candidate
                    // can place now, and the machine may start work.
                    self.schedule_assignments();
                    self.events.push(self.now, EventKind::TryStart(m));
                }
            }
            // One placement scan per event, however many wake waves
            // the event produced.
            self.flush_dispatch();
        }

        if self.poison.is_some() || self.cancelled {
            // Drop all task processes so their threads unwind; the
            // caller decides whether to panic or return a typed fault.
            self.procs.clear();
        }

        let labels: HashMap<TaskId, String> = self
            .log
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                SimEventKind::TaskCreated { task, label, .. } => Some((*task, label.clone())),
                _ => None,
            })
            .collect();
        let log_text = if self.cfg.log {
            Some(self.log.render(|t| {
                if t.is_root() {
                    "root".to_string()
                } else {
                    labels.get(&t).cloned().unwrap_or_else(|| "?".to_string())
                }
            }))
        } else {
            None
        };
        let mut net = self.net.stats();
        if let Some(inj) = &self.injector {
            net.retransmits = inj.retransmits;
            net.timeouts = inj.timeouts;
            net.dropped = inj.dropped;
        }
        SimReport {
            platform: self.cfg.platform.name.clone(),
            machines: self.cfg.platform.len(),
            time: self.now,
            stats: self.engine.stats,
            net,
            traffic: self.traffic,
            faults: self.fstats,
            busy: self.mach.iter().map(|m| m.busy).collect(),
            log: log_text,
            trace: self.engine.take_trace(),
        }
    }

    fn machine_of(&self, t: TaskId) -> usize {
        *self.assigned.get(&t).expect("task has a machine")
    }

    /// Deliver one lifecycle event to the observer hub at the current
    /// simulated time (no-op when no observer is installed).
    fn observe(&mut self, task: TaskId, kind: ObsKind) {
        if self.hub.is_active() {
            self.hub.emit(ObsEvent { nanos: self.now.0, task, kind });
        }
    }

    /// Whether `m` is inside a crash outage at the current time.
    fn is_down(&self, m: usize) -> bool {
        self.now < self.down_until[m]
    }

    // ------------------------------------------------------------------
    // Reliable delivery and fault injection
    // ------------------------------------------------------------------

    /// Send `bytes` from `src` to `dst`, no earlier than `t`. Without
    /// a fault plan this is exactly one network transfer. With one,
    /// delivery is *reliable over a lossy link*: each transmission may
    /// be dropped (seeded roll); the sender times out and retransmits
    /// with bounded exponential backoff until an attempt gets through.
    /// Messages to or from a machine in a crash outage wait for its
    /// rejoin (the recovery protocol replays them). Returns the
    /// arrival time of the successful delivery.
    fn send(&mut self, t: SimTime, src: usize, dst: usize, bytes: usize) -> SimTime {
        let base = t.max(self.down_until[src]).max(self.down_until[dst]);
        // The injector is taken out for the duration of the retry loop
        // so the network model can be borrowed alongside it.
        let arrival = match self.injector.take() {
            None => self.net.transfer(base, src, dst, bytes),
            Some(mut inj) => {
                let mut base = base;
                let mut attempt = 0u32;
                let arrival = loop {
                    attempt += 1;
                    let mut arrival = self.net.transfer(base, src, dst, bytes);
                    if let Some(spike) = inj.roll_spike() {
                        arrival += spike;
                    }
                    if !inj.roll_drop() || attempt >= inj.plan().max_msg_attempts {
                        break arrival;
                    }
                    // Lost on the wire: the sender's ack timer expires and
                    // the message is retransmitted after a backoff.
                    inj.dropped += 1;
                    inj.timeouts += 1;
                    inj.retransmits += 1;
                    let backoff = inj.backoff(attempt);
                    base += backoff;
                };
                self.injector = Some(inj);
                arrival
            }
        };
        if self.hub.is_active() {
            // Message traffic is runtime-level work, attributed to the
            // root task; the machine pair rides in the payload.
            let b = bytes as u64;
            self.hub.emit(ObsEvent {
                nanos: base.0,
                task: TaskId::ROOT,
                kind: ObsKind::MessageSend { from: src, to: dst, bytes: b },
            });
            self.hub.emit(ObsEvent {
                nanos: arrival.0,
                task: TaskId::ROOT,
                kind: ObsKind::MessageRecv { from: src, to: dst, bytes: b },
            });
        }
        arrival
    }

    /// Fire an armed transient crash of `m` if it is at a clean task
    /// boundary (no live task contexts). Returns whether it fired.
    fn maybe_crash(&mut self, m: usize) -> bool {
        let Some(inj) = &self.injector else { return false };
        let Some(idx) = inj.armed_crash(m, self.starts[m]) else { return false };
        // Only crash between tasks: a consumed FnOnce body cannot be
        // re-executed, so a machine with live or suspended task
        // contexts defers its crash to the next clean boundary. (This
        // is also what guarantees no uncommitted writes are lost —
        // Jade effects commit at task completion.)
        let has_ctx = self.mach[m].running != 0
            || self.mach[m].active.is_some()
            || !self.mach[m].runq.is_empty()
            || self.procs.keys().any(|t| self.assigned.get(t) == Some(&m));
        if has_ctx {
            return false;
        }
        let down_for = self.injector.as_mut().expect("checked above").fire_crash(idx);
        self.fstats.crashes += 1;
        self.down_until[m] = self.now + down_for;
        self.log.push(self.now, SimEventKind::MachineCrashed { machine: m });
        self.events.push(self.down_until[m], EventKind::Rejoin(m));
        // Surviving replicas take over residency for what m owned.
        let _moved = self.dir.fail_machine(m);
        // Unstarted tasks queued on m are recovered: their bodies were
        // never consumed, so they re-execute elsewhere from scratch.
        let victims: Vec<TaskId> = self.mach[m].pending.drain(..).collect();
        self.mach[m].load -= victims.len() as i64;
        for t in victims {
            if let Some(n) = self.pending_fetches.remove(&t) {
                *self.stale_fetches.entry(t).or_insert(0) += n;
            }
            self.log.push(self.now, SimEventKind::TaskReassigned { task: t, from: m });
            self.fstats.recoveries += 1;
            let tries = self.attempts.entry(t).or_insert(0);
            *tries += 1;
            let budget = self
                .injector
                .as_ref()
                .map(|i| i.plan().max_task_attempts)
                .expect("crash implies injector");
            if *tries >= budget {
                // Budget exhausted: degrade to the first surviving
                // eligible machine and stop gambling on placement.
                self.fstats.degraded += 1;
                let placement = self.engine.placement(t);
                let fallback = (0..self.cfg.platform.len()).find(|&mi| {
                    !self.is_down(mi)
                        && eligible(&self.cfg.platform.machines[mi], mi, placement)
                });
                match fallback {
                    Some(mi) => self.assign(t, mi),
                    None => self.ready_pool.push(t, None),
                }
            } else {
                self.ready_pool.push(t, None);
            }
        }
        self.schedule_assignments();
        true
    }

    fn set_block(&mut self, t: TaskId, op: BlockedOp) {
        match &op {
            BlockedOp::AccessWait { object, kind } => {
                self.observe(t, ObsKind::AccessWaitBegin { object: *object, kind: *kind });
            }
            BlockedOp::ContWait { .. } => self.observe(t, ObsKind::ContBlock),
            _ => {}
        }
        let m = self.machine_of(t);
        if self.blocked.insert(t, op).is_none() {
            self.mach[m].load -= 1;
            // A suspended task releases its machine: another queued
            // task may start meanwhile (this is what overlaps the
            // §4.2 pipelined consumer with its producers).
            self.mach[m].running -= 1;
            self.events.push(self.now, EventKind::TryStart(m));
        }
    }

    fn clear_block(&mut self, t: TaskId) -> Option<BlockedOp> {
        let op = self.blocked.remove(&t);
        if let Some(inner) = &op {
            match inner {
                BlockedOp::AccessWait { object, kind } => {
                    self.observe(t, ObsKind::AccessWaitEnd { object: *object, kind: *kind });
                }
                BlockedOp::ContWait { .. } => self.observe(t, ObsKind::ContUnblock),
                _ => {}
            }
            let m = self.machine_of(t);
            self.mach[m].load += 1;
            self.mach[m].running += 1;
        }
        op
    }

    /// Queue `work` units of compute for `t` on machine `m`'s
    /// time-sliced CPU. When the burst completes, a `Resume(t)` event
    /// fires. `priority` bursts (runtime work: task creation/dispatch,
    /// and the main program) go to the front of the run queue.
    fn enqueue_burst(&mut self, m: usize, t: TaskId, work: f64, priority: bool) {
        if priority {
            self.mach[m].runq.push_front((t, work));
        } else {
            self.mach[m].runq.push_back((t, work));
        }
        self.kick_cpu(m);
    }

    /// Queue a fixed runtime-overhead span as priority work.
    fn enqueue_overhead(&mut self, m: usize, t: TaskId, span: SimSpan) {
        let work = span.as_secs_f64() * self.cfg.platform.machines[m].speed;
        self.enqueue_burst(m, t, work, true);
    }

    /// Start the next CPU slice on `m` if the CPU is idle. Slowdown
    /// windows from the fault plan divide the effective speed.
    fn kick_cpu(&mut self, m: usize) {
        if self.mach[m].active.is_some() {
            return;
        }
        let Some((t, work)) = self.mach[m].runq.pop_front() else { return };
        let slow = self.injector.as_ref().map_or(1.0, |i| i.slowdown(m, self.now));
        let speed = self.cfg.platform.machines[m].speed / slow;
        let quantum = QUANTUM_SECS * speed;
        let slice = work.min(quantum);
        let span = SimSpan::from_work(slice, speed);
        self.mach[m].busy = self.mach[m].busy + span;
        self.mach[m].active = Some((t, work - slice));
        self.events.push(self.now + span, EventKind::SliceDone(m));
    }

    /// A CPU slice ended: either the burst is done (resume the task)
    /// or it rotates to the back of the run queue.
    fn on_slice_done(&mut self, m: usize) {
        let (t, remaining) = self.mach[m].active.take().expect("slice without active burst");
        if remaining > 0.0 {
            self.mach[m].runq.push_back((t, remaining));
        } else {
            self.events.push(self.now, EventKind::Resume(t));
        }
        self.kick_cpu(m);
    }

    // ------------------------------------------------------------------
    // Driving task processes
    // ------------------------------------------------------------------

    fn drive(&mut self, tid: TaskId, first: ProcResp) {
        let mut resp = first;
        loop {
            if self.poison.is_some() {
                return;
            }
            let req = self.procs.get(&tid).expect("driving a live process").step(resp);
            match req {
                ProcReq::Charge(work) => {
                    let m = self.machine_of(tid);
                    self.enqueue_burst(m, tid, work.max(0.0), tid.is_root());
                    return;
                }
                ProcReq::CreateObject { name, slot } => {
                    let m = self.machine_of(tid);
                    let oid = self.engine.create_object(tid);
                    self.dir.register(oid, m, slot.wire_size());
                    self.stores[m].insert(oid, slot);
                    let _ = name;
                    resp = ProcResp::Created(oid);
                }
                ProcReq::Withonly { label, decls, placement, body } => {
                    match self.engine.create_task(tid, &label, decls, placement) {
                        Err(e) => resp = ProcResp::Violation(e),
                        Ok((new, wakes)) => {
                            let m = self.machine_of(tid);
                            self.unfinished += 1;
                            self.creator_machine.insert(new, m);
                            self.bodies.insert(new, body);
                            if self.hub.is_active() {
                                self.observe(
                                    new,
                                    ObsKind::TaskCreated { parent: tid, label: label.clone() },
                                );
                            }
                            self.log.push(
                                self.now,
                                SimEventKind::TaskCreated { task: new, label, machine: m },
                            );
                            self.apply_wakes(wakes);
                            if let Some(t) = self.cfg.throttle {
                                if self.engine.live_tasks() >= t.hi {
                                    self.set_block(tid, BlockedOp::Throttle);
                                    self.throttle_waiters.push_back(tid);
                                    self.log.push(self.now, SimEventKind::TaskBlocked { task: tid });
                                    return;
                                }
                            }
                            let span = self.cfg.platform.task_create_overhead;
                            self.enqueue_overhead(m, tid, span);
                            return;
                        }
                    }
                }
                ProcReq::WithCont(ops) => {
                    let converted: Vec<(ObjectId, AccessKind)> = ops
                        .iter()
                        .filter_map(|&(o, op)| match op {
                            ContOp::ToRd => Some((o, AccessKind::Read)),
                            ContOp::ToWr => Some((o, AccessKind::Write)),
                            _ => None,
                        })
                        .collect();
                    match self.engine.with_cont(tid, ops) {
                        Err(e) => resp = ProcResp::Violation(e),
                        Ok((must_block, wakes)) => {
                            self.apply_wakes(wakes);
                            if must_block {
                                self.set_block(tid, BlockedOp::ContWait { converted });
                                self.log.push(self.now, SimEventKind::TaskBlocked { task: tid });
                                return;
                            }
                            let m = self.machine_of(tid);
                            let n = self.start_fetches(tid, m, &converted, self.now);
                            if n > 0 {
                                self.set_block(tid, BlockedOp::ContFetch);
                                return;
                            }
                            resp = ProcResp::Proceed;
                        }
                    }
                }
                ProcReq::Access { object, kind } => {
                    match self.engine.check_access(tid, object, kind) {
                        Err(e) => resp = ProcResp::Violation(e),
                        Ok(AccessStatus::MustWait) => {
                            self.set_block(tid, BlockedOp::AccessWait { object, kind });
                            self.log.push(self.now, SimEventKind::TaskBlocked { task: tid });
                            return;
                        }
                        Ok(AccessStatus::Granted) => {
                            let m = self.machine_of(tid);
                            let n = self.start_fetches(tid, m, &[(object, kind)], self.now);
                            if n > 0 {
                                self.set_block(tid, BlockedOp::AccessFetch { object });
                                self.log
                                    .push(self.now, SimEventKind::FetchPending { task: tid, object });
                                return;
                            }
                            let slot = self.stores[m].get(object).expect("resident").clone();
                            resp = ProcResp::Object(slot);
                        }
                    }
                }
                ProcReq::Done => {
                    self.on_task_done(tid);
                    return;
                }
                ProcReq::Panicked { message, violation } => {
                    self.poison = Some(Poison { task: tid, message, violation });
                    return;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Wakes, blocking, completion
    // ------------------------------------------------------------------

    fn apply_wakes(&mut self, wakes: Vec<Wake>) {
        for w in wakes {
            match w {
                Wake::Ready(t) => {
                    debug_assert!(self.bodies.contains_key(&t), "ready task without a body");
                    self.observe(t, ObsKind::TaskEnabled);
                    self.ready_pool.push(t, None);
                }
                Wake::Unblocked(t) => self.on_unblocked(t),
            }
        }
        // Ready pushes are dispatched lazily: tasks only ever *start*
        // via a later TryStart event, so deferring the placement scan
        // to the end of the current event-loop iteration is
        // unobservable except in the number of scans performed.
        self.dispatch_pending = true;
    }

    /// Run the deferred placement scan if any wake wave queued one.
    fn flush_dispatch(&mut self) {
        if self.dispatch_pending {
            self.dispatch_pending = false;
            self.schedule_assignments();
        }
    }

    fn on_unblocked(&mut self, t: TaskId) {
        match self.clear_block(t) {
            Some(BlockedOp::AccessWait { object, kind }) => {
                // Re-validate: several waiters can be woken by one
                // grant wave (e.g. commuting updates, which serialize
                // at access time); only the first to re-check wins the
                // exclusivity, the rest re-block.
                match self.engine.check_access(t, object, kind) {
                    Err(e) => {
                        self.drive(t, ProcResp::Violation(e));
                        return;
                    }
                    Ok(AccessStatus::MustWait) => {
                        self.set_block(t, BlockedOp::AccessWait { object, kind });
                        return;
                    }
                    Ok(AccessStatus::Granted) => {}
                }
                let m = self.machine_of(t);
                self.log.push(self.now, SimEventKind::TaskResumed { task: t });
                let n = self.start_fetches(t, m, &[(object, kind)], self.now);
                if n > 0 {
                    self.set_block(t, BlockedOp::AccessFetch { object });
                    self.log.push(self.now, SimEventKind::FetchPending { task: t, object });
                } else {
                    let slot = self.stores[m].get(object).expect("resident").clone();
                    self.drive(t, ProcResp::Object(slot));
                }
            }
            Some(BlockedOp::ContWait { converted }) => {
                let m = self.machine_of(t);
                self.log.push(self.now, SimEventKind::TaskResumed { task: t });
                let n = self.start_fetches(t, m, &converted, self.now);
                if n > 0 {
                    self.set_block(t, BlockedOp::ContFetch);
                } else {
                    self.drive(t, ProcResp::Proceed);
                }
            }
            other => panic!("unexpected unblock of {t}: {other:?}"),
        }
    }

    fn on_fetches_done(&mut self, t: TaskId) {
        if !self.procs.contains_key(&t) {
            // Pre-start fetches complete: the machine may start it.
            if let Some(&m) = self.assigned.get(&t) {
                self.events.push(self.now, EventKind::TryStart(m));
            }
            return;
        }
        match self.clear_block(t) {
            Some(BlockedOp::AccessFetch { object }) => {
                let m = self.machine_of(t);
                self.log.push(self.now, SimEventKind::TaskResumed { task: t });
                let slot = self.stores[m].get(object).expect("fetched").clone();
                self.drive(t, ProcResp::Object(slot));
            }
            Some(BlockedOp::ContFetch) => {
                self.log.push(self.now, SimEventKind::TaskResumed { task: t });
                self.drive(t, ProcResp::Proceed);
            }
            other => panic!("unexpected fetch completion for {t}: {other:?}"),
        }
    }

    fn on_task_done(&mut self, tid: TaskId) {
        let m = self.machine_of(tid);
        // Refresh directory sizes for objects this task could write
        // (accounting for growing vectors etc.).
        for (oid, rights) in self.engine.declarations_of(tid) {
            if rights.write == DeclState::Immediate {
                if let Ok(slot) = self.stores[m].get(oid) {
                    let sz = slot.wire_size();
                    self.dir.update_size(oid, sz);
                }
            }
        }
        let wakes = self.engine.finish_task(tid);
        self.procs.remove(&tid);
        self.mach[m].load -= 1;
        self.mach[m].running -= 1;
        self.log.push(self.now, SimEventKind::TaskFinished { task: tid, machine: m });
        if !tid.is_root() {
            self.observe(tid, ObsKind::TaskFinished { worker: m });
        }
        if tid.is_root() {
            self.root_done = true;
        } else {
            self.unfinished -= 1;
        }
        self.apply_wakes(wakes);
        self.check_throttle_waiters();
        self.rebalance();
        self.events.push(self.now, EventKind::TryStart(m));
    }

    fn check_throttle_waiters(&mut self) {
        if let Some(t) = self.cfg.throttle {
            while self.engine.live_tasks() < t.lo {
                let Some(w) = self.throttle_waiters.pop_front() else { break };
                self.clear_block(w);
                self.log.push(self.now, SimEventKind::TaskResumed { task: w });
                self.drive(w, ProcResp::Proceed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Scheduling and object movement
    // ------------------------------------------------------------------

    /// Dynamic load balancing (§5): move *unstarted* tasks from busy
    /// machines' queues to idle machines. Started tasks never migrate
    /// (as in Jade: a task moves before it executes, Figure 7(b)-(c)).
    fn rebalance(&mut self) {
        loop {
            let n = self.cfg.platform.len();
            let Some(idle) = (0..n).find(|&m| self.mach[m].load == 0 && !self.is_down(m))
            else {
                return;
            };
            // Victim: the machine with the most queued (unstarted)
            // work beyond what it is currently executing.
            let victim = (0..n)
                .filter(|&v| v != idle && !self.mach[v].pending.is_empty() && self.mach[v].load >= 2)
                .max_by_key(|&v| self.mach[v].pending.len());
            let Some(victim) = victim else { return };
            // Steal the most recently queued eligible task.
            let spec = &self.cfg.platform.machines[idle];
            let Some(pos) = (0..self.mach[victim].pending.len()).rev().find(|&i| {
                let t = self.mach[victim].pending[i];
                eligible(spec, idle, self.engine.placement(t))
            }) else {
                return;
            };
            let t = self.mach[victim].pending.remove(pos).expect("index in range");
            self.mach[victim].load -= 1;
            // The descriptor now travels from the victim machine.
            self.creator_machine.insert(t, victim);
            self.assign(t, idle);
        }
    }

    fn schedule_assignments(&mut self) {
        // Scan the ready pool in enable (FIFO) order through the
        // ReadyQueue policy boundary. Decisions are computed against
        // the live machine loads plus the loads this very scan has
        // already committed (`picked_load`), then applied after the
        // scan — `dispatch_where` holds the queue, so the closure must
        // not mutate the simulation.
        let mut picks: Vec<(TaskId, usize)> = Vec::new();
        let mut picked_load = vec![0i64; self.cfg.platform.len()];
        let mut poison: Option<Poison> = None;
        let cap = 1 + self.cfg.lookahead as i64;
        let single = self.cfg.platform.len() == 1;
        self.ready_pool.dispatch_where(&mut |t| {
            if poison.is_some() {
                return false;
            }
            let placement = self.engine.placement(t);
            if !self
                .cfg
                .platform
                .machines
                .iter()
                .enumerate()
                .any(|(mi, spec)| eligible(spec, mi, placement))
            {
                poison = Some(Poison {
                    task: t,
                    message: format!(
                        "task {t} ('{}') requests placement {placement:?}, which no machine \
                         of platform '{}' satisfies",
                        self.engine.label(t),
                        self.cfg.platform.name
                    ),
                    violation: None,
                });
                return false;
            }
            // Single-machine fast path: the eligibility probe above
            // already proved machine 0 satisfies the placement, and
            // with one machine the candidate scan, affinity lookup and
            // tie-break policy are all moot — the only decision left
            // is the lookahead cap. Skips the per-task declaration
            // collection (an allocation) on every dispatch; decisions
            // are bit-identical to the general path (a sole candidate
            // is always `choose`'s pick).
            if single {
                let load = self.mach[0].load + picked_load[0];
                if load >= cap || self.is_down(0) {
                    return false;
                }
                picked_load[0] += 1;
                picks.push((t, 0));
                return true;
            }
            let objs: Vec<ObjectId> =
                self.engine.declarations_of(t).into_iter().map(|(o, _)| o).collect();
            let mut cands: Vec<Candidate> = Vec::new();
            for (mi, spec) in self.cfg.platform.machines.iter().enumerate() {
                let load = self.mach[mi].load + picked_load[mi];
                if !eligible(spec, mi, placement) || load >= cap || self.is_down(mi) {
                    continue;
                }
                // Affinity in 4 KiB classes: small resident objects
                // should not override load balancing.
                let aff = if self.cfg.locality {
                    affinity(&self.dir, &objs, mi) / 4096
                } else {
                    0
                };
                cands.push(Candidate {
                    machine: mi,
                    load: load.max(0) as usize,
                    speed: spec.speed,
                    affinity: aff,
                });
            }
            match choose(&cands) {
                Some(m) => {
                    picked_load[m] += 1;
                    picks.push((t, m));
                    true
                }
                None => false,
            }
        });
        for (t, m) in picks {
            self.assign(t, m);
        }
        if let Some(p) = poison {
            self.poison = Some(p);
        }
    }

    fn assign(&mut self, t: TaskId, m: usize) {
        self.assigned.insert(t, m);
        self.mach[m].load += 1;
        self.mach[m].pending.push_back(t);
        let from = *self.creator_machine.get(&t).unwrap_or(&0);
        self.log.push(self.now, SimEventKind::TaskAssigned { task: t, from, to: m });
        self.observe(t, ObsKind::TaskDispatched { worker: m });
        let base = if from != m {
            self.send(self.now, from, m, DESC_BYTES + HEADER_WIRE_BYTES)
        } else {
            self.now
        };
        // Fetch every immediately-declared read/write object; deferred
        // declarations are fetched at conversion, and commuting
        // declarations at access time (their order — and therefore the
        // object's next location — is decided by whichever commuter
        // touches it first).
        let items: Vec<(ObjectId, AccessKind)> = self
            .engine
            .declarations_of(t)
            .into_iter()
            .filter_map(|(o, r)| {
                if r.write == DeclState::Immediate {
                    Some((o, AccessKind::Write))
                } else if r.read == DeclState::Immediate {
                    Some((o, AccessKind::Read))
                } else {
                    None
                }
            })
            .collect();
        let n = self.start_fetches(t, m, &items, base);
        if n == 0 {
            self.events.push(base, EventKind::TryStart(m));
        }
    }

    fn try_start(&mut self, m: usize) {
        // A crashed machine starts nothing until it rejoins; and the
        // start boundary is where armed transient crashes fire.
        if self.is_down(m) || self.maybe_crash(m) {
            return;
        }
        // One task context executes at a time (suspended tasks do not
        // count); the rest of the queue stays stealable.
        if self.mach[m].running > 0 {
            return;
        }
        let Some(i) = (0..self.mach[m].pending.len())
            .find(|&i| !self.pending_fetches.contains_key(&self.mach[m].pending[i]))
        else {
            return;
        };
        let t = self.mach[m].pending.remove(i).expect("index in range");
        self.mach[m].running += 1;
        self.starts[m] += 1;
        self.engine.start_task(t);
        self.log.push(self.now, SimEventKind::TaskStarted { task: t, machine: m });
        self.observe(t, ObsKind::TaskStarted { worker: m });
        let body = self.bodies.remove(&t).expect("starting task has a body");
        self.procs.insert(t, spawn_proc(t, self.cfg.platform.len(), body));
        let span = self.cfg.platform.task_dispatch_overhead;
        self.enqueue_overhead(m, t, span);
    }

    /// Plan and schedule the transfers needed for `t` (on machine `m`)
    /// to access `items`; returns the number of in-flight fetches.
    fn start_fetches(
        &mut self,
        t: TaskId,
        m: usize,
        items: &[(ObjectId, AccessKind)],
        base: SimTime,
    ) -> usize {
        let mut count = 0;
        for &(oid, kind) in items {
            // A commuting update needs the authoritative version and
            // exclusivity at the destination, exactly like a write.
            let write = kind != AccessKind::Read;
            let plan = self.dir.plan_fetch(oid, m, write);
            // Materialize the value at the destination *before*
            // invalidating replicas — the source may be among them.
            let mut converted = false;
            if plan.need_value && plan.value_source != m {
                converted = self.sync_value(oid, plan.value_source, m);
                if converted {
                    self.traffic.conversions += 1;
                }
            }
            for &inv in &plan.invalidate {
                self.stores[inv].remove(oid);
                self.traffic.invalidations += 1;
            }
            for tr in &plan.transfers {
                // Request to the holder, then the data/control reply.
                let t_req = self.send(base.max(self.now), m, tr.from, CTRL_BYTES);
                let mut t_arr = self.send(t_req, tr.from, m, tr.bytes + HEADER_WIRE_BYTES);
                if converted && tr.data {
                    t_arr +=
                        SimSpan(self.cfg.platform.convert_cost_per_byte.0 * tr.bytes as u64);
                }
                count += 1;
                *self.pending_fetches.entry(t).or_insert(0) += 1;
                self.events.push(t_arr, EventKind::FetchArrive { task: t, bytes: tr.bytes as u64 });
                if tr.data {
                    if write {
                        self.traffic.moves += 1;
                        self.log.push(
                            self.now,
                            SimEventKind::ObjectMoved {
                                object: oid,
                                from: tr.from,
                                to: m,
                                bytes: tr.bytes as u64,
                                converted,
                            },
                        );
                    } else {
                        self.traffic.copies += 1;
                        self.log.push(
                            self.now,
                            SimEventKind::ObjectCopied {
                                object: oid,
                                from: tr.from,
                                to: m,
                                bytes: tr.bytes as u64,
                                converted,
                            },
                        );
                    }
                } else {
                    self.traffic.upgrades += 1;
                }
            }
        }
        count
    }

    /// Move the object's value bytes from one machine's store to
    /// another through the typed transport (exercising data-format
    /// conversion). Returns whether conversion was required.
    fn sync_value(&mut self, oid: ObjectId, from: usize, to: usize) -> bool {
        let slot = self.stores[from]
            .get(oid)
            .unwrap_or_else(|_| panic!("{oid} value missing at its owner m{from}"))
            .clone();
        let src_layout = self.cfg.platform.machines[from].layout;
        let dst_layout = self.cfg.platform.machines[to].layout;
        let mut enc = PortEncoder::with_capacity(src_layout, slot.wire_size());
        slot.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = PortDecoder::new(&bytes, src_layout);
        // The reliability layer guarantees delivery of intact bytes,
        // so a decode failure here is a runtime invariant violation,
        // not a simulated network fault.
        let fresh = slot
            .decode_version(&mut dec)
            .unwrap_or_else(|e| panic!("{oid} version corrupted in transfer m{from}->m{to}: {e}"));
        self.stores[to].insert(oid, fresh);
        src_layout.conversion_required(&dst_layout)
    }
}

/// Execution context for simulated task bodies. Methods communicate
/// with the event loop through the strict-alternation channel pair,
/// so every operation happens at a well-defined simulated time.
pub struct SimCtx {
    task: TaskId,
    machines: usize,
    chans: ProcChannels,
    holds: HoldSet,
}

impl SimCtx {
    pub(crate) fn new(task: TaskId, machines: usize, chans: ProcChannels) -> Self {
        SimCtx { task, machines, chans, holds: HoldSet::new() }
    }

    pub(crate) fn wait_go(&mut self) -> Result<(), ()> {
        match self.chans.resp_rx.recv() {
            Ok(ProcResp::Proceed) => Ok(()),
            _ => Err(()),
        }
    }

    pub(crate) fn holds_any(&self) -> bool {
        self.holds.any_held()
    }

    fn call(&mut self, req: ProcReq) -> ProcResp {
        self.chans.req_tx.send(req).expect("simulator event loop gone");
        self.chans.resp_rx.recv().expect("simulator event loop gone")
    }
}

impl JadeCtx for SimCtx {
    fn create_named<T: Object>(&mut self, name: &str, value: T) -> Shared<T> {
        match self.call(ProcReq::CreateObject {
            name: name.to_string(),
            slot: Slot::new(name, value),
        }) {
            ProcResp::Created(oid) => Shared::from_raw(oid),
            ProcResp::Violation(e) => violation(e),
            other => panic!("unexpected response to CreateObject: {other:?}"),
        }
    }

    fn withonly<S, F>(&mut self, label: &str, spec: S, body: F)
    where
        S: FnOnce(&mut SpecBuilder),
        F: FnOnce(&mut Self) + Send + 'static,
    {
        let mut builder = SpecBuilder::new();
        spec(&mut builder);
        let (decls, placement) = builder.build();
        for d in &decls {
            if self.holds.conflicts(d.object, d.rights) {
                violation(jade_core::error::JadeError::ChildConflictsWithHeldGuard {
                    parent: self.task,
                    object: d.object,
                });
            }
        }
        match self.call(ProcReq::Withonly {
            label: label.to_string(),
            decls,
            placement,
            body: Box::new(body),
        }) {
            ProcResp::Proceed => {}
            ProcResp::Violation(e) => violation(e),
            other => panic!("unexpected response to Withonly: {other:?}"),
        }
    }

    fn with_cont<C>(&mut self, changes: C)
    where
        C: FnOnce(&mut ContBuilder),
    {
        let mut builder = ContBuilder::new();
        changes(&mut builder);
        match self.call(ProcReq::WithCont(builder.build())) {
            ProcResp::Proceed => {}
            ProcResp::Violation(e) => violation(e),
            other => panic!("unexpected response to WithCont: {other:?}"),
        }
    }

    fn rd<T: Object>(&mut self, h: &Shared<T>) -> ReadGuard<T> {
        match self.call(ProcReq::Access { object: h.id(), kind: AccessKind::Read }) {
            ProcResp::Object(slot) => {
                ReadGuard::new(slot.typed::<T>(), self.holds.acquire(h.id(), AccessKind::Read))
            }
            ProcResp::Violation(e) => violation(e),
            other => panic!("unexpected response to Access: {other:?}"),
        }
    }

    fn wr<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        match self.call(ProcReq::Access { object: h.id(), kind: AccessKind::Write }) {
            ProcResp::Object(slot) => {
                WriteGuard::new(slot.typed::<T>(), self.holds.acquire(h.id(), AccessKind::Write))
            }
            ProcResp::Violation(e) => violation(e),
            other => panic!("unexpected response to Access: {other:?}"),
        }
    }

    fn cm<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        match self.call(ProcReq::Access { object: h.id(), kind: AccessKind::Commute }) {
            ProcResp::Object(slot) => WriteGuard::new(
                slot.typed::<T>(),
                self.holds.acquire(h.id(), AccessKind::Commute),
            ),
            ProcResp::Violation(e) => violation(e),
            other => panic!("unexpected response to Access: {other:?}"),
        }
    }

    fn charge(&mut self, work: f64) {
        match self.call(ProcReq::Charge(work)) {
            ProcResp::Proceed => {}
            other => panic!("unexpected response to Charge: {other:?}"),
        }
    }

    fn machines(&self) -> usize {
        self.machines
    }

    fn task(&self) -> TaskId {
        self.task
    }
}

/// The uniform entry point over the simulator.
///
/// `RunConfig::workers` is ignored — the machine count is the
/// platform's. `Throttle::Inline` is ignored (a simulated machine
/// cannot inline a task the scheduler may place remotely);
/// `Throttle::SuspendCreator` maps onto the simulator's
/// suspend-creator watermarks. The full [`SimReport`] (network
/// traffic, fault statistics, per-machine busy spans) rides in
/// [`Report::extras`] and is recovered with
/// `report.extra::<SimReport>()`.
impl Runtime for SimExecutor {
    type Ctx = SimCtx;

    fn run_job<R, F>(&self, mut cfg: RunConfig, program: F) -> Result<Report<R>, JadeFault>
    where
        R: Send + 'static,
        F: FnOnce(&mut SimCtx) -> R + Send + 'static,
    {
        let mut sim_cfg = self.cfg.clone();
        sim_cfg.trace = sim_cfg.trace || cfg.trace;
        if let Throttle::SuspendCreator { hi, lo } = cfg.throttle {
            sim_cfg.throttle = Some(SuspendCreator { hi, lo });
        }
        let hub = cfg.take_hub();
        let (tx, rx) = bounded::<R>(1);
        let body: SimBody = Box::new(move |ctx| {
            let r = program(ctx);
            let _ = tx.send(r);
        });
        let (mut srep, poison, cancelled, arts) =
            Loop::execute_observed(sim_cfg, hub, cfg.cancel.clone(), body);
        if cancelled {
            return Err(JadeFault::Cancelled { task: TaskId::ROOT });
        }
        if let Some(p) = poison {
            if let Some(err) = p.violation {
                let task = err.task_hint().unwrap_or(p.task);
                return Err(JadeFault::SpecViolation { task, error: err });
            }
            if p.task.is_root() {
                // The main program itself panicked: propagate, exactly
                // like an un-Jade program would.
                std::panic::resume_unwind(Box::new(p.message));
            }
            return Err(JadeFault::TaskPanicked { task: p.task, message: p.message });
        }
        let result = rx.try_recv().expect("root program produced no result");
        let trace = srep.trace.take();
        let mut rep = Report::new(result, srep.stats, srep.time.0, srep.machines);
        rep.trace = trace;
        rep.timeline = arts.timeline;
        rep.contention = arts.contention;
        // Surface the network and fault counters in the uniform report
        // vocabulary (the sim-specific detail stays in extras).
        rep.net = Some(jade_core::stats::NetStats {
            messages: srep.net.messages,
            bytes: srep.net.bytes,
            retransmits: srep.net.retransmits,
            timeouts: srep.net.timeouts,
            dropped: srep.net.dropped,
            ..Default::default()
        });
        rep.faults = Some(srep.faults);
        rep.extras = Some(Box::new(srep));
        Ok(rep)
    }
}

/// `Arc` is used in signatures of the guards; re-export for doc links.
#[doc(hidden)]
pub type _ArcForDocs = Arc<()>;
