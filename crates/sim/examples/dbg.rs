use jade_core::prelude::*;
use jade_sim::{Platform, SimExecutor};

fn wide<C: JadeCtx>(ctx: &mut C) -> f64 {
    let xs: Vec<Shared<f64>> = (0..16).map(|i| ctx.create(i as f64)).collect();
    for &x in &xs {
        ctx.withonly("work", |s| { s.rd_wr(x); }, move |c| {
            c.charge(5e6);
            *c.wr(&x) += 1.0;
        });
    }
    xs.iter().map(|x| *ctx.rd(x)).sum()
}

fn main() {
    let (_, r) = SimExecutor::new(Platform::dash(8)).logged().run(wide);
    println!("time={} busy={:?}", r.time, r.busy.iter().map(|b| b.as_secs_f64()).collect::<Vec<_>>());
    println!("{}", r.log.unwrap());
}
