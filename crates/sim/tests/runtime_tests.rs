//! Integration tests for the simulated distributed Jade runtime:
//! serial-semantics preservation, heterogeneity, and the §5 runtime
//! optimizations.

#![deny(deprecated)]

use jade_core::error::{JadeError, JadeFault};
use jade_core::prelude::*;
use jade_sim::{Granularity, Platform, SimExecutor, SimReport, SimTime};

/// A program with real data dependencies: a chain of read-modify-write
/// tasks plus an independent strand, exercising migration and
/// replication.
fn chain_program<C: JadeCtx>(ctx: &mut C) -> Vec<f64> {
    let n = 10usize;
    let cells: Vec<Shared<f64>> = (0..n).map(|i| ctx.create(1.0 + i as f64)).collect();
    for i in 1..n {
        let a = cells[i - 1];
        let b = cells[i];
        ctx.withonly(
            "link",
            |s| {
                s.rd(a);
                s.rd_wr(b);
            },
            move |c| {
                c.charge(2e5);
                let left = *c.rd(&a);
                let mut bw = c.wr(&b);
                *bw = *bw * 1.5 + left;
            },
        );
    }
    cells.iter().map(|c| *ctx.rd(c)).collect()
}

#[test]
fn sim_matches_serial_elision_bitwise() {
    let (serial, _) = jade_core::serial::run(chain_program);
    for machines in [1, 2, 4, 7] {
        for platform in [
            Platform::dash(machines),
            Platform::ipsc860(machines),
            Platform::mica(machines),
            Platform::workstations(machines),
        ] {
            let name = platform.name.clone();
            let (got, _) = SimExecutor::new(platform).run(chain_program);
            assert_eq!(got, serial, "{name} x{machines}");
        }
    }
}

#[test]
fn sim_is_deterministic_across_runs() {
    let run = || {
        let (v, r) = SimExecutor::new(Platform::ipsc860(4)).run(chain_program);
        (v, r.time, r.net.messages, r.net.bytes)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn independent_tasks_speed_up_with_machines() {
    fn wide<C: JadeCtx>(ctx: &mut C) -> f64 {
        let xs: Vec<Shared<f64>> = (0..16).map(|i| ctx.create(i as f64)).collect();
        for &x in &xs {
            ctx.withonly(
                "work",
                |s| {
                    s.rd_wr(x);
                },
                move |c| {
                    c.charge(5e6);
                    *c.wr(&x) += 1.0;
                },
            );
        }
        xs.iter().map(|x| *ctx.rd(x)).sum()
    }
    let (_, r1) = SimExecutor::new(Platform::dash(1)).run(wide);
    let (_, r8) = SimExecutor::new(Platform::dash(8)).run(wide);
    let speedup = r1.time.as_secs_f64() / r8.time.as_secs_f64();
    assert!(speedup > 4.0, "speedup {speedup:.2} too low (t1={}, t8={})", r1.time, r8.time);
}

#[test]
fn heterogeneous_network_actually_converts() {
    // SPARC (big endian) and DECstation (little endian) on the same
    // Ethernet: transfers between them must be format-converted and
    // the values must survive exactly.
    let (vals, report) = SimExecutor::new(Platform::workstations(4)).run(chain_program);
    let (serial, _) = jade_core::serial::run(chain_program);
    assert_eq!(vals, serial);
    assert!(report.traffic.conversions > 0, "no format conversions happened");
}

#[test]
fn deferred_pipeline_overlaps_in_sim() {
    // §4.2: a consumer with deferred reads overlaps the producers.
    // With task-boundary sync only, the consumer would add its whole
    // runtime after the last producer.
    fn pipelined<C: JadeCtx>(ctx: &mut C) -> f64 {
        let cols: Vec<Shared<f64>> = (0..8).map(|_| ctx.create(0.0)).collect();
        let out = ctx.create(0.0);
        for (i, &c) in cols.iter().enumerate() {
            ctx.withonly(
                "produce",
                |s| {
                    s.rd_wr(c);
                },
                move |cc| {
                    cc.charge(4e6);
                    *cc.wr(&c) = (i + 1) as f64;
                },
            );
        }
        let spec_cols = cols.clone();
        let body_cols = cols.clone();
        ctx.withonly(
            "consume",
            |s| {
                s.rd_wr(out);
                for &c in &spec_cols {
                    s.df_rd(c);
                }
            },
            move |cc| {
                let mut acc = 0.0;
                for &c in &body_cols {
                    cc.with_cont(|b| {
                        b.to_rd(c);
                    });
                    cc.charge(4e6); // consumer work per column
                    acc += *cc.rd(&c);
                    cc.with_cont(|b| {
                        b.no_rd(c);
                    });
                }
                *cc.wr(&out) = acc;
            },
        );
        *ctx.rd(&out)
    }
    fn unpipelined<C: JadeCtx>(ctx: &mut C) -> f64 {
        let cols: Vec<Shared<f64>> = (0..8).map(|_| ctx.create(0.0)).collect();
        let out = ctx.create(0.0);
        for (i, &c) in cols.iter().enumerate() {
            ctx.withonly(
                "produce",
                |s| {
                    s.rd_wr(c);
                },
                move |cc| {
                    cc.charge(4e6);
                    *cc.wr(&c) = (i + 1) as f64;
                },
            );
        }
        let spec_cols = cols.clone();
        let body_cols = cols.clone();
        ctx.withonly(
            "consume",
            |s| {
                s.rd_wr(out);
                for &c in &spec_cols {
                    s.rd(c); // immediate: waits for ALL producers
                }
            },
            move |cc| {
                let mut acc = 0.0;
                for &c in &body_cols {
                    cc.charge(4e6);
                    acc += *cc.rd(&c);
                }
                *cc.wr(&out) = acc;
            },
        );
        *ctx.rd(&out)
    }
    let exec = SimExecutor::new(Platform::dash(2));
    let (v1, rp) = exec.run(pipelined);
    let (v2, ru) = exec.run(unpipelined);
    assert_eq!(v1, v2);
    assert_eq!(v1, 36.0);
    assert!(
        rp.time < ru.time,
        "pipelined ({}) should beat task-boundary sync ({})",
        rp.time,
        ru.time
    );
}

#[test]
fn throttle_bounds_live_tasks_in_sim() {
    fn flood<C: JadeCtx>(ctx: &mut C) -> f64 {
        let acc = ctx.create(0.0);
        for _ in 0..64 {
            ctx.withonly(
                "bump",
                |s| {
                    s.rd_wr(acc);
                },
                move |c| {
                    c.charge(1e5);
                    *c.wr(&acc) += 1.0;
                },
            );
        }
        *ctx.rd(&acc)
    }
    let (v, r) = SimExecutor::new(Platform::dash(4)).throttle(8, 4).run(flood);
    assert_eq!(v, 64.0);
    assert!(r.stats.peak_live_tasks <= 9, "peak {}", r.stats.peak_live_tasks);
    let (v2, r2) = SimExecutor::new(Platform::dash(4)).run(flood);
    assert_eq!(v2, 64.0);
    assert!(r2.stats.peak_live_tasks > 9, "unthrottled peak {}", r2.stats.peak_live_tasks);
}

#[test]
fn locality_heuristic_reduces_traffic() {
    // Tasks repeatedly touch the same pair of large objects; with the
    // locality heuristic they stick to one machine, without it they
    // spread and drag the objects around.
    fn affine<C: JadeCtx>(ctx: &mut C) -> f64 {
        let a = ctx.create(vec![0.0f64; 4096]);
        let b = ctx.create(vec![0.0f64; 4096]);
        for round in 0..12 {
            let big = if round % 2 == 0 { a } else { b };
            ctx.withonly(
                "touch",
                |s| {
                    s.rd_wr(big);
                },
                move |c| {
                    c.charge(5e5);
                    c.wr(&big)[0] += 1.0;
                },
            );
        }
        *ctx.rd(&a).first().unwrap() + *ctx.rd(&b).first().unwrap()
    }
    let (_, with) = SimExecutor::new(Platform::mica(4)).locality(true).run(affine);
    let (_, without) = SimExecutor::new(Platform::mica(4)).locality(false).run(affine);
    assert!(
        with.net.bytes <= without.net.bytes,
        "locality on moved {} bytes, off moved {}",
        with.net.bytes,
        without.net.bytes
    );
}

#[test]
fn dsm_page_baseline_generates_more_traffic() {
    // Many small objects written by alternating tasks: object-grain
    // Jade moves ~64B objects; page-grain DSM moves 4 KiB pages and
    // false-shares.
    fn small_objects<C: JadeCtx>(ctx: &mut C) -> f64 {
        let objs: Vec<Shared<f64>> = (0..32).map(|_| ctx.create(0.0)).collect();
        for round in 0..4 {
            for &o in &objs {
                let _ = round;
                ctx.withonly(
                    "w",
                    |s| {
                        s.rd_wr(o);
                    },
                    move |c| {
                        c.charge(2e5);
                        *c.wr(&o) += 1.0;
                    },
                );
            }
        }
        objs.iter().map(|o| *ctx.rd(o)).sum()
    }
    let (v1, jade) = SimExecutor::new(Platform::mica(4)).run(small_objects);
    let (v2, dsm) = SimExecutor::new(Platform::mica(4))
        .granularity(Granularity::Page(4096))
        .run(small_objects);
    assert_eq!(v1, v2);
    assert!(
        dsm.net.bytes > jade.net.bytes * 3,
        "DSM bytes {} vs Jade bytes {}",
        dsm.net.bytes,
        jade.net.bytes
    );
}

#[test]
fn placement_pins_tasks_to_devices() {
    // §7.2-style: tasks placed on accelerator machines of the HRV.
    fn pipeline<C: JadeCtx>(ctx: &mut C) -> f64 {
        let frame = ctx.create(vec![0.0f64; 256]);
        ctx.withonly(
            "capture",
            |s| {
                s.rd_wr(frame);
                s.place(Placement::Device(DeviceClass::FrameSource));
            },
            move |c| {
                c.charge(1e6);
                c.wr(&frame)[0] = 42.0;
            },
        );
        ctx.withonly(
            "transform",
            |s| {
                s.rd_wr(frame);
                s.place(Placement::Device(DeviceClass::Accelerator));
            },
            move |c| {
                c.charge(2e6);
                c.wr(&frame)[0] *= 2.0;
            },
        );
        ctx.rd(&frame)[0]
    }
    let (v, report) = SimExecutor::new(Platform::hrv(2)).logged().run(pipeline);
    assert_eq!(v, 84.0);
    let log = report.log.expect("logged run");
    // The transform must have executed on an accelerator (machine 1
    // or 2), requiring the frame to move off the SPARC host.
    assert!(report.traffic.moves >= 1, "frame never moved:\n{log}");
}

#[test]
fn explicit_machine_placement_honored() {
    fn program<C: JadeCtx>(ctx: &mut C) -> f64 {
        let x = ctx.create(0.0);
        ctx.withonly(
            "pinned",
            |s| {
                s.rd_wr(x);
                s.place(Placement::Machine(MachineId(3)));
            },
            move |c| {
                c.charge(1e5);
                *c.wr(&x) = 7.0;
            },
        );
        *ctx.rd(&x)
    }
    let (v, report) = SimExecutor::new(Platform::dash(4)).logged().run(program);
    assert_eq!(v, 7.0);
    let log = report.log.expect("logged");
    assert!(log.contains("machine 3 starts"), "task not on machine 3:\n{log}");
}

#[test]
fn lookahead_hides_fetch_latency() {
    // Tasks each read a distinct large object resident on machine 0
    // and compute; with lookahead the next task's fetch overlaps the
    // current task's compute.
    fn readers<C: JadeCtx>(ctx: &mut C) -> f64 {
        let objs: Vec<Shared<Vec<f64>>> =
            (0..8).map(|_| ctx.create(vec![1.0f64; 8192])).collect();
        let outs: Vec<Shared<f64>> = (0..8).map(|_| ctx.create(0.0)).collect();
        for (&o, &t) in objs.iter().zip(&outs) {
            ctx.withonly(
                "consume",
                |s| {
                    s.rd(o);
                    s.rd_wr(t);
                },
                move |c| {
                    c.charge(8e6);
                    let sum: f64 = c.rd(&o).iter().sum();
                    *c.wr(&t) = sum;
                },
            );
        }
        outs.iter().map(|t| *ctx.rd(t)).sum()
    }
    let (v1, with) = SimExecutor::new(Platform::ipsc860(2)).lookahead(2).run(readers);
    let (v2, without) = SimExecutor::new(Platform::ipsc860(2)).lookahead(0).run(readers);
    assert_eq!(v1, v2);
    assert!(
        with.time <= without.time,
        "lookahead should not hurt: with={} without={}",
        with.time,
        without.time
    );
}

#[test]
fn faster_machines_get_more_work() {
    // Heterogeneous load balancing: on a platform with one fast and
    // one slow machine, the fast one should accumulate more busy time.
    use jade_sim::{MachineSpec, NetworkKind, SimSpan};
    use jade_transport::DataLayout;
    let platform = Platform {
        name: "mixed".into(),
        machines: vec![
            MachineSpec::cpu("slow", 10e6, DataLayout::sparc()),
            MachineSpec::cpu("fast", 40e6, DataLayout::mips_le()),
        ],
        network: NetworkKind::Ethernet { latency: SimSpan::from_millis(1), bandwidth: 1.1e6 },
        task_create_overhead: SimSpan::from_micros(50),
        task_dispatch_overhead: SimSpan::from_micros(200),
        convert_cost_per_byte: SimSpan(30),
    };
    fn wide<C: JadeCtx>(ctx: &mut C) -> f64 {
        let xs: Vec<Shared<f64>> = (0..24).map(|i| ctx.create(i as f64)).collect();
        for &x in &xs {
            ctx.withonly(
                "work",
                |s| {
                    s.rd_wr(x);
                },
                move |c| {
                    c.charge(6e6);
                    *c.wr(&x) += 1.0;
                },
            );
        }
        xs.iter().map(|x| *ctx.rd(x)).sum()
    }
    let (_, report) = SimExecutor::new(platform).run(wide);
    // The fast machine (index 1) should be busy at least as long in
    // completed work terms: compare processed work = busy * speed.
    let slow_work = report.busy[0].as_secs_f64() * 10e6;
    let fast_work = report.busy[1].as_secs_f64() * 40e6;
    assert!(
        fast_work > slow_work,
        "fast machine did {fast_work:.0} work vs slow {slow_work:.0}"
    );
}

#[test]
fn fig7_style_log_narrates_execution() {
    fn tiny<C: JadeCtx>(ctx: &mut C) -> f64 {
        let col = ctx.create(vec![2.0f64; 64]);
        ctx.withonly(
            "Internal(0)",
            |s| {
                s.rd_wr(col);
            },
            move |c| {
                c.charge(1e6);
                c.wr(&col)[0] = 1.0;
            },
        );
        ctx.rd(&col)[0]
    }
    let (_, report) = SimExecutor::new(Platform::mica(2)).logged().run(tiny);
    let log = report.log.expect("log");
    assert!(log.contains("creates task"));
    assert!(log.contains("starts task"));
    assert!(log.contains("finishes task"));
}

#[test]
fn trace_captures_task_graph_in_sim() {
    let (_, report) = SimExecutor::new(Platform::dash(2)).traced().run(chain_program);
    let trace = report.trace.expect("trace");
    assert_eq!(trace.tasks().iter().filter(|t| !t.is_root()).count(), 9);
    // The chain has depth 9.
    assert!(trace.critical_path_len() >= 9);
}

#[test]
#[should_panic(expected = "undeclared")]
fn sim_detects_undeclared_access() {
    SimExecutor::new(Platform::dash(2)).run(|ctx| {
        let a = ctx.create(0.0f64);
        let b = ctx.create(0.0f64);
        ctx.withonly(
            "bad",
            |s| {
                s.rd(a);
            },
            move |c| {
                let _ = *c.rd(&b);
            },
        );
        *ctx.rd(&a)
    });
}

#[test]
fn single_machine_sim_completes() {
    let (v, report) = SimExecutor::new(Platform::mica(1)).run(chain_program);
    let (serial, _) = jade_core::serial::run(chain_program);
    assert_eq!(v, serial);
    assert!(report.time > SimTime::ZERO);
    assert_eq!(report.machines, 1);
}

// ----------------------------------------------------------------------
// The uniform Runtime::execute entry point over the simulator
// ----------------------------------------------------------------------

#[test]
fn execute_reports_artifacts_and_sim_extras() {
    let (serial, _) = jade_core::serial::run(chain_program);
    let exec = SimExecutor::new(Platform::dash(4));
    let rep = exec.execute(RunConfig::new().profiled(), chain_program).expect("clean run");
    assert_eq!(rep.result, serial);
    assert_eq!(rep.workers, 4);
    assert!(rep.elapsed_nanos > 0);

    let trace = rep.trace.as_ref().expect("trace requested");
    assert_eq!(trace.tasks().iter().filter(|t| !t.is_root()).count() as u64, 9);
    let timeline = rep.timeline.as_ref().expect("timeline requested");
    assert!(timeline.workers() <= 4, "lanes are machine indices");
    assert!(timeline.slices().iter().all(|sl| sl.worker < 4));
    assert!(rep.contention.is_some());

    let crit = rep.critical_path().expect("trace + timeline present");
    // The chain serializes all 9 link tasks.
    assert_eq!(crit.length_tasks(), 9);
    assert!(crit.parallelism_bound() + 1e-9 >= crit.measured_speedup());

    let srep = rep.extra::<SimReport>().expect("sim report rides in extras");
    assert_eq!(srep.machines, 4);
    assert!(srep.time > SimTime::ZERO);
}

#[test]
fn execute_maps_suspend_creator_throttle() {
    let exec = SimExecutor::new(Platform::mica(3));
    let rep = exec
        .execute(
            RunConfig::new().with_throttle(Throttle::SuspendCreator { hi: 4, lo: 2 }),
            chain_program,
        )
        .expect("clean run");
    let (serial, _) = jade_core::serial::run(chain_program);
    assert_eq!(rep.result, serial);
}

#[test]
fn execute_surfaces_violation_as_typed_fault() {
    let exec = SimExecutor::new(Platform::mica(2));
    let fault = exec
        .execute(RunConfig::new(), |ctx| {
            let x = ctx.create(1.0f64);
            ctx.withonly("sneaky", |_s| {}, move |c| {
                let _ = *c.rd(&x); // undeclared
            });
            ctx.rd(&x);
        })
        .expect_err("undeclared access must fault");
    match fault {
        JadeFault::SpecViolation { error: JadeError::UndeclaredAccess { .. }, .. } => {}
        other => panic!("expected UndeclaredAccess violation, got {other:?}"),
    }
}

#[test]
fn execute_surfaces_task_panic_as_typed_fault() {
    let exec = SimExecutor::new(Platform::mica(2));
    let fault = exec
        .execute(RunConfig::new(), |ctx| {
            ctx.withonly("bomb", |_s| {}, |_c| panic!("boom 77"));
        })
        .expect_err("panicking task must fault");
    match fault {
        JadeFault::TaskPanicked { message, .. } => assert!(message.contains("boom 77")),
        other => panic!("expected TaskPanicked, got {other:?}"),
    }
}

#[test]
fn observer_sees_wellformed_event_sequence_in_sim() {
    use std::collections::HashMap;

    let collector = EventCollector::new();
    let exec = SimExecutor::new(Platform::dash(3));
    let rep = exec
        .execute(RunConfig::new().with_observer(collector.observer()), chain_program)
        .expect("clean run");
    let events = collector.events();
    assert!(!events.is_empty());

    // Emission index of each lifecycle stage per task.
    let mut created = HashMap::new();
    let mut enabled = HashMap::new();
    let mut dispatched = HashMap::new();
    let mut started = HashMap::new();
    let mut finished = HashMap::new();
    // Note: emission order is not globally time-sorted — message
    // deliveries are stamped with their (future) arrival time when the
    // send is planned. Per-task lifecycle order is what matters.
    let mut times = HashMap::new();
    for (i, ev) in events.iter().enumerate() {
        times.insert((ev.task, i), ev.nanos);
        match ev.kind {
            EventKind::TaskCreated { .. } => {
                created.insert(ev.task, i);
            }
            EventKind::TaskEnabled => {
                enabled.insert(ev.task, i);
            }
            EventKind::TaskDispatched { .. } => {
                dispatched.insert(ev.task, i);
            }
            EventKind::TaskStarted { .. } => {
                started.insert(ev.task, i);
            }
            EventKind::TaskFinished { .. } => {
                finished.insert(ev.task, i);
            }
            _ => {}
        }
    }
    assert_eq!(created.len() as u64, rep.stats.tasks_created);
    for (t, &c) in &created {
        let e = enabled[t];
        let d = dispatched[t];
        let s = started[t];
        let f = finished[t];
        assert!(c < e && e < d && d < s && s < f, "lifecycle order violated for {t}");
        let ts = |i| times[&(*t, i)];
        assert!(ts(c) <= ts(e) && ts(e) <= ts(d) && ts(d) <= ts(s) && ts(s) <= ts(f));
    }
}

#[test]
fn no_observer_means_no_artifacts_in_sim() {
    let exec = SimExecutor::new(Platform::mica(2));
    let rep = exec.execute(RunConfig::new(), chain_program).expect("clean run");
    assert!(rep.trace.is_none());
    assert!(rep.timeline.is_none());
    assert!(rep.contention.is_none());
    assert!(rep.extra::<SimReport>().is_some(), "extras always carry the sim report");
}
