//! Fault-injection integration tests: a simulated run with message
//! loss, delay spikes, transient machine crashes, and slowdown windows
//! must still produce results bit-identical to the fault-free run —
//! Jade's access specifications fence every effect and effects commit
//! at task completion, so faults change *timing*, never *values* —
//! and the same fault plan must reproduce the same event trace.

use jade_core::prelude::*;
use jade_sim::{FaultPlan, Platform, SimExecutor, SimSpan, SimTime};

/// A wide fan of independent tasks plus a dependent chain over them:
/// enough work that every machine keeps a backlog (so a crashing
/// machine has queued tasks to recover) and enough object traffic
/// that a lossy network actually drops messages.
fn workload<C: JadeCtx>(ctx: &mut C) -> Vec<f64> {
    let cells: Vec<Shared<f64>> = (0..24).map(|i| ctx.create(1.0 + i as f64)).collect();
    for &c in &cells {
        ctx.withonly(
            "scale",
            |s| {
                s.rd_wr(c);
            },
            move |cc| {
                cc.charge(3e6);
                *cc.wr(&c) *= 1.25;
            },
        );
    }
    for i in 1..cells.len() {
        let a = cells[i - 1];
        let b = cells[i];
        ctx.withonly(
            "link",
            |s| {
                s.rd(a);
                s.rd_wr(b);
            },
            move |cc| {
                cc.charge(1e6);
                let left = *cc.rd(&a);
                *cc.wr(&b) += left * 0.5;
            },
        );
    }
    cells.iter().map(|c| *ctx.rd(c)).collect()
}

fn plan() -> FaultPlan {
    FaultPlan::new(42).drop_prob(0.05).crash(1, 1, SimSpan::from_millis(40))
}

#[test]
fn faulted_run_matches_fault_free_bitwise() {
    let (clean, _) = SimExecutor::new(Platform::mica(4)).run(workload);
    let (serial, _) = jade_core::serial::run(workload);
    assert_eq!(clean, serial, "fault-free sim must match the serial elision");

    let (faulted, report) = SimExecutor::new(Platform::mica(4)).faults(plan()).run(workload);
    assert_eq!(faulted, clean, "faults must change timing, never values");
    assert!(report.net.retransmits > 0, "5% loss should force retransmissions:\n{report}");
    assert_eq!(
        report.net.retransmits, report.net.dropped,
        "every drop is recovered by exactly one retransmission"
    );
    assert!(report.faults.crashes >= 1, "the armed crash should fire:\n{report}");
    assert!(
        report.faults.recoveries >= 1,
        "the crashed machine should have had queued tasks to recover:\n{report}"
    );
}

#[test]
fn same_seed_reproduces_the_same_event_trace() {
    let run = || SimExecutor::new(Platform::mica(4)).faults(plan()).logged().run(workload);
    let (v1, r1) = run();
    let (v2, r2) = run();
    assert_eq!(v1, v2);
    assert_eq!(r1.time, r2.time, "same plan, same completion time");
    assert_eq!(r1.net, r2.net, "same plan, same network counters");
    assert_eq!(r1.faults, r2.faults, "same plan, same fault counters");
    assert_eq!(
        r1.log.expect("logged"),
        r2.log.expect("logged"),
        "same seed must reproduce the event trace verbatim"
    );
}

#[test]
fn different_seeds_still_agree_on_values() {
    let (clean, _) = SimExecutor::new(Platform::mica(4)).run(workload);
    for seed in [1, 7, 1234] {
        let p = FaultPlan::new(seed).drop_prob(0.2).crash(2, 1, SimSpan::from_millis(25));
        let (v, report) = SimExecutor::new(Platform::mica(4)).faults(p).run(workload);
        assert_eq!(v, clean, "seed {seed} diverged");
        assert!(report.net.retransmits > 0, "seed {seed}: no retransmits at 20% loss");
    }
}

#[test]
fn crash_narrative_appears_in_the_log() {
    let (_, report) =
        SimExecutor::new(Platform::mica(4)).faults(plan()).logged().run(workload);
    let log = report.log.expect("logged");
    assert!(log.contains("crashes (transient)"), "missing crash line:\n{log}");
    assert!(log.contains("rejoins the platform"), "missing rejoin line:\n{log}");
    if report.faults.recoveries > 0 {
        assert!(log.contains("recovered from crashed machine"), "missing recovery line:\n{log}");
    }
}

#[test]
fn exhausted_attempt_budget_degrades_to_a_surviving_machine() {
    // With a budget of one attempt, the first recovery immediately
    // degrades the task to direct placement on a surviving machine.
    let p = FaultPlan::new(9).crash(1, 1, SimSpan::from_millis(40)).max_task_attempts(1);
    let (clean, _) = SimExecutor::new(Platform::mica(4)).run(workload);
    let (v, report) = SimExecutor::new(Platform::mica(4)).faults(p).run(workload);
    assert_eq!(v, clean);
    if report.faults.recoveries > 0 {
        assert_eq!(
            report.faults.degraded, report.faults.recoveries,
            "budget 1: every recovery must degrade:\n{report}"
        );
    }
}

#[test]
fn delay_spikes_and_slowdowns_cost_time_but_not_correctness() {
    let base = SimExecutor::new(Platform::mica(4)).run(workload);
    // Every message spikes 5ms late; machine 0 runs 8x slower for the
    // first simulated minute (covering the whole run).
    let p = FaultPlan::new(3)
        .delay_spikes(1.0, SimSpan::from_millis(5))
        .slowdown(0, SimTime::ZERO, SimTime(60_000_000_000), 8.0);
    let (v, report) = SimExecutor::new(Platform::mica(4)).faults(p).run(workload);
    assert_eq!(v, base.0);
    assert!(
        report.time > base.1.time,
        "spikes + slowdown should cost time: faulted {} vs clean {}",
        report.time,
        base.1.time
    );
    assert_eq!(report.net.retransmits, 0, "no drops configured");
}

#[test]
fn fault_free_plan_changes_nothing() {
    // An empty plan (seed only) must not perturb the simulation at
    // all: identical values, identical completion time.
    let (v1, r1) = SimExecutor::new(Platform::ipsc860(4)).run(workload);
    let (v2, r2) =
        SimExecutor::new(Platform::ipsc860(4)).faults(FaultPlan::new(7)).run(workload);
    assert_eq!(v1, v2);
    assert_eq!(r1.time, r2.time, "an empty fault plan must be a no-op");
    assert_eq!(r2.faults.crashes, 0);
    assert_eq!(r2.net.retransmits, 0);
}
