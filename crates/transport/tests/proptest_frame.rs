//! Property tests of the stream framing layer: arbitrary message
//! sequences survive reassembly across *any* chunking of the byte
//! stream, truncation is always detected at end-of-stream, and a
//! single flipped bit anywhere in a frame surfaces as a typed
//! `DecodeError` — never a panic and never a silently wrong message.

use proptest::prelude::*;

use jade_transport::frame::{encode_frame, FrameReader, FRAME_PREFIX_BYTES};
use jade_transport::{DataLayout, DecodeError, Message, MsgKind};

fn layout_for(i: usize) -> DataLayout {
    let presets = DataLayout::all_presets();
    presets[i % presets.len()]
}

/// Build a message stream: each element is (kind index, payload words).
fn build_stream(specs: &[(u8, Vec<u64>)]) -> (Vec<Message>, Vec<u8>) {
    let mut msgs = Vec::with_capacity(specs.len());
    let mut wire = Vec::new();
    for (i, (k, words)) in specs.iter().enumerate() {
        let kind = match k % 6 {
            0 => MsgKind::ObjectMove,
            1 => MsgKind::ObjectCopy,
            2 => MsgKind::ObjectRequest,
            3 => MsgKind::TaskShip,
            4 => MsgKind::TaskDone,
            _ => MsgKind::Control,
        };
        let m = Message::pack(kind, i as u32, (i + 1) as u32, i as u64, layout_for(i), words);
        wire.extend_from_slice(&encode_frame(&m));
        msgs.push(m);
    }
    (msgs, wire)
}

/// Feed `wire` to a reader in chunks whose sizes are drawn from
/// `chunk_sizes` (cycled); collect every decoded message.
fn decode_chunked(wire: &[u8], chunk_sizes: &[usize]) -> Result<Vec<Message>, DecodeError> {
    let mut rd = FrameReader::new();
    let mut out = Vec::new();
    let mut pos = 0;
    let mut i = 0;
    while pos < wire.len() {
        let take = chunk_sizes[i % chunk_sizes.len()].max(1).min(wire.len() - pos);
        rd.push(&wire[pos..pos + take]);
        pos += take;
        i += 1;
        while let Some(m) = rd.next_frame()? {
            out.push(m);
        }
    }
    rd.finish()?;
    Ok(out)
}

proptest! {
    #[test]
    fn any_chunking_reassembles_the_exact_message_sequence(
        specs in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u64>(), 0..24)), 1..8),
        chunk_sizes in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let (msgs, wire) = build_stream(&specs);
        let got = decode_chunked(&wire, &chunk_sizes).expect("intact stream must decode");
        prop_assert_eq!(got.len(), msgs.len());
        for (g, w) in got.iter().zip(&msgs) {
            prop_assert_eq!(g.header, w.header);
            prop_assert_eq!(&g.payload, &w.payload);
            // Payload converts through the sender's layout exactly.
            let gv: Vec<u64> = g.try_unpack().expect("reassembled payload unpacks");
            let wv: Vec<u64> = w.try_unpack().unwrap();
            prop_assert_eq!(gv, wv);
        }
    }

    #[test]
    fn truncation_yields_prefix_then_truncated_error(
        specs in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u64>(), 0..16)), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let (msgs, wire) = build_stream(&specs);
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        let mut rd = FrameReader::new();
        rd.push(&wire[..cut]);
        let mut got = 0usize;
        while let Some(m) = rd.next_frame().expect("truncation is not corruption") {
            // Every message that does come out is a real prefix element.
            prop_assert_eq!(m.header, msgs[got].header);
            got += 1;
        }
        prop_assert!(got <= msgs.len());
        if rd.pending_bytes() == 0 {
            prop_assert!(rd.finish().is_ok());
        } else {
            // A connection dying mid-frame is reported, not ignored.
            let at_eof = rd.finish();
            prop_assert!(matches!(at_eof, Err(DecodeError::Truncated { .. })), "{:?}", at_eof);
        }
    }

    #[test]
    fn single_bit_flip_is_always_detected(
        specs in proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u64>(), 0..12)), 1..5),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
        chunk_sizes in proptest::collection::vec(1usize..48, 1..4),
    ) {
        let (msgs, wire) = build_stream(&specs);
        let mut bad = wire.clone();
        let idx = (((bad.len() - 1) as f64) * flip_frac) as usize;
        bad[idx] ^= 1 << bit;

        match decode_chunked(&bad, &chunk_sizes) {
            // The flip must be caught as a typed error...
            Err(
                DecodeError::BadMagic { .. }
                | DecodeError::CorruptFrame { .. }
                | DecodeError::LengthOverflow { .. }
                | DecodeError::BadHeader { .. }
                | DecodeError::Truncated { .. },
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
            // ...unless a flipped length prefix made the stream look
            // incomplete — in which case no *wrong* message may have
            // been produced before the reader stalled. decode_chunked
            // calls finish(), so Ok here means every frame checked out,
            // which a one-bit flip makes impossible.
            Ok(got) => {
                prop_assert!(
                    got.len() != msgs.len()
                        || got.iter().zip(&msgs).any(|(g, w)| {
                            g.header != w.header || g.payload != w.payload
                        }),
                    "flipped stream decoded to the identical sequence"
                );
                // A corrupted frame can never be *accepted*: any message
                // that did decode must be byte-identical to an original
                // (the flip landed in a frame that errored or stalled).
                for (g, w) in got.iter().zip(&msgs) {
                    prop_assert_eq!(g.header, w.header);
                    prop_assert_eq!(&g.payload, &w.payload);
                }
            }
        }
    }

    #[test]
    fn empty_payload_frames_are_minimal_and_roundtrip(
        n in 1usize..6,
    ) {
        let specs: Vec<(u8, Vec<u64>)> = (0..n).map(|i| (i as u8, Vec::new())).collect();
        let (msgs, wire) = build_stream(&specs);
        // Envelope overhead is exactly prefix + header per message.
        let per = wire.len() / n;
        prop_assert!(per >= FRAME_PREFIX_BYTES);
        let got = decode_chunked(&wire, &[1]).expect("byte-at-a-time decode");
        prop_assert_eq!(got.len(), msgs.len());
    }
}
