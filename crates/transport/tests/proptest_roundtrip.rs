//! Property tests of the heterogeneity substrate: every portable value
//! survives marshalling under every machine layout — the invariant the
//! Jade runtime's determinism rests on — and every *truncated* or
//! corrupted buffer decodes to an error, never a panic: the invariant
//! the fault-tolerant transport rests on.

use proptest::prelude::*;

use jade_transport::{DataLayout, Message, MsgKind, PortDecoder, PortEncoder, Portable};

fn roundtrip<T: Portable + PartialEq + std::fmt::Debug>(v: &T, layout: DataLayout) -> T {
    let mut e = PortEncoder::new(layout);
    v.encode(&mut e);
    let b = e.finish();
    let mut d = PortDecoder::new(&b, layout);
    T::decode(&mut d).expect("full buffer must decode")
}

/// Encode `v`, truncate the wire bytes to every strict prefix length,
/// and decode each prefix: all must return `Err` (the value does not
/// fit in fewer bytes than its encoding) and none may panic.
fn assert_truncation_errors<T: Portable + std::fmt::Debug>(v: &T, layout: DataLayout) {
    let mut e = PortEncoder::new(layout);
    v.encode(&mut e);
    let b = e.finish();
    for cut in 0..b.len() {
        let mut d = PortDecoder::new(&b[..cut], layout);
        assert!(
            T::decode(&mut d).is_err(),
            "decode of {cut}/{} bytes unexpectedly succeeded under {}",
            b.len(),
            layout.name
        );
    }
}

proptest! {
    #[test]
    fn scalars_roundtrip_all_layouts(
        a in any::<u64>(),
        b in any::<i64>(),
        c in any::<f64>(),
        d in any::<u32>(),
        e in any::<bool>(),
    ) {
        for layout in DataLayout::all_presets() {
            prop_assert_eq!(roundtrip(&a, layout), a);
            prop_assert_eq!(roundtrip(&b, layout), b);
            // Compare bit patterns: NaNs must survive exactly.
            prop_assert_eq!(roundtrip(&c, layout).to_bits(), c.to_bits());
            prop_assert_eq!(roundtrip(&d, layout), d);
            prop_assert_eq!(roundtrip(&e, layout), e);
        }
    }

    #[test]
    fn composite_values_roundtrip(
        v in proptest::collection::vec((any::<u32>(), any::<f64>(), any::<bool>()), 0..40),
        s in "\\PC{0,40}",
        opt in proptest::option::of(any::<i64>()),
    ) {
        for layout in DataLayout::all_presets() {
            let got = roundtrip(&v, layout);
            prop_assert_eq!(got.len(), v.len());
            for ((ga, gb, gc), (wa, wb, wc)) in got.iter().zip(&v) {
                prop_assert_eq!(ga, wa);
                prop_assert_eq!(gb.to_bits(), wb.to_bits());
                prop_assert_eq!(gc, wc);
            }
            prop_assert_eq!(roundtrip(&s, layout), s.clone());
            prop_assert_eq!(roundtrip(&opt, layout), opt);
        }
    }

    #[test]
    fn cross_architecture_messages_preserve_payload(
        payload in proptest::collection::vec(any::<f64>(), 0..64),
        seq in any::<u64>(),
    ) {
        // Pack on every architecture, unpack anywhere (the receiver
        // reads the header's layout id): the value must be exact.
        for src in DataLayout::all_presets() {
            let msg = Message::pack(MsgKind::ObjectCopy, 0, 1, seq, src, &payload);
            let got: Vec<f64> = msg.try_unpack().expect("intact payload must unpack");
            prop_assert_eq!(got.len(), payload.len());
            for (g, w) in got.iter().zip(&payload) {
                prop_assert_eq!(g.to_bits(), w.to_bits());
            }
            prop_assert_eq!(msg.header.seq, seq);
        }
    }

    #[test]
    fn wire_bytes_bounded_and_header_roundtrips(
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        src in 0u32..64,
        dst in 0u32..64,
    ) {
        for layout in DataLayout::all_presets() {
            let msg = Message::pack(MsgKind::TaskShip, src, dst, 1, layout, &payload);
            // Length-prefixed bytes: 8-byte count (+ padding ≤ 8) + data.
            prop_assert!(msg.payload.len() <= payload.len() + 16);
            let parsed = Message::parse_header(&msg.header_bytes()).expect("intact header");
            prop_assert_eq!(parsed, msg.header);
        }
    }

    #[test]
    fn truncated_scalars_error_never_panic(
        a in any::<u64>(),
        b in any::<f64>(),
        c in any::<u16>(),
    ) {
        for layout in DataLayout::all_presets() {
            assert_truncation_errors(&a, layout);
            assert_truncation_errors(&b, layout);
            assert_truncation_errors(&c, layout);
        }
    }

    #[test]
    fn truncated_composites_error_never_panic(
        v in proptest::collection::vec(any::<f64>(), 1..24),
        s in "\\PC{1,24}",
        pair in (any::<u8>(), any::<f64>()),
    ) {
        // Nonempty values only: a zero-length Vec/String legitimately
        // decodes from its 8-byte count alone, so "every strict prefix
        // errors" holds exactly for encodings with nonempty payloads.
        for layout in DataLayout::all_presets() {
            assert_truncation_errors(&v, layout);
            assert_truncation_errors(&s, layout);
            assert_truncation_errors(&pair, layout);
        }
    }

    #[test]
    fn truncated_messages_error_never_panic(
        payload in proptest::collection::vec(any::<f64>(), 1..32),
        cut_frac in 0.0f64..1.0,
    ) {
        use bytes::Bytes;
        for src in DataLayout::all_presets() {
            let mut msg = Message::pack(MsgKind::ObjectMove, 0, 1, 9, src, &payload);
            let cut = (((msg.payload.len() as f64) * cut_frac) as usize).min(msg.payload.len() - 1);
            msg.payload = Bytes::copy_from_slice(&msg.payload[..cut]);
            prop_assert!(msg.try_unpack::<Vec<f64>>().is_err());
        }
    }

    #[test]
    fn garbage_bytes_never_panic_the_decoder(
        junk in proptest::collection::vec(any::<u8>(), 0..96),
    ) {
        // Arbitrary bytes fed to every decode path: any result is
        // acceptable except a panic.
        for layout in DataLayout::all_presets() {
            let mut d = PortDecoder::new(&junk, layout);
            let _ = Vec::<f64>::decode(&mut d);
            let mut d = PortDecoder::new(&junk, layout);
            let _ = String::decode(&mut d);
            let mut d = PortDecoder::new(&junk, layout);
            let _ = Vec::<(u32, bool, f64)>::decode(&mut d);
            let mut d = PortDecoder::new(&junk, layout);
            let _ = d.get_f64_slice();
        }
    }
}
