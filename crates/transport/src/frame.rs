//! Stream framing: length-prefixed, checksummed message envelopes and
//! an incremental reader that reassembles them across partial reads.
//!
//! The simulator hands whole [`Message`] values between machines, so
//! nothing in the repo ever had to cope with how messages actually
//! arrive off a socket: in arbitrary chunks, split anywhere — in the
//! middle of the length prefix, the header, the payload — and, on a
//! bad day, with flipped bits. This module is the wire envelope the
//! real multi-process backend (`jade-net`) uses:
//!
//! ```text
//! [magic u16][len u32][crc32 u32][header 18 bytes][payload len-18 bytes]
//! ```
//!
//! All envelope fields are big-endian regardless of either machine's
//! [`crate::DataLayout`] — the payload inside is still encoded in the
//! *sender's* layout and converted by the receiver via
//! [`Message::try_unpack`], exactly as in the simulator. The CRC-32
//! covers header plus payload, so a flipped bit anywhere in the frame
//! surfaces as a typed [`DecodeError`] instead of a garbage message.
//!
//! [`FrameReader`] is deliberately *incremental*: feed it whatever
//! `read()` returned and ask for complete frames. A short read leaves
//! the partial frame buffered; a corrupt frame poisons the reader
//! (stream framing is lost — the only safe recovery on a stream
//! transport is to drop the connection and let the reliability layer
//! re-establish it).

use bytes::Bytes;

use crate::error::{DecodeError, DecodeResult};
use crate::message::{Message, HEADER_WIRE_BYTES};

/// Sentinel that starts every frame; a desynchronized or corrupted
/// stream is detected here first.
pub const FRAME_MAGIC: u16 = 0x4A46; // "JF"

/// Envelope bytes preceding the header: magic + length + checksum.
pub const FRAME_PREFIX_BYTES: usize = 2 + 4 + 4;

/// Upper bound on `len` (header + payload). A corrupted length prefix
/// must not drive an absurd buffer reservation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected) lookup table, built at compile time.
static CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Serialize `msg` into one self-delimiting wire frame.
pub fn encode_frame(msg: &Message) -> Vec<u8> {
    let header = msg.header_bytes();
    let len = HEADER_WIRE_BYTES + msg.payload.len();
    let mut out = Vec::with_capacity(FRAME_PREFIX_BYTES + len);
    out.extend_from_slice(&FRAME_MAGIC.to_be_bytes());
    out.extend_from_slice(&(len as u32).to_be_bytes());
    let mut crc = 0xFFFF_FFFFu32;
    for &b in header.iter().chain(msg.payload.iter()) {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    out.extend_from_slice(&(crc ^ 0xFFFF_FFFF).to_be_bytes());
    out.extend_from_slice(&header);
    out.extend_from_slice(&msg.payload);
    out
}

/// Incremental frame reassembly: buffers arbitrary byte chunks and
/// yields complete [`Message`]s as they form.
///
/// ```
/// use jade_transport::{frame::{encode_frame, FrameReader}, DataLayout, Message, MsgKind};
/// let msg = Message::pack(MsgKind::Control, 0, 1, 7, DataLayout::sparc(), &42u64);
/// let wire = encode_frame(&msg);
/// let mut rd = FrameReader::new();
/// // Feed the frame one byte at a time: no message until the last byte.
/// for &b in &wire[..wire.len() - 1] {
///     rd.push(&[b]);
///     assert!(rd.next_frame().unwrap().is_none());
/// }
/// rd.push(&wire[wire.len() - 1..]);
/// let got = rd.next_frame().unwrap().expect("complete frame");
/// assert_eq!(got.try_unpack::<u64>().unwrap(), 42);
/// ```
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
    /// First decode error encountered; sticky, because a stream that
    /// has lost framing cannot be re-synchronized safely.
    poisoned: Option<DecodeError>,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append bytes received from the transport.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extract the next complete frame, if one has fully arrived.
    ///
    /// * `Ok(Some(msg))` — a complete, checksum-valid frame.
    /// * `Ok(None)` — the buffered bytes form only a partial frame.
    /// * `Err(_)` — the stream is corrupt (bad magic, absurd length,
    ///   checksum mismatch). The error is sticky: every later call
    ///   returns it again.
    pub fn next_frame(&mut self) -> DecodeResult<Option<Message>> {
        if let Some(e) = self.poisoned {
            return Err(e);
        }
        match self.try_next() {
            Ok(m) => Ok(m),
            Err(e) => {
                self.poisoned = Some(e);
                Err(e)
            }
        }
    }

    /// Called at end-of-stream: a cleanly closed connection must not
    /// end mid-frame. Returns [`DecodeError::Truncated`] when bytes of
    /// an incomplete frame remain buffered.
    pub fn finish(&self) -> DecodeResult<()> {
        let rem = self.pending_bytes();
        if rem == 0 || self.poisoned.is_some() {
            Ok(())
        } else {
            let needed = if rem < FRAME_PREFIX_BYTES {
                FRAME_PREFIX_BYTES
            } else {
                let avail = &self.buf[self.pos..];
                let len = u32::from_be_bytes([avail[2], avail[3], avail[4], avail[5]]) as usize;
                FRAME_PREFIX_BYTES + len
            };
            Err(DecodeError::Truncated { needed, remaining: rem })
        }
    }

    fn try_next(&mut self) -> DecodeResult<Option<Message>> {
        let avail = &self.buf[self.pos..];
        if avail.len() < FRAME_PREFIX_BYTES {
            return Ok(None);
        }
        let magic = u16::from_be_bytes([avail[0], avail[1]]);
        if magic != FRAME_MAGIC {
            return Err(DecodeError::BadMagic { got: magic });
        }
        let len = u32::from_be_bytes([avail[2], avail[3], avail[4], avail[5]]) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(DecodeError::LengthOverflow { len });
        }
        if len < HEADER_WIRE_BYTES {
            return Err(DecodeError::BadHeader { got: len, want: HEADER_WIRE_BYTES });
        }
        if avail.len() < FRAME_PREFIX_BYTES + len {
            return Ok(None);
        }
        let want_crc = u32::from_be_bytes([avail[6], avail[7], avail[8], avail[9]]);
        let body = &avail[FRAME_PREFIX_BYTES..FRAME_PREFIX_BYTES + len];
        let got_crc = crc32(body);
        if got_crc != want_crc {
            return Err(DecodeError::CorruptFrame { want: want_crc, got: got_crc });
        }
        let header = Message::parse_header(&body[..HEADER_WIRE_BYTES])?;
        let payload = Bytes::copy_from_slice(&body[HEADER_WIRE_BYTES..]);
        self.pos += FRAME_PREFIX_BYTES + len;
        // Compact once the consumed prefix dominates the buffer, so a
        // long-lived connection does not grow its buffer unboundedly.
        if self.pos > 4096 && self.pos * 2 >= self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(Some(Message { header, payload }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;
    use crate::message::MsgKind;

    fn msg(seq: u64, v: u64) -> Message {
        Message::pack(MsgKind::TaskShip, 0, 1, seq, DataLayout::sparc(), &v)
    }

    #[test]
    fn crc_known_vector() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn whole_frame_roundtrips() {
        let m = msg(3, 99);
        let wire = encode_frame(&m);
        let mut rd = FrameReader::new();
        rd.push(&wire);
        let got = rd.next_frame().unwrap().expect("one frame");
        assert_eq!(got.header, m.header);
        assert_eq!(got.try_unpack::<u64>().unwrap(), 99);
        assert!(rd.next_frame().unwrap().is_none());
        rd.finish().expect("clean eof");
    }

    #[test]
    fn frames_reassemble_across_any_split() {
        let wire: Vec<u8> =
            (0..4).flat_map(|i| encode_frame(&msg(i, i * 10))).collect();
        for chunk in [1usize, 2, 3, 7, 11, wire.len()] {
            let mut rd = FrameReader::new();
            let mut got = Vec::new();
            for piece in wire.chunks(chunk) {
                rd.push(piece);
                while let Some(m) = rd.next_frame().unwrap() {
                    got.push(m.try_unpack::<u64>().unwrap());
                }
            }
            assert_eq!(got, vec![0, 10, 20, 30], "chunk size {chunk}");
            rd.finish().expect("clean eof");
        }
    }

    #[test]
    fn truncated_stream_is_reported_at_eof() {
        let wire = encode_frame(&msg(1, 5));
        let mut rd = FrameReader::new();
        rd.push(&wire[..wire.len() - 2]);
        assert!(rd.next_frame().unwrap().is_none(), "partial frame yields nothing");
        let err = rd.finish().unwrap_err();
        assert!(matches!(err, DecodeError::Truncated { .. }), "{err}");
    }

    #[test]
    fn bad_magic_poisons_the_reader() {
        let mut wire = encode_frame(&msg(1, 5));
        wire[0] ^= 0xFF;
        let mut rd = FrameReader::new();
        rd.push(&wire);
        let err = rd.next_frame().unwrap_err();
        assert!(matches!(err, DecodeError::BadMagic { .. }), "{err}");
        // Sticky: the reader does not pretend to resynchronize.
        assert_eq!(rd.next_frame().unwrap_err(), err);
    }

    #[test]
    fn flipped_payload_bit_fails_the_checksum() {
        let mut wire = encode_frame(&msg(1, 5));
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        let mut rd = FrameReader::new();
        rd.push(&wire);
        let err = rd.next_frame().unwrap_err();
        assert!(matches!(err, DecodeError::CorruptFrame { .. }), "{err}");
    }

    #[test]
    fn absurd_length_is_an_overflow_not_an_allocation() {
        let mut wire = encode_frame(&msg(1, 5));
        wire[2] = 0xFF; // high byte of len
        let mut rd = FrameReader::new();
        rd.push(&wire);
        let err = rd.next_frame().unwrap_err();
        assert!(matches!(err, DecodeError::LengthOverflow { .. }), "{err}");
    }

    #[test]
    fn under_length_frame_is_a_bad_header() {
        let m = msg(1, 5);
        let mut wire = Vec::new();
        wire.extend_from_slice(&FRAME_MAGIC.to_be_bytes());
        wire.extend_from_slice(&4u32.to_be_bytes()); // < HEADER_WIRE_BYTES
        wire.extend_from_slice(&crc32(&m.header_bytes()[..4]).to_be_bytes());
        wire.extend_from_slice(&m.header_bytes()[..4]);
        let mut rd = FrameReader::new();
        rd.push(&wire);
        let err = rd.next_frame().unwrap_err();
        assert!(matches!(err, DecodeError::BadHeader { .. }), "{err}");
    }

    #[test]
    fn long_lived_reader_compacts_its_buffer() {
        let mut rd = FrameReader::new();
        let wire = encode_frame(&msg(0, 1));
        for _ in 0..10_000 {
            rd.push(&wire);
            rd.next_frame().unwrap().expect("frame per push");
        }
        // Without compaction the buffer would hold all 10k frames
        // (~460 KiB); with it, it stays near the 4 KiB watermark.
        assert!(rd.buf.len() < 3 * 4096, "buffer grew to {}", rd.buf.len());
        assert_eq!(rd.pending_bytes(), 0);
    }
}
