//! Machine data-layout descriptions.
//!
//! A [`DataLayout`] captures the properties of a machine's native data
//! representation that matter when shared objects move between
//! machines: byte order and the alignment the machine's compiler gives
//! to scalar fields. The presets correspond to the machine families
//! the Jade paper reports running on (§7): SPARC Suns, MIPS
//! DECstations and SGI workstations, the Intel iPSC/860 nodes and the
//! i860 accelerators of the HRV workstation.

/// Byte order of multi-byte scalars on the wire / in machine memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteOrder {
    /// Least-significant byte first (MIPS DECstation, i860, x86).
    Little,
    /// Most-significant byte first (SPARC, SGI MIPS).
    Big,
}

/// Maximum alignment (in bytes) applied to scalar fields when a
/// composite value is marshalled. Mirrors the struct padding a native
/// compiler would emit, and makes wire sizes architecture-dependent
/// the way real heterogeneous transports are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Align {
    /// Scalars aligned to at most 4 bytes (classic 32-bit ABIs).
    Word4,
    /// Scalars aligned to at most 8 bytes (64-bit ABIs).
    Word8,
}

impl Align {
    /// The numeric alignment bound in bytes.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            Align::Word4 => 4,
            Align::Word8 => 8,
        }
    }
}

/// Compact identifier for a layout, carried in message headers so the
/// receiver knows how to interpret the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayoutId(pub u8);

/// A machine's native data representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DataLayout {
    /// Byte order for integers and IEEE-754 floats.
    pub byte_order: ByteOrder,
    /// Scalar alignment bound used when marshalling composites.
    pub align: Align,
    /// Stable identifier used on the wire.
    pub id: LayoutId,
    /// Human-readable architecture name (for traces and logs).
    pub name: &'static str,
}

impl DataLayout {
    /// Big-endian, 4-byte-aligned: SPARC workstations (Sun-4, ELC).
    pub const fn sparc() -> Self {
        DataLayout { byte_order: ByteOrder::Big, align: Align::Word4, id: LayoutId(1), name: "sparc" }
    }

    /// Little-endian, 4-byte-aligned: MIPS DECstation 3100/5000.
    pub const fn mips_le() -> Self {
        DataLayout { byte_order: ByteOrder::Little, align: Align::Word4, id: LayoutId(2), name: "mips-le" }
    }

    /// Big-endian, 4-byte-aligned: SGI MIPS workstations and DASH nodes.
    pub const fn mips_be() -> Self {
        DataLayout { byte_order: ByteOrder::Big, align: Align::Word4, id: LayoutId(3), name: "mips-be" }
    }

    /// Little-endian, 4-byte-aligned: Intel i860 (iPSC/860 nodes and
    /// HRV accelerator boards).
    pub const fn i860() -> Self {
        DataLayout { byte_order: ByteOrder::Little, align: Align::Word4, id: LayoutId(4), name: "i860" }
    }

    /// Little-endian, 8-byte-aligned: a modern 64-bit host, used as
    /// the "native" layout for same-architecture clusters.
    pub const fn x86_64() -> Self {
        DataLayout { byte_order: ByteOrder::Little, align: Align::Word8, id: LayoutId(5), name: "x86-64" }
    }

    /// All preset layouts (useful for exhaustive conversion tests).
    pub fn all_presets() -> [DataLayout; 5] {
        [Self::sparc(), Self::mips_le(), Self::mips_be(), Self::i860(), Self::x86_64()]
    }

    /// Look a preset up by wire id, or `None` for ids no machine
    /// family uses (a corrupted header). Decode paths turn this into
    /// [`crate::DecodeError::UnknownLayout`].
    pub fn try_from_id(id: LayoutId) -> Option<DataLayout> {
        Self::all_presets().into_iter().find(|l| l.id == id)
    }

    /// Look a preset up by wire id. Unknown ids fall back to
    /// [`DataLayout::x86_64`]; use [`DataLayout::try_from_id`] when a
    /// corrupted id should be an error instead.
    pub fn from_id(id: LayoutId) -> DataLayout {
        Self::try_from_id(id).unwrap_or(Self::x86_64())
    }

    /// Whether moving data between `self` and `other` requires any
    /// byte-level conversion (byte swap or re-padding).
    pub fn conversion_required(&self, other: &DataLayout) -> bool {
        self.byte_order != other.byte_order || self.align != other.align
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_ids_are_unique() {
        let presets = DataLayout::all_presets();
        for (i, a) in presets.iter().enumerate() {
            for b in presets.iter().skip(i + 1) {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn from_id_roundtrips() {
        for l in DataLayout::all_presets() {
            assert_eq!(DataLayout::from_id(l.id), l);
        }
    }

    #[test]
    fn sparc_to_i860_requires_conversion() {
        assert!(DataLayout::sparc().conversion_required(&DataLayout::i860()));
        assert!(!DataLayout::sparc().conversion_required(&DataLayout::mips_be()));
    }

    #[test]
    fn unknown_id_falls_back_to_native() {
        assert_eq!(DataLayout::from_id(LayoutId(200)), DataLayout::x86_64());
        assert_eq!(DataLayout::try_from_id(LayoutId(200)), None);
    }
}
