//! Layout-aware scalar encoding and decoding.
//!
//! [`PortEncoder`] writes scalar values the way the *sending* machine
//! represents them (byte order and field padding); [`PortDecoder`]
//! reads them back given that same layout description, producing
//! native values on the receiving machine. This is the mechanism the
//! Jade object manager uses to move typed shared objects between
//! heterogeneous machines without corrupting them.
//!
//! Every `put_*`/`get_*` pair is lossless for all layouts, which the
//! property tests in `tests/portable_roundtrip.rs` verify exhaustively.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{DecodeError, DecodeResult};
use crate::layout::{ByteOrder, DataLayout};

/// Writes scalars into a buffer using a specific machine layout.
#[derive(Debug)]
pub struct PortEncoder {
    buf: BytesMut,
    layout: DataLayout,
}

impl PortEncoder {
    /// Create an encoder producing bytes in `layout`'s representation.
    pub fn new(layout: DataLayout) -> Self {
        PortEncoder { buf: BytesMut::with_capacity(64), layout }
    }

    /// Create an encoder with a pre-reserved capacity (useful when the
    /// caller knows the approximate object size, e.g. a large column).
    pub fn with_capacity(layout: DataLayout, cap: usize) -> Self {
        PortEncoder { buf: BytesMut::with_capacity(cap), layout }
    }

    /// The layout this encoder marshals for.
    #[inline]
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// Number of bytes written so far (the simulated wire size).
    #[inline]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Pad with zero bytes so the next scalar of natural size `size`
    /// starts at the alignment the layout's ABI would give it.
    #[inline]
    fn align_to(&mut self, size: usize) {
        let align = size.min(self.layout.align.bytes());
        if align > 1 {
            let rem = self.buf.len() % align;
            if rem != 0 {
                for _ in 0..(align - rem) {
                    self.buf.put_u8(0);
                }
            }
        }
    }

    /// Write a single byte.
    #[inline]
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Write a boolean as one byte.
    #[inline]
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Write a 16-bit unsigned integer in the layout's byte order.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.align_to(2);
        match self.layout.byte_order {
            ByteOrder::Little => self.buf.put_u16_le(v),
            ByteOrder::Big => self.buf.put_u16(v),
        }
    }

    /// Write a 32-bit unsigned integer in the layout's byte order.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.align_to(4);
        match self.layout.byte_order {
            ByteOrder::Little => self.buf.put_u32_le(v),
            ByteOrder::Big => self.buf.put_u32(v),
        }
    }

    /// Write a 64-bit unsigned integer in the layout's byte order.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.align_to(8);
        match self.layout.byte_order {
            ByteOrder::Little => self.buf.put_u64_le(v),
            ByteOrder::Big => self.buf.put_u64(v),
        }
    }

    /// Write a 32-bit signed integer in the layout's byte order.
    #[inline]
    pub fn put_i32(&mut self, v: i32) {
        self.put_u32(v as u32);
    }

    /// Write a 64-bit signed integer in the layout's byte order.
    #[inline]
    pub fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Write a `usize` as a 64-bit integer (lossless on all layouts;
    /// heterogeneity affects only the byte order and padding, never the
    /// value — the Jade runtime requires object transfers to be exact).
    #[inline]
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Write an IEEE-754 single in the layout's byte order.
    #[inline]
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Write an IEEE-754 double in the layout's byte order.
    #[inline]
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write a length-prefixed byte slice (no alignment inside).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.put_slice(v);
    }

    /// Write a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Bulk-write a slice of doubles. This is the hot path for moving
    /// matrix columns and force arrays; it performs one alignment step
    /// and then a straight (possibly byte-swapped) copy.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_usize(v.len());
        self.align_to(8);
        self.buf.reserve(v.len() * 8);
        match self.layout.byte_order {
            ByteOrder::Little => {
                for x in v {
                    self.buf.put_u64_le(x.to_bits());
                }
            }
            ByteOrder::Big => {
                for x in v {
                    self.buf.put_u64(x.to_bits());
                }
            }
        }
    }

    /// Finish encoding and take the wire bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Reads scalars from a buffer produced by a [`PortEncoder`] with the
/// same layout description.
///
/// Every getter returns a [`DecodeError`] instead of panicking when
/// the buffer runs out: wire bytes come from another machine over a
/// possibly lossy network, so a truncated or corrupted payload must
/// surface as a recoverable error, never a crash.
#[derive(Debug)]
pub struct PortDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
    layout: DataLayout,
}

impl<'a> PortDecoder<'a> {
    /// Create a decoder for `bytes` that were encoded in `layout`.
    pub fn new(bytes: &'a [u8], layout: DataLayout) -> Self {
        PortDecoder { buf: bytes, pos: 0, layout }
    }

    /// The layout the bytes were encoded with.
    #[inline]
    pub fn layout(&self) -> DataLayout {
        self.layout
    }

    /// Bytes remaining to be decoded. Alignment skips can leave `pos`
    /// past the end of a truncated buffer, hence the saturation.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    #[inline]
    fn align_to(&mut self, size: usize) {
        let align = size.min(self.layout.align.bytes());
        if align > 1 {
            let rem = self.pos % align;
            if rem != 0 {
                self.pos += align - rem;
            }
        }
    }

    #[inline]
    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    #[inline]
    pub fn get_u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Read a boolean (one byte; any nonzero value is `true`).
    #[inline]
    pub fn get_bool(&mut self) -> DecodeResult<bool> {
        Ok(self.get_u8()? != 0)
    }

    /// Read a 16-bit unsigned integer.
    #[inline]
    pub fn get_u16(&mut self) -> DecodeResult<u16> {
        self.align_to(2);
        let mut s = self.take(2)?;
        Ok(match self.layout.byte_order {
            ByteOrder::Little => s.get_u16_le(),
            ByteOrder::Big => s.get_u16(),
        })
    }

    /// Read a 32-bit unsigned integer.
    #[inline]
    pub fn get_u32(&mut self) -> DecodeResult<u32> {
        self.align_to(4);
        let mut s = self.take(4)?;
        Ok(match self.layout.byte_order {
            ByteOrder::Little => s.get_u32_le(),
            ByteOrder::Big => s.get_u32(),
        })
    }

    /// Read a 64-bit unsigned integer.
    #[inline]
    pub fn get_u64(&mut self) -> DecodeResult<u64> {
        self.align_to(8);
        let mut s = self.take(8)?;
        Ok(match self.layout.byte_order {
            ByteOrder::Little => s.get_u64_le(),
            ByteOrder::Big => s.get_u64(),
        })
    }

    /// Read a 32-bit signed integer.
    #[inline]
    pub fn get_i32(&mut self) -> DecodeResult<i32> {
        Ok(self.get_u32()? as i32)
    }

    /// Read a 64-bit signed integer.
    #[inline]
    pub fn get_i64(&mut self) -> DecodeResult<i64> {
        Ok(self.get_u64()? as i64)
    }

    /// Read a `usize` (encoded as 64 bits).
    #[inline]
    pub fn get_usize(&mut self) -> DecodeResult<usize> {
        Ok(self.get_u64()? as usize)
    }

    /// Read an IEEE-754 single.
    #[inline]
    pub fn get_f32(&mut self) -> DecodeResult<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Read an IEEE-754 double.
    #[inline]
    pub fn get_f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Read a length-prefixed byte slice.
    pub fn get_bytes(&mut self) -> DecodeResult<Vec<u8>> {
        let n = self.get_usize()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> DecodeResult<String> {
        String::from_utf8(self.get_bytes()?).map_err(|_| DecodeError::InvalidUtf8)
    }

    /// Bulk-read a slice of doubles written by
    /// [`PortEncoder::put_f64_slice`].
    pub fn get_f64_slice(&mut self) -> DecodeResult<Vec<f64>> {
        let n = self.get_usize()?;
        let total = n.checked_mul(8).ok_or(DecodeError::LengthOverflow { len: n })?;
        self.align_to(8);
        let raw = self.take(total)?;
        let mut out = Vec::with_capacity(n);
        for c in raw.chunks_exact(8) {
            let mut word = [0u8; 8];
            word.copy_from_slice(c);
            out.push(f64::from_bits(match self.layout.byte_order {
                ByteOrder::Little => u64::from_le_bytes(word),
                ByteOrder::Big => u64::from_be_bytes(word),
            }));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layouts() -> [DataLayout; 5] {
        DataLayout::all_presets()
    }

    #[test]
    fn scalar_roundtrip_every_layout() {
        for l in layouts() {
            let mut e = PortEncoder::new(l);
            e.put_u8(0xAB);
            e.put_u16(0xBEEF);
            e.put_u32(0xDEAD_BEEF);
            e.put_u64(0x0123_4567_89AB_CDEF);
            e.put_i32(-42);
            e.put_i64(i64::MIN);
            e.put_f32(3.5);
            e.put_f64(-1.0 / 3.0);
            e.put_bool(true);
            e.put_usize(usize::MAX / 2);
            let b = e.finish();
            let mut d = PortDecoder::new(&b, l);
            assert_eq!(d.get_u8().unwrap(), 0xAB);
            assert_eq!(d.get_u16().unwrap(), 0xBEEF);
            assert_eq!(d.get_u32().unwrap(), 0xDEAD_BEEF);
            assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
            assert_eq!(d.get_i32().unwrap(), -42);
            assert_eq!(d.get_i64().unwrap(), i64::MIN);
            assert_eq!(d.get_f32().unwrap(), 3.5);
            assert_eq!(d.get_f64().unwrap(), -1.0 / 3.0);
            assert!(d.get_bool().unwrap());
            assert_eq!(d.get_usize().unwrap(), usize::MAX / 2);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn byte_order_actually_differs_on_wire() {
        let mut be = PortEncoder::new(DataLayout::sparc());
        be.put_u32(0x0102_0304);
        let mut le = PortEncoder::new(DataLayout::i860());
        le.put_u32(0x0102_0304);
        let (bb, lb) = (be.finish(), le.finish());
        assert_eq!(&bb[..], &[1, 2, 3, 4]);
        assert_eq!(&lb[..], &[4, 3, 2, 1]);
    }

    #[test]
    fn alignment_padding_respects_layout() {
        // u8 then u64: Word8 pads to offset 8, Word4 pads to offset 4.
        let mut w8 = PortEncoder::new(DataLayout::x86_64());
        w8.put_u8(1);
        w8.put_u64(2);
        assert_eq!(w8.finish().len(), 16);
        let mut w4 = PortEncoder::new(DataLayout::sparc());
        w4.put_u8(1);
        w4.put_u64(2);
        assert_eq!(w4.finish().len(), 12);
    }

    #[test]
    fn f64_slice_bulk_matches_scalar_path() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sqrt() - 5.0).collect();
        for l in layouts() {
            let mut e = PortEncoder::new(l);
            e.put_f64_slice(&xs);
            let b = e.finish();
            let mut d = PortDecoder::new(&b, l);
            assert_eq!(d.get_f64_slice().unwrap(), xs);
        }
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
        for l in layouts() {
            let mut e = PortEncoder::new(l);
            e.put_f64(weird);
            let b = e.finish();
            let mut d = PortDecoder::new(&b, l);
            assert_eq!(d.get_f64().unwrap().to_bits(), weird.to_bits());
        }
    }

    #[test]
    fn strings_roundtrip() {
        for l in layouts() {
            let mut e = PortEncoder::new(l);
            e.put_str("liquid wåter simulation");
            let b = e.finish();
            let mut d = PortDecoder::new(&b, l);
            assert_eq!(d.get_str().unwrap(), "liquid wåter simulation");
        }
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut e = PortEncoder::new(DataLayout::sparc());
        e.put_u64(0xFEED_FACE_CAFE_BEEF);
        let b = e.finish();
        let mut d = PortDecoder::new(&b[..5], DataLayout::sparc());
        assert_eq!(d.get_u64(), Err(DecodeError::Truncated { needed: 8, remaining: 5 }));
        // An empty buffer fails every scalar read.
        let mut d = PortDecoder::new(&[], DataLayout::x86_64());
        assert!(d.get_u8().is_err());
        assert!(d.get_f64().is_err());
    }

    #[test]
    fn corrupt_length_prefix_is_an_error() {
        let mut e = PortEncoder::new(DataLayout::x86_64());
        e.put_usize(usize::MAX / 2); // absurd element count
        let b = e.finish();
        let mut d = PortDecoder::new(&b, DataLayout::x86_64());
        assert!(matches!(
            d.get_f64_slice(),
            Err(DecodeError::LengthOverflow { .. }) | Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut e = PortEncoder::new(DataLayout::x86_64());
        e.put_bytes(&[0xFF, 0xFE, 0x80]);
        let b = e.finish();
        let mut d = PortDecoder::new(&b, DataLayout::x86_64());
        assert_eq!(d.get_str(), Err(DecodeError::InvalidUtf8));
    }
}
