//! # jade-transport — portable typed transport with data-format conversion
//!
//! The Jade paper (SC '92) runs a single parallel program across a
//! *heterogeneous* collection of machines — big-endian SPARCs,
//! little-endian MIPS DECstations and i860 accelerators — and relies on
//! a reliable, *typed* transport protocol (PVM in the original
//! implementation) to move shared objects between machines:
//!
//! > "In moving or copying objects between machines, the implementation
//! > (or the transport protocol it uses) also performs any data format
//! > conversion required because of different representations of data
//! > items on the two machines."
//!
//! This crate is that substrate. It provides:
//!
//! * [`DataLayout`] — a description of a machine's native data
//!   representation (byte order, preferred scalar alignment), with
//!   presets for the machine families the paper names;
//! * [`PortEncoder`] / [`PortDecoder`] — schema-driven scalar encoders
//!   that write and read values *in a specific layout*, so a value
//!   encoded on a big-endian SPARC is decoded correctly on a
//!   little-endian i860;
//! * [`Portable`] — the trait shared objects implement so the Jade
//!   object manager can move them between simulated machines. Encoding
//!   is guaranteed lossless: `decode(encode(x)) == x` for every layout
//!   pair, which is what lets the runtime preserve Jade's deterministic
//!   serial semantics across heterogeneous machines;
//! * [`Message`] / [`MsgHeader`] — the wire unit exchanged by simulated
//!   machines, carrying the sender's layout id so the receiver knows
//!   how to interpret the payload.
//!
//! The crate is deliberately independent of the simulator: it knows
//! nothing about time, machines or networks, only about bytes and
//! layouts.

pub mod encode;
pub mod error;
pub mod frame;
pub mod layout;
pub mod message;
pub mod portable;

pub use encode::{PortDecoder, PortEncoder};
pub use error::{DecodeError, DecodeResult};
pub use frame::{encode_frame, FrameReader, FRAME_PREFIX_BYTES, MAX_FRAME_BYTES};
pub use layout::{Align, ByteOrder, DataLayout, LayoutId};
pub use message::{Message, MsgHeader, MsgKind};
pub use portable::Portable;

// Re-export the payload buffer type so downstream crates can build
// `Message`s without naming the (vendored) `bytes` crate directly.
pub use bytes::Bytes;

/// Encode a value in the given layout and decode it back with the same
/// layout. Useful for simulating a same-architecture copy and in tests.
///
/// # Panics
///
/// The bytes being decoded were just produced by `encode`, so a decode
/// failure is a broken `Portable` implementation and panics.
pub fn roundtrip_same<T: Portable>(value: &T, layout: DataLayout) -> T {
    let mut enc = PortEncoder::new(layout);
    value.encode(&mut enc);
    let bytes = enc.finish();
    let mut dec = PortDecoder::new(&bytes, layout);
    T::decode(&mut dec).unwrap_or_else(|e| panic!("just-encoded value failed to decode: {e}"))
}

/// Encode a value in `src` layout and decode it under the *same* layout
/// description on the receiving side (the receiver learns the sender's
/// layout from the message header). This models a cross-architecture
/// transfer: the wire bytes differ between layouts but the decoded
/// value is identical.
///
/// # Panics
///
/// Like [`roundtrip_same`], panics if the `Portable` implementation
/// cannot decode what it just encoded.
pub fn convert<T: Portable>(value: &T, src: DataLayout) -> (usize, T) {
    let mut enc = PortEncoder::new(src);
    value.encode(&mut enc);
    let bytes = enc.finish();
    let wire = bytes.len();
    let mut dec = PortDecoder::new(&bytes, src);
    let v = T::decode(&mut dec)
        .unwrap_or_else(|e| panic!("just-encoded value failed to decode: {e}"));
    (wire, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_layout_roundtrip_preserves_value() {
        let v: Vec<f64> = vec![1.5, -2.25, std::f64::consts::PI, f64::MIN_POSITIVE];
        for src in DataLayout::all_presets() {
            let (_, back) = convert(&v, src);
            assert_eq!(v, back, "layout {:?}", src);
        }
    }

    #[test]
    fn wire_size_differs_between_layouts_with_padding() {
        // A struct-ish tuple with a u8 followed by an f64 pads
        // differently under 4- vs 8-byte alignment.
        let v = (7u8, 1.25f64);
        let mut a = PortEncoder::new(DataLayout::sparc());
        v.encode(&mut a);
        let mut b = PortEncoder::new(DataLayout::x86_64());
        v.encode(&mut b);
        assert!(a.finish().len() <= b.finish().len());
    }
}
