//! The [`Portable`] trait: typed marshalling for shared objects.
//!
//! Every Jade shared object must be `Portable` so the object manager
//! can move or copy it between machines with different data formats.
//! This mirrors the paper's observation that, unlike page-based
//! distributed shared memory, "the Jade implementation can do the
//! necessary conversions in a heterogeneous environment because it
//! knows the types of all shared objects" (§6.1).

use crate::encode::{PortDecoder, PortEncoder};
use crate::error::DecodeResult;

/// A value that can be marshalled into any machine layout and
/// unmarshalled back without loss.
///
/// Implementations must guarantee `decode(encode(x)) == x` for every
/// [`crate::DataLayout`]; the Jade runtime's determinism proof relies
/// on object transfers being exact.
pub trait Portable: Sized {
    /// Write `self` into the encoder using its layout.
    fn encode(&self, enc: &mut PortEncoder);
    /// Read a value back, consuming the same bytes `encode` produced.
    /// Truncated or corrupted wire bytes surface as a
    /// [`crate::DecodeError`], never a panic.
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self>;
    /// Approximate encoded size in bytes (used by the simulator to
    /// reserve buffers and account message sizes cheaply).
    fn size_hint(&self) -> usize {
        16
    }
}

macro_rules! portable_scalar {
    ($t:ty, $put:ident, $get:ident, $sz:expr) => {
        impl Portable for $t {
            #[inline]
            fn encode(&self, enc: &mut PortEncoder) {
                enc.$put(*self);
            }
            #[inline]
            fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
                dec.$get()
            }
            #[inline]
            fn size_hint(&self) -> usize {
                $sz
            }
        }
    };
}

portable_scalar!(u8, put_u8, get_u8, 1);
portable_scalar!(u16, put_u16, get_u16, 2);
portable_scalar!(u32, put_u32, get_u32, 4);
portable_scalar!(u64, put_u64, get_u64, 8);
portable_scalar!(i32, put_i32, get_i32, 4);
portable_scalar!(i64, put_i64, get_i64, 8);
portable_scalar!(f32, put_f32, get_f32, 4);
portable_scalar!(f64, put_f64, get_f64, 8);
portable_scalar!(bool, put_bool, get_bool, 1);
portable_scalar!(usize, put_usize, get_usize, 8);

impl Portable for String {
    fn encode(&self, enc: &mut PortEncoder) {
        enc.put_str(self);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        dec.get_str()
    }
    fn size_hint(&self) -> usize {
        8 + self.len()
    }
}

impl Portable for () {
    fn encode(&self, _enc: &mut PortEncoder) {}
    fn decode(_dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        Ok(())
    }
    fn size_hint(&self) -> usize {
        0
    }
}

impl<T: Portable> Portable for Vec<T> {
    fn encode(&self, enc: &mut PortEncoder) {
        enc.put_usize(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        let n = dec.get_usize()?;
        // A corrupted count must not drive a huge allocation: cap the
        // reservation by what the buffer could possibly still hold.
        let mut out = Vec::with_capacity(n.min(dec.remaining()));
        for _ in 0..n {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
    fn size_hint(&self) -> usize {
        8 + self.iter().map(Portable::size_hint).sum::<usize>()
    }
}

impl<T: Portable> Portable for Option<T> {
    fn encode(&self, enc: &mut PortEncoder) {
        match self {
            None => enc.put_bool(false),
            Some(v) => {
                enc.put_bool(true);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        Ok(if dec.get_bool()? {
            Some(T::decode(dec)?)
        } else {
            None
        })
    }
    fn size_hint(&self) -> usize {
        1 + self.as_ref().map_or(0, Portable::size_hint)
    }
}

impl<T: Portable, const N: usize> Portable for [T; N] {
    fn encode(&self, enc: &mut PortEncoder) {
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        // Build through a Vec to avoid requiring T: Default/Copy; the
        // conversion cannot fail because exactly N elements were pushed.
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(dec)?);
        }
        Ok(out
            .try_into()
            .unwrap_or_else(|_| unreachable!("array length is fixed")))
    }
    fn size_hint(&self) -> usize {
        self.iter().map(Portable::size_hint).sum()
    }
}

impl<A: Portable, B: Portable> Portable for (A, B) {
    fn encode(&self, enc: &mut PortEncoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        let a = A::decode(dec)?;
        let b = B::decode(dec)?;
        Ok((a, b))
    }
    fn size_hint(&self) -> usize {
        self.0.size_hint() + self.1.size_hint()
    }
}

impl<A: Portable, B: Portable, C: Portable> Portable for (A, B, C) {
    fn encode(&self, enc: &mut PortEncoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        let a = A::decode(dec)?;
        let b = B::decode(dec)?;
        let c = C::decode(dec)?;
        Ok((a, b, c))
    }
    fn size_hint(&self) -> usize {
        self.0.size_hint() + self.1.size_hint() + self.2.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;
    use crate::roundtrip_same;

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<Option<(u32, f64)>> = vec![Some((1, 2.5)), None, Some((7, -0.125))];
        for l in DataLayout::all_presets() {
            assert_eq!(roundtrip_same(&v, l), v);
        }
    }

    #[test]
    fn fixed_arrays_roundtrip() {
        let a: [f64; 3] = [1.0, -2.0, 3.5];
        for l in DataLayout::all_presets() {
            assert_eq!(roundtrip_same(&a, l), a);
        }
    }

    #[test]
    fn size_hint_close_to_actual_for_doubles() {
        let v: Vec<f64> = vec![0.0; 1000];
        let hint = v.size_hint();
        let mut e = PortEncoder::new(DataLayout::x86_64());
        v.encode(&mut e);
        let actual = e.finish().len();
        assert!(hint >= actual / 2 && hint <= actual * 2, "hint {hint} vs actual {actual}");
    }

    #[test]
    fn empty_vec_roundtrips() {
        let v: Vec<f64> = vec![];
        for l in DataLayout::all_presets() {
            assert_eq!(roundtrip_same(&v, l), v);
        }
    }

    #[test]
    fn unit_roundtrips() {
        for l in DataLayout::all_presets() {
            roundtrip_same(&(), l);
        }
    }
}
