//! Decode failures.
//!
//! Wire bytes arrive from another machine; a transport cannot assume
//! they are well formed. Every [`crate::PortDecoder`] read therefore
//! returns a [`DecodeError`] instead of panicking when the buffer is
//! truncated, a length prefix is absurd, or an embedded string is not
//! UTF-8 — the conditions a lossy or faulty network can produce.

use crate::layout::LayoutId;

/// Why a decode failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the read needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A length prefix requests more than the address space can hold
    /// (or more than any sane message: a corrupted count).
    LengthOverflow {
        /// The decoded element count.
        len: usize,
    },
    /// A length-prefixed string was not valid UTF-8.
    InvalidUtf8,
    /// A message header carried a layout id no machine family uses.
    UnknownLayout(LayoutId),
    /// A serialized header blob had the wrong size.
    BadHeader {
        /// Bytes supplied.
        got: usize,
        /// Bytes a header occupies.
        want: usize,
    },
    /// A stream frame did not start with [`crate::frame::FRAME_MAGIC`]:
    /// the connection has lost framing (or was never speaking this
    /// protocol) and must be dropped.
    BadMagic {
        /// The two bytes actually seen.
        got: u16,
    },
    /// A frame's CRC-32 did not match its contents — bits were flipped
    /// in transit.
    CorruptFrame {
        /// Checksum the frame claimed.
        want: u32,
        /// Checksum computed over the received bytes.
        got: u32,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { needed, remaining } => {
                write!(f, "truncated payload: read of {needed} bytes with {remaining} remaining")
            }
            DecodeError::LengthOverflow { len } => {
                write!(f, "corrupt length prefix: {len} elements overflows the buffer arithmetic")
            }
            DecodeError::InvalidUtf8 => write!(f, "portable string was not valid UTF-8"),
            DecodeError::UnknownLayout(id) => {
                write!(f, "message header names unknown data layout id {}", id.0)
            }
            DecodeError::BadHeader { got, want } => {
                write!(f, "serialized header is {got} bytes, expected {want}")
            }
            DecodeError::BadMagic { got } => {
                write!(f, "stream lost framing: expected frame magic, saw {got:#06x}")
            }
            DecodeError::CorruptFrame { want, got } => {
                write!(f, "frame checksum mismatch: header claims {want:#010x}, contents hash to {got:#010x}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Shorthand for decode results.
pub type DecodeResult<T> = std::result::Result<T, DecodeError>;
