//! Wire messages exchanged by simulated machines.
//!
//! The Jade message-passing implementation exchanges a small set of
//! message kinds: object data being moved or copied, requests for
//! remote objects, task descriptors migrating to idle machines, and
//! completion/control notifications (paper §3.3 and Figure 7). Each
//! message carries the sender's [`LayoutId`] so the receiving machine
//! can convert the payload to its native format.

use bytes::Bytes;

use crate::encode::{PortDecoder, PortEncoder};
use crate::error::{DecodeError, DecodeResult};
use crate::layout::{DataLayout, LayoutId};
use crate::portable::Portable;

/// Discriminates the protocol role of a [`Message`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgKind {
    /// A shared object's data moving to a new owner (write access);
    /// the sender invalidates its local version.
    ObjectMove,
    /// A shared object's data being replicated for read access; the
    /// sender keeps its version.
    ObjectCopy,
    /// A request that the owner send an object to the requester.
    ObjectRequest,
    /// A task descriptor migrating to another machine for execution.
    TaskShip,
    /// A notification that a task has completed (releases queue
    /// positions on the coordinating machine).
    TaskDone,
    /// Runtime control traffic (throttling, load reports, shutdown).
    Control,
}

impl MsgKind {
    fn to_u8(self) -> u8 {
        match self {
            MsgKind::ObjectMove => 0,
            MsgKind::ObjectCopy => 1,
            MsgKind::ObjectRequest => 2,
            MsgKind::TaskShip => 3,
            MsgKind::TaskDone => 4,
            MsgKind::Control => 5,
        }
    }

    fn from_u8(v: u8) -> MsgKind {
        match v {
            0 => MsgKind::ObjectMove,
            1 => MsgKind::ObjectCopy,
            2 => MsgKind::ObjectRequest,
            3 => MsgKind::TaskShip,
            4 => MsgKind::TaskDone,
            _ => MsgKind::Control,
        }
    }
}

/// Fixed-size message header. On a real network this precedes the
/// payload; in the simulator it also drives byte accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgHeader {
    /// Protocol role of this message.
    pub kind: MsgKind,
    /// Sending machine index.
    pub src: u32,
    /// Receiving machine index.
    pub dst: u32,
    /// Per-sender sequence number (reliable, ordered delivery).
    pub seq: u64,
    /// Layout the payload was encoded with.
    pub layout: LayoutId,
}

/// Size in bytes the header occupies on the wire.
pub const HEADER_WIRE_BYTES: usize = 1 + 4 + 4 + 8 + 1;

/// A typed message: header plus an opaque payload encoded in the
/// sender's layout.
#[derive(Debug, Clone)]
pub struct Message {
    /// Routing and format metadata.
    pub header: MsgHeader,
    /// Payload bytes in the sender's layout.
    pub payload: Bytes,
}

impl Message {
    /// Marshal `value` on a machine with layout `src_layout` into a
    /// message addressed to `dst`.
    pub fn pack<T: Portable>(
        kind: MsgKind,
        src: u32,
        dst: u32,
        seq: u64,
        src_layout: DataLayout,
        value: &T,
    ) -> Message {
        let mut enc = PortEncoder::with_capacity(src_layout, value.size_hint());
        value.encode(&mut enc);
        Message {
            header: MsgHeader { kind, src, dst, seq, layout: src_layout.id },
            payload: enc.finish(),
        }
    }

    /// Unmarshal the payload on the receiving machine, converting from
    /// the sender's data format. A truncated or corrupted payload (or
    /// an unknown layout id) is a [`DecodeError`], not a panic — the
    /// receiver drops the message and lets the sender's reliability
    /// layer retransmit.
    pub fn try_unpack<T: Portable>(&self) -> DecodeResult<T> {
        let layout = DataLayout::try_from_id(self.header.layout)
            .ok_or(DecodeError::UnknownLayout(self.header.layout))?;
        let mut dec = PortDecoder::new(&self.payload, layout);
        T::decode(&mut dec)
    }

    /// Unmarshal the payload, panicking on malformed bytes. Convenience
    /// for callers that just packed the message themselves (tests,
    /// benchmarks); transports receiving foreign bytes should use
    /// [`Message::try_unpack`].
    pub fn unpack<T: Portable>(&self) -> T {
        self.try_unpack()
            .unwrap_or_else(|e| panic!("malformed message payload: {e}"))
    }

    /// Total bytes this message occupies on the wire (header plus
    /// payload); the network models charge transfer time from this.
    pub fn wire_bytes(&self) -> usize {
        HEADER_WIRE_BYTES + self.payload.len()
    }

    /// Serialize the header itself (used by tests to validate the wire
    /// format; the simulator keeps headers structured).
    pub fn header_bytes(&self) -> [u8; HEADER_WIRE_BYTES] {
        let mut out = [0u8; HEADER_WIRE_BYTES];
        out[0] = self.header.kind.to_u8();
        out[1..5].copy_from_slice(&self.header.src.to_be_bytes());
        out[5..9].copy_from_slice(&self.header.dst.to_be_bytes());
        out[9..17].copy_from_slice(&self.header.seq.to_be_bytes());
        out[17] = self.header.layout.0;
        out
    }

    /// Parse a header serialized by [`Message::header_bytes`]. Accepts
    /// any byte slice so a short read off the wire is an error rather
    /// than a panic.
    pub fn parse_header(raw: &[u8]) -> DecodeResult<MsgHeader> {
        if raw.len() != HEADER_WIRE_BYTES {
            return Err(DecodeError::BadHeader { got: raw.len(), want: HEADER_WIRE_BYTES });
        }
        let mut src = [0u8; 4];
        src.copy_from_slice(&raw[1..5]);
        let mut dst = [0u8; 4];
        dst.copy_from_slice(&raw[5..9]);
        let mut seq = [0u8; 8];
        seq.copy_from_slice(&raw[9..17]);
        Ok(MsgHeader {
            kind: MsgKind::from_u8(raw[0]),
            src: u32::from_be_bytes(src),
            dst: u32::from_be_bytes(dst),
            seq: u64::from_be_bytes(seq),
            layout: LayoutId(raw[17]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_across_architectures() {
        let column: Vec<f64> = (0..64).map(|i| 1.0 / (1.0 + i as f64)).collect();
        // SPARC (big endian) sends a column to an i860 accelerator.
        let msg = Message::pack(MsgKind::ObjectMove, 0, 1, 42, DataLayout::sparc(), &column);
        assert_eq!(msg.header.layout, DataLayout::sparc().id);
        let got: Vec<f64> = msg.unpack();
        assert_eq!(got, column);
    }

    #[test]
    fn header_wire_roundtrip() {
        let msg = Message::pack(MsgKind::TaskShip, 3, 7, 99, DataLayout::i860(), &123u64);
        let raw = msg.header_bytes();
        let parsed = Message::parse_header(&raw).unwrap();
        assert_eq!(parsed, msg.header);
    }

    #[test]
    fn short_header_is_an_error() {
        let msg = Message::pack(MsgKind::TaskShip, 3, 7, 99, DataLayout::i860(), &123u64);
        let raw = msg.header_bytes();
        let err = Message::parse_header(&raw[..raw.len() - 1]).unwrap_err();
        assert!(matches!(err, crate::error::DecodeError::BadHeader { .. }));
    }

    #[test]
    fn truncated_payload_unpacks_to_an_error() {
        let column: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let mut msg = Message::pack(MsgKind::ObjectMove, 0, 1, 1, DataLayout::sparc(), &column);
        msg.payload = Bytes::copy_from_slice(&msg.payload[..msg.payload.len() - 3]);
        assert!(msg.try_unpack::<Vec<f64>>().is_err());
    }

    #[test]
    fn unknown_layout_id_unpacks_to_an_error() {
        let mut msg = Message::pack(MsgKind::ObjectCopy, 0, 1, 1, DataLayout::sparc(), &1u64);
        msg.header.layout = LayoutId(250);
        assert!(matches!(
            msg.try_unpack::<u64>(),
            Err(crate::error::DecodeError::UnknownLayout(LayoutId(250)))
        ));
    }

    #[test]
    fn wire_bytes_counts_header_and_payload() {
        let msg = Message::pack(MsgKind::Control, 0, 0, 0, DataLayout::x86_64(), &());
        assert_eq!(msg.wire_bytes(), HEADER_WIRE_BYTES);
        let msg2 = Message::pack(MsgKind::ObjectCopy, 0, 1, 1, DataLayout::x86_64(), &1u64);
        assert!(msg2.wire_bytes() > HEADER_WIRE_BYTES);
    }

    #[test]
    fn all_kinds_roundtrip_through_u8() {
        for k in [
            MsgKind::ObjectMove,
            MsgKind::ObjectCopy,
            MsgKind::ObjectRequest,
            MsgKind::TaskShip,
            MsgKind::TaskDone,
            MsgKind::Control,
        ] {
            assert_eq!(MsgKind::from_u8(k.to_u8()), k);
        }
    }
}
