//! Property tests over the applications' mathematical invariants.

use proptest::prelude::*;

use jade_apps::barneshut;
use jade_apps::cholesky::{self, SparsePattern, SparseSym};
use jade_apps::lws::{self, WaterSystem};
use jade_apps::pmake::{self, Makefile};
use jade_apps::video;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Symbolic fill is idempotent and only ever adds entries.
    #[test]
    fn fill_is_monotone_and_idempotent(n in 2usize..24, seed in any::<u64>()) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<usize>> = (0..n)
            .map(|i| {
                (i + 1..n).filter(|_| rng.gen_bool(0.25)).collect()
            })
            .collect();
        let base = SparsePattern::new(n, rows);
        let filled = base.with_fill();
        for i in 0..n {
            for t in &base.rows[i] {
                prop_assert!(filled.rows[i].contains(t), "fill dropped an entry");
            }
        }
        prop_assert_eq!(filled.with_fill(), filled);
    }

    /// The Jade factorization reconstructs the input matrix.
    #[test]
    fn cholesky_reconstructs(n in 4usize..28, nnz in 1usize..5, seed in any::<u64>()) {
        let a = SparseSym::random_spd(n, nnz, seed);
        let (l, _) = jade_core::serial::run(|ctx| cholesky::factor_program(ctx, &a));
        // Verify L·Lᵀ == A by comparing quadratic forms on a few
        // vectors (cheaper than dense reconstruction, still sharp).
        for k in 0..3u64 {
            let x: Vec<f64> = (0..n).map(|i| ((i as u64 + 1) * (k + 3)) as f64 % 7.0 - 3.0).collect();
            // y = Lᵀx ; xᵀAx must equal yᵀy.
            let mut y = vec![0.0f64; n];
            for j in 0..n {
                y[j] += l.cols[j][0] * x[j];
                for (idx, &t) in l.pattern.rows[j].iter().enumerate() {
                    y[j] += l.cols[j][idx + 1] * x[t];
                }
            }
            let yy: f64 = y.iter().map(|v| v * v).sum();
            let ax = a.mul_vec(&x);
            let xax: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
            let scale = xax.abs().max(1.0);
            prop_assert!(((yy - xax) / scale).abs() < 1e-8, "yy={yy} xax={xax}");
        }
    }

    /// Solving after factoring inverts the matrix.
    #[test]
    fn factor_solve_inverts(n in 4usize..24, seed in any::<u64>()) {
        let a = SparseSym::random_spd(n, 3, seed);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 % 9) as f64) - 4.0).collect();
        let b = a.mul_vec(&x_true);
        let mut l = a.clone();
        cholesky::serial::factor(&mut l);
        let x = cholesky::serial::solve(&l, &b);
        for (g, w) in x.iter().zip(&x_true) {
            prop_assert!((g - w).abs() < 1e-7, "{g} vs {w}");
        }
    }

    /// Jade make always equals serial make, for arbitrary DAGs and
    /// arbitrary subsets of already-built targets.
    #[test]
    fn make_matches_serial(n_rules in 1usize..30, seed in any::<u64>(), built_mask in any::<u32>()) {
        let mut mk = Makefile::random_dag(n_rules, seed);
        // Mark a pseudo-random subset of targets as already built.
        for (i, rule) in mk.rules.clone().iter().enumerate() {
            if built_mask & (1 << (i % 32)) != 0 {
                mk.built(&rule.target, 2 + (i as u64 % 3));
            }
        }
        let want = pmake::serial::make_serial(&mk);
        let (got, _) = jade_core::serial::run(|ctx| pmake::make_jade(ctx, &mk));
        prop_assert_eq!(&got.files, &want.files);
        let want_set: std::collections::HashSet<String> =
            want.rebuilt.iter().cloned().collect();
        prop_assert_eq!(&got.rebuilt, &want_set);
    }

    /// LWS positions are bitwise independent of the block count.
    #[test]
    fn lws_block_invariance(n in 8usize..48, seed in any::<u64>(), b1 in 1usize..6, b2 in 6usize..12) {
        let sys = WaterSystem::new(n, seed);
        let ((_, s1), _) = jade_core::serial::run(|ctx| lws::run_jade(ctx, &sys, b1, 2, 0.002));
        let ((_, s2), _) = jade_core::serial::run(|ctx| lws::run_jade(ctx, &sys, b2, 2, 0.002));
        prop_assert_eq!(s1.pos, s2.pos);
        prop_assert_eq!(s1.vel, s2.vel);
    }

    /// RLE compression is lossless on arbitrary bytes.
    #[test]
    fn rle_lossless(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let c = video::rle_compress(&data);
        prop_assert_eq!(video::rle_decompress(&c), data);
    }

    /// The octree always preserves total mass and body count, and its
    /// exact-mode traversal matches direct summation.
    #[test]
    fn octree_invariants(n in 1usize..60, seed in any::<u64>()) {
        let bodies = barneshut::cluster(n, seed);
        let tree = barneshut::Octree::build(&bodies);
        prop_assert_eq!(tree.nodes[0].count as usize, n);
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        prop_assert!((tree.nodes[0].mass - total).abs() < 1e-9);
        let direct = barneshut::direct_accels(&bodies);
        for (i, b) in bodies.iter().enumerate() {
            let a = tree.accel(&b.pos, i as i64, 1e-9);
            for k in 0..3 {
                prop_assert!((a[k] - direct[i][k]).abs() < 1e-6);
            }
        }
    }
}
