//! The Jade `make`: the serial rebuild loop with each command body
//! enclosed in a `withonly` that declares the files the command will
//! access (§7.1).

use std::collections::{HashMap, HashSet};

use jade_core::prelude::*;

use super::makefile::{FileState, Makefile};
use super::serial::out_of_date;

/// Register how a [`FileState`] lowers into the task-body IR's flat
/// `f64` domain: `[version, size]`, both exact below 2⁵³. Idempotent
/// and global (the registry is keyed by type), so calling it per
/// `make_jade` run is free; the distributed backend needs it on the
/// coordinator to ship file payloads to workers.
pub fn register_file_lowering() {
    jade_core::store::register_lowering::<FileState>(
        |f| vec![f.version as f64, f.size as f64],
        |f, data| {
            if data.len() != 2 {
                return false;
            }
            *f = FileState { version: data[0] as u64, size: data[1] as usize };
            true
        },
    );
}

/// Result of a Jade make run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MakeOutcome {
    /// Final file versions/sizes.
    pub files: HashMap<String, FileState>,
    /// Set of rebuilt targets (order is scheduling-dependent, the set
    /// is not).
    pub rebuilt: HashSet<String>,
}

/// Run make under Jade. The main task walks the makefile exactly like
/// the serial program, predicting staleness from the initial file
/// versions (a target is rebuilt if a prerequisite is newer *or will
/// itself be rebuilt*), and generates one task per rebuilt target.
/// The Jade runtime executes commands concurrently "unless one
/// command depends on the result of another command".
pub fn make_jade<C: JadeCtx>(ctx: &mut C, mk: &Makefile) -> MakeOutcome {
    register_file_lowering();
    // Upload the file system.
    let mut handles: HashMap<String, Shared<FileState>> = HashMap::new();
    let mut names: Vec<&String> = mk.files.keys().collect();
    names.sort(); // deterministic object creation order
    for name in names {
        handles.insert(name.clone(), ctx.create_named(name, mk.files[name]));
    }

    // The serial rebuild loop with a withonly around each command.
    // `predicted` tracks what each file's version will be once the
    // generated commands run, so the staleness test here is exactly
    // the serial program's (a rebuilt prerequisite shows up through
    // its predicted version).
    let mut predicted = mk.files.clone();
    let mut rebuilt: HashSet<String> = HashSet::new();
    for rule in &mk.rules {
        if !out_of_date(&predicted, &rule.target, &rule.deps) {
            continue;
        }
        rebuilt.insert(rule.target.clone());
        // Keep the host-side prediction consistent for later rules.
        let pv = rule
            .deps
            .iter()
            .map(|d| predicted.get(d).map_or(0, |f| f.version))
            .max()
            .unwrap_or(0)
            + 1;
        predicted.insert(rule.target.clone(), FileState { version: pv, size: rule.out_size });

        let target = handles[&rule.target];
        let deps: Vec<Shared<FileState>> = rule.deps.iter().map(|d| handles[d]).collect();
        let cost = rule.cost;
        let out_size = rule.out_size;
        let spec_deps = deps.clone();
        // decl 0 = target (rd_wr, write-only in the IR), decls
        // 1..=ndeps = prerequisites; the `pmake_build` kernel restamps
        // the target from the lowered [version, size] pairs.
        let mut bargs = vec![IrSrc::Lit(vec![deps.len() as f64, out_size as f64])];
        bargs.extend((1..=deps.len()).map(|d| IrSrc::Obj(d as u32)));
        let ir = TaskBodyIr::new().step("pmake_build", bargs, IrDst::Obj(0));
        ctx.withonly_ir(
            &format!("make {}", rule.target),
            |s| {
                s.rd_wr(target);
                for &d in &spec_deps {
                    s.rd(d);
                }
            },
            ir,
            move |c| {
                c.charge(cost);
                // The command reads its prerequisites' actual states —
                // resolved dynamically, after any producing command.
                let newv = deps.iter().map(|d| c.rd(d).version).max().unwrap_or(0) + 1;
                *c.wr(&target) = FileState { version: newv, size: out_size };
            },
        );
    }

    // Collect the final file system (implicitly waits for commands).
    // Sorted so the root task's reads — and hence the object fetches
    // they trigger on message-passing platforms — happen in a fixed
    // order, keeping simulated *timing* deterministic, not just values.
    let mut files = HashMap::new();
    let mut names: Vec<&String> = handles.keys().collect();
    names.sort();
    for name in names {
        files.insert(name.clone(), *ctx.rd(&handles[name]));
    }
    MakeOutcome { files, rebuilt }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmake::serial::make_serial;

    #[test]
    fn jade_make_matches_serial_make() {
        for mk in [
            Makefile::chain(6, 1e5),
            Makefile::wide(6, 1e5),
            Makefile::project(5, 1e5, 2e5),
            Makefile::random_dag(25, 11),
        ] {
            let want = make_serial(&mk);
            let (got, _) = jade_core::serial::run(|ctx| make_jade(ctx, &mk));
            assert_eq!(got.files, want.files);
            let want_set: HashSet<String> = want.rebuilt.iter().cloned().collect();
            assert_eq!(got.rebuilt, want_set);
        }
    }

    #[test]
    fn incremental_build_creates_fewer_tasks() {
        let mut mk = Makefile::project(6, 1e5, 2e5);
        let (_, full_stats) = jade_core::serial::run(|ctx| make_jade(ctx, &mk));
        // Build everything, then touch one source: only its object,
        // the library and the apps rebuild.
        let out = make_serial(&mk);
        for (name, st) in &out.files {
            mk.files.insert(name.clone(), *st);
        }
        mk.files.get_mut("m0.c").unwrap().version += 10;
        let (inc, inc_stats) = jade_core::serial::run(|ctx| make_jade(ctx, &mk));
        assert_eq!(
            inc.rebuilt,
            HashSet::from([
                "m0.o".to_string(),
                "lib.a".to_string(),
                "app1".to_string(),
                "app2".to_string()
            ])
        );
        assert!(inc_stats.tasks_created < full_stats.tasks_created);
    }

    #[test]
    fn wide_makefile_has_no_cross_edges() {
        // Independent compilations must not depend on each other.
        let mk = Makefile::wide(5, 1e5);
        let (_, trace) = jade_core::serial::run_traced(|ctx| make_jade(ctx, &mk));
        for &t in trace.tasks() {
            if t.is_root() {
                continue;
            }
            // Each task's only predecessors can be the root.
            assert!(
                trace.predecessors(t).iter().all(|p| p.is_root()),
                "unexpected dependence for {}",
                trace.label(t)
            );
        }
    }

    #[test]
    fn chain_makefile_serializes() {
        let mk = Makefile::chain(5, 1e5);
        let (_, trace) = jade_core::serial::run_traced(|ctx| make_jade(ctx, &mk));
        assert_eq!(trace.critical_path_len(), 5, "chain must form one long path");
    }
}
