//! Makefile and file-system model.
//!
//! Files are shared objects carrying a version counter (the mtime) and
//! a size; a rule's command reads its prerequisites and rewrites its
//! target — exactly the access declaration the Jade `make` attaches to
//! each recompilation task.

use std::collections::HashMap;

use jade_transport::{PortDecoder, PortEncoder, Portable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The state of one file in the model file system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileState {
    /// Modification "time": a monotonically increasing version.
    pub version: u64,
    /// File size in bytes (drives transfer costs in the simulator).
    pub size: usize,
}

impl Portable for FileState {
    fn encode(&self, enc: &mut PortEncoder) {
        enc.put_u64(self.version);
        enc.put_usize(self.size);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> jade_transport::DecodeResult<Self> {
        Ok(FileState { version: dec.get_u64()?, size: dec.get_usize()? })
    }
    fn size_hint(&self) -> usize {
        self.size.max(16)
    }
}

/// One makefile rule: rebuild `target` from `deps` by running a
/// command costing `cost` work units and producing `out_size` bytes.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Target file name.
    pub target: String,
    /// Prerequisite file names.
    pub deps: Vec<String>,
    /// Command cost in work units.
    pub cost: f64,
    /// Size of the produced target.
    pub out_size: usize,
}

/// A makefile: source files with initial versions, plus rules in
/// written (topological) order.
#[derive(Debug, Clone, Default)]
pub struct Makefile {
    /// Initial state of every file (sources and stale targets).
    pub files: HashMap<String, FileState>,
    /// Rules in dependency (written) order.
    pub rules: Vec<Rule>,
}

impl Makefile {
    /// Add a source file at version 1.
    pub fn source(&mut self, name: &str, size: usize) -> &mut Self {
        self.files.insert(name.to_string(), FileState { version: 1, size });
        self
    }

    /// Add a rule; the target starts out-of-date (version 0).
    pub fn rule(&mut self, target: &str, deps: &[&str], cost: f64, out_size: usize) -> &mut Self {
        self.files
            .entry(target.to_string())
            .or_insert(FileState { version: 0, size: out_size });
        self.rules.push(Rule {
            target: target.to_string(),
            deps: deps.iter().map(|d| d.to_string()).collect(),
            cost,
            out_size,
        });
        self
    }

    /// Mark a target as already built at the given version (for
    /// incremental-rebuild scenarios).
    pub fn built(&mut self, target: &str, version: u64) -> &mut Self {
        if let Some(f) = self.files.get_mut(target) {
            f.version = version;
        }
        self
    }

    /// A linear chain: `s -> t0 -> t1 -> ... -> t{n-1}` (no
    /// parallelism; the worst case).
    pub fn chain(n: usize, cost: f64) -> Makefile {
        let mut mk = Makefile::default();
        mk.source("s", 1_000);
        for i in 0..n {
            let dep = if i == 0 { "s".to_string() } else { format!("t{}", i - 1) };
            let tgt = format!("t{i}");
            mk.rule(&tgt, &[dep.as_str()], cost, 4_000);
        }
        mk
    }

    /// `n` independent targets from one source (embarrassingly
    /// parallel).
    pub fn wide(n: usize, cost: f64) -> Makefile {
        let mut mk = Makefile::default();
        mk.source("s", 1_000);
        for i in 0..n {
            mk.rule(&format!("t{i}"), &["s"], cost, 4_000);
        }
        mk
    }

    /// A realistic project: `n` C files each compile to an object,
    /// all objects link into a library, and two apps link against it.
    pub fn project(n: usize, compile_cost: f64, link_cost: f64) -> Makefile {
        let mut mk = Makefile::default();
        mk.source("common.h", 2_000);
        let mut objs: Vec<String> = Vec::new();
        for i in 0..n {
            let c = format!("m{i}.c");
            mk.source(&c, 8_000);
            let o = format!("m{i}.o");
            mk.rule(&o, &[c.as_str(), "common.h"], compile_cost, 12_000);
            objs.push(o);
        }
        let obj_refs: Vec<&str> = objs.iter().map(String::as_str).collect();
        mk.rule("lib.a", &obj_refs, link_cost, 80_000);
        mk.rule("app1", &["lib.a"], link_cost, 90_000);
        mk.rule("app2", &["lib.a"], link_cost, 90_000);
        mk
    }

    /// A random DAG of rules (regression fodder for the dependency
    /// engine). Deterministic in `seed`.
    pub fn random_dag(n: usize, seed: u64) -> Makefile {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mk = Makefile::default();
        mk.source("s0", 500);
        mk.source("s1", 500);
        let mut names: Vec<String> = vec!["s0".to_string(), "s1".to_string()];
        for i in 0..n {
            let tgt = format!("n{i}");
            let k = rng.gen_range(1..=3.min(names.len()));
            let mut deps: Vec<String> = Vec::new();
            for _ in 0..k {
                let d = names[rng.gen_range(0..names.len())].clone();
                if !deps.contains(&d) {
                    deps.push(d);
                }
            }
            let dep_refs: Vec<&str> = deps.iter().map(String::as_str).collect();
            mk.rule(&tgt, &dep_refs, rng.gen_range(1e5..8e5), rng.gen_range(1_000..20_000));
            names.push(tgt);
        }
        mk
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_transport::{roundtrip_same, DataLayout};

    #[test]
    fn file_state_is_portable() {
        let f = FileState { version: 42, size: 12345 };
        for l in DataLayout::all_presets() {
            assert_eq!(roundtrip_same(&f, l), f);
        }
    }

    #[test]
    fn builders_produce_expected_shapes() {
        let chain = Makefile::chain(5, 1e5);
        assert_eq!(chain.rules.len(), 5);
        assert_eq!(chain.rules[4].deps, vec!["t3"]);
        let wide = Makefile::wide(8, 1e5);
        assert!(wide.rules.iter().all(|r| r.deps == vec!["s"]));
        let prj = Makefile::project(4, 1e6, 2e6);
        assert_eq!(prj.rules.len(), 4 + 3);
        assert_eq!(prj.rules[4].deps.len(), 4, "lib links all objects");
    }

    #[test]
    fn random_dag_is_topologically_ordered() {
        let mk = Makefile::random_dag(20, 3);
        let mut seen: Vec<&str> = vec!["s0", "s1"];
        for r in &mk.rules {
            for d in &r.deps {
                assert!(seen.contains(&d.as_str()), "{d} used before defined");
            }
            seen.push(&r.target);
        }
    }

    #[test]
    fn built_marks_versions() {
        let mut mk = Makefile::wide(2, 1e5);
        mk.built("t0", 5);
        assert_eq!(mk.files["t0"].version, 5);
        assert_eq!(mk.files["t1"].version, 0);
    }
}
