//! Parallel `make` (§7.1).
//!
//! "In the Jade version of this program, the body of this loop is
//! enclosed in a withonly-do construct that declares which files each
//! recompilation command will access. As the loop executes, it
//! generates a task to recompile each out-of-date file. The Jade
//! implementation executes these tasks concurrently unless one
//! command depends on the result of another command. The dynamic
//! parallelism available in the recompilation process defeats static
//! analysis: it depends on the makefile and on the modification dates
//! of the files it accesses."

pub mod jade;
pub mod makefile;
pub mod serial;

pub use jade::{make_jade, MakeOutcome};
pub use makefile::{FileState, Makefile, Rule};
