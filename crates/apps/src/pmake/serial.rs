//! Serial `make`: "The serial make program contains a loop that
//! sequentially executes the commands required to rebuild out-of-date
//! files."

use std::collections::HashMap;

use super::makefile::{FileState, Makefile};

/// Result of a (serial) make run: final file states and the targets
/// rebuilt, in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SerialOutcome {
    /// Final file versions/sizes.
    pub files: HashMap<String, FileState>,
    /// Rebuilt targets in order.
    pub rebuilt: Vec<String>,
    /// Total command work executed.
    pub work: u64,
}

/// A target is out of date when any prerequisite's version exceeds its
/// own.
pub fn out_of_date(files: &HashMap<String, FileState>, target: &str, deps: &[String]) -> bool {
    let tv = files.get(target).map_or(0, |f| f.version);
    deps.iter().any(|d| files.get(d).map_or(0, |f| f.version) > tv)
}

/// Run make serially.
pub fn make_serial(mk: &Makefile) -> SerialOutcome {
    let mut files = mk.files.clone();
    let mut rebuilt = Vec::new();
    let mut work = 0u64;
    for rule in &mk.rules {
        if out_of_date(&files, &rule.target, &rule.deps) {
            let newv = rule
                .deps
                .iter()
                .map(|d| files.get(d).map_or(0, |f| f.version))
                .max()
                .unwrap_or(0)
                + 1;
            files.insert(rule.target.clone(), FileState { version: newv, size: rule.out_size });
            rebuilt.push(rule.target.clone());
            work += rule.cost as u64;
        }
    }
    SerialOutcome { files, rebuilt, work }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_stale_rebuilds_everything() {
        let mk = Makefile::project(3, 1e5, 2e5);
        let out = make_serial(&mk);
        assert_eq!(out.rebuilt.len(), mk.rules.len());
        assert!(out.files["app1"].version > 0);
    }

    #[test]
    fn incremental_rebuild_skips_fresh_targets() {
        let mut mk = Makefile::wide(4, 1e5);
        // t0 and t2 already built after the source changed.
        mk.built("t0", 2).built("t2", 2);
        let out = make_serial(&mk);
        assert_eq!(out.rebuilt, vec!["t1", "t3"]);
    }

    #[test]
    fn chain_rebuild_cascades() {
        let mut mk = Makefile::chain(4, 1e5);
        // All built at version 2, then the source changes.
        for i in 0..4 {
            mk.built(&format!("t{i}"), 2);
        }
        mk.source("s", 1_000); // re-adding bumps nothing...
        mk.files.get_mut("s").unwrap().version = 9;
        let out = make_serial(&mk);
        assert_eq!(out.rebuilt, vec!["t0", "t1", "t2", "t3"], "stale source cascades");
    }

    #[test]
    fn up_to_date_project_does_nothing() {
        let mut mk = Makefile::chain(3, 1e5);
        mk.built("t0", 2).built("t1", 3).built("t2", 4);
        let out = make_serial(&mk);
        assert!(out.rebuilt.is_empty());
        assert_eq!(out.work, 0);
    }
}
