//! The applications' kernel registry: every paper workload's task
//! bodies as named pure functions over flat `f64` slices, so the
//! distributed backend can ship them to worker machines as
//! [`TaskBodyIr`](jade_core::ir::TaskBodyIr) programs.
//!
//! Each kernel is the *same arithmetic as the closure it mirrors* —
//! the cholesky kernels call [`crate::cholesky::serial`]'s update
//! helpers, the LWS kernels call [`crate::lws::model`]'s
//! `pair_interaction`/`integrate` — so the IR path and the closure
//! fallback produce bit-identical values, which is what keeps every
//! backend equal to the serial oracle. Shape data the kernel cannot
//! read from an object (sparsity patterns, block geometry, timestep
//! sizes) rides in the argument stream as `IrSrc::Lit` values: the
//! main task resolves it while generating the spec, exactly as it
//! resolves the access declarations themselves. Integers embedded
//! this way are exact as `f64` below 2⁵³.
//!
//! Argument layouts are documented per kernel. The generating code in
//! `cholesky::jade`, `lws::jade` and `pmake::jade` is the only
//! producer, and the conformance suites run every program on every
//! backend against the serial oracle, so layout and kernel cannot
//! drift apart silently.

use jade_core::kernels::KernelRegistry;

use crate::cholesky::serial::external_update;
use crate::lws::model::{block_len, integrate, pair_interaction};

/// The builtin registry extended with every application kernel.
/// Hand this to the distributed backend (coordinator *and* worker
/// binary) when running the paper workloads.
pub fn registry() -> KernelRegistry {
    KernelRegistry::builtin()
        .with("chol_internal", chol_internal)
        .with("chol_external", chol_external)
        .with("lws_forces", lws_forces)
        .with("lws_reduce", lws_reduce)
        .with("lws_integrate", lws_integrate)
        .with("pmake_build", pmake_build)
}

/// Sparse Cholesky `InternalUpdate`: `[col..] -> [col/√col[0]..]`.
///
/// Mirrors the closure in `cholesky::jade::factor_jade` exactly: the
/// whole column — *including* the diagonal — is divided by the square
/// root of the diagonal (`d/√d`, not `√d`, which can differ in the
/// last bit). Only valid (positive-definite) columns reach this
/// kernel; non-finite input propagates NaN rather than panicking a
/// worker.
fn chol_internal(args: &[f64]) -> Vec<f64> {
    let mut col = args.to_vec();
    if let Some(&head) = col.first() {
        let d = head.sqrt();
        for v in col.iter_mut() {
            *v /= d;
        }
    }
    col
}

/// Sparse Cholesky `ExternalUpdate`.
///
/// Layout: `[j, |rows_i|, rows_i.., |rows_j|, rows_j.., col_i..,
/// col_j..]` where `col_i` has `|rows_i| + 1` entries (diagonal
/// first) and `col_j` is the remainder. Returns the updated `col_j`.
/// The row-index lists are the sparsity pattern the main task reads
/// from its host copy while generating the spec (`IrSrc::Lit`).
fn chol_external(args: &[f64]) -> Vec<f64> {
    let j = args[0] as usize;
    let ri_len = args[1] as usize;
    let mut p = 2;
    let rows_i: Vec<usize> = args[p..p + ri_len].iter().map(|&x| x as usize).collect();
    p += ri_len;
    let rj_len = args[p] as usize;
    p += 1;
    let rows_j: Vec<usize> = args[p..p + rj_len].iter().map(|&x| x as usize).collect();
    p += rj_len;
    let col_i = &args[p..p + ri_len + 1];
    p += ri_len + 1;
    let mut col_j: Vec<f64> = args[p..].to_vec();
    external_update(&mut col_j, col_i, &rows_i, &rows_j, j);
    col_j
}

/// LWS owner-computes force task for one interleaved block.
///
/// Layout: `[k, blocks, owned, boxl, pos(3·n)..]` →
/// `[forces(3·owned).., energy]`. Molecule `i = k + slot·blocks` for
/// slot in `0..owned`; each interacts with all `n−1` others in
/// ascending partner order (the accumulation order that makes the
/// parallel program bitwise equal to the serial one), and each pair's
/// energy is counted once (`j > i`).
fn lws_forces(args: &[f64]) -> Vec<f64> {
    let k = args[0] as usize;
    let blocks = args[1] as usize;
    let owned = args[2] as usize;
    let boxl = args[3];
    let pos: Vec<[f64; 3]> = args[4..].chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
    let n = pos.len();
    let mut out = Vec::with_capacity(3 * owned + 1);
    let mut energy = 0.0;
    for slot in 0..owned {
        let i = k + slot * blocks;
        let mut acc = [0.0f64; 3];
        for j in 0..n {
            if j == i {
                continue;
            }
            let (fij, e) = pair_interaction(&pos[i], &pos[j], boxl);
            for d in 0..3 {
                acc[d] += fij[d];
            }
            if j > i {
                energy += e;
            }
        }
        out.extend_from_slice(&acc);
    }
    out.push(energy);
    out
}

/// LWS scalar energy reduction.
///
/// Layout: `[blocks, pe_0..pe_{blocks-1}, log..]` → `[log.., Σpe]`:
/// the per-block partial energies are summed in block order and
/// appended to the energy log.
fn lws_reduce(args: &[f64]) -> Vec<f64> {
    let blocks = args[0] as usize;
    let mut energy = 0.0;
    for &e in &args[1..1 + blocks] {
        energy += e;
    }
    let mut log: Vec<f64> = args[1 + blocks..].to_vec();
    log.push(energy);
    log
}

/// LWS Euler integration over the gathered per-block forces.
///
/// Layout: `[n, blocks, dt, boxl, f_0(3·len_0).., …,
/// f_{blocks-1}(..).., pos(3·n).., vel(3·n)..]` →
/// `[pos'(3·n).., vel'(3·n)..]`. Block `k`'s forces land on molecules
/// `k, k+blocks, …` (the interleaving `lws::jade` uses); the
/// per-block lengths are derived from `(n, blocks)`.
fn lws_integrate(args: &[f64]) -> Vec<f64> {
    let n = args[0] as usize;
    let blocks = args[1] as usize;
    let dt = args[2];
    let boxl = args[3];
    let mut p = 4;
    let mut flat = vec![[0.0f64; 3]; n];
    for k in 0..blocks {
        let len = block_len(n, blocks, k);
        for slot in 0..len {
            let c = &args[p + 3 * slot..p + 3 * slot + 3];
            flat[k + slot * blocks] = [c[0], c[1], c[2]];
        }
        p += 3 * len;
    }
    let mut pos: Vec<[f64; 3]> =
        args[p..p + 3 * n].chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
    p += 3 * n;
    let mut vel: Vec<[f64; 3]> =
        args[p..p + 3 * n].chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
    integrate(&mut pos, &mut vel, &flat, dt, boxl);
    let mut out = Vec::with_capacity(6 * n);
    for q in &pos {
        out.extend_from_slice(q);
    }
    for q in &vel {
        out.extend_from_slice(q);
    }
    out
}

/// `pmake` rebuild command: stamp the target newer than every
/// prerequisite.
///
/// Layout: `[ndeps, out_size, dep_0.version, dep_0.size, …]` →
/// `[max(version)+1, out_size]` (a lowered
/// [`FileState`](crate::pmake::makefile::FileState)). Versions stay
/// exact: they are small integers, far below 2⁵³.
fn pmake_build(args: &[f64]) -> Vec<f64> {
    let ndeps = args[0] as usize;
    let out_size = args[1];
    let mut newv = 0u64;
    for d in 0..ndeps {
        newv = newv.max(args[2 + 2 * d] as u64);
    }
    vec![(newv + 1) as f64, out_size]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::matrix::SparseSym;
    use crate::cholesky::serial as chol;
    use crate::lws::model::WaterSystem;

    #[test]
    fn registry_extends_builtin() {
        let reg = registry();
        assert!(reg.knows_all([
            "chol_internal",
            "chol_external",
            "lws_forces",
            "lws_reduce",
            "lws_integrate",
            "pmake_build",
            "sum",
            "id",
        ]));
    }

    #[test]
    fn chol_internal_matches_serial_update_bitwise() {
        let a = SparseSym::random_spd(12, 2, 5);
        for (i, col) in a.cols.iter().enumerate() {
            if !col.is_empty() && col[0] > 0.0 {
                let mut cols = a.cols.clone();
                chol::internal_update(&mut cols, i);
                assert_eq!(chol_internal(col), cols[i], "column {i}");
            }
        }
    }

    #[test]
    fn chol_external_matches_serial_update_bitwise() {
        // Drive a real factorization sequence so the kernel sees the
        // exact intermediate columns the Jade program would ship.
        let a = SparseSym::paper_example();
        let mut cols = a.cols.clone();
        let rows = &a.pattern.rows;
        for i in 0..a.pattern.n {
            chol::internal_update(&mut cols, i);
            for &j in &rows[i] {
                let mut args = vec![j as f64, rows[i].len() as f64];
                args.extend(rows[i].iter().map(|&r| r as f64));
                args.push(rows[j].len() as f64);
                args.extend(rows[j].iter().map(|&r| r as f64));
                args.extend_from_slice(&cols[i]);
                args.extend_from_slice(&cols[j]);
                let got = chol_external(&args);
                let (ci, cj) = (cols[i].clone(), &mut cols[j]);
                external_update(cj, &ci, &rows[i], &rows[j], j);
                assert_eq!(&got, cj, "external {i}->{j}");
            }
        }
        // The driven factorization itself must equal the library's.
        let mut want = a.clone();
        chol::factor(&mut want);
        assert_eq!(cols, want.cols);
    }

    #[test]
    fn lws_forces_counts_every_pair_once() {
        let sys = WaterSystem::new(24, 3);
        let n = sys.n();
        let flat: Vec<f64> = sys.pos.iter().flatten().copied().collect();
        let blocks = 3usize;
        let mut total = 0.0;
        for k in 0..blocks {
            let owned = block_len(n, blocks, k);
            let mut args = vec![k as f64, blocks as f64, owned as f64, sys.boxl];
            args.extend_from_slice(&flat);
            let out = lws_forces(&args);
            assert_eq!(out.len(), 3 * owned + 1);
            total += out[out.len() - 1];
        }
        // Summed per-block energies cover each pair exactly once.
        let mut want = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                want += pair_interaction(&sys.pos[i], &sys.pos[j], sys.boxl).1;
            }
        }
        assert!((total - want).abs() < 1e-9, "{total} vs {want}");
    }

    #[test]
    fn lws_integrate_round_trips_block_gather() {
        let sys = WaterSystem::new(10, 9);
        let n = sys.n();
        let blocks = 3usize;
        // Forces: f_i = [i, -i, 0.5i], stored interleaved by block.
        let mut args = vec![n as f64, blocks as f64, 0.01, sys.boxl];
        for k in 0..blocks {
            for slot in 0..block_len(n, blocks, k) {
                let i = (k + slot * blocks) as f64;
                args.extend_from_slice(&[i, -i, 0.5 * i]);
            }
        }
        args.extend(sys.pos.iter().flatten());
        args.extend(sys.vel.iter().flatten());
        let out = lws_integrate(&args);
        assert_eq!(out.len(), 6 * n);
        let mut pos = sys.pos.clone();
        let mut vel = sys.vel.clone();
        let forces: Vec<[f64; 3]> = (0..n).map(|i| [i as f64, -(i as f64), 0.5 * i as f64]).collect();
        integrate(&mut pos, &mut vel, &forces, 0.01, sys.boxl);
        let want: Vec<f64> =
            pos.iter().flatten().chain(vel.iter().flatten()).copied().collect();
        assert_eq!(out, want);
    }

    #[test]
    fn pmake_build_stamps_past_every_dep() {
        // deps at versions 3 and 7, sizes irrelevant to the stamp.
        let out = pmake_build(&[2.0, 4096.0, 3.0, 100.0, 7.0, 200.0]);
        assert_eq!(out, vec![8.0, 4096.0]);
        // No deps: version 1, like the closure's max().unwrap_or(0)+1.
        assert_eq!(pmake_build(&[0.0, 64.0]), vec![1.0, 64.0]);
    }
}
