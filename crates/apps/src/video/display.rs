//! The ordered display tail of the HRV pipeline.
//!
//! Video frames may be *transformed* in any order across accelerators,
//! but they must reach the HDTV monitor in frame order. Expressing
//! that in Jade needs no extra machinery: each `Display(f)` task
//! declares `rd_wr` on the shared monitor object, so the runtime
//! serializes the displays in task-creation (= frame) order while the
//! transforms still overlap freely — a three-construct pipeline.

use jade_core::prelude::*;

use super::frames::{checksum, make_frame, rle_compress, rle_decompress, transform};

/// The simulated HDTV monitor: the display sequence it has shown.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Monitor {
    /// Frame indices in the order they were displayed.
    pub order: Vec<u64>,
    /// Rolling checksum of everything shown.
    pub screen_hash: u64,
}

impl jade_transport::Portable for Monitor {
    fn encode(&self, enc: &mut jade_transport::PortEncoder) {
        self.order.encode(enc);
        enc.put_u64(self.screen_hash);
    }
    fn decode(dec: &mut jade_transport::PortDecoder<'_>) -> jade_transport::DecodeResult<Self> {
        Ok(Monitor { order: Vec::<u64>::decode(dec)?, screen_hash: dec.get_u64()? })
    }
    fn size_hint(&self) -> usize {
        16 + self.order.len() * 8
    }
}

/// The three-construct pipeline: capture (frame source) → transform
/// (any accelerator, unordered) → display (in frame order on the
/// monitor). Returns the monitor state.
pub fn video_pipeline_ordered<C: JadeCtx>(
    ctx: &mut C,
    n_frames: usize,
    w: usize,
    h: usize,
) -> Monitor {
    let monitor: Shared<Monitor> = ctx.create_named("hdtv", Monitor::default());
    for f in 0..n_frames {
        let compressed: Shared<Vec<u8>> = ctx.create_named(&format!("frame{f}"), Vec::new());
        let transformed: Shared<Vec<u8>> = ctx.create_named(&format!("xform{f}"), Vec::new());
        ctx.withonly(
            &format!("Capture({f})"),
            |s| {
                s.rd_wr(compressed);
                s.place(Placement::Device(DeviceClass::FrameSource));
            },
            move |c| {
                c.charge((w * h) as f64 * 0.6);
                *c.wr(&compressed) = rle_compress(&make_frame(f, w, h));
            },
        );
        ctx.withonly(
            &format!("Transform({f})"),
            |s| {
                s.rd(compressed);
                s.rd_wr(transformed);
                s.place(Placement::Device(DeviceClass::Accelerator));
            },
            move |c| {
                c.charge((w * h) as f64 * 3.0);
                let mut pixels = rle_decompress(&c.rd(&compressed));
                transform(&mut pixels);
                *c.wr(&transformed) = pixels;
            },
        );
        // The display conflicts with every other display through the
        // monitor object: strict frame order, no tearing.
        ctx.withonly(
            &format!("Display({f})"),
            |s| {
                s.rd(transformed);
                s.rd_wr(monitor);
                s.place(Placement::Device(DeviceClass::Display));
            },
            move |c| {
                c.charge((w * h) as f64 * 0.2);
                let pixels = c.rd(&transformed);
                let frame_hash = checksum(&pixels);
                let mut m = c.wr(&monitor);
                m.order.push(f as u64);
                m.screen_hash = m.screen_hash.rotate_left(7) ^ frame_hash;
            },
        );
    }
    ctx.rd(&monitor).clone()
}

/// Serial reference for the ordered pipeline.
pub fn video_ordered_serial(n_frames: usize, w: usize, h: usize) -> Monitor {
    let mut m = Monitor::default();
    for f in 0..n_frames {
        let mut pixels = rle_decompress(&rle_compress(&make_frame(f, w, h)));
        transform(&mut pixels);
        m.order.push(f as u64);
        m.screen_hash = m.screen_hash.rotate_left(7) ^ checksum(&pixels);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_pipeline_matches_serial() {
        let want = video_ordered_serial(5, 32, 24);
        let (got, stats) =
            jade_core::serial::run(|ctx| video_pipeline_ordered(ctx, 5, 32, 24));
        assert_eq!(got, want);
        assert_eq!(got.order, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.tasks_created, 15, "three constructs per frame");
    }

    #[test]
    fn displays_serialize_but_transforms_do_not() {
        let (_, trace) =
            jade_core::serial::run_traced(|ctx| video_pipeline_ordered(ctx, 3, 16, 16));
        // Display(1) depends on Display(0) (monitor) and Transform(1).
        let find = |l: &str| {
            *trace.tasks().iter().find(|t| trace.label(**t) == l).expect("task exists")
        };
        let d1 = find("Display(1)");
        let preds: Vec<String> =
            trace.predecessors(d1).iter().map(|p| trace.label(*p).to_string()).collect();
        assert!(preds.contains(&"Display(0)".to_string()), "preds: {preds:?}");
        assert!(preds.contains(&"Transform(1)".to_string()));
        // Transforms of different frames are independent.
        let t0 = find("Transform(0)");
        let t1 = find("Transform(1)");
        assert!(!trace.successors(t0).contains(&t1));
    }
}
