//! Frame synthesis, run-length compression, and the digital
//! transformation the accelerators apply.

/// Synthesize frame `idx` of a `w`×`h` 8-bit video: a moving gradient
/// with flat regions (so RLE actually compresses). Deterministic.
pub fn make_frame(idx: usize, w: usize, h: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let band = (y / 8) * 8; // flat horizontal bands
            let v = ((x / 16) * 16 + band + idx * 3) % 256;
            out.push(v as u8);
        }
    }
    out
}

/// Byte-wise run-length encoding: pairs of (count, value).
pub fn rle_compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < data.len() {
        let v = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == v && run < 255 {
            run += 1;
        }
        out.push(run as u8);
        out.push(v);
        i += run;
    }
    out
}

/// Inverse of [`rle_compress`].
pub fn rle_decompress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    for chunk in data.chunks_exact(2) {
        out.extend(std::iter::repeat_n(chunk[1], chunk[0] as usize));
    }
    out
}

/// The "simple digital transformation": invert and gamma-ish shift.
pub fn transform(pixels: &mut [u8]) {
    for p in pixels.iter_mut() {
        *p = 255 - (*p >> 1);
    }
}

/// Checksum used to verify a displayed frame across executors.
pub fn checksum(pixels: &[u8]) -> u64 {
    pixels.iter().fold(1469598103934665603u64, |acc, &b| {
        (acc ^ b as u64).wrapping_mul(1099511628211)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rle_roundtrips_every_frame() {
        for idx in 0..5 {
            let f = make_frame(idx, 64, 48);
            let c = rle_compress(&f);
            assert_eq!(rle_decompress(&c), f);
            assert!(c.len() < f.len(), "frame should compress: {} vs {}", c.len(), f.len());
        }
    }

    #[test]
    fn rle_handles_degenerate_inputs() {
        assert!(rle_compress(&[]).is_empty());
        let single = rle_compress(&[7]);
        assert_eq!(rle_decompress(&single), vec![7]);
        // A long run splits at 255.
        let long = vec![9u8; 600];
        assert_eq!(rle_decompress(&rle_compress(&long)), long);
    }

    #[test]
    fn transform_is_deterministic_and_changes_pixels() {
        let mut a = make_frame(0, 32, 32);
        let b = a.clone();
        transform(&mut a);
        assert_ne!(a, b);
        let mut c = b.clone();
        transform(&mut c);
        assert_eq!(a, c);
    }

    #[test]
    fn checksums_distinguish_frames() {
        let a = checksum(&make_frame(0, 64, 48));
        let b = checksum(&make_frame(1, 64, 48));
        assert_ne!(a, b);
    }
}
