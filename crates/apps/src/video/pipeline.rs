//! The two-`withonly` video pipeline of §7.2.
//!
//! The capture task is placed on the machine with the frame digitizer
//! (the SPARC host); the transform/display task on any machine with an
//! accelerator — the §4.5 placement construct in action. Each frame
//! is its own shared object, so consecutive frames flow through
//! different accelerators concurrently while the runtime manages all
//! frame movement: "the programmer does not have to write complex
//! message-passing code to initiate the communication between the
//! workstation and the graphics accelerators and to manage the
//! movement of frames through the machine."

use jade_core::prelude::*;

use super::frames::{checksum, make_frame, rle_compress, rle_decompress, transform};

/// Result of a pipeline run: a checksum per displayed frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VideoResult {
    /// Per-frame checksums of the displayed pixels.
    pub displayed: Vec<u64>,
}

/// Work units charged for capturing/compressing a frame in "hardware".
fn capture_cost(w: usize, h: usize) -> f64 {
    (w * h) as f64 * 0.6
}

/// Work units charged for decompress + transform + display.
fn transform_cost(w: usize, h: usize) -> f64 {
    (w * h) as f64 * 3.0
}

/// The Jade video program: a loop with two `withonly-do` constructs
/// per frame.
pub fn video_pipeline<C: JadeCtx>(ctx: &mut C, n_frames: usize, w: usize, h: usize) -> VideoResult {
    let mut results: Vec<Shared<u64>> = Vec::with_capacity(n_frames);
    for f in 0..n_frames {
        let frame: Shared<Vec<u8>> = ctx.create_named(&format!("frame{f}"), Vec::new());
        let shown: Shared<u64> = ctx.create_named(&format!("shown{f}"), 0u64);
        results.push(shown);
        // First construct: acquire a camera frame (compressed in
        // hardware) — must run on the frame source.
        ctx.withonly(
            &format!("Capture({f})"),
            |s| {
                s.rd_wr(frame);
                s.place(Placement::Device(DeviceClass::FrameSource));
            },
            move |c| {
                c.charge(capture_cost(w, h));
                let raw = make_frame(f, w, h);
                *c.wr(&frame) = rle_compress(&raw);
            },
        );
        // Second construct: decompress in software, transform, display
        // on the HDTV — runs on an i860 accelerator.
        ctx.withonly(
            &format!("Transform({f})"),
            |s| {
                s.rd(frame);
                s.rd_wr(shown);
                s.place(Placement::Device(DeviceClass::Accelerator));
            },
            move |c| {
                c.charge(transform_cost(w, h));
                let mut pixels = rle_decompress(&c.rd(&frame));
                transform(&mut pixels);
                *c.wr(&shown) = checksum(&pixels);
            },
        );
    }
    VideoResult { displayed: results.iter().map(|r| *ctx.rd(r)).collect() }
}

/// Serial reference: what the pipeline must display.
pub fn video_serial(n_frames: usize, w: usize, h: usize) -> VideoResult {
    let displayed = (0..n_frames)
        .map(|f| {
            let compressed = rle_compress(&make_frame(f, w, h));
            let mut pixels = rle_decompress(&compressed);
            transform(&mut pixels);
            checksum(&pixels)
        })
        .collect();
    VideoResult { displayed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_matches_serial_reference() {
        let want = video_serial(6, 64, 48);
        let (got, stats) = jade_core::serial::run(|ctx| video_pipeline(ctx, 6, 64, 48));
        assert_eq!(got, want);
        assert_eq!(stats.tasks_created, 12, "two constructs per frame");
    }

    #[test]
    fn frames_are_independent_in_the_task_graph() {
        let (_, trace) =
            jade_core::serial::run_traced(|ctx| video_pipeline(ctx, 4, 32, 32));
        // Transform(f) depends only on Capture(f).
        for &t in trace.tasks() {
            let label = trace.label(t).to_string();
            if let Some(f) = label.strip_prefix("Transform(").and_then(|s| s.strip_suffix(")")) {
                let preds: Vec<String> = trace
                    .predecessors(t)
                    .into_iter()
                    .filter(|p| !p.is_root())
                    .map(|p| trace.label(p).to_string())
                    .collect();
                assert_eq!(preds, vec![format!("Capture({f})")]);
            }
        }
    }
}
