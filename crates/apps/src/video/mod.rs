//! Digital image processing on the HRV workstation (§7.2).
//!
//! "A SPARC-based workstation uses a camera to capture and compress in
//! hardware a sequence of video frames. It passes each frame to one of
//! the i860-based graphics accelerators, which decompresses the frames
//! in software, applies a simple digital transformation, and displays
//! the frame on the HDTV monitor. The Jade version of this program
//! consists of a loop with two withonly-do constructs."

pub mod display;
pub mod frames;
pub mod pipeline;

pub use display::{video_ordered_serial, video_pipeline_ordered, Monitor};
pub use frames::{make_frame, rle_compress, rle_decompress, transform};
pub use pipeline::{video_pipeline, video_serial, VideoResult};
