//! N-body particles and the direct-summation reference.

use jade_transport::{PortDecoder, PortEncoder, Portable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gravitational softening length (avoids singular close encounters).
pub const SOFTENING: f64 = 0.05;

/// One body: position, velocity, mass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Body {
    /// Position.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Mass.
    pub mass: f64,
}

impl Portable for Body {
    fn encode(&self, enc: &mut PortEncoder) {
        self.pos.encode(enc);
        self.vel.encode(enc);
        enc.put_f64(self.mass);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> jade_transport::DecodeResult<Self> {
        let pos = <[f64; 3]>::decode(dec)?;
        let vel = <[f64; 3]>::decode(dec)?;
        let mass = dec.get_f64()?;
        Ok(Body { pos, vel, mass })
    }
    fn size_hint(&self) -> usize {
        56
    }
}

/// Generate a deterministic cluster of `n` bodies in the unit cube
/// with a dense core (a crude Plummer-like profile).
pub fn cluster(n: usize, seed: u64) -> Vec<Body> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            // Bias positions toward the center.
            let r = |rng: &mut StdRng| {
                let u: f64 = rng.gen_range(-1.0..1.0);
                0.5 + 0.5 * u * u * u
            };
            Body {
                pos: [r(&mut rng), r(&mut rng), r(&mut rng)],
                vel: [
                    rng.gen_range(-0.01..0.01),
                    rng.gen_range(-0.01..0.01),
                    rng.gen_range(-0.01..0.01),
                ],
                mass: rng.gen_range(0.5..1.5),
            }
        })
        .collect()
}

/// Softened gravitational acceleration contribution of a point mass
/// at `src` (mass `m`) on a body at `at`.
#[inline]
pub fn accel_from(at: &[f64; 3], src: &[f64; 3], m: f64) -> [f64; 3] {
    let dx = src[0] - at[0];
    let dy = src[1] - at[1];
    let dz = src[2] - at[2];
    let r2 = dx * dx + dy * dy + dz * dz + SOFTENING * SOFTENING;
    let inv_r = 1.0 / r2.sqrt();
    let f = m * inv_r * inv_r * inv_r;
    [f * dx, f * dy, f * dz]
}

/// O(n²) direct-summation accelerations — the accuracy reference the
/// Barnes-Hut approximation is checked against.
pub fn direct_accels(bodies: &[Body]) -> Vec<[f64; 3]> {
    let n = bodies.len();
    let mut acc = vec![[0.0f64; 3]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let a = accel_from(&bodies[i].pos, &bodies[j].pos, bodies[j].mass);
            for k in 0..3 {
                acc[i][k] += a[k];
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_transport::{roundtrip_same, DataLayout};

    #[test]
    fn bodies_are_portable() {
        let b = Body { pos: [1.0, -2.0, 0.5], vel: [0.1, 0.0, -0.3], mass: 1.25 };
        for l in DataLayout::all_presets() {
            assert_eq!(roundtrip_same(&b, l), b);
        }
    }

    #[test]
    fn cluster_is_deterministic() {
        assert_eq!(cluster(50, 3), cluster(50, 3));
        assert_ne!(cluster(50, 3), cluster(50, 4));
    }

    #[test]
    fn two_bodies_attract_each_other() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 0.0, 0.0];
        let acc = accel_from(&a, &b, 2.0);
        assert!(acc[0] > 0.0, "a accelerates toward b");
        assert_eq!(acc[1], 0.0);
    }

    #[test]
    fn direct_accels_conserve_momentum_for_equal_masses() {
        let mut bodies = cluster(20, 1);
        for b in &mut bodies {
            b.mass = 1.0;
        }
        let acc = direct_accels(&bodies);
        for k in 0..3 {
            let p: f64 = acc.iter().map(|a| a[k]).sum();
            assert!(p.abs() < 1e-9, "momentum drift {p}");
        }
    }
}
