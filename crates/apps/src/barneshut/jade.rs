//! The Jade Barnes-Hut kernel (§7: "we have implemented several
//! computational kernels, including ... the Barnes-Hut algorithm for
//! solving the N-body problem").
//!
//! Bodies are decomposed into group objects; a `BuildTree` task reads
//! every group and writes the shared octree; one `Force` task per
//! group reads the (replicated) tree and integrates its own group —
//! the tree is read-shared so the runtime replicates it to every
//! machine, while the group objects migrate to their force tasks.

use jade_core::prelude::*;

use super::body::Body;
use super::tree::Octree;

/// Work units per body-tree interaction (≈ log n cell visits).
const FORCE_COST_PER_BODY: f64 = 600.0;

/// Shared-object handles for a Barnes-Hut run.
#[derive(Clone)]
pub struct BhHandles {
    /// Contiguous body groups.
    pub groups: Vec<Shared<Vec<Body>>>,
    /// The shared octree, rebuilt each step.
    pub tree: Shared<Octree>,
}

/// Upload bodies split into `groups` contiguous chunks.
pub fn upload<C: JadeCtx>(ctx: &mut C, bodies: &[Body], groups: usize) -> BhHandles {
    let g = groups.max(1).min(bodies.len().max(1));
    let chunk = bodies.len().div_ceil(g);
    let groups = bodies
        .chunks(chunk.max(1))
        .enumerate()
        .map(|(i, c)| ctx.create_named(&format!("bodies{i}"), c.to_vec()))
        .collect();
    BhHandles { groups, tree: ctx.create_named("octree", Octree::default()) }
}

/// One Barnes-Hut timestep: rebuild the tree, then force+integrate
/// each group in parallel.
pub fn step<C: JadeCtx>(ctx: &mut C, h: &BhHandles, n: usize, theta: f64, dt: f64) {
    let tree = h.tree;
    // Build the octree from all groups.
    {
        let spec_groups = h.groups.clone();
        let body_groups = h.groups.clone();
        ctx.withonly(
            "BuildTree",
            |s| {
                s.rd_wr(tree);
                for &g in &spec_groups {
                    s.rd(g);
                }
            },
            move |c| {
                c.charge((n * 40) as f64);
                let mut all: Vec<Body> = Vec::with_capacity(n);
                for g in &body_groups {
                    all.extend(c.rd(g).iter().copied());
                }
                *c.wr(&tree) = Octree::build(&all);
            },
        );
    }
    // Force + integrate per group. Each group's bodies keep globally
    // consistent indices so self-interaction is excluded.
    let mut base = 0usize;
    for (gi, &group) in h.groups.iter().enumerate() {
        let group_base = base;
        // Group sizes are fixed at upload; recompute the chunk length
        // the same way upload did.
        let chunk = {
            let g = h.groups.len();
            n.div_ceil(g).max(1)
        };
        let len = chunk.min(n - base.min(n));
        base += len;
        ctx.withonly(
            &format!("Force({gi})"),
            |s| {
                s.rd(tree);
                s.rd_wr(group);
            },
            move |c| {
                c.charge(len as f64 * FORCE_COST_PER_BODY);
                let t = c.rd(&tree);
                let mut bodies = c.wr(&group);
                for (li, b) in bodies.iter_mut().enumerate() {
                    let a = t.accel(&b.pos, (group_base + li) as i64, theta);
                    for k in 0..3 {
                        b.vel[k] += a[k] * dt;
                        b.pos[k] += b.vel[k] * dt;
                    }
                }
            },
        );
    }
}

/// Run `steps` Barnes-Hut timesteps under Jade; returns the final
/// bodies.
pub fn run_jade<C: JadeCtx>(
    ctx: &mut C,
    bodies: &[Body],
    groups: usize,
    steps: usize,
    theta: f64,
    dt: f64,
) -> Vec<Body> {
    let h = upload(ctx, bodies, groups);
    for _ in 0..steps {
        step(ctx, &h, bodies.len(), theta, dt);
    }
    let mut out = Vec::with_capacity(bodies.len());
    for g in &h.groups {
        out.extend(ctx.rd(g).iter().copied());
    }
    out
}

/// Serial reference with the identical tree/traversal code.
pub fn run_serial(bodies: &[Body], steps: usize, theta: f64, dt: f64) -> Vec<Body> {
    let mut bodies = bodies.to_vec();
    for _ in 0..steps {
        let tree = Octree::build(&bodies);
        for (i, b) in bodies.iter_mut().enumerate() {
            let a = tree.accel(&b.pos, i as i64, theta);
            for k in 0..3 {
                b.vel[k] += a[k] * dt;
                b.pos[k] += b.vel[k] * dt;
            }
        }
    }
    bodies
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barneshut::body::cluster;

    #[test]
    fn jade_matches_serial_reference_bitwise() {
        let bodies = cluster(120, 4);
        let want = run_serial(&bodies, 2, 0.6, 0.01);
        for groups in [1, 3, 8] {
            let (got, _) =
                jade_core::serial::run(|ctx| run_jade(ctx, &bodies, groups, 2, 0.6, 0.01));
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.pos, w.pos, "groups={groups}");
                assert_eq!(g.vel, w.vel);
            }
        }
    }

    #[test]
    fn force_tasks_depend_only_on_tree() {
        let bodies = cluster(40, 1);
        let (_, trace) =
            jade_core::serial::run_traced(|ctx| run_jade(ctx, &bodies, 4, 1, 0.6, 0.01));
        for &t in trace.tasks() {
            if trace.label(t).starts_with("Force(") {
                let preds: Vec<String> = trace
                    .predecessors(t)
                    .into_iter()
                    .filter(|p| !p.is_root())
                    .map(|p| trace.label(p).to_string())
                    .collect();
                assert_eq!(preds, vec!["BuildTree".to_string()], "{}", trace.label(t));
            }
        }
    }

    #[test]
    fn bodies_move_under_gravity() {
        let bodies = cluster(30, 6);
        let (after, _) =
            jade_core::serial::run(|ctx| run_jade(ctx, &bodies, 2, 3, 0.7, 0.01));
        assert!(bodies.iter().zip(&after).any(|(b, a)| b.pos != a.pos));
    }
}
