//! Barnes-Hut N-body (§7 kernel): octree construction, θ-gated force
//! evaluation, and the Jade task decomposition over body groups.

pub mod body;
pub mod jade;
pub mod partree;
pub mod tree;

pub use body::{cluster, direct_accels, Body};
pub use jade::{run_jade, run_serial, BhHandles};
pub use partree::{build_tree_parallel, run_partree};
pub use tree::{OctNode, Octree};
