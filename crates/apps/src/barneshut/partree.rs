//! Parallel octree construction: the tree build itself as a Jade task
//! graph — a partition task, one subtree task per octant, and a merge
//! task. Combined with the per-group force tasks this makes the whole
//! Barnes-Hut timestep parallel.

use jade_core::prelude::*;

use super::body::Body;
use super::jade::BhHandles;
use super::tree::Octree;

/// Which octant of the cube centered at `center` contains `p`.
fn octant_of(center: &[f64; 3], p: &[f64; 3]) -> usize {
    usize::from(p[0] >= center[0])
        | (usize::from(p[1] >= center[1]) << 1)
        | (usize::from(p[2] >= center[2]) << 2)
}

fn child_center(center: &[f64; 3], half: f64, oct: usize) -> [f64; 3] {
    let q = half / 2.0;
    [
        center[0] + if oct & 1 != 0 { q } else { -q },
        center[1] + if oct & 2 != 0 { q } else { -q },
        center[2] + if oct & 4 != 0 { q } else { -q },
    ]
}

/// Create the parallel tree-build tasks: `Partition` reads all body
/// groups and splits them into eight tagged octant lists; eight
/// `BuildOctant(k)` tasks build independent subtrees; `MergeTree`
/// stitches them into the shared octree.
pub fn build_tree_parallel<C: JadeCtx>(ctx: &mut C, h: &BhHandles, n: usize) {
    let tree = h.tree;
    // One shared object per octant's tagged body list, plus the cube.
    let octants: Vec<Shared<Vec<(i64, Body)>>> =
        (0..8).map(|k| ctx.create_named(&format!("octant{k}"), Vec::new())).collect();
    let cube: Shared<([f64; 3], f64)> = ctx.create_named("cube", ([0.0; 3], 0.0));

    // Partition.
    {
        let spec_groups = h.groups.clone();
        let body_groups = h.groups.clone();
        let spec_octants = octants.clone();
        let body_octants = octants.clone();
        ctx.withonly(
            "Partition",
            |s| {
                for &g in &spec_groups {
                    s.rd(g);
                }
                for &o in &spec_octants {
                    s.wr(o);
                }
                s.wr(cube);
            },
            move |c| {
                c.charge((n * 8) as f64);
                let mut all: Vec<Body> = Vec::with_capacity(n);
                for g in &body_groups {
                    all.extend(c.rd(g).iter().copied());
                }
                let (center, half) = Octree::bounding_cube(&all);
                *c.wr(&cube) = (center, half);
                let mut buckets: Vec<Vec<(i64, Body)>> = vec![Vec::new(); 8];
                for (i, b) in all.into_iter().enumerate() {
                    buckets[octant_of(&center, &b.pos)].push((i as i64, b));
                }
                for (bucket, out) in buckets.into_iter().zip(&body_octants) {
                    *c.wr(out) = bucket;
                }
            },
        );
    }
    // Eight independent subtree builds.
    let mut subtrees: Vec<Shared<Octree>> = Vec::with_capacity(8);
    for (k, &oct) in octants.iter().enumerate() {
        let subtree: Shared<Octree> = ctx.create_named(&format!("subtree{k}"), Octree::default());
        subtrees.push(subtree);
        ctx.withonly(
            &format!("BuildOctant({k})"),
            |s| {
                s.rd(oct);
                s.rd(cube);
                s.wr(subtree);
            },
            move |c| {
                let tagged = c.rd(&oct).clone();
                c.charge((tagged.len() * 40 + 20) as f64);
                let (center, half) = *c.rd(&cube);
                let sub_center = child_center(&center, half, k);
                *c.wr(&subtree) = Octree::build_in_cube(&tagged, sub_center, half / 2.0);
            },
        );
    }
    // Merge.
    {
        let spec_subs = subtrees.clone();
        let body_subs = subtrees.clone();
        ctx.withonly(
            "MergeTree",
            |s| {
                for &st in &spec_subs {
                    s.rd(st);
                }
                s.rd(cube);
                s.rd_wr(tree);
            },
            move |c| {
                c.charge((n * 4 + 50) as f64);
                let (center, half) = *c.rd(&cube);
                let subs: Vec<Octree> =
                    body_subs.iter().map(|st| c.rd(st).clone()).collect();
                *c.wr(&tree) = Octree::merge_octants(center, half, subs);
            },
        );
    }
}

/// A full timestep with the parallel tree build followed by the
/// per-group force/integration tasks of [`super::jade`].
pub fn step_partree<C: JadeCtx>(ctx: &mut C, h: &BhHandles, n: usize, theta: f64, dt: f64) {
    build_tree_parallel(ctx, h, n);
    // Reuse the force/integrate tasks from the sequential-build step.
    let tree = h.tree;
    let mut base = 0usize;
    for (gi, &group) in h.groups.iter().enumerate() {
        let chunk = n.div_ceil(h.groups.len()).max(1);
        let len = chunk.min(n - base.min(n));
        let group_base = base;
        base += len;
        ctx.withonly(
            &format!("Force({gi})"),
            |s| {
                s.rd(tree);
                s.rd_wr(group);
            },
            move |c| {
                c.charge(len as f64 * 600.0);
                let t = c.rd(&tree);
                let mut bodies = c.wr(&group);
                for (li, b) in bodies.iter_mut().enumerate() {
                    let a = t.accel(&b.pos, (group_base + li) as i64, theta);
                    for k in 0..3 {
                        b.vel[k] += a[k] * dt;
                        b.pos[k] += b.vel[k] * dt;
                    }
                }
            },
        );
    }
}

/// Run `steps` Barnes-Hut timesteps with the parallel tree build.
pub fn run_partree<C: JadeCtx>(
    ctx: &mut C,
    bodies: &[Body],
    groups: usize,
    steps: usize,
    theta: f64,
    dt: f64,
) -> Vec<Body> {
    let h = super::jade::upload(ctx, bodies, groups);
    for _ in 0..steps {
        step_partree(ctx, &h, bodies.len(), theta, dt);
    }
    let mut out = Vec::with_capacity(bodies.len());
    for g in &h.groups {
        out.extend(ctx.rd(g).iter().copied());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barneshut::body::{cluster, direct_accels};

    #[test]
    fn merged_tree_matches_physics() {
        let bodies = cluster(150, 8);
        let (center, half) = Octree::bounding_cube(&bodies);
        let mut buckets: Vec<Vec<(i64, Body)>> = vec![Vec::new(); 8];
        for (i, b) in bodies.iter().enumerate() {
            buckets[octant_of(&center, &b.pos)].push((i as i64, *b));
        }
        let subs: Vec<Octree> = buckets
            .iter()
            .enumerate()
            .map(|(k, t)| Octree::build_in_cube(t, child_center(&center, half, k), half / 2.0))
            .collect();
        let merged = Octree::merge_octants(center, half, subs);
        assert_eq!(merged.nodes[0].count as usize, bodies.len());
        let total: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((merged.nodes[0].mass - total).abs() < 1e-9);
        // Exact traversal of the merged tree equals direct summation.
        let direct = direct_accels(&bodies);
        for (i, b) in bodies.iter().enumerate() {
            let a = merged.accel(&b.pos, i as i64, 1e-9);
            for k in 0..3 {
                assert!((a[k] - direct[i][k]).abs() < 1e-6, "body {i}");
            }
        }
    }

    #[test]
    fn parallel_build_step_is_deterministic() {
        let bodies = cluster(80, 3);
        let (a, stats) = jade_core::serial::run(|ctx| run_partree(ctx, &bodies, 4, 2, 0.6, 0.01));
        let (b, _) = jade_core::serial::run(|ctx| run_partree(ctx, &bodies, 4, 2, 0.6, 0.01));
        assert_eq!(a.len(), bodies.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.pos, y.pos);
        }
        // Per step: partition + 8 builds + merge + 4 forces.
        assert_eq!(stats.tasks_created, 2 * (1 + 8 + 1 + 4));
    }

    #[test]
    fn parallel_build_tracks_serial_build_physics() {
        // Different tree geometry (octant cubes vs global reinsert)
        // but equivalent physics within BH accuracy.
        let bodies = cluster(120, 5);
        let serial = super::super::jade::run_serial(&bodies, 2, 0.5, 0.005);
        let (par, _) = jade_core::serial::run(|ctx| run_partree(ctx, &bodies, 4, 2, 0.5, 0.005));
        let mut worst = 0.0f64;
        for (s, p) in serial.iter().zip(&par) {
            for k in 0..3 {
                worst = worst.max((s.pos[k] - p.pos[k]).abs());
            }
        }
        assert!(worst < 1e-3, "tree-build variant drifted: {worst}");
    }
}
