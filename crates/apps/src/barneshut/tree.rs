//! The Barnes-Hut octree: build, mass summarization, and the θ-gated
//! force traversal. The tree is a [`Portable`] shared object so force
//! tasks on remote machines receive a replicated copy through the
//! typed transport.

use jade_transport::{PortDecoder, PortEncoder, Portable};

use super::body::{accel_from, Body};

/// Sentinel for "no child"/"no body".
const NONE: i64 = -1;

/// Maximum subdivision depth (guards against coincident positions).
const MAX_DEPTH: u32 = 32;

/// One octree cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OctNode {
    /// Cell center.
    pub center: [f64; 3],
    /// Half edge length.
    pub half: f64,
    /// Total mass in the cell.
    pub mass: f64,
    /// Center of mass of the cell.
    pub com: [f64; 3],
    /// Child node indices (−1 = absent).
    pub children: [i64; 8],
    /// Body index if this is a singleton leaf, else −1.
    pub body: i64,
    /// Number of bodies in the cell.
    pub count: u32,
}

impl Portable for OctNode {
    fn encode(&self, enc: &mut PortEncoder) {
        self.center.encode(enc);
        enc.put_f64(self.half);
        enc.put_f64(self.mass);
        self.com.encode(enc);
        for c in self.children {
            enc.put_i64(c);
        }
        enc.put_i64(self.body);
        enc.put_u32(self.count);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> jade_transport::DecodeResult<Self> {
        let center = <[f64; 3]>::decode(dec)?;
        let half = dec.get_f64()?;
        let mass = dec.get_f64()?;
        let com = <[f64; 3]>::decode(dec)?;
        let mut children = [NONE; 8];
        for c in children.iter_mut() {
            *c = dec.get_i64()?;
        }
        let body = dec.get_i64()?;
        let count = dec.get_u32()?;
        Ok(OctNode { center, half, mass, com, children, body, count })
    }
    fn size_hint(&self) -> usize {
        16 * 8
    }
}

/// A built octree (flat node arena, root at index 0).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Octree {
    /// Node arena; empty for an empty tree.
    pub nodes: Vec<OctNode>,
}

impl Portable for Octree {
    fn encode(&self, enc: &mut PortEncoder) {
        self.nodes.encode(enc);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> jade_transport::DecodeResult<Self> {
        Ok(Octree { nodes: Vec::<OctNode>::decode(dec)? })
    }
    fn size_hint(&self) -> usize {
        8 + self.nodes.len() * 128
    }
}

fn octant(center: &[f64; 3], p: &[f64; 3]) -> usize {
    (usize::from(p[0] >= center[0]))
        | (usize::from(p[1] >= center[1]) << 1)
        | (usize::from(p[2] >= center[2]) << 2)
}

fn child_center(center: &[f64; 3], half: f64, oct: usize) -> [f64; 3] {
    let q = half / 2.0;
    [
        center[0] + if oct & 1 != 0 { q } else { -q },
        center[1] + if oct & 2 != 0 { q } else { -q },
        center[2] + if oct & 4 != 0 { q } else { -q },
    ]
}

impl Octree {
    /// Bounding cube (center, half-edge) of a body set.
    pub fn bounding_cube(bodies: &[Body]) -> ([f64; 3], f64) {
        let mut lo = [f64::INFINITY; 3];
        let mut hi = [f64::NEG_INFINITY; 3];
        for b in bodies {
            for k in 0..3 {
                lo[k] = lo[k].min(b.pos[k]);
                hi[k] = hi[k].max(b.pos[k]);
            }
        }
        let center = [
            (lo[0] + hi[0]) / 2.0,
            (lo[1] + hi[1]) / 2.0,
            (lo[2] + hi[2]) / 2.0,
        ];
        let half = (0..3)
            .map(|k| (hi[k] - lo[k]) / 2.0)
            .fold(1e-6f64, f64::max)
            * 1.0001;
        (center, half)
    }

    /// Build the tree over `bodies` (self-exclusion ids are the body
    /// positions in the slice).
    pub fn build(bodies: &[Body]) -> Octree {
        if bodies.is_empty() {
            return Octree { nodes: Vec::new() };
        }
        let (center, half) = Self::bounding_cube(bodies);
        let tagged: Vec<(i64, Body)> =
            bodies.iter().enumerate().map(|(i, b)| (i as i64, *b)).collect();
        Self::build_in_cube(&tagged, center, half)
    }

    /// Build a tree over explicitly tagged bodies inside a given cube.
    /// Used by the parallel build: octant tasks build subtrees in their
    /// assigned cube so the merged tree's geometry is well-formed.
    pub fn build_in_cube(tagged: &[(i64, Body)], center: [f64; 3], half: f64) -> Octree {
        let mut tree = Octree { nodes: Vec::new() };
        if tagged.is_empty() {
            return tree;
        }
        tree.nodes.push(OctNode {
            center,
            half,
            mass: 0.0,
            com: [0.0; 3],
            children: [NONE; 8],
            body: NONE,
            count: 0,
        });
        let bodies: Vec<Body> = tagged.iter().map(|(_, b)| *b).collect();
        let ids: Vec<i64> = tagged.iter().map(|(i, _)| *i).collect();
        for local in 0..bodies.len() {
            tree.insert_local(0, local, &bodies, 0);
        }
        // Rewrite local leaf indices to the global ids, then summarize.
        for n in tree.nodes.iter_mut() {
            if n.body >= 0 {
                n.body = ids[n.body as usize];
            }
        }
        tree.summarize_tagged(0, tagged);
        tree
    }

    /// Merge per-octant subtrees (each built with [`Self::build_in_cube`]
    /// over one octant of the `(center, half)` cube) into one tree.
    pub fn merge_octants(
        center: [f64; 3],
        half: f64,
        subtrees: Vec<Octree>,
    ) -> Octree {
        let mut tree = Octree {
            nodes: vec![OctNode {
                center,
                half,
                mass: 0.0,
                com: [0.0; 3],
                children: [NONE; 8],
                body: NONE,
                count: 0,
            }],
        };
        let mut mass = 0.0;
        let mut com = [0.0f64; 3];
        let mut count = 0u32;
        for sub in subtrees {
            if sub.nodes.is_empty() {
                continue;
            }
            let oct = octant(&center, &sub.nodes[0].center);
            let base = tree.nodes.len() as i64;
            tree.nodes[0].children[oct] = base;
            for mut n in sub.nodes {
                for c in n.children.iter_mut() {
                    if *c >= 0 {
                        *c += base;
                    }
                }
                tree.nodes.push(n);
            }
            let root = &tree.nodes[base as usize];
            mass += root.mass;
            for k in 0..3 {
                com[k] += root.com[k] * root.mass;
            }
            count += root.count;
        }
        if mass > 0.0 {
            for k in 0..3 {
                com[k] /= mass;
            }
        }
        tree.nodes[0].mass = mass;
        tree.nodes[0].com = com;
        tree.nodes[0].count = count;
        tree
    }

    fn ensure_child(&mut self, node: usize, pos: &[f64; 3]) -> usize {
        let oct = octant(&self.nodes[node].center, pos);
        let child = self.nodes[node].children[oct];
        if child != NONE {
            return child as usize;
        }
        let c = self.nodes.len();
        let center = child_center(&self.nodes[node].center, self.nodes[node].half, oct);
        let half = self.nodes[node].half / 2.0;
        self.nodes.push(OctNode {
            center,
            half,
            mass: 0.0,
            com: [0.0; 3],
            children: [NONE; 8],
            body: NONE,
            count: 0,
        });
        self.nodes[node].children[oct] = c as i64;
        c
    }

    fn insert_local(&mut self, node: usize, bi: usize, bodies: &[Body], depth: u32) {
        self.insert_at(node, bi as i64, bodies, depth)
    }

    fn insert_at(&mut self, node: usize, bi: i64, bodies: &[Body], depth: u32) {
        if self.nodes[node].count == 0 {
            self.nodes[node].count = 1;
            self.nodes[node].body = bi;
            return;
        }
        if depth >= MAX_DEPTH {
            // Depth cap (coincident positions): aggregate leaf; the
            // first body stays as representative, summarize() weights
            // it by the count.
            self.nodes[node].count += 1;
            return;
        }
        if self.nodes[node].count == 1 {
            // Split the singleton leaf: push the resident body down.
            let old = self.nodes[node].body;
            self.nodes[node].body = NONE;
            if old >= 0 {
                let old_pos = bodies[old as usize].pos;
                let c = self.ensure_child(node, &old_pos);
                self.insert_at(c, old, bodies, depth + 1);
            }
        }
        self.nodes[node].count += 1;
        let pos = bodies[bi as usize].pos;
        let c = self.ensure_child(node, &pos);
        self.insert_at(c, bi, bodies, depth + 1);
    }

    fn summarize_tagged(&mut self, node: usize, tagged: &[(i64, Body)]) -> (f64, [f64; 3]) {
        let n = self.nodes[node];
        let mut mass = 0.0;
        let mut com = [0.0f64; 3];
        if n.body >= 0 {
            let b = &tagged
                .iter()
                .find(|(id, _)| *id == n.body)
                .expect("leaf id present in body set")
                .1;
            // Aggregate leaves from the depth cap: weight by count.
            let w = n.count as f64;
            mass += b.mass * w;
            for k in 0..3 {
                com[k] += b.pos[k] * b.mass * w;
            }
        }
        for oct in 0..8 {
            let c = n.children[oct];
            if c >= 0 {
                let (m, cm) = self.summarize_tagged(c as usize, tagged);
                mass += m;
                for k in 0..3 {
                    com[k] += cm[k] * m;
                }
            }
        }
        if mass > 0.0 {
            for k in 0..3 {
                com[k] /= mass;
            }
        }
        let node_ref = &mut self.nodes[node];
        node_ref.mass = mass;
        node_ref.com = com;
        (mass, com)
    }

    /// Barnes-Hut acceleration at `pos`, excluding `self_body` if it
    /// is encountered as a singleton leaf.
    pub fn accel(&self, pos: &[f64; 3], self_body: i64, theta: f64) -> [f64; 3] {
        let mut acc = [0.0f64; 3];
        if self.nodes.is_empty() {
            return acc;
        }
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            let n = &self.nodes[node];
            if n.count == 0 || n.mass == 0.0 {
                continue;
            }
            if n.count == 1 {
                if n.body == self_body {
                    continue;
                }
                let a = accel_from(pos, &n.com, n.mass);
                for k in 0..3 {
                    acc[k] += a[k];
                }
                continue;
            }
            let dx = n.com[0] - pos[0];
            let dy = n.com[1] - pos[1];
            let dz = n.com[2] - pos[2];
            let dist = (dx * dx + dy * dy + dz * dz).sqrt();
            if (2.0 * n.half) / (dist + 1e-12) < theta {
                let a = accel_from(pos, &n.com, n.mass);
                for k in 0..3 {
                    acc[k] += a[k];
                }
            } else {
                let mut any_child = false;
                for oct in (0..8).rev() {
                    let c = n.children[oct];
                    if c >= 0 {
                        stack.push(c as usize);
                        any_child = true;
                    }
                }
                if !any_child {
                    // Aggregate leaf (depth cap): treat as point mass.
                    if n.body != self_body {
                        let a = accel_from(pos, &n.com, n.mass);
                        for k in 0..3 {
                            acc[k] += a[k];
                        }
                    }
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barneshut::body::{cluster, direct_accels};

    #[test]
    fn tree_counts_all_bodies() {
        let bodies = cluster(100, 5);
        let tree = Octree::build(&bodies);
        assert_eq!(tree.nodes[0].count as usize, 100);
        let total_mass: f64 = bodies.iter().map(|b| b.mass).sum();
        assert!((tree.nodes[0].mass - total_mass).abs() < 1e-9);
    }

    #[test]
    fn com_matches_weighted_mean() {
        let bodies = cluster(64, 9);
        let tree = Octree::build(&bodies);
        let m: f64 = bodies.iter().map(|b| b.mass).sum();
        for k in 0..3 {
            let want: f64 = bodies.iter().map(|b| b.pos[k] * b.mass).sum::<f64>() / m;
            assert!((tree.nodes[0].com[k] - want).abs() < 1e-9);
        }
    }

    #[test]
    fn low_theta_matches_direct_summation() {
        let bodies = cluster(80, 2);
        let tree = Octree::build(&bodies);
        let direct = direct_accels(&bodies);
        for (i, b) in bodies.iter().enumerate() {
            // theta -> 0 forces full traversal: exact (up to fp order).
            let a = tree.accel(&b.pos, i as i64, 1e-9);
            for k in 0..3 {
                assert!(
                    (a[k] - direct[i][k]).abs() < 1e-6,
                    "body {i} axis {k}: {} vs {}",
                    a[k],
                    direct[i][k]
                );
            }
        }
    }

    #[test]
    fn moderate_theta_approximates_direct() {
        let bodies = cluster(200, 7);
        let tree = Octree::build(&bodies);
        let direct = direct_accels(&bodies);
        // Normalize by the mean force magnitude: bodies near the
        // center of mass have near-zero net force, which would blow up
        // a per-body relative metric.
        let mean_mag: f64 = direct
            .iter()
            .map(|f| f.iter().map(|x| x * x).sum::<f64>().sqrt())
            .sum::<f64>()
            / direct.len() as f64;
        let mut worst = 0.0f64;
        for (i, b) in bodies.iter().enumerate() {
            let a = tree.accel(&b.pos, i as i64, 0.5);
            let err: f64 = (0..3)
                .map(|k| (a[k] - direct[i][k]).powi(2))
                .sum::<f64>()
                .sqrt();
            worst = worst.max(err / mean_mag);
        }
        assert!(worst < 0.05, "normalized force error {worst}");
    }

    #[test]
    fn tree_is_portable() {
        use jade_transport::{roundtrip_same, DataLayout};
        let tree = Octree::build(&cluster(30, 1));
        for l in DataLayout::all_presets() {
            assert_eq!(roundtrip_same(&tree, l), tree);
        }
    }

    #[test]
    fn coincident_bodies_do_not_recurse_forever() {
        let b = Body { pos: [0.5; 3], vel: [0.0; 3], mass: 1.0 };
        let bodies = vec![b; 10];
        let tree = Octree::build(&bodies);
        assert_eq!(tree.nodes[0].count, 10);
        // Force at a displaced point is finite.
        let a = tree.accel(&[0.6, 0.5, 0.5], NONE, 0.5);
        assert!(a.iter().all(|x| x.is_finite()));
    }
}
