//! The Jade LWS: parallelize the O(n²) pairwise phase (§7.3).
//!
//! The decomposition is the replicated-data, owner-computes scheme
//! distributed molecular dynamics uses (and that makes the coarse
//! tasks the paper's port needs): molecule positions are one
//! read-shared object that the runtime replicates to every machine;
//! each `Forces(k)` task *owns* an interleaved block of molecules,
//! computes every interaction involving them, and writes only its own
//! block's force object. Newton's-third-law partner writes are traded
//! for recomputation so there is no n-sized force reduction on the
//! network — only the scalar per-task potential energies are reduced.
//! The O(n) reduction and integration phases run as single tasks,
//! "the O(n) phases serially" as in the paper.
//!
//! The accumulation order into each molecule's force is identical to
//! the serial program's (ascending partner index with exact
//! antisymmetry), so positions evolve **bitwise identically** to the
//! plain serial code.

use jade_core::prelude::*;

use super::model::{block_len, pair_interaction, WaterSystem, PAIR_COST};

/// Shared-object handles for one LWS run.
#[derive(Clone)]
pub struct LwsHandles {
    /// Molecule positions (read by every force task).
    pub pos: Shared<Vec<[f64; 3]>>,
    /// Molecule velocities (integration only).
    pub vel: Shared<Vec<[f64; 3]>>,
    /// Per-block force arrays: block `k` holds forces for molecules
    /// `k, k+B, k+2B, ...` (interleaved for load balance).
    pub forces: Vec<Shared<Vec<[f64; 3]>>>,
    /// Per-task partial potential energies (pairs counted once).
    pub penergy: Vec<Shared<f64>>,
    /// Per-step total potential energies, appended by `Reduce`.
    pub energy_log: Shared<Vec<f64>>,
    /// Periodic box size.
    pub boxl: f64,
}

/// Allocate the shared objects for a system decomposed into `blocks`
/// force tasks per step.
pub fn upload<C: JadeCtx>(ctx: &mut C, sys: &WaterSystem, blocks: usize) -> LwsHandles {
    let n = sys.n();
    LwsHandles {
        pos: ctx.create_named("positions", sys.pos.clone()),
        vel: ctx.create_named("velocities", sys.vel.clone()),
        forces: (0..blocks)
            .map(|k| {
                ctx.create_named(&format!("forces{k}"), vec![[0.0f64; 3]; block_len(n, blocks, k)])
            })
            .collect(),
        penergy: (0..blocks)
            .map(|k| ctx.create_named(&format!("penergy{k}"), 0.0f64))
            .collect(),
        energy_log: ctx.create_named("energy_log", Vec::new()),
        boxl: sys.boxl,
    }
}

/// Create the tasks for one timestep: `blocks` owner-computes force
/// tasks, one (scalar) reduction, one integration.
///
/// Each task attaches a portable body IR over the kernels in
/// [`crate::kernels`] (same arithmetic as the closures, bit for bit).
/// Block geometry and the timestep ride as IR literals; a task whose
/// kernel produces several objects' values in one output (forces +
/// energy, positions + velocities) scatters it with `id` steps over
/// temporary slices.
pub fn timestep<C: JadeCtx>(ctx: &mut C, h: &LwsHandles, n: usize, dt: f64) {
    let blocks = h.forces.len();
    let boxl = h.boxl;
    // O(n²) pairwise phase.
    for k in 0..blocks {
        let pos = h.pos;
        let fk = h.forces[k];
        let pe = h.penergy[k];
        let owned = block_len(n, blocks, k);
        // decl 0 = pos (rd), decl 1 = forces (wr), decl 2 = energy (wr).
        let ir = TaskBodyIr::new()
            .step(
                "lws_forces",
                vec![
                    IrSrc::Lit(vec![k as f64, blocks as f64, owned as f64, boxl]),
                    IrSrc::Obj(0),
                ],
                IrDst::Tmp(0),
            )
            .step(
                "id",
                vec![IrSrc::TmpSlice { tmp: 0, start: 0, len: 3 * owned as u32 }],
                IrDst::Obj(1),
            )
            .step(
                "id",
                vec![IrSrc::TmpSlice { tmp: 0, start: 3 * owned as u32, len: 1 }],
                IrDst::Obj(2),
            );
        ctx.withonly_ir(
            &format!("Forces({k})"),
            |s| {
                s.rd(pos);
                s.wr(fk);
                s.wr(pe);
            },
            ir,
            move |c| {
                // Each owned molecule interacts with all n−1 others.
                c.charge((owned * (n.saturating_sub(1))) as f64 * PAIR_COST);
                let pos = c.rd(&pos);
                let mut out = c.wr(&fk);
                let n = pos.len();
                let mut energy = 0.0;
                for (slot, f) in out.iter_mut().enumerate() {
                    let i = k + slot * blocks;
                    let mut acc = [0.0f64; 3];
                    for j in 0..n {
                        if j == i {
                            continue;
                        }
                        let (fij, e) = pair_interaction(&pos[i], &pos[j], boxl);
                        for d in 0..3 {
                            acc[d] += fij[d];
                        }
                        if j > i {
                            energy += e; // count each pair once
                        }
                    }
                    *f = acc;
                }
                drop(out);
                *c.wr(&pe) = energy;
            },
        );
    }
    // Scalar energy reduction (serial O(blocks) phase).
    {
        let energy_log = h.energy_log;
        let spec_pe = h.penergy.clone();
        let body_pe = h.penergy.clone();
        // decl 0 = energy_log (rd_wr), decls 1..=blocks = the partial
        // energies in block order (the closure's summation order).
        let mut rargs = vec![IrSrc::Lit(vec![blocks as f64])];
        rargs.extend((1..=blocks).map(|d| IrSrc::Obj(d as u32)));
        rargs.push(IrSrc::Obj(0));
        let ir = TaskBodyIr::new().step("lws_reduce", rargs, IrDst::Obj(0));
        ctx.withonly_ir(
            "Reduce",
            |s| {
                s.rd_wr(energy_log);
                for &p in &spec_pe {
                    s.rd(p);
                }
            },
            ir,
            move |c| {
                c.charge(body_pe.len() as f64 * 4.0);
                let mut energy = 0.0;
                for ek in &body_pe {
                    energy += *c.rd(ek);
                }
                c.wr(&energy_log).push(energy);
            },
        );
    }
    // Integration (serial O(n) phase).
    {
        let pos = h.pos;
        let vel = h.vel;
        let spec_forces = h.forces.clone();
        let body_forces = h.forces.clone();
        // decl 0 = pos, decl 1 = vel (both rd_wr), decls 2.. = the
        // per-block forces. One kernel emits pos'++vel'; two id steps
        // scatter the halves.
        let mut iargs = vec![IrSrc::Lit(vec![n as f64, blocks as f64, dt, boxl])];
        iargs.extend((0..blocks).map(|k| IrSrc::Obj(2 + k as u32)));
        iargs.push(IrSrc::Obj(0));
        iargs.push(IrSrc::Obj(1));
        let ir = TaskBodyIr::new()
            .step("lws_integrate", iargs, IrDst::Tmp(0))
            .step(
                "id",
                vec![IrSrc::TmpSlice { tmp: 0, start: 0, len: 3 * n as u32 }],
                IrDst::Obj(0),
            )
            .step(
                "id",
                vec![IrSrc::TmpSlice { tmp: 0, start: 3 * n as u32, len: 3 * n as u32 }],
                IrDst::Obj(1),
            );
        ctx.withonly_ir(
            "Integrate",
            |s| {
                s.rd_wr(pos);
                s.rd_wr(vel);
                for &f in &spec_forces {
                    s.rd(f);
                }
            },
            ir,
            move |c| {
                c.charge((n * 12) as f64);
                let blocks = body_forces.len();
                let mut flat = vec![[0.0f64; 3]; n];
                for (k, fk) in body_forces.iter().enumerate() {
                    for (slot, f) in c.rd(fk).iter().enumerate() {
                        flat[k + slot * blocks] = *f;
                    }
                }
                let mut p = c.wr(&pos);
                let mut v = c.wr(&vel);
                super::model::integrate(&mut p, &mut v, &flat, dt, boxl);
            },
        );
    }
}

/// Run `steps` timesteps of the Jade LWS; returns the per-step
/// potential energies and the final system state.
pub fn run_jade<C: JadeCtx>(
    ctx: &mut C,
    sys: &WaterSystem,
    blocks: usize,
    steps: usize,
    dt: f64,
) -> (Vec<f64>, WaterSystem) {
    let n = sys.n();
    let blocks = blocks.clamp(1, n.max(1));
    let h = upload(ctx, sys, blocks);
    for _ in 0..steps {
        timestep(ctx, &h, n, dt);
    }
    let energies = ctx.rd(&h.energy_log).clone();
    let final_sys = WaterSystem {
        pos: ctx.rd(&h.pos).clone(),
        vel: ctx.rd(&h.vel).clone(),
        boxl: sys.boxl,
    };
    (energies, final_sys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lws::serial;

    #[test]
    fn jade_lws_positions_match_serial_bitwise() {
        let sys = WaterSystem::new(60, 9);
        let mut ref_sys = sys.clone();
        let ref_e = serial::run(&mut ref_sys, 3, 0.002);
        let ((jade_e, jade_sys), _) =
            jade_core::serial::run(|ctx| run_jade(ctx, &sys, 4, 3, 0.002));
        assert_eq!(jade_e.len(), 3);
        // Energies are summed in a different (per-block) order:
        // tolerance. Positions accumulate identically: bitwise.
        for (a, b) in jade_e.iter().zip(&ref_e) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        assert_eq!(jade_sys.pos, ref_sys.pos, "positions must be bitwise identical");
        assert_eq!(jade_sys.vel, ref_sys.vel);
    }

    #[test]
    fn block_count_does_not_change_positions() {
        let sys = WaterSystem::new(40, 2);
        let ((e2, s2), _) = jade_core::serial::run(|ctx| run_jade(ctx, &sys, 2, 2, 0.002));
        let ((e8, s8), _) = jade_core::serial::run(|ctx| run_jade(ctx, &sys, 8, 2, 0.002));
        assert_eq!(s2.pos, s8.pos);
        for (a, b) in e2.iter().zip(&e8) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn task_count_per_step() {
        let sys = WaterSystem::new(30, 1);
        let (_, stats) = jade_core::serial::run(|ctx| run_jade(ctx, &sys, 5, 2, 0.002));
        // Per step: 5 force tasks + reduce + integrate.
        assert_eq!(stats.tasks_created, 2 * (5 + 2));
    }

    #[test]
    fn interleaved_blocks_cover_all_molecules() {
        for (n, b) in [(10, 3), (12, 4), (7, 7), (5, 1)] {
            let total: usize = (0..b).map(|k| block_len(n, b, k)).sum();
            assert_eq!(total, n, "n={n} blocks={b}");
        }
    }
}
