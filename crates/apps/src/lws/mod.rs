//! LWS — the Liquid Water Simulation (§7.3), the application whose
//! running times and speedups on the iPSC/860, Mica and DASH are the
//! paper's Figures 9 and 10.

pub mod jade;
pub mod model;
pub mod serial;

pub use jade::{run_jade, timestep, upload, LwsHandles};
pub use model::{WaterSystem, CUTOFF, PAIR_COST};
