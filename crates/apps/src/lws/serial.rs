//! Serial LWS: the sequential program the Jade version annotates.

use super::model::{integrate, pair_interaction, WaterSystem};

/// Compute all pairwise forces and the total potential energy, O(n²).
pub fn compute_forces(sys: &WaterSystem) -> (Vec<[f64; 3]>, f64) {
    let n = sys.n();
    let mut forces = vec![[0.0f64; 3]; n];
    let mut energy = 0.0;
    for i in 0..n {
        for j in i + 1..n {
            let (f, e) = pair_interaction(&sys.pos[i], &sys.pos[j], sys.boxl);
            for k in 0..3 {
                forces[i][k] += f[k];
                forces[j][k] -= f[k];
            }
            energy += e;
        }
    }
    (forces, energy)
}

/// Run `steps` timesteps serially; returns the per-step potential
/// energies (the observable used for cross-executor comparisons).
pub fn run(sys: &mut WaterSystem, steps: usize, dt: f64) -> Vec<f64> {
    let mut energies = Vec::with_capacity(steps);
    for _ in 0..steps {
        let (forces, energy) = compute_forces(sys);
        let boxl = sys.boxl;
        integrate(&mut sys.pos, &mut sys.vel, &forces, dt, boxl);
        energies.push(energy);
    }
    energies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forces_sum_to_zero() {
        let sys = WaterSystem::new(64, 3);
        let (forces, _) = compute_forces(&sys);
        for k in 0..3 {
            let total: f64 = forces.iter().map(|f| f[k]).sum();
            assert!(total.abs() < 1e-9, "net force component {k} = {total}");
        }
    }

    #[test]
    fn timesteps_are_deterministic() {
        let mut a = WaterSystem::new(50, 5);
        let mut b = WaterSystem::new(50, 5);
        let ea = run(&mut a, 3, 0.001);
        let eb = run(&mut b, 3, 0.001);
        assert_eq!(ea, eb);
        assert_eq!(a.pos, b.pos);
    }

    #[test]
    fn energy_changes_as_system_evolves() {
        let mut sys = WaterSystem::new(50, 5);
        let e = run(&mut sys, 4, 0.005);
        assert!(e.windows(2).any(|w| w[0] != w[1]), "energies never changed: {e:?}");
    }
}
