//! The liquid-water-simulation model.
//!
//! LWS derives from the Perfect Club benchmark MDG: it "evaluates
//! forces and potentials in a system of water molecules in the liquid
//! state", and "for the problem sizes that we are running, almost all
//! of the computation takes place inside the O(n²) phase that
//! determines the pairwise interactions of the n molecules" (§7.3).
//!
//! We model each molecule as a point site interacting through a
//! truncated, smoothly shifted Lennard-Jones potential (the original
//! MDG uses 3-site water; the paper's parallel structure — an O(n²)
//! all-pairs phase over read-shared positions with per-task partial
//! force accumulation — is independent of the site chemistry, and
//! that structure is what Figures 9/10 measure).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Abstract work units (≈flops) charged per molecular pair
/// interaction. Calibrated to the Perfect Club MDG's water-water
/// interaction (9 site-site distances, square roots, erfc-style
/// terms), which is several hundred flops per molecular pair.
pub const PAIR_COST: f64 = 400.0;

/// Interaction cutoff radius (in reduced units).
pub const CUTOFF: f64 = 2.5;

/// One simulated system of molecules.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterSystem {
    /// Molecule positions.
    pub pos: Vec<[f64; 3]>,
    /// Molecule velocities.
    pub vel: Vec<[f64; 3]>,
    /// Periodic box edge length.
    pub boxl: f64,
}

impl WaterSystem {
    /// Number of molecules.
    pub fn n(&self) -> usize {
        self.pos.len()
    }

    /// Build a system of `n` molecules on a perturbed cubic lattice at
    /// liquid-ish density, with small random velocities. Deterministic
    /// in `seed`.
    pub fn new(n: usize, seed: u64) -> WaterSystem {
        let mut rng = StdRng::seed_from_u64(seed);
        let cells = (n as f64).cbrt().ceil() as usize;
        let boxl = cells as f64 * 1.2;
        let mut pos = Vec::with_capacity(n);
        'fill: for x in 0..cells {
            for y in 0..cells {
                for z in 0..cells {
                    if pos.len() == n {
                        break 'fill;
                    }
                    let jitter = |r: &mut StdRng| r.gen_range(-0.05..0.05);
                    pos.push([
                        (x as f64 + 0.5) * 1.2 + jitter(&mut rng),
                        (y as f64 + 0.5) * 1.2 + jitter(&mut rng),
                        (z as f64 + 0.5) * 1.2 + jitter(&mut rng),
                    ]);
                }
            }
        }
        let vel = (0..n)
            .map(|_| {
                [
                    rng.gen_range(-0.1..0.1),
                    rng.gen_range(-0.1..0.1),
                    rng.gen_range(-0.1..0.1),
                ]
            })
            .collect();
        WaterSystem { pos, vel, boxl }
    }
}

/// Size of interleaved block `k` when `n` molecules are dealt into
/// `blocks` owner-computes blocks (molecule `i` belongs to block
/// `i % blocks`). Shared by the task generator and the integration
/// kernel, which must agree on the gather geometry.
pub fn block_len(n: usize, blocks: usize, k: usize) -> usize {
    if k < n % blocks {
        n / blocks + 1
    } else {
        n / blocks
    }
}

/// Minimum-image displacement from `a` to `b` in a periodic box.
#[inline]
pub fn min_image(a: &[f64; 3], b: &[f64; 3], boxl: f64) -> [f64; 3] {
    let mut d = [0.0; 3];
    for k in 0..3 {
        let mut x = b[k] - a[k];
        x -= (x / boxl).round() * boxl;
        d[k] = x;
    }
    d
}

/// Lennard-Jones pair interaction with cutoff: returns the force on
/// molecule `i` (negate for `j`) and the pair potential energy.
#[inline]
pub fn pair_interaction(pi: &[f64; 3], pj: &[f64; 3], boxl: f64) -> ([f64; 3], f64) {
    let d = min_image(pi, pj, boxl);
    let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
    if r2 >= CUTOFF * CUTOFF || r2 == 0.0 {
        return ([0.0; 3], 0.0);
    }
    let inv_r2 = 1.0 / r2;
    let s6 = inv_r2 * inv_r2 * inv_r2;
    let s12 = s6 * s6;
    // F = 24ε(2 s12 − s6)/r² · d, pointing from j toward i when
    // repulsive (d points i→j, so the force on i is −f·d).
    let fmag = 24.0 * (2.0 * s12 - s6) * inv_r2;
    let force = [-fmag * d[0], -fmag * d[1], -fmag * d[2]];
    let energy = 4.0 * (s12 - s6);
    (force, energy)
}

/// Euler integration step (the paper runs the O(n) phases serially;
/// we do too).
pub fn integrate(pos: &mut [[f64; 3]], vel: &mut [[f64; 3]], forces: &[[f64; 3]], dt: f64, boxl: f64) {
    for i in 0..pos.len() {
        for k in 0..3 {
            vel[i][k] += forces[i][k] * dt;
            pos[i][k] += vel[i][k] * dt;
            // Wrap into the box.
            pos[i][k] -= (pos[i][k] / boxl).floor() * boxl;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_is_deterministic_in_seed() {
        let a = WaterSystem::new(100, 7);
        let b = WaterSystem::new(100, 7);
        assert_eq!(a, b);
        let c = WaterSystem::new(100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn forces_are_antisymmetric() {
        let s = WaterSystem::new(20, 1);
        let (fij, e1) = pair_interaction(&s.pos[0], &s.pos[1], s.boxl);
        let (fji, e2) = pair_interaction(&s.pos[1], &s.pos[0], s.boxl);
        for k in 0..3 {
            assert!((fij[k] + fji[k]).abs() < 1e-12);
        }
        assert_eq!(e1, e2);
    }

    #[test]
    fn cutoff_zeroes_far_pairs() {
        let a = [0.0, 0.0, 0.0];
        let b = [3.0, 0.0, 0.0];
        let (f, e) = pair_interaction(&a, &b, 100.0);
        assert_eq!(f, [0.0; 3]);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn close_pairs_repel() {
        let a = [0.0, 0.0, 0.0];
        let b = [0.9, 0.0, 0.0];
        let (f, e) = pair_interaction(&a, &b, 100.0);
        assert!(f[0] < 0.0, "force on a points away from b (negative x)");
        assert!(e > 0.0, "overlapping LJ pair has positive energy");
    }

    #[test]
    fn min_image_wraps() {
        let a = [0.1, 0.0, 0.0];
        let b = [9.9, 0.0, 0.0];
        let d = min_image(&a, &b, 10.0);
        assert!((d[0] - (-0.2)).abs() < 1e-12);
    }

    #[test]
    fn integrate_moves_and_wraps() {
        let mut pos = vec![[9.95f64, 0.0, 0.0]];
        let mut vel = vec![[1.0f64, 0.0, 0.0]];
        let forces = vec![[0.0f64; 3]];
        integrate(&mut pos, &mut vel, &forces, 0.1, 10.0);
        assert!(pos[0][0] < 10.0 && pos[0][0] >= 0.0);
    }
}
