//! # jade-apps — the applications of the Jade paper
//!
//! Every application from §3 and §7 of *Heterogeneous Parallel
//! Programming in Jade*, written once against the generic
//! [`jade_core::ctx::JadeCtx`] interface and therefore runnable
//! without modification on the serial elision, the shared-memory
//! thread pool (`jade-threads`) and the simulated heterogeneous
//! message-passing platforms (`jade-sim`) — reproducing the paper's
//! portability claim.
//!
//! * [`cholesky`] — sparse Cholesky factorization (§3), supernodes
//!   (§3.2) and pipelined back substitution (§4.2);
//! * [`lws`] — the Liquid Water Simulation whose running times and
//!   speedups are the paper's Figures 9 and 10 (§7.3);
//! * [`pmake`] — parallel `make` (§7.1);
//! * [`video`] — the HRV digital-image-processing pipeline (§7.2);
//! * [`barneshut`] — the Barnes-Hut N-body kernel (§7).

// The numeric kernels iterate coordinate axes (`for k in 0..3`) and
// matrix rows by index, mirroring the math they implement.
#![allow(clippy::needless_range_loop)]

pub mod barneshut;
pub mod cholesky;
pub mod kernels;
pub mod lws;
pub mod pmake;
pub mod video;
