//! Back substitution with and without pipelining — the paper's §4.1
//! and §4.2.
//!
//! Composed after the factorization, a back-substitution task reads
//! *all* the factor's columns. Declared with plain `rd`, it cannot
//! start until the entire factorization finishes — "this wastes
//! concurrency, since it should be possible to pipeline the two
//! computations." Declared with `df_rd` and converted column by
//! column with `with { rd(c[j].column) } cont;`, the task starts
//! immediately and consumes each column as soon as it reaches its
//! final value, releasing it again with `no_rd`.

use jade_core::prelude::*;

use super::jade::JadeMatrix;

/// How the substitution task declares its column accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubstMode {
    /// Immediate `rd` on every column: synchronizes at the task
    /// boundary (waits for the whole factorization).
    TaskBoundary,
    /// `df_rd` plus per-column `with-cont` conversion/retirement: the
    /// §4.2 pipeline.
    Pipelined,
}

/// Create the forward-substitution task for `L·y = b` over a factored
/// (or still factoring!) [`JadeMatrix`]. Returns the handle of the
/// shared solution vector; read it in the main task to collect `y`.
pub fn forward_subst_task<C: JadeCtx>(
    ctx: &mut C,
    jm: &JadeMatrix,
    b: &[f64],
    mode: SubstMode,
) -> Shared<Vec<f64>> {
    let n = jm.pattern.n;
    assert_eq!(b.len(), n);
    let x = ctx.create_named("rhs", b.to_vec());
    let pat = jm.pat;
    let spec_cols = jm.cols.clone();
    let body_cols = jm.cols.clone();
    ctx.withonly(
        "backsubst",
        |s| {
            s.rd(pat);
            s.rd_wr(x);
            for &c in &spec_cols {
                match mode {
                    SubstMode::TaskBoundary => s.rd(c),
                    SubstMode::Pipelined => s.df_rd(c),
                };
            }
        },
        move |c| {
            for (j, &col) in body_cols.iter().enumerate() {
                if mode == SubstMode::Pipelined {
                    // with { rd(c[j].column); } cont;
                    c.with_cont(|b| {
                        b.to_rd(col);
                    });
                }
                {
                    let colv = c.rd(&col);
                    let pat = c.rd(&pat);
                    let mut xw = c.wr(&x);
                    c.charge((2 * pat[j].len() + 12) as f64);
                    xw[j] /= colv[0];
                    let xj = xw[j];
                    for (k, &t) in pat[j].iter().enumerate() {
                        xw[t] -= colv[k + 1] * xj;
                    }
                }
                if mode == SubstMode::Pipelined {
                    // with { no_rd(c[j].column); } cont;
                    c.with_cont(|b| {
                        b.no_rd(col);
                    });
                }
            }
        },
    );
    x
}

/// Factor and forward-substitute in one composed program, the way
/// §4.2 composes `factor` and `backsubst`.
pub fn factor_then_subst<C: JadeCtx>(
    ctx: &mut C,
    a: &super::matrix::SparseSym,
    b: &[f64],
    mode: SubstMode,
) -> Vec<f64> {
    let jm = super::jade::upload(ctx, a);
    super::jade::factor_jade(ctx, &jm);
    let x = forward_subst_task(ctx, &jm, b, mode);
    ctx.rd(&x).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::matrix::SparseSym;
    use crate::cholesky::serial;

    #[test]
    fn both_modes_match_serial_substitution() {
        let a = SparseSym::random_spd(20, 3, 5);
        let mut l = a.clone();
        serial::factor(&mut l);
        let b: Vec<f64> = (0..20).map(|i| (i as f64 * 0.7).cos()).collect();
        let want = serial::forward_subst(&l, &b);
        for mode in [SubstMode::TaskBoundary, SubstMode::Pipelined] {
            let (got, _) =
                jade_core::serial::run(|ctx| factor_then_subst(ctx, &a, &b, mode));
            assert_eq!(got, want, "mode {mode:?}");
        }
    }

    #[test]
    fn pipelined_mode_uses_with_cont() {
        let a = SparseSym::random_spd(10, 2, 2);
        let b = vec![1.0; 10];
        let (_, stats) = jade_core::serial::run(|ctx| {
            factor_then_subst(ctx, &a, &b, SubstMode::Pipelined)
        });
        // One to_rd and one no_rd per column.
        assert_eq!(stats.with_conts, 20);
        let (_, stats2) = jade_core::serial::run(|ctx| {
            factor_then_subst(ctx, &a, &b, SubstMode::TaskBoundary)
        });
        assert_eq!(stats2.with_conts, 0);
    }
}
