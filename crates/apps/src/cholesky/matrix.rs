//! Sparse symmetric matrix storage (the paper's Figures 1/2/5).
//!
//! The factor works on the lower triangle in column-compressed form:
//! each column `i` stores its diagonal followed by the values at the
//! below-diagonal rows listed (sorted) in the pattern. This mirrors
//! the paper's `column_data { start_row, column }` plus `row_indices`
//! structure, with one value vector per column — the unit of data
//! decomposition the Jade program declares accesses on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The sparsity pattern of a lower-triangular matrix: for every
/// column, the sorted list of below-diagonal row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePattern {
    /// Matrix dimension.
    pub n: usize,
    /// `rows[i]` = sorted below-diagonal row indices of column `i`.
    pub rows: Vec<Vec<usize>>,
}

impl SparsePattern {
    /// Construct from per-column row lists (sorted, deduplicated,
    /// validated to be strictly below the diagonal).
    pub fn new(n: usize, mut rows: Vec<Vec<usize>>) -> Self {
        assert_eq!(rows.len(), n);
        for (i, r) in rows.iter_mut().enumerate() {
            r.sort_unstable();
            r.dedup();
            assert!(r.iter().all(|&t| t > i && t < n), "row out of range in column {i}");
        }
        SparsePattern { n, rows }
    }

    /// Number of stored below-diagonal entries.
    pub fn nnz(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }

    /// Compute the *filled* pattern: the pattern of the Cholesky
    /// factor `L`. Uses the elimination-tree identity — merging each
    /// column's below-diagonal pattern (minus its first row) into the
    /// column of that first row, in ascending column order — which
    /// yields exactly the fill-in of the factorization.
    pub fn with_fill(&self) -> SparsePattern {
        let mut rows = self.rows.clone();
        for i in 0..self.n {
            if let Some(&parent) = rows[i].first() {
                let push: Vec<usize> = rows[i][1..].to_vec();
                let dst = &mut rows[parent];
                for t in push {
                    if let Err(pos) = dst.binary_search(&t) {
                        dst.insert(pos, t);
                    }
                }
            }
        }
        SparsePattern { n: self.n, rows }
    }

    /// Position of row `t` within column `i`'s value vector (0 is the
    /// diagonal, 1.. are the below-diagonal entries in pattern order).
    pub fn value_index(&self, i: usize, t: usize) -> Option<usize> {
        self.rows[i].binary_search(&t).ok().map(|p| p + 1)
    }
}

/// A sparse symmetric positive-definite matrix (lower triangle).
#[derive(Debug, Clone, PartialEq)]
pub struct SparseSym {
    /// The (filled) sparsity pattern.
    pub pattern: SparsePattern,
    /// `cols[i][0]` is the diagonal of column `i`; `cols[i][k+1]` is
    /// the value at row `pattern.rows[i][k]`.
    pub cols: Vec<Vec<f64>>,
}

impl SparseSym {
    /// Dimension.
    pub fn n(&self) -> usize {
        self.pattern.n
    }

    /// Zero matrix with the given pattern.
    pub fn zero(pattern: SparsePattern) -> Self {
        let cols = pattern.rows.iter().map(|r| vec![0.0; r.len() + 1]).collect();
        SparseSym { pattern, cols }
    }

    /// Value at `(t, i)` with `t >= i` (lower triangle), 0 if not
    /// stored.
    pub fn get(&self, t: usize, i: usize) -> f64 {
        assert!(t >= i);
        if t == i {
            self.cols[i][0]
        } else {
            self.pattern.value_index(i, t).map_or(0.0, |p| self.cols[i][p])
        }
    }

    /// Dense reconstruction of the full symmetric matrix (tests only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let n = self.n();
        let mut out = vec![vec![0.0; n]; n];
        for i in 0..n {
            out[i][i] = self.cols[i][0];
            for (k, &t) in self.pattern.rows[i].iter().enumerate() {
                out[t][i] = self.cols[i][k + 1];
                out[i][t] = self.cols[i][k + 1];
            }
        }
        out
    }

    /// Multiply the matrix by a dense vector (tests/benchmarks).
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        let mut y = vec![0.0; n];
        for i in 0..n {
            y[i] += self.cols[i][0] * x[i];
            for (k, &t) in self.pattern.rows[i].iter().enumerate() {
                let v = self.cols[i][k + 1];
                y[t] += v * x[i];
                y[i] += v * x[t];
            }
        }
        y
    }

    /// Generate a random sparse SPD matrix: a random pattern with the
    /// requested average below-diagonal entries per column, closed
    /// under factorization fill, with diagonally dominant values.
    pub fn random_spd(n: usize, avg_nnz_per_col: usize, seed: u64) -> SparseSym {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, row) in rows.iter_mut().enumerate().take(n) {
            let remaining = n - i - 1;
            let k = avg_nnz_per_col.min(remaining);
            for _ in 0..k {
                if remaining == 0 {
                    break;
                }
                let t = i + 1 + rng.gen_range(0..remaining);
                if !row.contains(&t) {
                    row.push(t);
                }
            }
        }
        let base = SparsePattern::new(n, rows);
        let pattern = base.with_fill();
        let mut m = SparseSym::zero(pattern);
        // Random symmetric values, then make the diagonal dominant so
        // the matrix is comfortably positive definite.
        let mut row_sums = vec![0.0f64; n];
        for i in 0..n {
            for k in 0..m.pattern.rows[i].len() {
                let v: f64 = rng.gen_range(-1.0..1.0);
                m.cols[i][k + 1] = v;
                let t = m.pattern.rows[i][k];
                row_sums[i] += v.abs();
                row_sums[t] += v.abs();
            }
        }
        for i in 0..n {
            m.cols[i][0] = row_sums[i] + 1.0 + rng.gen_range(0.0..1.0);
        }
        m
    }

    /// The paper's small running example: a 5-column matrix whose
    /// dynamic task graph matches Figure 4 (column 0 updates columns
    /// 3 and 4; column 1 updates column 2; ...).
    pub fn paper_example() -> SparseSym {
        // Column 0 has below-diagonal entries at rows 3 and 4;
        // column 1 at row 2; column 2 at row 4; column 3 at row 4.
        let base = SparsePattern::new(
            5,
            vec![vec![3, 4], vec![2], vec![4], vec![4], vec![]],
        );
        let pattern = base.with_fill();
        let mut m = SparseSym::zero(pattern);
        for i in 0..5 {
            m.cols[i][0] = 10.0 + i as f64;
            for k in 0..m.pattern.rows[i].len() {
                m.cols[i][k + 1] = 1.0 / (1.0 + i as f64 + k as f64);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_adds_expected_entries() {
        // Column 0 hits rows 1 and 3 -> eliminating column 0 connects
        // rows 1 and 3, so column 1 gains row 3.
        let p = SparsePattern::new(4, vec![vec![1, 3], vec![], vec![], vec![]]);
        let f = p.with_fill();
        assert_eq!(f.rows[1], vec![3]);
    }

    #[test]
    fn fill_is_idempotent() {
        let p = SparsePattern::new(
            6,
            vec![vec![2, 4], vec![3, 5], vec![4], vec![5], vec![5], vec![]],
        );
        let f = p.with_fill();
        assert_eq!(f.with_fill(), f);
    }

    #[test]
    fn value_index_lookup() {
        let p = SparsePattern::new(4, vec![vec![1, 3], vec![], vec![], vec![]]);
        assert_eq!(p.value_index(0, 1), Some(1));
        assert_eq!(p.value_index(0, 3), Some(2));
        assert_eq!(p.value_index(0, 2), None);
    }

    #[test]
    fn dense_roundtrip_and_symmetry() {
        let m = SparseSym::random_spd(8, 2, 42);
        let d = m.to_dense();
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(d[i][j], d[j][i]);
            }
        }
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = SparseSym::random_spd(10, 3, 7);
        let x: Vec<f64> = (0..10).map(|i| (i as f64) - 4.5).collect();
        let d = m.to_dense();
        let dense_y: Vec<f64> =
            d.iter().map(|row| row.iter().zip(&x).map(|(a, b)| a * b).sum()).collect();
        let y = m.mul_vec(&x);
        for (a, b) in y.iter().zip(&dense_y) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn random_spd_is_positive_definite_ish() {
        // Diagonal dominance => positive definite; spot-check xᵀAx > 0.
        let m = SparseSym::random_spd(20, 3, 1);
        let x: Vec<f64> = (0..20).map(|i| ((i * 7919) % 13) as f64 - 6.0).collect();
        let y = m.mul_vec(&x);
        let q: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!(q > 0.0);
    }

    #[test]
    fn paper_example_pattern_matches_figure4() {
        let m = SparseSym::paper_example();
        assert_eq!(m.pattern.rows[0], vec![3, 4]);
        assert_eq!(m.pattern.rows[1], vec![2]);
        // Fill closes the pattern (3,4 both present beyond col 0).
        assert!(m.pattern.rows[3].contains(&4));
    }
}
