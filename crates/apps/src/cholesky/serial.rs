//! The serial sparse Cholesky factorization and triangular solves —
//! the sequential program the Jade version annotates (paper §3.1).

use super::matrix::SparseSym;

/// In-place right-looking internal update of column `i`: divide by
/// the square root of the diagonal (paper §3.1: "this update divides
/// the column by the square root of its diagonal").
pub fn internal_update(cols: &mut [Vec<f64>], i: usize) {
    let d = cols[i][0].sqrt();
    assert!(d.is_finite() && d > 0.0, "matrix not positive definite at column {i}");
    for v in cols[i].iter_mut() {
        *v /= d;
    }
}

/// Right-looking external update: subtract the outer-product
/// contribution of (final) column `i` from column `j`, where `j` is
/// one of column `i`'s below-diagonal rows. `rows_i` is column `i`'s
/// row pattern; `rows_j` column `j`'s.
pub fn external_update(
    col_j: &mut [f64],
    col_i: &[f64],
    rows_i: &[usize],
    rows_j: &[usize],
    j: usize,
) {
    let ji = rows_i.binary_search(&j).expect("j must be a row of column i");
    let l_ji = col_i[ji + 1];
    // Diagonal of column j.
    col_j[0] -= l_ji * l_ji;
    // Entries below j that columns i and j share. The factor pattern
    // is closed under fill, so every row of i beyond j appears in j.
    for (k, &t) in rows_i.iter().enumerate().skip(ji + 1) {
        let l_ti = col_i[k + 1];
        let pos = rows_j.binary_search(&t).expect("fill-closed pattern") + 1;
        col_j[pos] -= l_ji * l_ti;
    }
}

/// Serial factorization: `A = L·Lᵀ` computed in place; the input's
/// column vectors become the factor's columns. This is the paper's
/// serial program of Figure 3.
pub fn factor(m: &mut SparseSym) {
    let n = m.n();
    for i in 0..n {
        internal_update(&mut m.cols, i);
        let rows_i = m.pattern.rows[i].clone();
        for &j in &rows_i {
            let (ci, cj) = split_two(&mut m.cols, i, j);
            external_update(cj, ci, &m.pattern.rows[i], &m.pattern.rows[j], j);
        }
    }
}

/// Borrow columns `i` and `j` (`i < j`) mutably at once.
pub(crate) fn split_two(cols: &mut [Vec<f64>], i: usize, j: usize) -> (&[f64], &mut [f64]) {
    assert!(i < j);
    let (a, b) = cols.split_at_mut(j);
    (&a[i], &mut b[0])
}

/// Forward substitution `L·y = b` (the paper's §4.1 back substitution
/// step reads the factor's columns left to right, which is what the
/// deferred-read pipeline exploits).
pub fn forward_subst(l: &SparseSym, b: &[f64]) -> Vec<f64> {
    let n = l.n();
    let mut y = b.to_vec();
    for j in 0..n {
        y[j] /= l.cols[j][0];
        for (k, &t) in l.pattern.rows[j].iter().enumerate() {
            y[t] -= l.cols[j][k + 1] * y[j];
        }
    }
    y
}

/// Backward substitution `Lᵀ·x = y`.
pub fn backward_subst(l: &SparseSym, y: &[f64]) -> Vec<f64> {
    let n = l.n();
    let mut x = y.to_vec();
    for j in (0..n).rev() {
        for (k, &t) in l.pattern.rows[j].iter().enumerate() {
            x[j] -= l.cols[j][k + 1] * x[t];
        }
        x[j] /= l.cols[j][0];
    }
    x
}

/// Full solve `A·x = b` given the factor `L`.
pub fn solve(l: &SparseSym, b: &[f64]) -> Vec<f64> {
    backward_subst(l, &forward_subst(l, b))
}

/// Flop-count cost of an internal update (used for `charge`).
pub fn internal_cost(col_len: usize) -> f64 {
    (col_len + 20) as f64
}

/// Flop-count cost of an external update from a column with `tail`
/// entries at-or-after the target row.
pub fn external_cost(tail: usize) -> f64 {
    (2 * tail + 10) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct_error(a: &SparseSym, l: &SparseSym) -> f64 {
        let n = a.n();
        let da = a.to_dense();
        let dl = l.to_dense();
        // L is stored symmetric by to_dense; take the lower triangle.
        let mut worst = 0.0f64;
        for r in 0..n {
            for c in 0..n {
                let mut v = 0.0;
                for k in 0..=r.min(c) {
                    let lrk = if k <= r { dl[r][k] } else { 0.0 };
                    let lck = if k <= c { dl[c][k] } else { 0.0 };
                    v += lrk * lck;
                }
                worst = worst.max((v - da[r][c]).abs());
            }
        }
        worst
    }

    #[test]
    fn factor_reconstructs_paper_example() {
        let a = SparseSym::paper_example();
        let mut l = a.clone();
        factor(&mut l);
        assert!(reconstruct_error(&a, &l) < 1e-10);
    }

    #[test]
    fn factor_reconstructs_random_matrices() {
        for seed in [1, 2, 3] {
            let a = SparseSym::random_spd(30, 3, seed);
            let mut l = a.clone();
            factor(&mut l);
            let err = reconstruct_error(&a, &l);
            assert!(err < 1e-9, "seed {seed}: reconstruction error {err}");
        }
    }

    #[test]
    fn solve_inverts_the_matrix() {
        let a = SparseSym::random_spd(25, 3, 9);
        let mut l = a.clone();
        factor(&mut l);
        let x_true: Vec<f64> = (0..25).map(|i| (i as f64 * 0.3).sin()).collect();
        let b = a.mul_vec(&x_true);
        let x = solve(&l, &b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "{got} vs {want}");
        }
    }

    #[test]
    fn forward_then_backward_substitution_consistent() {
        let a = SparseSym::random_spd(15, 2, 4);
        let mut l = a.clone();
        factor(&mut l);
        let b: Vec<f64> = (0..15).map(|i| 1.0 + i as f64).collect();
        let y = forward_subst(&l, &b);
        let x = backward_subst(&l, &y);
        let back = a.mul_vec(&x);
        for (got, want) in back.iter().zip(&b) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "positive definite")]
    fn indefinite_matrix_rejected() {
        let mut m = SparseSym::paper_example();
        m.cols[0][0] = -1.0;
        factor(&mut m);
    }

    #[test]
    fn costs_scale_with_sizes() {
        assert!(internal_cost(100) > internal_cost(10));
        assert!(external_cost(50) > external_cost(5));
    }
}
