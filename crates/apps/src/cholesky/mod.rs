//! Sparse Cholesky factorization — the paper's running example (§3).
//!
//! * [`matrix`] — the sparse symmetric storage of Figures 1/2/5, with
//!   symbolic fill so the factor's pattern is fixed up front;
//! * [`serial`] — the sequential factorization and triangular solves
//!   (the program Jade annotates);
//! * [`jade`] — the two-`withonly` parallel version of Figure 6;
//! * [`supernode`] — the §3.2 coarse-grain variant (supernode blocks
//!   as shared objects);
//! * [`backsubst`] — §4.1/§4.2: task-boundary vs `df_rd`-pipelined
//!   back substitution.

pub mod backsubst;
pub mod jade;
pub mod matrix;
pub mod serial;
pub mod supernode;

pub use backsubst::{factor_then_subst, forward_subst_task, SubstMode};
pub use jade::{download, factor_jade, factor_program, upload, JadeMatrix};
pub use matrix::{SparsePattern, SparseSym};
pub use supernode::{factor_super_program, supernodes, SuperMatrix};
