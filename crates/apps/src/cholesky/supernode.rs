//! Supernodal sparse Cholesky: the paper's §3.2 grain-size extension.
//!
//! "In the more complex algorithm, the task grain size is increased
//! further by aggregating adjacent columns into groups called
//! 'supernodes'." Adjacent columns with nested sparsity patterns are
//! grouped; each supernode's columns become **one** shared object, so
//! both the data decomposition and the task decomposition coarsen —
//! fewer, bigger tasks, less runtime overhead per flop.

use jade_core::prelude::*;
use std::ops::Range;

use super::matrix::{SparsePattern, SparseSym};
use super::serial::external_update;

/// Partition columns into supernodes: maximal runs of consecutive
/// columns where each column's below-diagonal pattern is exactly
/// `{i+1} ∪ rows(i+1)` — the classic fundamental-supernode criterion.
pub fn supernodes(pattern: &SparsePattern) -> Vec<Range<usize>> {
    let n = pattern.n;
    let mut out = Vec::new();
    let mut start = 0;
    for i in 0..n {
        let extend = i + 1 < n && {
            let ri = &pattern.rows[i];
            let rn = &pattern.rows[i + 1];
            ri.len() == rn.len() + 1
                && ri.first() == Some(&(i + 1))
                && ri[1..] == rn[..]
        };
        if !extend {
            out.push(start..i + 1);
            start = i + 1;
        }
    }
    out
}

/// Index of the supernode containing each column.
fn column_owner(sns: &[Range<usize>], n: usize) -> Vec<usize> {
    let mut owner = vec![0usize; n];
    for (s, r) in sns.iter().enumerate() {
        for i in r.clone() {
            owner[i] = s;
        }
    }
    owner
}

/// A matrix uploaded at supernode granularity: one shared object per
/// supernode holding that supernode's column vectors.
#[derive(Clone)]
pub struct SuperMatrix {
    /// Host pattern.
    pub pattern: SparsePattern,
    /// Supernode column ranges.
    pub sns: Vec<Range<usize>>,
    /// Supernode index of each column.
    pub owner: Vec<usize>,
    /// Shared pattern object.
    pub pat: Shared<Vec<Vec<usize>>>,
    /// One shared object per supernode: its columns' value vectors.
    pub blocks: Vec<Shared<Vec<Vec<f64>>>>,
}

/// Upload a matrix at supernode granularity.
pub fn upload_super<C: JadeCtx>(ctx: &mut C, m: &SparseSym) -> SuperMatrix {
    let sns = supernodes(&m.pattern);
    let owner = column_owner(&sns, m.n());
    let pat = ctx.create_named("row_indices", m.pattern.rows.clone());
    let blocks = sns
        .iter()
        .enumerate()
        .map(|(s, r)| {
            ctx.create_named(&format!("supernode{s}"), m.cols[r.clone()].to_vec())
        })
        .collect();
    SuperMatrix { pattern: m.pattern.clone(), sns, owner, pat, blocks }
}

/// Read the factored supernode blocks back into a host matrix.
pub fn download_super<C: JadeCtx>(ctx: &mut C, sm: &SuperMatrix) -> SparseSym {
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(sm.pattern.n);
    for b in &sm.blocks {
        cols.extend(ctx.rd(b).clone());
    }
    SparseSym { pattern: sm.pattern.clone(), cols }
}

/// Factor one supernode's columns in place: internal updates plus the
/// external updates *within* the supernode.
fn internal_super(block: &mut [Vec<f64>], rows: &[Vec<usize>], range: &Range<usize>) {
    for ai in range.clone() {
        let li = ai - range.start;
        let d = block[li][0].sqrt();
        assert!(d.is_finite() && d > 0.0, "matrix not positive definite");
        for v in block[li].iter_mut() {
            *v /= d;
        }
        let targets: Vec<usize> =
            rows[ai].iter().copied().filter(|t| range.contains(t)).collect();
        for j in targets {
            let (head, tail) = block.split_at_mut(j - range.start);
            external_update(&mut tail[0], &head[li], &rows[ai], &rows[j], j);
        }
    }
}

/// Apply the external updates from source supernode `src` (final
/// values) to destination supernode `dst`.
fn external_super(
    dst_block: &mut [Vec<f64>],
    src_block: &[Vec<f64>],
    rows: &[Vec<usize>],
    src: &Range<usize>,
    dst: &Range<usize>,
) {
    for ai in src.clone() {
        let li = ai - src.start;
        for &j in rows[ai].iter().filter(|t| dst.contains(t)) {
            external_update(
                &mut dst_block[j - dst.start],
                &src_block[li],
                &rows[ai],
                &rows[j],
                j,
            );
        }
    }
}

/// The supernodal Jade factorization: one `InternalSuper` task per
/// supernode, one `ExternalSuper` task per (source, destination)
/// supernode pair with a connecting entry.
pub fn factor_super_jade<C: JadeCtx>(ctx: &mut C, sm: &SuperMatrix) {
    let pat = sm.pat;
    for (s, range) in sm.sns.iter().enumerate() {
        let block_s = sm.blocks[s];
        let range_s = range.clone();
        let cost: f64 = range
            .clone()
            .map(|i| (2 * sm.pattern.rows[i].len() + 20) as f64)
            .sum();
        ctx.withonly(
            &format!("InternalSuper({s})"),
            |sp| {
                sp.rd_wr(block_s);
                sp.rd(pat);
            },
            move |c| {
                c.charge(cost);
                let pat = c.rd(&pat);
                let mut block = c.wr(&block_s);
                internal_super(&mut block, &pat, &range_s);
            },
        );
        // Destination supernodes this one updates, in ascending order.
        let mut dsts: Vec<usize> = range
            .clone()
            .flat_map(|i| sm.pattern.rows[i].iter().map(|&t| sm.owner[t]))
            .filter(|&t| t != s)
            .collect();
        dsts.sort_unstable();
        dsts.dedup();
        for t in dsts {
            let block_t = sm.blocks[t];
            let range_t = sm.sns[t].clone();
            let range_s2 = range.clone();
            let cost: f64 = range
                .clone()
                .map(|i| {
                    (2 * sm.pattern.rows[i]
                        .iter()
                        .filter(|r| sm.sns[t].contains(r))
                        .count()
                        * 8
                        + 10) as f64
                })
                .sum();
            ctx.withonly(
                &format!("ExternalSuper({s}->{t})"),
                |sp| {
                    sp.rd_wr(block_t);
                    sp.rd(block_s);
                    sp.rd(pat);
                },
                move |c| {
                    c.charge(cost);
                    let pat = c.rd(&pat);
                    let src = c.rd(&block_s);
                    let mut dst = c.wr(&block_t);
                    external_super(&mut dst, &src, &pat, &range_s2, &range_t);
                },
            );
        }
    }
}

/// Upload, factor supernodally, download.
pub fn factor_super_program<C: JadeCtx>(ctx: &mut C, a: &SparseSym) -> SparseSym {
    let sm = upload_super(ctx, a);
    factor_super_jade(ctx, &sm);
    download_super(ctx, &sm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::serial;

    #[test]
    fn supernode_detection_basic() {
        // Dense-ish trailing block: columns 2,3,4 chain together.
        let p = SparsePattern::new(
            5,
            vec![vec![2], vec![3], vec![3, 4], vec![4], vec![]],
        )
        .with_fill();
        let sns = supernodes(&p);
        // Every column belongs to exactly one supernode, in order.
        let covered: Vec<usize> = sns.iter().flat_map(|r| r.clone()).collect();
        assert_eq!(covered, vec![0, 1, 2, 3, 4]);
        // The trailing columns with nested patterns group together.
        assert!(sns.iter().any(|r| r.len() >= 2), "no multi-column supernode found: {sns:?}");
    }

    #[test]
    fn singleton_supernodes_for_empty_pattern() {
        let p = SparsePattern::new(3, vec![vec![], vec![], vec![]]);
        assert_eq!(supernodes(&p), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn supernodal_factor_matches_columnwise() {
        for seed in [3, 8] {
            let a = SparseSym::random_spd(32, 4, seed);
            let mut want = a.clone();
            serial::factor(&mut want);
            let (got, _) =
                jade_core::serial::run(|ctx| factor_super_program(ctx, &a));
            for i in 0..32 {
                for (g, w) in got.cols[i].iter().zip(&want.cols[i]) {
                    assert!(
                        (g - w).abs() < 1e-10,
                        "seed {seed} col {i}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn supernodal_version_creates_fewer_tasks() {
        let a = SparseSym::random_spd(40, 5, 13);
        let (_, col_stats) =
            jade_core::serial::run(|ctx| super::super::jade::factor_program(ctx, &a));
        let (_, sn_stats) = jade_core::serial::run(|ctx| factor_super_program(ctx, &a));
        assert!(
            sn_stats.tasks_created <= col_stats.tasks_created,
            "supernodal {} vs columnwise {}",
            sn_stats.tasks_created,
            col_stats.tasks_created
        );
    }
}
