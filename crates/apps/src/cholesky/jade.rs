//! The Jade sparse Cholesky factorization — the paper's Figure 6,
//! transliterated to the Rust `JadeCtx` API.
//!
//! Each matrix column is one shared object (`double shared *` in the
//! paper); the column structure and row indices are a read-shared
//! object (`c` and `r`). The program adds exactly two `withonly`
//! constructs to the serial code: one per `InternalUpdate`, one per
//! `ExternalUpdate`, with the access specifications
//!
//! ```c
//! withonly { rd_wr(c[i].column); rd(c); rd(r); } do (c, r, i) { ... }
//! withonly { rd_wr(c[r[j]].column); rd(c[i].column); rd(c); rd(r); } do ... { ... }
//! ```
//!
//! The Jade implementation — not the programmer — discovers the
//! dynamic, data-dependent concurrency between updates to independent
//! columns.

use jade_core::prelude::*;

use super::matrix::{SparsePattern, SparseSym};
use super::serial::{external_cost, external_update, internal_cost};

/// A matrix uploaded into Jade shared objects: one object per column
/// plus the shared pattern (`c`/`r` in the paper).
#[derive(Clone)]
pub struct JadeMatrix {
    /// Host copy of the pattern, used by the *main task* to generate
    /// the dynamically resolved access specifications.
    pub pattern: SparsePattern,
    /// The pattern as a shared object the tasks read.
    pub pat: Shared<Vec<Vec<usize>>>,
    /// One shared object per column's value vector.
    pub cols: Vec<Shared<Vec<f64>>>,
}

/// Allocate the matrix's shared objects (paper Figure 5's declarations).
pub fn upload<C: JadeCtx>(ctx: &mut C, m: &SparseSym) -> JadeMatrix {
    let pat = ctx.create_named("row_indices", m.pattern.rows.clone());
    let cols = m
        .cols
        .iter()
        .enumerate()
        .map(|(i, c)| ctx.create_named(&format!("column{i}"), c.clone()))
        .collect();
    JadeMatrix { pattern: m.pattern.clone(), pat, cols }
}

/// Read the factored columns back into a host matrix. The main
/// program's reads implicitly wait for all outstanding update tasks —
/// Jade's serial semantics at work.
pub fn download<C: JadeCtx>(ctx: &mut C, jm: &JadeMatrix) -> SparseSym {
    let cols = jm.cols.iter().map(|h| ctx.rd(h).clone()).collect();
    SparseSym { pattern: jm.pattern.clone(), cols }
}

/// The parallel factorization (paper Figure 6). Creates one
/// `InternalUpdate` task per column and one `ExternalUpdate` task per
/// below-diagonal entry; the runtime's per-object queues provide all
/// synchronization.
///
/// Every task carries a portable body IR alongside its closure: the
/// kernels in [`crate::kernels`] compute the same arithmetic, and the
/// sparsity pattern each `ExternalUpdate` needs rides in the IR as
/// literals — resolved by the main task from its host copy, exactly
/// like the access declarations themselves. (The `pat` shared object
/// stays declared and read by the closure; the IR simply never
/// references that declaration, so backends that ship bodies do not
/// need to marshal the `Vec<Vec<usize>>`.)
pub fn factor_jade<C: JadeCtx>(ctx: &mut C, jm: &JadeMatrix) {
    let n = jm.pattern.n;
    let pat = jm.pat;
    for i in 0..n {
        let col_i = jm.cols[i];
        let len_i = jm.pattern.rows[i].len() + 1;
        // decl 0 = col_i (rd_wr), decl 1 = pat (rd, closure-only).
        let ir = TaskBodyIr::new().step("chol_internal", vec![IrSrc::Obj(0)], IrDst::Obj(0));
        ctx.withonly_ir(
            &format!("Internal({i})"),
            |s| {
                s.rd_wr(col_i);
                s.rd(pat);
            },
            ir,
            move |c| {
                c.charge(internal_cost(len_i));
                // rd(c); rd(r): the task declares (and checks) its
                // read of the structure even though the internal
                // update itself only needs the column.
                let _pat = c.rd(&pat);
                let mut col = c.wr(&col_i);
                let d = col[0].sqrt();
                assert!(d.is_finite() && d > 0.0, "matrix not positive definite");
                for v in col.iter_mut() {
                    *v /= d;
                }
            },
        );
        // The main task resolves r[j] dynamically — the concurrency is
        // data dependent, which is exactly what defeats static
        // parallelization (paper §3.2).
        for &j in &jm.pattern.rows[i] {
            let col_j = jm.cols[j];
            let tail = jm.pattern.rows[i].iter().filter(|&&t| t >= j).count();
            // decl 0 = col_j, decl 1 = col_i, decl 2 = pat. The kernel
            // argument layout is `chol_external`'s:
            // [j, |rows_i|, rows_i.., |rows_j|, rows_j.., col_i.., col_j..].
            let mut meta = vec![j as f64, jm.pattern.rows[i].len() as f64];
            meta.extend(jm.pattern.rows[i].iter().map(|&r| r as f64));
            meta.push(jm.pattern.rows[j].len() as f64);
            meta.extend(jm.pattern.rows[j].iter().map(|&r| r as f64));
            let ir = TaskBodyIr::new().step(
                "chol_external",
                vec![IrSrc::Lit(meta), IrSrc::Obj(1), IrSrc::Obj(0)],
                IrDst::Obj(0),
            );
            ctx.withonly_ir(
                &format!("External({i}->{j})"),
                |s| {
                    s.rd_wr(col_j);
                    s.rd(col_i);
                    s.rd(pat);
                },
                ir,
                move |c| {
                    c.charge(external_cost(tail));
                    let pat = c.rd(&pat);
                    let ci = c.rd(&col_i);
                    let mut cj = c.wr(&col_j);
                    external_update(&mut cj, &ci, &pat[i], &pat[j], j);
                },
            );
        }
    }
}

/// Convenience: upload, factor, download in one call.
pub fn factor_program<C: JadeCtx>(ctx: &mut C, a: &SparseSym) -> SparseSym {
    let jm = upload(ctx, a);
    factor_jade(ctx, &jm);
    download(ctx, &jm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::serial;

    #[test]
    fn jade_factor_matches_serial_factor_bitwise() {
        let a = SparseSym::random_spd(24, 3, 11);
        let mut want = a.clone();
        serial::factor(&mut want);
        let (got, stats) = jade_core::serial::run(|ctx| factor_program(ctx, &a));
        assert_eq!(got.cols, want.cols, "jade serial elision must equal the plain serial code");
        // n internal + nnz external tasks.
        let nnz: usize = a.pattern.nnz();
        assert_eq!(stats.tasks_created as usize, 24 + nnz);
    }

    #[test]
    fn task_graph_matches_figure_4() {
        let a = SparseSym::paper_example();
        let (_, trace) = jade_core::serial::run_traced(|ctx| factor_program(ctx, &a));
        let text = trace.to_text();
        // Figure 4's structure: the externals from column 0 depend on
        // Internal(0); Internal(3) depends on External(0->3); the
        // external from 1 to 2 depends only on Internal(1).
        assert!(text.contains("External(0->3) <- [Internal(0)]"), "got:\n{text}");
        assert!(text.contains("External(1->2) <- [Internal(1)]"), "got:\n{text}");
        let i3_preds = trace
            .tasks()
            .iter()
            .find(|t| trace.label(**t) == "Internal(3)")
            .map(|t| trace.predecessors(*t))
            .unwrap();
        assert!(i3_preds
            .iter()
            .any(|p| trace.label(*p) == "External(0->3)"));
    }

    #[test]
    fn independent_columns_have_no_cross_edges() {
        // Internal(0) and Internal(1) never conflict.
        let a = SparseSym::paper_example();
        let (_, trace) = jade_core::serial::run_traced(|ctx| factor_program(ctx, &a));
        let i0 = *trace.tasks().iter().find(|t| trace.label(**t) == "Internal(0)").unwrap();
        let i1 = *trace.tasks().iter().find(|t| trace.label(**t) == "Internal(1)").unwrap();
        assert!(!trace.successors(i0).contains(&i1));
        assert!(!trace.predecessors(i0).contains(&i1));
    }
}
