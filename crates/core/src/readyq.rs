//! The ready-queue abstraction shared by the parallel executors.
//!
//! Once the dependency engine enables a task, *which runnable task a
//! processor picks next* is pure scheduling policy — the serial
//! semantics guarantees any order is correct. [`ReadyQueue`] is that
//! policy boundary: the discrete-event simulator queues enabled tasks
//! FIFO and scans them against machine eligibility
//! ([`FifoReadyQueue`]), while the shared-memory backend distributes
//! them over per-worker work-stealing deques (`jade-threads`). Both
//! implement this one trait, so the dispatch abstraction — and the
//! conformance argument that the dynamic task graph is independent of
//! it — is shared.
//!
//! Methods take `&self`: implementations use interior mutability
//! (a mutex for the FIFO policy, mostly-uncontended per-worker deques
//! for work stealing) so the queue can be shared between workers
//! without an enclosing lock.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::ids::TaskId;

/// A queue of enabled-but-not-yet-dispatched tasks.
pub trait ReadyQueue: Send + Sync {
    /// Make a task available for dispatch. `hint` optionally routes
    /// the task toward a preferred worker/machine index (the paper's
    /// placement-driven scheduling); policies may ignore it.
    fn push(&self, task: TaskId, hint: Option<usize>);

    /// Make a batch of tasks available for dispatch in one operation.
    /// All tasks share one placement `hint`. Implementations override
    /// this to amortize synchronization (one lock/one deque touch per
    /// batch instead of per task); the default just loops.
    fn push_batch(&self, tasks: &[TaskId], hint: Option<usize>) {
        for &t in tasks {
            self.push(t, hint);
        }
    }

    /// Take the next task to run from the perspective of `worker`.
    /// Returns `None` when no queued task is available to that worker.
    fn pop(&self, worker: usize) -> Option<TaskId>;

    /// Scan queued tasks in policy order, removing each task for which
    /// `take` returns `true` and retaining the rest (in order). Used
    /// by placement-constrained backends that can dispatch only a
    /// subset of the queue at a time.
    fn dispatch_where(&self, take: &mut dyn FnMut(TaskId) -> bool) {
        // Generic fallback: drain and re-push the untaken tasks.
        let mut keep = Vec::new();
        while let Some(t) = self.pop(0) {
            if !take(t) {
                keep.push(t);
            }
        }
        for t in keep {
            self.push(t, None);
        }
    }

    /// Number of queued tasks.
    fn len(&self) -> usize;

    /// Whether no task is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Strict FIFO policy behind one mutex — the discrete-event
/// simulator's ready pool. Dispatch order equals enable order, which
/// keeps simulated executions deterministic.
#[derive(Debug, Default)]
pub struct FifoReadyQueue {
    q: Mutex<VecDeque<TaskId>>,
}

impl FifoReadyQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReadyQueue for FifoReadyQueue {
    fn push(&self, task: TaskId, _hint: Option<usize>) {
        self.q.lock().push_back(task);
    }

    fn push_batch(&self, tasks: &[TaskId], _hint: Option<usize>) {
        self.q.lock().extend(tasks.iter().copied());
    }

    fn pop(&self, _worker: usize) -> Option<TaskId> {
        self.q.lock().pop_front()
    }

    fn dispatch_where(&self, take: &mut dyn FnMut(TaskId) -> bool) {
        let mut q = self.q.lock();
        let mut i = 0;
        while i < q.len() {
            if take(q[i]) {
                q.remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn len(&self) -> usize {
        self.q.lock().len()
    }
}

/// Pass increment for a weight-1 lane. Weights divide into this, so
/// with the weight cap in [`WeightedFairQueue::add_lane`] every stride
/// is a distinct positive integer and relative rates are exact.
const STRIDE_ONE: u64 = 1 << 20;

/// Stride-scheduling weighted fair queue: tasks are partitioned into
/// *lanes* (one per client of the job server), each lane carrying a
/// weight, and dispatch interleaves lanes so that over any window each
/// backlogged lane receives throughput proportional to its weight.
///
/// Classic stride scheduling: a lane's *stride* is `STRIDE_ONE /
/// weight`; every dispatch from a lane advances its *pass* by its
/// stride, and [`pop`](ReadyQueue::pop) always serves the backlogged
/// lane with the minimum pass (ties break toward the lower lane index,
/// which makes the interleave deterministic — weights 2:1 dispatch
/// `A B A A B A …`). A lane that goes idle has its pass clamped
/// forward to the current minimum when it becomes backlogged again, so
/// sleeping never banks credit to monopolize the queue later.
///
/// Implements [`ReadyQueue`] with the push `hint` carrying the lane
/// index, so the job server layers per-client fairness on the same
/// dispatch abstraction the executors already share.
#[derive(Debug, Default)]
pub struct WeightedFairQueue {
    state: Mutex<WfqState>,
}

#[derive(Debug, Default)]
struct WfqState {
    lanes: Vec<Lane>,
    queued: usize,
    /// Global virtual time: the highest pass at which any dispatch was
    /// served. Lanes (re)joining the backlogged set clamp their pass
    /// forward to this, so idle time never banks dispatch credit.
    vtime: u64,
}

#[derive(Debug)]
struct Lane {
    stride: u64,
    pass: u64,
    q: VecDeque<TaskId>,
}

impl WfqState {
    /// Index of the backlogged lane with the minimum pass (stable
    /// toward lower indices), considering only items at or beyond each
    /// lane's `cursor` when one is supplied.
    fn min_pass_lane(&self, cursors: Option<&[usize]>) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, lane) in self.lanes.iter().enumerate() {
            let pending = match cursors {
                Some(c) => lane.q.len() > c[i],
                None => !lane.q.is_empty(),
            };
            if pending && best.is_none_or(|b| lane.pass < self.lanes[b].pass) {
                best = Some(i);
            }
        }
        best
    }
}

impl WeightedFairQueue {
    /// An empty queue with no lanes. Pushes with no hint (or an
    /// unknown lane) land in a weight-1 lane 0 created on demand.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a lane with the given weight and return its index (the
    /// value to pass as the push `hint`). Weights are clamped to
    /// `1..=STRIDE_ONE`; a higher weight means proportionally more
    /// dispatches when backlogged.
    pub fn add_lane(&self, weight: u64) -> usize {
        let mut st = self.state.lock();
        let weight = weight.clamp(1, STRIDE_ONE);
        // Join at the current virtual time: no retroactive credit.
        let pass = st.vtime;
        st.lanes.push(Lane { stride: STRIDE_ONE / weight, pass, q: VecDeque::new() });
        st.lanes.len() - 1
    }

    /// Number of lanes currently registered.
    pub fn lanes(&self) -> usize {
        self.state.lock().lanes.len()
    }

    /// Queued tasks in one lane (0 for an unknown lane).
    pub fn lane_len(&self, lane: usize) -> usize {
        self.state.lock().lanes.get(lane).map_or(0, |l| l.q.len())
    }
}

impl ReadyQueue for WeightedFairQueue {
    fn push(&self, task: TaskId, hint: Option<usize>) {
        let mut st = self.state.lock();
        if st.lanes.is_empty() {
            st.lanes.push(Lane { stride: STRIDE_ONE, pass: 0, q: VecDeque::new() });
        }
        let lane = hint.filter(|&l| l < st.lanes.len()).unwrap_or(0);
        if st.lanes[lane].q.is_empty() {
            // Re-entering the backlogged set: clamp forward to the
            // virtual time so idle time does not accumulate as future
            // dispatch credit.
            let vtime = st.vtime;
            let l = &mut st.lanes[lane];
            l.pass = l.pass.max(vtime);
        }
        st.lanes[lane].q.push_back(task);
        st.queued += 1;
    }

    fn pop(&self, _worker: usize) -> Option<TaskId> {
        let mut st = self.state.lock();
        let lane = st.min_pass_lane(None)?;
        let l = &mut st.lanes[lane];
        let task = l.q.pop_front();
        let served_at = l.pass;
        l.pass += l.stride;
        st.vtime = st.vtime.max(served_at);
        st.queued -= 1;
        task
    }

    fn dispatch_where(&self, take: &mut dyn FnMut(TaskId) -> bool) {
        // Walk candidates in stride order; a declined task parks its
        // lane's cursor past it so FIFO order within the lane holds.
        let mut st = self.state.lock();
        let mut cursors = vec![0usize; st.lanes.len()];
        while let Some(lane) = st.min_pass_lane(Some(&cursors)) {
            let t = st.lanes[lane].q[cursors[lane]];
            if take(t) {
                let l = &mut st.lanes[lane];
                l.q.remove(cursors[lane]);
                let served_at = l.pass;
                l.pass += l.stride;
                st.vtime = st.vtime.max(served_at);
                st.queued -= 1;
            } else {
                cursors[lane] += 1;
            }
        }
    }

    fn len(&self) -> usize {
        self.state.lock().queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_pops_in_push_order() {
        let q = FifoReadyQueue::new();
        q.push(TaskId(1), None);
        q.push(TaskId(2), Some(3));
        q.push(TaskId(3), None);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(0), Some(TaskId(1)));
        assert_eq!(q.pop(7), Some(TaskId(2)), "hint and worker are policy-irrelevant here");
        assert_eq!(q.pop(0), Some(TaskId(3)));
        assert_eq!(q.pop(0), None);
        assert!(q.is_empty());
    }

    #[test]
    fn dispatch_where_removes_matches_in_order() {
        let q = FifoReadyQueue::new();
        for i in 1..=5 {
            q.push(TaskId(i), None);
        }
        let mut taken = Vec::new();
        q.dispatch_where(&mut |t| {
            if t.0 % 2 == 1 {
                taken.push(t);
                true
            } else {
                false
            }
        });
        assert_eq!(taken, vec![TaskId(1), TaskId(3), TaskId(5)]);
        assert_eq!(q.pop(0), Some(TaskId(2)), "unmatched tasks keep their order");
        assert_eq!(q.pop(0), Some(TaskId(4)));
        assert!(q.is_empty());
    }

    #[test]
    fn push_batch_preserves_fifo_order() {
        let q = FifoReadyQueue::new();
        q.push(TaskId(1), None);
        q.push_batch(&[TaskId(2), TaskId(3), TaskId(4)], Some(1));
        assert_eq!(q.len(), 4);
        for i in 1..=4 {
            assert_eq!(q.pop(0), Some(TaskId(i)));
        }
    }

    /// Drain the queue, mapping each popped task back to its lane via
    /// the id encoding `TaskId(lane * 100 + seq)`.
    fn drain_lanes(q: &WeightedFairQueue) -> Vec<u64> {
        std::iter::from_fn(|| q.pop(0)).map(|t| t.0 / 100).collect()
    }

    #[test]
    fn wfq_equal_weights_round_robin() {
        let q = WeightedFairQueue::new();
        let a = q.add_lane(1);
        let b = q.add_lane(1);
        for i in 0..3 {
            q.push(TaskId(100 + i), Some(a));
            q.push(TaskId(200 + i), Some(b));
        }
        assert_eq!(q.len(), 6);
        assert_eq!(drain_lanes(&q), vec![1, 2, 1, 2, 1, 2], "ties break to the lower lane");
        assert!(q.is_empty());
    }

    #[test]
    fn wfq_weighted_interleave_is_proportional_and_deterministic() {
        let q = WeightedFairQueue::new();
        let a = q.add_lane(2);
        let b = q.add_lane(1);
        for i in 0..6 {
            q.push(TaskId(100 + i), Some(a));
        }
        for i in 0..3 {
            q.push(TaskId(200 + i), Some(b));
        }
        // Stride 2:1 — passes A:.5,1,1.5,… B:1,2,3,… → A B A A B A A B A.
        assert_eq!(drain_lanes(&q), vec![1, 2, 1, 1, 2, 1, 1, 2, 1]);
    }

    #[test]
    fn wfq_fifo_within_a_lane_and_unknown_hints_fall_back() {
        let q = WeightedFairQueue::new();
        // No lanes yet: hintless pushes materialize lane 0.
        q.push(TaskId(1), None);
        q.push(TaskId(2), Some(99)); // unknown lane → lane 0
        q.push(TaskId(3), None);
        assert_eq!(q.lanes(), 1);
        assert_eq!(q.lane_len(0), 3);
        assert_eq!(q.pop(0), Some(TaskId(1)));
        assert_eq!(q.pop(0), Some(TaskId(2)));
        assert_eq!(q.pop(0), Some(TaskId(3)));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn wfq_idle_lane_gets_no_banked_credit() {
        let q = WeightedFairQueue::new();
        let a = q.add_lane(1);
        let b = q.add_lane(1);
        // Lane A runs alone for a while (its pass advances far)…
        for i in 0..4 {
            q.push(TaskId(100 + i), Some(a));
        }
        for _ in 0..4 {
            q.pop(0);
        }
        // …then B wakes up. Without the clamp B's pass (0) would owe it
        // four back-to-back dispatches; with it, service interleaves.
        for i in 0..2 {
            q.push(TaskId(200 + i), Some(b));
            q.push(TaskId(104 + i), Some(a));
        }
        assert_eq!(drain_lanes(&q), vec![2, 1, 2, 1], "B leads the tie but does not monopolize");
    }

    #[test]
    fn wfq_dispatch_where_follows_stride_order_and_retains_declined() {
        let q = WeightedFairQueue::new();
        let a = q.add_lane(2);
        let b = q.add_lane(1);
        for i in 0..4 {
            q.push(TaskId(100 + i), Some(a));
        }
        for i in 0..2 {
            q.push(TaskId(200 + i), Some(b));
        }
        // Take only even-seq tasks; the scan follows the stride order
        // (declines advance a lane's cursor, not its pass, and ties
        // keep breaking toward the lower lane).
        let mut seen = Vec::new();
        q.dispatch_where(&mut |t| {
            seen.push(t);
            t.0 % 2 == 0
        });
        assert_eq!(
            seen,
            vec![TaskId(100), TaskId(200), TaskId(101), TaskId(102), TaskId(103), TaskId(201)]
        );
        assert_eq!(q.len(), 3, "odd-seq tasks were retained");
        assert_eq!(q.lane_len(0), 2);
        assert_eq!(q.lane_len(1), 1);
        // Retained tasks keep FIFO order within their lane.
        assert_eq!(q.pop(0), Some(TaskId(101)));
    }
}
