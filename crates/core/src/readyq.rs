//! The ready-queue abstraction shared by the parallel executors.
//!
//! Once the dependency engine enables a task, *which runnable task a
//! processor picks next* is pure scheduling policy — the serial
//! semantics guarantees any order is correct. [`ReadyQueue`] is that
//! policy boundary: the discrete-event simulator queues enabled tasks
//! FIFO and scans them against machine eligibility
//! ([`FifoReadyQueue`]), while the shared-memory backend distributes
//! them over per-worker work-stealing deques (`jade-threads`). Both
//! implement this one trait, so the dispatch abstraction — and the
//! conformance argument that the dynamic task graph is independent of
//! it — is shared.
//!
//! Methods take `&self`: implementations use interior mutability
//! (a mutex for the FIFO policy, mostly-uncontended per-worker deques
//! for work stealing) so the queue can be shared between workers
//! without an enclosing lock.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::ids::TaskId;

/// A queue of enabled-but-not-yet-dispatched tasks.
pub trait ReadyQueue: Send + Sync {
    /// Make a task available for dispatch. `hint` optionally routes
    /// the task toward a preferred worker/machine index (the paper's
    /// placement-driven scheduling); policies may ignore it.
    fn push(&self, task: TaskId, hint: Option<usize>);

    /// Make a batch of tasks available for dispatch in one operation.
    /// All tasks share one placement `hint`. Implementations override
    /// this to amortize synchronization (one lock/one deque touch per
    /// batch instead of per task); the default just loops.
    fn push_batch(&self, tasks: &[TaskId], hint: Option<usize>) {
        for &t in tasks {
            self.push(t, hint);
        }
    }

    /// Take the next task to run from the perspective of `worker`.
    /// Returns `None` when no queued task is available to that worker.
    fn pop(&self, worker: usize) -> Option<TaskId>;

    /// Scan queued tasks in policy order, removing each task for which
    /// `take` returns `true` and retaining the rest (in order). Used
    /// by placement-constrained backends that can dispatch only a
    /// subset of the queue at a time.
    fn dispatch_where(&self, take: &mut dyn FnMut(TaskId) -> bool) {
        // Generic fallback: drain and re-push the untaken tasks.
        let mut keep = Vec::new();
        while let Some(t) = self.pop(0) {
            if !take(t) {
                keep.push(t);
            }
        }
        for t in keep {
            self.push(t, None);
        }
    }

    /// Number of queued tasks.
    fn len(&self) -> usize;

    /// Whether no task is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Strict FIFO policy behind one mutex — the discrete-event
/// simulator's ready pool. Dispatch order equals enable order, which
/// keeps simulated executions deterministic.
#[derive(Debug, Default)]
pub struct FifoReadyQueue {
    q: Mutex<VecDeque<TaskId>>,
}

impl FifoReadyQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReadyQueue for FifoReadyQueue {
    fn push(&self, task: TaskId, _hint: Option<usize>) {
        self.q.lock().push_back(task);
    }

    fn push_batch(&self, tasks: &[TaskId], _hint: Option<usize>) {
        self.q.lock().extend(tasks.iter().copied());
    }

    fn pop(&self, _worker: usize) -> Option<TaskId> {
        self.q.lock().pop_front()
    }

    fn dispatch_where(&self, take: &mut dyn FnMut(TaskId) -> bool) {
        let mut q = self.q.lock();
        let mut i = 0;
        while i < q.len() {
            if take(q[i]) {
                q.remove(i);
            } else {
                i += 1;
            }
        }
    }

    fn len(&self) -> usize {
        self.q.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_pops_in_push_order() {
        let q = FifoReadyQueue::new();
        q.push(TaskId(1), None);
        q.push(TaskId(2), Some(3));
        q.push(TaskId(3), None);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(0), Some(TaskId(1)));
        assert_eq!(q.pop(7), Some(TaskId(2)), "hint and worker are policy-irrelevant here");
        assert_eq!(q.pop(0), Some(TaskId(3)));
        assert_eq!(q.pop(0), None);
        assert!(q.is_empty());
    }

    #[test]
    fn dispatch_where_removes_matches_in_order() {
        let q = FifoReadyQueue::new();
        for i in 1..=5 {
            q.push(TaskId(i), None);
        }
        let mut taken = Vec::new();
        q.dispatch_where(&mut |t| {
            if t.0 % 2 == 1 {
                taken.push(t);
                true
            } else {
                false
            }
        });
        assert_eq!(taken, vec![TaskId(1), TaskId(3), TaskId(5)]);
        assert_eq!(q.pop(0), Some(TaskId(2)), "unmatched tasks keep their order");
        assert_eq!(q.pop(0), Some(TaskId(4)));
        assert!(q.is_empty());
    }

    #[test]
    fn push_batch_preserves_fifo_order() {
        let q = FifoReadyQueue::new();
        q.push(TaskId(1), None);
        q.push_batch(&[TaskId(2), TaskId(3), TaskId(4)], Some(1));
        assert_eq!(q.len(), 4);
        for i in 1..=4 {
            assert_eq!(q.pop(0), Some(TaskId(i)));
        }
    }
}
