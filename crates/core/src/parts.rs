//! Data decomposition helpers (§3.2).
//!
//! "The programmer may need to decompose data structures so that the
//! pieces can be accessed independently; for example ... to allow the
//! application to concurrently write disjoint parts of the object."
//!
//! [`PartedVec`] packages the idiom every application in this
//! repository uses by hand: scatter a vector into per-part shared
//! objects (each a unit of declaration, migration and replication),
//! operate on the parts from independent tasks, and gather the result
//! in the main task.

use crate::ctx::JadeCtx;
use crate::handle::{Object, Shared};
use crate::spec::SpecBuilder;

/// A vector decomposed into contiguous part objects.
#[derive(Clone)]
pub struct PartedVec<T: Object> {
    parts: Vec<Shared<Vec<T>>>,
    chunk: usize,
    len: usize,
}

impl<T: Object + Clone> PartedVec<T> {
    /// Scatter `data` into `n_parts` contiguous part objects (the last
    /// part may be shorter).
    pub fn scatter<C: JadeCtx>(ctx: &mut C, data: Vec<T>, n_parts: usize) -> Self {
        let len = data.len();
        let n = n_parts.clamp(1, len.max(1));
        let chunk = len.div_ceil(n).max(1);
        let parts = data
            .chunks(chunk)
            .enumerate()
            .map(|(i, c)| ctx.create_named(&format!("part{i}"), c.to_vec()))
            .collect::<Vec<_>>();
        PartedVec { parts, chunk, len }
    }

    /// Gather the parts back into one vector. The main task's reads
    /// wait, in serial order, for every task that writes a part.
    pub fn gather<C: JadeCtx>(&self, ctx: &mut C) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        for p in &self.parts {
            out.extend(ctx.rd(p).iter().cloned());
        }
        out
    }
}

impl<T: Object> PartedVec<T> {
    /// Total element count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of parts.
    pub fn n_parts(&self) -> usize {
        self.parts.len()
    }

    /// Elements per part (except possibly the last).
    pub fn chunk_len(&self) -> usize {
        self.chunk
    }

    /// Handle of part `i`.
    pub fn part(&self, i: usize) -> Shared<Vec<T>> {
        self.parts[i]
    }

    /// All part handles.
    pub fn parts(&self) -> &[Shared<Vec<T>>] {
        &self.parts
    }

    /// Which part holds global index `idx`, and at what offset.
    pub fn locate(&self, idx: usize) -> (usize, usize) {
        (idx / self.chunk, idx % self.chunk)
    }

    /// Declare a read of every part (e.g. for a task that consumes the
    /// whole structure, like the paper's backsubst declaring every
    /// column).
    pub fn declare_rd_all(&self, s: &mut SpecBuilder) {
        for p in &self.parts {
            s.rd(*p);
        }
    }

    /// Declare a deferred read of every part (the §4.2 pipeline form).
    pub fn declare_df_rd_all(&self, s: &mut SpecBuilder) {
        for p in &self.parts {
            s.df_rd(*p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::JadeCtx;

    #[test]
    fn scatter_gather_roundtrip() {
        let data: Vec<f64> = (0..37).map(|i| i as f64).collect();
        let (got, _) = crate::serial::run(|ctx| {
            let pv = PartedVec::scatter(ctx, data.clone(), 5);
            assert_eq!(pv.len(), 37);
            assert_eq!(pv.n_parts(), 5);
            pv.gather(ctx)
        });
        assert_eq!(got, data);
    }

    #[test]
    fn disjoint_parts_update_independently() {
        let (got, stats) = crate::serial::run(|ctx| {
            let pv = PartedVec::scatter(ctx, vec![1.0f64; 24], 4);
            for i in 0..pv.n_parts() {
                let p = pv.part(i);
                ctx.withonly("scale", |s| { s.rd_wr(p); }, move |c| {
                    for v in c.wr(&p).iter_mut() {
                        *v *= (i + 1) as f64;
                    }
                });
            }
            pv.gather(ctx)
        });
        assert_eq!(stats.tasks_created, 4);
        assert_eq!(&got[0..6], &[1.0; 6]);
        assert_eq!(&got[18..24], &[4.0; 6]);
    }

    #[test]
    fn locate_maps_indices() {
        let ((), _) = crate::serial::run(|ctx| {
            let pv = PartedVec::scatter(ctx, vec![0u32; 10], 3);
            // chunk = ceil(10/3) = 4 -> parts of 4,4,2.
            assert_eq!(pv.locate(0), (0, 0));
            assert_eq!(pv.locate(5), (1, 1));
            assert_eq!(pv.locate(9), (2, 1));
        });
    }

    #[test]
    fn declare_helpers_cover_all_parts() {
        crate::serial::run(|ctx| {
            let pv = PartedVec::scatter(ctx, vec![0.0f64; 8], 4);
            let out = ctx.create(0.0f64);
            let pv2 = pv.clone();
            let pv3 = pv.clone();
            ctx.withonly(
                "sum-all",
                move |s| {
                    s.rd_wr(out);
                    pv2.declare_rd_all(s);
                },
                move |c| {
                    let mut total = 0.0;
                    for i in 0..pv3.n_parts() {
                        total += c.rd(&pv3.part(i)).iter().sum::<f64>();
                    }
                    *c.wr(&out) = total;
                },
            );
        });
    }

    #[test]
    fn empty_and_single_element_edge_cases() {
        crate::serial::run(|ctx| {
            let empty: PartedVec<f64> = PartedVec::scatter(ctx, vec![], 4);
            assert!(empty.is_empty());
            assert_eq!(empty.gather(ctx), Vec::<f64>::new());
            let single = PartedVec::scatter(ctx, vec![7.0f64], 4);
            assert_eq!(single.n_parts(), 1);
            assert_eq!(single.gather(ctx), vec![7.0]);
        });
    }
}
