//! Per-object serial-order declaration queues.
//!
//! The Jade implementation keeps, for every shared object, a queue of
//! access declarations ordered by the *serial execution order* of the
//! declaring tasks. The enabling rules over this queue are what turn
//! access specifications into synchronization (paper §2, §3.3):
//!
//! * a **read** declaration is enabled when no active write-capable
//!   (write or commuting-update) declaration precedes it;
//! * a **write** declaration is enabled when no active declaration of
//!   any kind precedes it (it must be at the effective head);
//! * a **commuting-update** declaration (§4.3) is enabled when no
//!   active read/write precedes it — other commuting updates do not
//!   order it, but an access-time exclusivity token serializes the
//!   actual updates;
//! * **deferred** declarations hold their queue position (blocking
//!   conflicting successors) but do not gate their own task's start;
//! * retiring a side (`no_rd`/`no_wr`/`no_cm`) or removing the node
//!   (task completion) may enable successors.
//!
//! Queues are stored as doubly-linked lists inside a single slab
//! ([`QueueArena`]) so that hierarchical task creation can insert a
//! child's declaration *immediately before its parent's* in O(1).

use std::collections::HashMap;

use crate::ids::{ObjectId, TaskId};
use crate::spec::{AccessKind, DeclRights, DeclState};

/// Handle to a node in the [`QueueArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeRef(u32);

impl NodeRef {
    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One declaration (or position anchor) in an object's queue.
#[derive(Debug)]
pub struct QNode {
    /// The declaring task.
    pub task: TaskId,
    /// The object whose queue this node lives in.
    pub object: ObjectId,
    /// Current rights. Pure anchors have `DeclRights::NONE`.
    pub rights: DeclRights,
    /// Cached enabling flag for the read side.
    pub read_granted: bool,
    /// Cached enabling flag for the write side.
    pub write_granted: bool,
    /// Cached enabling flag for the commuting-update side.
    pub commute_granted: bool,
    /// Whether this task currently holds the object's commuting-update
    /// exclusivity (set on first checked commute access; cleared by
    /// `no_cm` or completion). While held, other commute declarations
    /// wait — serialized but unordered, the §4.3 semantics.
    pub commute_holding: bool,
    prev: Option<NodeRef>,
    next: Option<NodeRef>,
    /// Slot-in-use marker for the free list.
    live: bool,
}

impl QNode {
    /// Whether the given access kind is currently granted.
    #[inline]
    pub fn granted(&self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.read_granted,
            AccessKind::Write => self.write_granted,
            AccessKind::Commute => self.commute_granted,
        }
    }

    /// Whether this node is a pure position anchor (no rights, never
    /// blocks anyone).
    #[inline]
    pub fn is_anchor(&self) -> bool {
        !self.rights.is_declared()
    }
}

/// A grant transition produced by [`QueueArena::recompute`]: an
/// immediate right of `task` on `object` became enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Granted {
    /// Task whose declaration became enabled.
    pub task: TaskId,
    /// Object concerned.
    pub object: ObjectId,
    /// Which side was enabled.
    pub kind: AccessKind,
}

/// A grant-flag transition produced by [`QueueArena::recompute_diff`]:
/// an *immediate* right of `task` on `object` changed enabledness.
/// `granted == false` is a revocation — reachable when a newly created
/// task's declaration is inserted ahead of an already-enabled one
/// (hierarchical creation inserts the child before its parent's node).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Task whose declaration changed state.
    pub task: TaskId,
    /// Object concerned.
    pub object: ObjectId,
    /// Which side changed.
    pub kind: AccessKind,
    /// `true` = became enabled, `false` = became disabled.
    pub granted: bool,
}

#[derive(Debug, Default, Clone, Copy)]
struct Ends {
    head: Option<NodeRef>,
    tail: Option<NodeRef>,
    /// Cached commute-exclusivity holder, maintained by
    /// [`QueueArena::set_commute_holding`] and refreshed by the full
    /// [`QueueArena::recompute_diff`] scan. Lets the incremental
    /// recompute skip the O(queue) holder search.
    holder: Option<NodeRef>,
    /// Live node count (anchors included). Maintained by
    /// `push_tail`/`insert_before`/`remove` so occupancy queries —
    /// [`QueueArena::queue_len`], [`QueueArena::sole_occupant`] — are
    /// O(1) instead of a full list walk.
    len: u32,
}

/// Slab of queue nodes plus per-object head/tail pointers.
#[derive(Debug, Default)]
pub struct QueueArena {
    nodes: Vec<QNode>,
    free: Vec<NodeRef>,
    ends: HashMap<ObjectId, Ends>,
}

impl QueueArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an object, creating its (empty) queue.
    pub fn register_object(&mut self, object: ObjectId) {
        self.ends.entry(object).or_default();
    }

    /// Whether an object has been registered.
    pub fn has_object(&self, object: ObjectId) -> bool {
        self.ends.contains_key(&object)
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, r: NodeRef) -> &QNode {
        let n = &self.nodes[r.idx()];
        debug_assert!(n.live, "use of freed queue node");
        n
    }

    /// Mutably borrow a node.
    #[inline]
    pub fn node_mut(&mut self, r: NodeRef) -> &mut QNode {
        let n = &mut self.nodes[r.idx()];
        debug_assert!(n.live, "use of freed queue node");
        n
    }

    fn alloc(&mut self, node: QNode) -> NodeRef {
        if let Some(r) = self.free.pop() {
            self.nodes[r.idx()] = node;
            r
        } else {
            let r = NodeRef(self.nodes.len() as u32);
            self.nodes.push(node);
            r
        }
    }

    fn blank(task: TaskId, object: ObjectId, rights: DeclRights) -> QNode {
        QNode {
            task,
            object,
            rights,
            read_granted: false,
            write_granted: false,
            commute_granted: false,
            commute_holding: false,
            prev: None,
            next: None,
            live: true,
        }
    }

    /// Append a declaration at the tail of the object's queue (used
    /// for the root task's implicit declaration).
    pub fn push_tail(&mut self, object: ObjectId, task: TaskId, rights: DeclRights) -> NodeRef {
        let r = self.alloc(Self::blank(task, object, rights));
        let ends = self.ends.entry(object).or_default();
        ends.len += 1;
        match ends.tail {
            None => {
                ends.head = Some(r);
                ends.tail = Some(r);
            }
            Some(t) => {
                self.nodes[t.idx()].next = Some(r);
                self.nodes[r.idx()].prev = Some(t);
                ends.tail = Some(r);
            }
        }
        r
    }

    /// Insert a declaration immediately before `before` in the same
    /// object's queue — the hierarchical-creation primitive.
    pub fn insert_before(
        &mut self,
        before: NodeRef,
        task: TaskId,
        rights: DeclRights,
    ) -> NodeRef {
        let object = self.node(before).object;
        let prev = self.node(before).prev;
        self.ends.get_mut(&object).expect("unregistered object").len += 1;
        let r = self.alloc(Self::blank(task, object, rights));
        self.nodes[r.idx()].prev = prev;
        self.nodes[r.idx()].next = Some(before);
        self.nodes[before.idx()].prev = Some(r);
        match prev {
            Some(p) => self.nodes[p.idx()].next = Some(r),
            None => self.ends.get_mut(&object).expect("unregistered object").head = Some(r),
        }
        r
    }

    /// Remove a node from its queue (task completion).
    pub fn remove(&mut self, r: NodeRef) {
        let (object, prev, next) = {
            let n = self.node(r);
            (n.object, n.prev, n.next)
        };
        {
            let ends = self.ends.get_mut(&object).expect("unregistered object");
            if ends.holder == Some(r) {
                ends.holder = None;
            }
            ends.len -= 1;
        }
        match prev {
            Some(p) => self.nodes[p.idx()].next = next,
            None => self.ends.get_mut(&object).expect("unregistered object").head = next,
        }
        match next {
            Some(nx) => self.nodes[nx.idx()].prev = prev,
            None => self.ends.get_mut(&object).expect("unregistered object").tail = prev,
        }
        let n = &mut self.nodes[r.idx()];
        n.live = false;
        n.prev = None;
        n.next = None;
        self.free.push(r);
    }

    /// Iterate over a queue head→tail.
    pub fn iter(&self, object: ObjectId) -> QueueIter<'_> {
        QueueIter { arena: self, cur: self.ends.get(&object).and_then(|e| e.head) }
    }

    /// Set or clear a node's commute-exclusivity flag, keeping the
    /// per-queue holder cache in sync. Engines must use this instead
    /// of writing `commute_holding` directly so that the incremental
    /// recompute can resolve the holder in O(1).
    pub fn set_commute_holding(&mut self, r: NodeRef, holding: bool) {
        let object = self.node(r).object;
        self.node_mut(r).commute_holding = holding;
        let ends = self.ends.get_mut(&object).expect("unregistered object");
        if holding {
            ends.holder = Some(r);
        } else if ends.holder == Some(r) {
            ends.holder = None;
        }
    }

    /// Recompute the cached grant flags of every node in `object`'s
    /// queue. Returns the immediate rights that transitioned from
    /// not-granted to granted, in queue order (deterministic).
    ///
    /// Enabling rules: a read is blocked by earlier active writes and
    /// commuting updates; a write by earlier active anything; a
    /// commuting update by earlier active reads/writes but **not** by
    /// other commuting updates (they are unordered) — except that
    /// while one task *holds* the object's commute exclusivity, other
    /// commute grants are withheld (updates serialize).
    pub fn recompute(&mut self, object: ObjectId) -> Vec<Granted> {
        self.recompute_diff(object)
            .into_iter()
            .filter(|t| t.granted)
            .map(|t| Granted { task: t.task, object: t.object, kind: t.kind })
            .collect()
    }

    /// Like [`recompute`](Self::recompute), but report *both*
    /// directions: every immediate right whose enabledness flipped, in
    /// queue order. The sharded engine keeps per-task readiness
    /// counters (`missing` = immediate sides not yet granted), so it
    /// needs revocations too — a grant a pending task already counted
    /// can be taken back when a descendant's declaration is inserted
    /// ahead of it.
    pub fn recompute_diff(&mut self, object: ObjectId) -> Vec<Transition> {
        // First pass: is any node currently holding commute access?
        // Refresh the holder cache while at it, so a direct
        // `commute_holding` write followed by a full recompute leaves
        // the cache consistent for later incremental calls.
        let mut holder: Option<NodeRef> = None;
        let mut cur = self.ends.get(&object).and_then(|e| e.head);
        while let Some(r) = cur {
            let node = &self.nodes[r.idx()];
            if node.commute_holding && node.rights.commute.is_active() {
                holder = Some(r);
                break;
            }
            cur = node.next;
        }
        if let Some(ends) = self.ends.get_mut(&object) {
            ends.holder = holder;
        }
        let mut out = Vec::new();
        let mut read_seen = false;
        let mut write_seen = false;
        let mut commute_seen = false;
        let mut cur = self.ends.get(&object).and_then(|e| e.head);
        while let Some(r) = cur {
            let node = &mut self.nodes[r.idx()];
            let read_ok = !write_seen && !commute_seen;
            let write_ok = !write_seen && !read_seen && !commute_seen;
            let commute_ok =
                !write_seen && !read_seen && (holder.is_none() || holder == Some(r));
            if node.rights.read == DeclState::Immediate && read_ok != node.read_granted {
                out.push(Transition {
                    task: node.task,
                    object,
                    kind: AccessKind::Read,
                    granted: read_ok,
                });
            }
            if node.rights.write == DeclState::Immediate && write_ok != node.write_granted {
                out.push(Transition {
                    task: node.task,
                    object,
                    kind: AccessKind::Write,
                    granted: write_ok,
                });
            }
            if node.rights.commute == DeclState::Immediate && commute_ok != node.commute_granted
            {
                out.push(Transition {
                    task: node.task,
                    object,
                    kind: AccessKind::Commute,
                    granted: commute_ok,
                });
            }
            node.read_granted = read_ok;
            node.write_granted = write_ok;
            node.commute_granted = commute_ok;
            if node.rights.read.is_active() {
                read_seen = true;
            }
            if node.rights.write.is_active() {
                write_seen = true;
            }
            if node.rights.commute.is_active() {
                commute_seen = true;
            }
            cur = node.next;
        }
        out
    }

    /// [`recompute_diff`](Self::recompute_diff) restricted to the
    /// *prefix of the queue that can have changed*, for the engine hot
    /// path. Sound only under the incremental contract:
    ///
    /// * grant flags were consistent before the current mutation batch
    ///   (every public mutation is followed by a recompute), and
    /// * the batch consists of node removals, rights *retirements*,
    ///   holder changes made through
    ///   [`set_commute_holding`](Self::set_commute_holding), and
    ///   insertions whose new nodes are all listed in `fresh`.
    ///
    /// The scan walks head→tail exactly like the full recompute but
    /// stops once the *pre-existing* (non-`fresh`) nodes already seen
    /// block every kind: `old_write || (old_read && old_commute)`.
    /// Past that point no node's flag can have changed — the computed
    /// flags are all `false` (the blockers precede them now), and they
    /// were already `false` before the batch (the same blockers
    /// existed then: removals/retirements only shed blockers, and
    /// `fresh` nodes are excluded from the stop condition, so an
    /// insertion can never hide a revocation). Holder changes only
    /// affect commute nodes with no earlier active read/write, which
    /// always precede the stop point. For the common chain of
    /// exclusive declarations this makes attach and finish O(1) in the
    /// queue depth instead of O(depth).
    pub fn recompute_diff_incremental(
        &mut self,
        object: ObjectId,
        fresh: &[NodeRef],
    ) -> Vec<Transition> {
        let mut out = Vec::new();
        self.recompute_diff_incremental_into(object, fresh, &mut out);
        out
    }

    /// Allocation-free form of
    /// [`recompute_diff_incremental`](Self::recompute_diff_incremental):
    /// transitions are *appended* to `out` (a caller-owned scratch
    /// buffer, typically per engine shard) instead of being returned in
    /// a fresh `Vec`. The caller clears `out` between operations.
    pub fn recompute_diff_incremental_into(
        &mut self,
        object: ObjectId,
        fresh: &[NodeRef],
        out: &mut Vec<Transition>,
    ) {
        let Some(ends) = self.ends.get(&object).copied() else { return };
        // O(1) holder resolution from the cache (validated: the flag
        // or the right may have been retired since it was set).
        let holder = ends.holder.filter(|&h| {
            let n = &self.nodes[h.idx()];
            n.live && n.commute_holding && n.rights.commute.is_active()
        });
        let mut read_seen = false;
        let mut write_seen = false;
        let mut commute_seen = false;
        let mut old_read = false;
        let mut old_write = false;
        let mut old_commute = false;
        let mut cur = ends.head;
        while let Some(r) = cur {
            if old_write || (old_read && old_commute) {
                break;
            }
            let node = &mut self.nodes[r.idx()];
            let read_ok = !write_seen && !commute_seen;
            let write_ok = !write_seen && !read_seen && !commute_seen;
            let commute_ok =
                !write_seen && !read_seen && (holder.is_none() || holder == Some(r));
            if node.rights.read == DeclState::Immediate && read_ok != node.read_granted {
                out.push(Transition {
                    task: node.task,
                    object,
                    kind: AccessKind::Read,
                    granted: read_ok,
                });
            }
            if node.rights.write == DeclState::Immediate && write_ok != node.write_granted {
                out.push(Transition {
                    task: node.task,
                    object,
                    kind: AccessKind::Write,
                    granted: write_ok,
                });
            }
            if node.rights.commute == DeclState::Immediate && commute_ok != node.commute_granted
            {
                out.push(Transition {
                    task: node.task,
                    object,
                    kind: AccessKind::Commute,
                    granted: commute_ok,
                });
            }
            node.read_granted = read_ok;
            node.write_granted = write_ok;
            node.commute_granted = commute_ok;
            let is_fresh = fresh.contains(&r);
            if node.rights.read.is_active() {
                read_seen = true;
                old_read |= !is_fresh;
            }
            if node.rights.write.is_active() {
                write_seen = true;
                old_write |= !is_fresh;
            }
            if node.rights.commute.is_active() {
                commute_seen = true;
                old_commute |= !is_fresh;
            }
            cur = node.next;
        }
    }

    /// [`recompute`](Self::recompute) over the changed prefix only —
    /// the `Granted`-shaped view of
    /// [`recompute_diff_incremental`](Self::recompute_diff_incremental),
    /// under the same contract.
    pub fn recompute_incremental(&mut self, object: ObjectId, fresh: &[NodeRef]) -> Vec<Granted> {
        self.recompute_diff_incremental(object, fresh)
            .into_iter()
            .filter(|t| t.granted)
            .map(|t| Granted { task: t.task, object: t.object, kind: t.kind })
            .collect()
    }

    /// Tasks with active declarations that precede `r` and conflict
    /// with an access of kind `kind` by `r`'s task — the dynamic
    /// dependence edges of the task graph (Figure 4).
    pub fn conflicting_predecessors(&self, r: NodeRef, kind: AccessKind) -> Vec<TaskId> {
        let mut out = Vec::new();
        let mut cur = self.node(r).prev;
        while let Some(p) = cur {
            let n = self.node(p);
            let conflicts = match kind {
                AccessKind::Read => n.rights.write.is_active() || n.rights.commute.is_active(),
                AccessKind::Write => n.rights.is_active(),
                AccessKind::Commute => n.rights.read.is_active() || n.rights.write.is_active(),
            };
            if conflicts && !out.contains(&n.task) {
                out.push(n.task);
            }
            cur = n.prev;
        }
        out
    }

    /// Length of an object's queue (anchors included). O(1) via the
    /// maintained per-queue counter.
    pub fn queue_len(&self, object: ObjectId) -> usize {
        self.ends.get(&object).map_or(0, |e| e.len as usize)
    }

    /// Whether `r` is the only live node in its object's queue — the
    /// single-owner case. A sole occupant has no peers to block or
    /// revoke, so enabling-state recomputes after its own transitions
    /// (e.g. acquiring commute exclusivity) are provably no-ops.
    pub fn sole_occupant(&self, r: NodeRef) -> bool {
        let object = self.node(r).object;
        self.ends
            .get(&object)
            .is_some_and(|e| e.len == 1 && e.head == Some(r))
    }
}

/// Iterator over one object's queue.
pub struct QueueIter<'a> {
    arena: &'a QueueArena,
    cur: Option<NodeRef>,
}

impl<'a> Iterator for QueueIter<'a> {
    type Item = (NodeRef, &'a QNode);
    fn next(&mut self) -> Option<Self::Item> {
        let r = self.cur?;
        let n = self.arena.node(r);
        self.cur = n.next;
        Some((r, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const O: ObjectId = ObjectId(1);

    fn arena() -> QueueArena {
        let mut a = QueueArena::new();
        a.register_object(O);
        a
    }

    #[test]
    fn tail_pushes_keep_order() {
        let mut a = arena();
        let n1 = a.push_tail(O, TaskId(1), DeclRights::RD);
        let n2 = a.push_tail(O, TaskId(2), DeclRights::WR);
        let order: Vec<TaskId> = a.iter(O).map(|(_, n)| n.task).collect();
        assert_eq!(order, vec![TaskId(1), TaskId(2)]);
        assert_ne!(n1, n2);
    }

    #[test]
    fn insert_before_places_child_ahead_of_parent() {
        let mut a = arena();
        let parent = a.push_tail(O, TaskId(1), DeclRights::RD_WR);
        let _c1 = a.insert_before(parent, TaskId(2), DeclRights::RD);
        let _c2 = a.insert_before(parent, TaskId(3), DeclRights::WR);
        let order: Vec<TaskId> = a.iter(O).map(|(_, n)| n.task).collect();
        // c1 created first, then c2 — both before parent, in creation order.
        assert_eq!(order, vec![TaskId(2), TaskId(3), TaskId(1)]);
    }

    #[test]
    fn readers_share_writers_exclude() {
        let mut a = arena();
        let w = a.push_tail(O, TaskId(1), DeclRights::WR);
        let r1 = a.push_tail(O, TaskId(2), DeclRights::RD);
        let r2 = a.push_tail(O, TaskId(3), DeclRights::RD);
        a.recompute(O);
        assert!(a.node(w).write_granted);
        assert!(!a.node(r1).read_granted);
        assert!(!a.node(r2).read_granted);
        // Writer completes: both readers enable simultaneously.
        a.remove(w);
        let grants = a.recompute(O);
        assert_eq!(grants.len(), 2);
        assert!(a.node(r1).read_granted && a.node(r2).read_granted);
    }

    #[test]
    fn writer_waits_for_all_earlier_readers() {
        let mut a = arena();
        let r1 = a.push_tail(O, TaskId(1), DeclRights::RD);
        let r2 = a.push_tail(O, TaskId(2), DeclRights::RD);
        let w = a.push_tail(O, TaskId(3), DeclRights::WR);
        a.recompute(O);
        assert!(a.node(r1).read_granted && a.node(r2).read_granted);
        assert!(!a.node(w).write_granted);
        a.remove(r1);
        a.recompute(O);
        assert!(!a.node(w).write_granted, "one reader still active");
        a.remove(r2);
        let g = a.recompute(O);
        assert_eq!(g, vec![Granted { task: TaskId(3), object: O, kind: AccessKind::Write }]);
    }

    #[test]
    fn deferred_write_blocks_successors_but_reports_no_grant() {
        let mut a = arena();
        let d = a.push_tail(O, TaskId(1), DeclRights::DF_WR);
        let r = a.push_tail(O, TaskId(2), DeclRights::RD);
        let grants = a.recompute(O);
        // The deferred write is not reported (not immediate), and it
        // blocks the reader behind it.
        assert!(grants.is_empty());
        assert!(!a.node(r).read_granted);
        assert!(a.node(d).write_granted, "flag still tracks position");
    }

    #[test]
    fn retiring_a_side_enables_successors() {
        let mut a = arena();
        let d = a.push_tail(O, TaskId(1), DeclRights::DF_WR);
        let r = a.push_tail(O, TaskId(2), DeclRights::RD);
        a.recompute(O);
        assert!(!a.node(r).read_granted);
        // no_wr: the deferred writer promises not to write after all.
        a.node_mut(d).rights.write = DeclState::Retired;
        let g = a.recompute(O);
        assert_eq!(g, vec![Granted { task: TaskId(2), object: O, kind: AccessKind::Read }]);
    }

    #[test]
    fn anchors_neither_block_nor_grant() {
        let mut a = arena();
        let anchor = a.push_tail(O, TaskId(1), DeclRights::NONE);
        let w = a.push_tail(O, TaskId(2), DeclRights::WR);
        let g = a.recompute(O);
        assert!(a.node(anchor).is_anchor());
        assert_eq!(g.len(), 1);
        assert!(a.node(w).write_granted);
    }

    #[test]
    fn child_insertion_revokes_parent_grant() {
        let mut a = arena();
        let parent = a.push_tail(O, TaskId(1), DeclRights::RD_WR);
        a.recompute(O);
        assert!(a.node(parent).write_granted);
        // Parent spawns a child that writes: parent loses access until
        // the child completes (serial semantics: the child body runs
        // at its creation point).
        let child = a.insert_before(parent, TaskId(2), DeclRights::WR);
        a.recompute(O);
        assert!(!a.node(parent).write_granted && !a.node(parent).read_granted);
        assert!(a.node(child).write_granted);
        a.remove(child);
        let g = a.recompute(O);
        assert_eq!(g.len(), 2, "parent regains read and write");
    }

    #[test]
    fn conflicting_predecessors_form_edges() {
        let mut a = arena();
        let _w = a.push_tail(O, TaskId(1), DeclRights::WR);
        let _r = a.push_tail(O, TaskId(2), DeclRights::RD);
        let w2 = a.push_tail(O, TaskId(3), DeclRights::WR);
        let preds = a.conflicting_predecessors(w2, AccessKind::Write);
        assert_eq!(preds, vec![TaskId(2), TaskId(1)]);
        let r2 = a.push_tail(O, TaskId(4), DeclRights::RD);
        let preds_r = a.conflicting_predecessors(r2, AccessKind::Read);
        assert_eq!(preds_r, vec![TaskId(3), TaskId(1)], "reads only conflict with writes");
    }

    #[test]
    fn removal_recycles_slots() {
        let mut a = arena();
        let n1 = a.push_tail(O, TaskId(1), DeclRights::RD);
        a.remove(n1);
        let n2 = a.push_tail(O, TaskId(2), DeclRights::RD);
        assert_eq!(n1, n2, "slot reused");
        assert_eq!(a.queue_len(O), 1);
    }

    #[test]
    fn commuting_updates_do_not_block_each_other() {
        let mut a = arena();
        let c1 = a.push_tail(O, TaskId(1), DeclRights::CM);
        let c2 = a.push_tail(O, TaskId(2), DeclRights::CM);
        let r = a.push_tail(O, TaskId(3), DeclRights::RD);
        a.recompute(O);
        assert!(a.node(c1).commute_granted);
        assert!(a.node(c2).commute_granted, "commutes are unordered among themselves");
        assert!(!a.node(r).read_granted, "a read waits for earlier commutes");
        // Task 2 acquires the update exclusivity first (any order is
        // legal): task 1's grant is withheld until release.
        a.node_mut(c2).commute_holding = true;
        a.recompute(O);
        assert!(!a.node(c1).commute_granted);
        assert!(a.node(c2).commute_granted);
        a.node_mut(c2).commute_holding = false;
        a.node_mut(c2).rights.commute = DeclState::Retired;
        let g = a.recompute(O);
        assert!(g.contains(&Granted { task: TaskId(1), object: O, kind: AccessKind::Commute }));
        a.remove(c1);
        a.remove(c2);
        let g2 = a.recompute(O);
        assert_eq!(g2, vec![Granted { task: TaskId(3), object: O, kind: AccessKind::Read }]);
    }

    #[test]
    fn commute_waits_for_earlier_writer() {
        let mut a = arena();
        let w = a.push_tail(O, TaskId(1), DeclRights::WR);
        let c = a.push_tail(O, TaskId(2), DeclRights::CM);
        a.recompute(O);
        assert!(!a.node(c).commute_granted);
        a.remove(w);
        let g = a.recompute(O);
        assert_eq!(g, vec![Granted { task: TaskId(2), object: O, kind: AccessKind::Commute }]);
    }

    #[test]
    fn diff_reports_revocation_on_child_insertion() {
        let mut a = arena();
        let parent = a.push_tail(O, TaskId(1), DeclRights::RD_WR);
        let g = a.recompute_diff(O);
        assert_eq!(g.len(), 2, "parent granted read+write");
        assert!(g.iter().all(|t| t.granted));
        // A child writer inserted ahead takes both grants back.
        let child = a.insert_before(parent, TaskId(2), DeclRights::WR);
        let d = a.recompute_diff(O);
        let revoked: Vec<_> = d.iter().filter(|t| !t.granted).collect();
        assert_eq!(revoked.len(), 2, "parent loses read and write");
        assert!(revoked.iter().all(|t| t.task == TaskId(1)));
        assert!(d
            .iter()
            .any(|t| t.granted && t.task == TaskId(2) && t.kind == AccessKind::Write));
        // Idempotent: nothing changed, nothing reported.
        assert!(a.recompute_diff(O).is_empty());
        a.remove(child);
        let back = a.recompute_diff(O);
        assert_eq!(back.len(), 2);
        assert!(back.iter().all(|t| t.granted && t.task == TaskId(1)));
    }

    /// Every node's cached flags, for cross-checking the incremental
    /// scan against the full one.
    fn flags(a: &QueueArena) -> Vec<(TaskId, bool, bool, bool)> {
        a.iter(O)
            .map(|(_, n)| (n.task, n.read_granted, n.write_granted, n.commute_granted))
            .collect()
    }

    #[test]
    fn incremental_tail_attach_and_removal_match_full_recompute() {
        let mut a = arena();
        let mut refs = Vec::new();
        for t in 1..=20 {
            let rights = match t % 3 {
                0 => DeclRights::RD,
                1 => DeclRights::RD_WR,
                _ => DeclRights::CM,
            };
            let r = a.push_tail(O, TaskId(t), rights);
            let d = a.recompute_diff_incremental(O, &[r]);
            // Replaying the full scan must find nothing left to fix
            // and the flags must be byte-identical.
            let before = flags(&a);
            assert!(a.recompute_diff(O).is_empty(), "incremental missed a flip: {d:?}");
            assert_eq!(flags(&a), before);
            refs.push(r);
        }
        // Drain from the head: each removal's incremental diff leaves
        // the queue exactly as a full recompute would.
        for r in refs {
            a.remove(r);
            let _ = a.recompute_diff_incremental(O, &[]);
            let before = flags(&a);
            assert!(a.recompute_diff(O).is_empty());
            assert_eq!(flags(&a), before);
        }
    }

    #[test]
    fn incremental_insert_reports_revocation_past_early_exit() {
        let mut a = arena();
        let parent = a.push_tail(O, TaskId(1), DeclRights::RD_WR);
        a.recompute(O);
        assert!(a.node(parent).write_granted);
        // The child writer is inserted ahead: were it counted toward
        // the early-exit condition, the scan would stop before ever
        // revoking the parent's grants.
        let child = a.insert_before(parent, TaskId(2), DeclRights::WR);
        let d = a.recompute_diff_incremental(O, &[child]);
        assert!(d.contains(&Transition { task: TaskId(1), object: O, kind: AccessKind::Write, granted: false }));
        assert!(d.contains(&Transition { task: TaskId(1), object: O, kind: AccessKind::Read, granted: false }));
        assert!(d.contains(&Transition { task: TaskId(2), object: O, kind: AccessKind::Write, granted: true }));
        assert!(a.recompute_diff(O).is_empty(), "incremental left stale flags");
    }

    #[test]
    fn set_commute_holding_keeps_holder_cache_for_incremental() {
        let mut a = arena();
        let c1 = a.push_tail(O, TaskId(1), DeclRights::CM);
        let c2 = a.push_tail(O, TaskId(2), DeclRights::CM);
        a.recompute(O);
        assert!(a.node(c1).commute_granted && a.node(c2).commute_granted);
        a.set_commute_holding(c2, true);
        let d = a.recompute_diff_incremental(O, &[]);
        assert_eq!(
            d,
            vec![Transition { task: TaskId(1), object: O, kind: AccessKind::Commute, granted: false }]
        );
        // Removing the holder clears the cache and re-enables the peer.
        a.remove(c2);
        let d = a.recompute_diff_incremental(O, &[]);
        assert_eq!(
            d,
            vec![Transition { task: TaskId(1), object: O, kind: AccessKind::Commute, granted: true }]
        );
        assert!(a.recompute_diff(O).is_empty());
    }

    #[test]
    fn queue_len_counter_and_sole_occupant_track_mutations() {
        let mut a = arena();
        assert_eq!(a.queue_len(O), 0);
        let parent = a.push_tail(O, TaskId(1), DeclRights::RD_WR);
        assert_eq!(a.queue_len(O), 1);
        assert!(a.sole_occupant(parent));
        let child = a.insert_before(parent, TaskId(2), DeclRights::WR);
        assert_eq!(a.queue_len(O), 2);
        assert!(!a.sole_occupant(parent) && !a.sole_occupant(child));
        a.remove(child);
        assert_eq!(a.queue_len(O), 1);
        assert!(a.sole_occupant(parent));
        a.remove(parent);
        assert_eq!(a.queue_len(O), 0);
        // Counter survives slot recycling.
        let again = a.push_tail(O, TaskId(3), DeclRights::CM);
        assert_eq!(a.queue_len(O), 1);
        assert!(a.sole_occupant(again));
    }

    #[test]
    fn grants_emitted_in_queue_order() {
        let mut a = arena();
        let w = a.push_tail(O, TaskId(1), DeclRights::WR);
        let _r1 = a.push_tail(O, TaskId(5), DeclRights::RD);
        let _r2 = a.push_tail(O, TaskId(3), DeclRights::RD);
        a.recompute(O);
        a.remove(w);
        let g = a.recompute(O);
        let tasks: Vec<TaskId> = g.iter().map(|g| g.task).collect();
        assert_eq!(tasks, vec![TaskId(5), TaskId(3)], "queue order, not id order");
    }
}
