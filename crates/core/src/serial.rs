//! The serial elision: run a Jade program exactly as its underlying
//! sequential program, with full dynamic access checking.
//!
//! Every `withonly` body executes inline at its creation point — the
//! definition of the serial semantics every parallel execution must
//! reproduce. This executor is therefore:
//!
//! * the *reference* against which the determinism tests compare the
//!   threaded and simulated executions bit-for-bit;
//! * a debugging tool, exactly as the paper advertises: "Jade
//!   programmers can employ the same standard techniques used to
//!   debug serial programs" — specification errors (undeclared
//!   accesses, uncovered child declarations) surface here without any
//!   concurrency involved.

use crate::ctx::{violation, HoldSet, JadeCtx, ReadGuard, WriteGuard};
use crate::graph::{AccessStatus, DepGraph, Wake};
use crate::handle::{Object, Shared};
use crate::ids::TaskId;
use crate::spec::{AccessKind, ContBuilder, SpecBuilder};
use crate::stats::RuntimeStats;
use crate::store::{ObjectStore, Slot};
use crate::trace::TaskGraphTrace;

/// Execution context for the serial elision.
pub struct SerialCtx {
    engine: DepGraph,
    store: ObjectStore,
    current: TaskId,
    holds: Vec<(TaskId, HoldSet)>,
    virtual_work: f64,
}

impl SerialCtx {
    fn new(trace: bool) -> Self {
        let mut engine = DepGraph::new();
        if trace {
            engine.enable_trace();
        }
        SerialCtx {
            engine,
            store: ObjectStore::new(),
            current: TaskId::ROOT,
            holds: vec![(TaskId::ROOT, HoldSet::new())],
            virtual_work: 0.0,
        }
    }

    fn hold_set(&self) -> &HoldSet {
        &self.holds.last().expect("hold stack never empty").1
    }

    /// Total abstract work charged so far (all tasks).
    pub fn charged_work(&self) -> f64 {
        self.virtual_work
    }

    /// Engine statistics accumulated so far.
    pub fn stats(&self) -> RuntimeStats {
        self.engine.stats
    }
}

/// Run a Jade program serially; returns its result and the runtime
/// statistics (declarations, checks, conflicts...).
pub fn run<R>(program: impl FnOnce(&mut SerialCtx) -> R) -> (R, RuntimeStats) {
    let mut ctx = SerialCtx::new(false);
    let r = program(&mut ctx);
    let stats = ctx.engine.stats;
    (r, stats)
}

/// Run serially with dynamic task-graph capture (Figure 4).
pub fn run_traced<R>(program: impl FnOnce(&mut SerialCtx) -> R) -> (R, TaskGraphTrace) {
    let mut ctx = SerialCtx::new(true);
    let r = program(&mut ctx);
    let trace = ctx.engine.take_trace().expect("trace enabled");
    (r, trace)
}

impl JadeCtx for SerialCtx {
    fn create_named<T: Object>(&mut self, name: &str, value: T) -> Shared<T> {
        let oid = self.engine.create_object(self.current);
        self.store.insert(oid, Slot::new(name, value));
        Shared::from_raw(oid)
    }

    fn withonly<S, F>(&mut self, label: &str, spec: S, body: F)
    where
        S: FnOnce(&mut SpecBuilder),
        F: FnOnce(&mut Self) + Send + 'static,
    {
        let mut builder = SpecBuilder::new();
        spec(&mut builder);
        let (decls, placement) = builder.build();
        for d in &decls {
            if self.hold_set().conflicts(d.object, d.rights) {
                violation(crate::error::JadeError::ChildConflictsWithHeldGuard {
                    parent: self.current,
                    object: d.object,
                });
            }
        }
        let (tid, wakes) = self
            .engine
            .create_task(self.current, label, decls, placement)
            .unwrap_or_else(|e| violation(e));
        debug_assert!(
            wakes.contains(&Wake::Ready(tid)),
            "serial elision: every earlier task already completed, so the new task \
             must be immediately ready"
        );
        self.engine.start_task(tid);
        let saved = self.current;
        self.current = tid;
        self.holds.push((tid, HoldSet::new()));
        body(self);
        let (_, holds) = self.holds.pop().expect("frame pushed above");
        debug_assert!(!holds.any_held(), "task body leaked an access guard");
        self.current = saved;
        self.engine.finish_task(tid);
    }

    fn with_cont<C>(&mut self, changes: C)
    where
        C: FnOnce(&mut ContBuilder),
    {
        let mut builder = ContBuilder::new();
        changes(&mut builder);
        let (must_block, _wakes) = self
            .engine
            .with_cont(self.current, builder.build())
            .unwrap_or_else(|e| violation(e));
        debug_assert!(
            !must_block,
            "serial elision: no earlier task can be outstanding, so with-cont never blocks"
        );
    }

    fn rd<T: Object>(&mut self, h: &Shared<T>) -> ReadGuard<T> {
        match self.engine.check_access(self.current, h.id(), AccessKind::Read) {
            Ok(AccessStatus::Granted) => {}
            Ok(AccessStatus::MustWait) => unreachable!(
                "serial elision: access by {} to {} cannot wait",
                self.current,
                h.id()
            ),
            Err(e) => violation(e),
        }
        let lock = self.store.typed(h).unwrap_or_else(|e| violation(e));
        let token = self.hold_set().acquire(h.id(), AccessKind::Read);
        ReadGuard::new(lock, token)
    }

    fn wr<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        match self.engine.check_access(self.current, h.id(), AccessKind::Write) {
            Ok(AccessStatus::Granted) => {}
            Ok(AccessStatus::MustWait) => unreachable!(
                "serial elision: access by {} to {} cannot wait",
                self.current,
                h.id()
            ),
            Err(e) => violation(e),
        }
        let lock = self.store.typed(h).unwrap_or_else(|e| violation(e));
        let token = self.hold_set().acquire(h.id(), AccessKind::Write);
        WriteGuard::new(lock, token)
    }

    fn cm<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        match self.engine.check_access(self.current, h.id(), AccessKind::Commute) {
            Ok(AccessStatus::Granted) => {}
            Ok(AccessStatus::MustWait) => unreachable!(
                "serial elision: access by {} to {} cannot wait",
                self.current,
                h.id()
            ),
            Err(e) => violation(e),
        }
        let lock = self.store.typed(h).unwrap_or_else(|e| violation(e));
        let token = self.hold_set().acquire(h.id(), AccessKind::Commute);
        WriteGuard::new(lock, token)
    }

    fn charge(&mut self, work: f64) {
        self.virtual_work += work;
    }

    fn machines(&self) -> usize {
        1
    }

    fn task(&self) -> TaskId {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_run_inline_in_order() {
        let (result, stats) = run(|ctx| {
            let acc = ctx.create_named("acc", Vec::<f64>::new());
            for i in 0..5 {
                ctx.withonly(
                    &format!("push{i}"),
                    |s| {
                        s.rd_wr(acc);
                    },
                    move |c| {
                        c.wr(&acc).push(i as f64);
                    },
                );
            }
            ctx.rd(&acc).clone()
        });
        assert_eq!(result, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.tasks_created, 5);
    }

    #[test]
    fn nested_tasks_respect_serial_order() {
        let (result, _) = run(|ctx| {
            let log = ctx.create_named("log", Vec::<u64>::new());
            ctx.withonly(
                "outer",
                |s| {
                    s.rd_wr(log);
                },
                move |c| {
                    c.wr(&log).push(1);
                    c.withonly(
                        "inner",
                        |s| {
                            s.rd_wr(log);
                        },
                        move |c2| {
                            c2.wr(&log).push(2);
                        },
                    );
                    c.wr(&log).push(3);
                },
            );
            ctx.rd(&log).clone()
        });
        assert_eq!(result, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn undeclared_access_panics() {
        run(|ctx| {
            let a = ctx.create(1.0f64);
            let b = ctx.create(2.0f64);
            ctx.withonly(
                "bad",
                |s| {
                    s.rd(a);
                },
                move |c| {
                    let _ = *c.rd(&b); // b was never declared
                },
            );
        });
    }

    #[test]
    #[should_panic(expected = "did not declare")]
    fn uncovered_child_panics() {
        run(|ctx| {
            let a = ctx.create(0.0f64);
            ctx.withonly(
                "parent",
                |s| {
                    s.rd(a);
                },
                move |c| {
                    c.withonly(
                        "child",
                        |s| {
                            s.wr(a);
                        },
                        move |c2| {
                            *c2.wr(&a) = 1.0;
                        },
                    );
                },
            );
        });
    }

    #[test]
    #[should_panic(expected = "holding a conflicting access guard")]
    fn spawning_while_holding_conflicting_guard_panics() {
        run(|ctx| {
            let a = ctx.create(0.0f64);
            ctx.withonly(
                "parent",
                |s| {
                    s.rd_wr(a);
                },
                move |c| {
                    let _g = c.rd(&a);
                    c.withonly(
                        "child",
                        |s| {
                            s.wr(a);
                        },
                        move |c2| {
                            *c2.wr(&a) = 1.0;
                        },
                    );
                },
            );
        });
    }

    #[test]
    fn with_cont_pipeline_executes_serially() {
        let (v, stats) = run(|ctx| {
            let col = ctx.create_named("col", 0.0f64);
            ctx.withonly(
                "producer",
                |s| {
                    s.rd_wr(col);
                },
                move |c| {
                    *c.wr(&col) = 42.0;
                },
            );
            ctx.withonly(
                "consumer",
                |s| {
                    s.df_rd(col);
                },
                move |c| {
                    c.with_cont(|cb| {
                        cb.to_rd(col);
                    });
                    let _v = *c.rd(&col);
                    c.with_cont(|cb| {
                        cb.no_rd(col);
                    });
                },
            );
            *ctx.rd(&col)
        });
        assert_eq!(v, 42.0);
        assert_eq!(stats.with_conts, 2);
    }

    #[test]
    fn charge_accumulates_virtual_work() {
        let mut total = 0.0;
        let ((), _) = run(|ctx| {
            ctx.withonly("w", |_| {}, |c| c.charge(5.0));
            ctx.charge(2.0);
            total = ctx.charged_work();
        });
        assert_eq!(total, 7.0);
    }

    #[test]
    fn machines_is_one() {
        run(|ctx| assert_eq!(ctx.machines(), 1));
    }
}
