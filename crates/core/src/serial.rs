//! The serial elision: run a Jade program exactly as its underlying
//! sequential program, with full dynamic access checking.
//!
//! Every `withonly` body executes inline at its creation point — the
//! definition of the serial semantics every parallel execution must
//! reproduce. This executor is therefore:
//!
//! * the *reference* against which the determinism tests compare the
//!   threaded and simulated executions bit-for-bit;
//! * a debugging tool, exactly as the paper advertises: "Jade
//!   programmers can employ the same standard techniques used to
//!   debug serial programs" — specification errors (undeclared
//!   accesses, uncovered child declarations) surface here without any
//!   concurrency involved.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::Instant;

use crate::ctx::{take_violation, violation, HoldSet, JadeCtx, ReadGuard, WriteGuard};
use crate::error::JadeFault;
use crate::graph::{AccessStatus, DepGraph, Wake};
use crate::handle::{Object, Shared};
use crate::ids::TaskId;
use crate::observe::{Event, EventKind, ObserverHub};
use crate::runtime::{CancelSignal, Report, RunConfig, Runtime};
use crate::spec::{AccessKind, ContBuilder, SpecBuilder};
use crate::stats::RuntimeStats;
use crate::store::{ObjectStore, Slot};
use crate::trace::TaskGraphTrace;

/// Execution context for the serial elision.
pub struct SerialCtx {
    engine: DepGraph,
    store: ObjectStore,
    current: TaskId,
    holds: Vec<(TaskId, HoldSet)>,
    virtual_work: f64,
    hub: ObserverHub,
    t0: Instant,
    cancel: Option<CancelSignal>,
}

/// Marker payload the serial elision unwinds with when a run observes
/// its [`CancelSignal`] at a task boundary; `run_job` catches it and
/// classifies the run as [`JadeFault::Cancelled`].
struct SerialCancelMarker;

impl SerialCtx {
    fn new(trace: bool, hub: ObserverHub) -> Self {
        let mut engine = DepGraph::new();
        if trace {
            engine.enable_trace();
        }
        SerialCtx {
            engine,
            store: ObjectStore::new(),
            current: TaskId::ROOT,
            holds: vec![(TaskId::ROOT, HoldSet::new())],
            virtual_work: 0.0,
            hub,
            t0: Instant::now(),
            cancel: None,
        }
    }

    fn emit(&mut self, task: TaskId, kind: EventKind) {
        let nanos = self.t0.elapsed().as_nanos() as u64;
        self.hub.emit(Event { nanos, task, kind });
    }

    fn hold_set(&self) -> &HoldSet {
        &self.holds.last().expect("hold stack never empty").1
    }

    /// Total abstract work charged so far (all tasks).
    pub fn charged_work(&self) -> f64 {
        self.virtual_work
    }

    /// Engine statistics accumulated so far.
    pub fn stats(&self) -> RuntimeStats {
        self.engine.stats
    }
}

/// Run a Jade program serially; returns its result and the runtime
/// statistics (declarations, checks, conflicts...).
pub fn run<R>(program: impl FnOnce(&mut SerialCtx) -> R) -> (R, RuntimeStats) {
    let mut ctx = SerialCtx::new(false, ObserverHub::inactive());
    let r = program(&mut ctx);
    let stats = ctx.engine.stats;
    (r, stats)
}

/// Run serially with dynamic task-graph capture (Figure 4).
pub fn run_traced<R>(program: impl FnOnce(&mut SerialCtx) -> R) -> (R, TaskGraphTrace) {
    let mut ctx = SerialCtx::new(true, ObserverHub::inactive());
    let r = program(&mut ctx);
    let trace = ctx.engine.take_trace().expect("trace enabled");
    (r, trace)
}

/// The serial elision as a [`Runtime`] backend: same inline execution
/// as [`run`], surfaced through the uniform `execute` entry point so
/// conformance tests and app binaries can swap it in for the parallel
/// executors. `workers`/`throttle` options are ignored (there is one
/// lane and nothing to throttle); trace, timeline, contention and
/// observers are honored.
#[derive(Debug, Default, Clone, Copy)]
pub struct SerialRuntime;

impl Runtime for SerialRuntime {
    type Ctx = SerialCtx;

    fn run_job<R, F>(&self, mut cfg: RunConfig, program: F) -> Result<Report<R>, JadeFault>
    where
        R: Send + 'static,
        F: FnOnce(&mut SerialCtx) -> R + Send + 'static,
    {
        let hub = cfg.take_hub();
        let mut ctx = SerialCtx::new(cfg.trace, hub);
        ctx.cancel = cfg.cancel.clone();
        match catch_unwind(AssertUnwindSafe(|| program(&mut ctx))) {
            Ok(result) => {
                let elapsed = ctx.t0.elapsed().as_nanos() as u64;
                let stats = ctx.engine.stats;
                let trace = ctx.engine.take_trace();
                let hub = std::mem::replace(&mut ctx.hub, ObserverHub::inactive());
                let arts = hub.finish(elapsed.max(1));
                let mut rep = Report::new(result, stats, elapsed, 1);
                rep.trace = trace;
                rep.timeline = arts.timeline;
                rep.contention = arts.contention;
                Ok(rep)
            }
            Err(payload) => {
                if payload.is::<SerialCancelMarker>() {
                    return Err(JadeFault::Cancelled { task: TaskId::ROOT });
                }
                let message = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "task panicked with a non-string payload".to_string());
                if let Some(err) = take_violation() {
                    if message == format!("Jade programming model violation: {err}") {
                        let task = err.task_hint().unwrap_or(ctx.current);
                        return Err(JadeFault::SpecViolation { task, error: err });
                    }
                }
                if ctx.current.is_root() {
                    // The main program itself panicked: not a task
                    // fault, propagate to the caller unchanged.
                    resume_unwind(payload);
                }
                Err(JadeFault::TaskPanicked { task: ctx.current, message })
            }
        }
    }
}

impl JadeCtx for SerialCtx {
    fn create_named<T: Object>(&mut self, name: &str, value: T) -> Shared<T> {
        let oid = self.engine.create_object(self.current);
        self.store.insert(oid, Slot::new(name, value));
        Shared::from_raw(oid)
    }

    fn withonly<S, F>(&mut self, label: &str, spec: S, body: F)
    where
        S: FnOnce(&mut SpecBuilder),
        F: FnOnce(&mut Self) + Send + 'static,
    {
        // The serial elision's cancellation point: between tasks, so a
        // cancelled run never tears a task body in half.
        if self.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            std::panic::panic_any(SerialCancelMarker);
        }
        let mut builder = SpecBuilder::new();
        spec(&mut builder);
        let (decls, placement) = builder.build();
        for d in &decls {
            if self.hold_set().conflicts(d.object, d.rights) {
                violation(crate::error::JadeError::ChildConflictsWithHeldGuard {
                    parent: self.current,
                    object: d.object,
                });
            }
        }
        let (tid, wakes) = self
            .engine
            .create_task(self.current, label, decls, placement)
            .unwrap_or_else(|e| violation(e));
        debug_assert!(
            wakes.contains(&Wake::Ready(tid)),
            "serial elision: every earlier task already completed, so the new task \
             must be immediately ready"
        );
        if self.hub.is_active() {
            let parent = self.current;
            self.emit(tid, EventKind::TaskCreated { parent, label: label.to_string() });
            self.emit(tid, EventKind::TaskEnabled);
            self.emit(tid, EventKind::TaskDispatched { worker: 0 });
        }
        self.engine.start_task(tid);
        if self.hub.is_active() {
            self.emit(tid, EventKind::TaskStarted { worker: 0 });
        }
        let saved = self.current;
        self.current = tid;
        self.holds.push((tid, HoldSet::new()));
        body(self);
        let (_, holds) = self.holds.pop().expect("frame pushed above");
        debug_assert!(!holds.any_held(), "task body leaked an access guard");
        self.current = saved;
        self.engine.finish_task(tid);
        if self.hub.is_active() {
            self.emit(tid, EventKind::TaskFinished { worker: 0 });
        }
    }

    fn with_cont<C>(&mut self, changes: C)
    where
        C: FnOnce(&mut ContBuilder),
    {
        let mut builder = ContBuilder::new();
        changes(&mut builder);
        let (must_block, _wakes) = self
            .engine
            .with_cont(self.current, builder.build())
            .unwrap_or_else(|e| violation(e));
        debug_assert!(
            !must_block,
            "serial elision: no earlier task can be outstanding, so with-cont never blocks"
        );
    }

    fn rd<T: Object>(&mut self, h: &Shared<T>) -> ReadGuard<T> {
        match self.engine.check_access(self.current, h.id(), AccessKind::Read) {
            Ok(AccessStatus::Granted) => {}
            Ok(AccessStatus::MustWait) => unreachable!(
                "serial elision: access by {} to {} cannot wait",
                self.current,
                h.id()
            ),
            Err(e) => violation(e),
        }
        let lock = self.store.typed(h).unwrap_or_else(|e| violation(e));
        let token = self.hold_set().acquire(h.id(), AccessKind::Read);
        ReadGuard::new(lock, token)
    }

    fn wr<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        match self.engine.check_access(self.current, h.id(), AccessKind::Write) {
            Ok(AccessStatus::Granted) => {}
            Ok(AccessStatus::MustWait) => unreachable!(
                "serial elision: access by {} to {} cannot wait",
                self.current,
                h.id()
            ),
            Err(e) => violation(e),
        }
        let lock = self.store.typed(h).unwrap_or_else(|e| violation(e));
        let token = self.hold_set().acquire(h.id(), AccessKind::Write);
        WriteGuard::new(lock, token)
    }

    fn cm<T: Object>(&mut self, h: &Shared<T>) -> WriteGuard<T> {
        match self.engine.check_access(self.current, h.id(), AccessKind::Commute) {
            Ok(AccessStatus::Granted) => {}
            Ok(AccessStatus::MustWait) => unreachable!(
                "serial elision: access by {} to {} cannot wait",
                self.current,
                h.id()
            ),
            Err(e) => violation(e),
        }
        let lock = self.store.typed(h).unwrap_or_else(|e| violation(e));
        let token = self.hold_set().acquire(h.id(), AccessKind::Commute);
        WriteGuard::new(lock, token)
    }

    fn charge(&mut self, work: f64) {
        self.virtual_work += work;
    }

    fn machines(&self) -> usize {
        1
    }

    fn task(&self) -> TaskId {
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_run_inline_in_order() {
        let (result, stats) = run(|ctx| {
            let acc = ctx.create_named("acc", Vec::<f64>::new());
            for i in 0..5 {
                ctx.withonly(
                    &format!("push{i}"),
                    |s| {
                        s.rd_wr(acc);
                    },
                    move |c| {
                        c.wr(&acc).push(i as f64);
                    },
                );
            }
            ctx.rd(&acc).clone()
        });
        assert_eq!(result, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.tasks_created, 5);
    }

    #[test]
    fn nested_tasks_respect_serial_order() {
        let (result, _) = run(|ctx| {
            let log = ctx.create_named("log", Vec::<u64>::new());
            ctx.withonly(
                "outer",
                |s| {
                    s.rd_wr(log);
                },
                move |c| {
                    c.wr(&log).push(1);
                    c.withonly(
                        "inner",
                        |s| {
                            s.rd_wr(log);
                        },
                        move |c2| {
                            c2.wr(&log).push(2);
                        },
                    );
                    c.wr(&log).push(3);
                },
            );
            ctx.rd(&log).clone()
        });
        assert_eq!(result, vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "undeclared")]
    fn undeclared_access_panics() {
        run(|ctx| {
            let a = ctx.create(1.0f64);
            let b = ctx.create(2.0f64);
            ctx.withonly(
                "bad",
                |s| {
                    s.rd(a);
                },
                move |c| {
                    let _ = *c.rd(&b); // b was never declared
                },
            );
        });
    }

    #[test]
    #[should_panic(expected = "did not declare")]
    fn uncovered_child_panics() {
        run(|ctx| {
            let a = ctx.create(0.0f64);
            ctx.withonly(
                "parent",
                |s| {
                    s.rd(a);
                },
                move |c| {
                    c.withonly(
                        "child",
                        |s| {
                            s.wr(a);
                        },
                        move |c2| {
                            *c2.wr(&a) = 1.0;
                        },
                    );
                },
            );
        });
    }

    #[test]
    #[should_panic(expected = "holding a conflicting access guard")]
    fn spawning_while_holding_conflicting_guard_panics() {
        run(|ctx| {
            let a = ctx.create(0.0f64);
            ctx.withonly(
                "parent",
                |s| {
                    s.rd_wr(a);
                },
                move |c| {
                    let _g = c.rd(&a);
                    c.withonly(
                        "child",
                        |s| {
                            s.wr(a);
                        },
                        move |c2| {
                            *c2.wr(&a) = 1.0;
                        },
                    );
                },
            );
        });
    }

    #[test]
    fn with_cont_pipeline_executes_serially() {
        let (v, stats) = run(|ctx| {
            let col = ctx.create_named("col", 0.0f64);
            ctx.withonly(
                "producer",
                |s| {
                    s.rd_wr(col);
                },
                move |c| {
                    *c.wr(&col) = 42.0;
                },
            );
            ctx.withonly(
                "consumer",
                |s| {
                    s.df_rd(col);
                },
                move |c| {
                    c.with_cont(|cb| {
                        cb.to_rd(col);
                    });
                    let _v = *c.rd(&col);
                    c.with_cont(|cb| {
                        cb.no_rd(col);
                    });
                },
            );
            *ctx.rd(&col)
        });
        assert_eq!(v, 42.0);
        assert_eq!(stats.with_conts, 2);
    }

    #[test]
    fn charge_accumulates_virtual_work() {
        let mut total = 0.0;
        let ((), _) = run(|ctx| {
            ctx.withonly("w", |_| {}, |c| c.charge(5.0));
            ctx.charge(2.0);
            total = ctx.charged_work();
        });
        assert_eq!(total, 7.0);
    }

    #[test]
    fn machines_is_one() {
        run(|ctx| assert_eq!(ctx.machines(), 1));
    }

    #[test]
    fn execute_reports_stats_and_requested_artifacts() {
        let rep = SerialRuntime
            .execute(RunConfig::new().profiled(), |ctx| {
                let acc = ctx.create_named("acc", 0.0f64);
                for i in 0..3 {
                    ctx.withonly(
                        &format!("add{i}"),
                        |s| {
                            s.rd_wr(acc);
                        },
                        move |c| {
                            *c.wr(&acc) += i as f64;
                        },
                    );
                }
                *ctx.rd(&acc)
            })
            .expect("clean run");
        assert_eq!(rep.result, 3.0);
        assert_eq!(rep.stats.tasks_created, 3);
        assert_eq!(rep.stats.tasks_finished, 3);
        assert_eq!(rep.workers, 1);
        let trace = rep.trace.as_ref().expect("trace requested");
        assert_eq!(trace.tasks().iter().filter(|t| !t.is_root()).count(), 3);
        let tl = rep.timeline.as_ref().expect("timeline requested");
        assert_eq!(tl.slices().len(), 3);
        assert!(tl.slices().iter().all(|s| s.worker == 0));
        assert!(rep.contention.is_some());
        assert!(rep.critical_path().is_some());
    }

    #[test]
    fn execute_without_artifacts_captures_nothing() {
        let rep = SerialRuntime
            .execute(RunConfig::new(), |ctx| {
                let x = ctx.create(1u64);
                ctx.withonly("t", |s| { s.rd_wr(x); }, move |c| *c.wr(&x) += 1);
                *ctx.rd(&x)
            })
            .expect("clean run");
        assert_eq!(rep.result, 2);
        assert!(rep.trace.is_none() && rep.timeline.is_none() && rep.contention.is_none());
    }

    #[test]
    fn execute_surfaces_violation_as_typed_fault() {
        let fault = SerialRuntime
            .execute(RunConfig::new(), |ctx| {
                let a = ctx.create(1.0f64);
                let b = ctx.create(2.0f64);
                ctx.withonly(
                    "bad",
                    |s| {
                        s.rd(a);
                    },
                    move |c| {
                        let _ = *c.rd(&b);
                    },
                );
            })
            .expect_err("undeclared access must fault");
        match fault {
            crate::error::JadeFault::SpecViolation { error, .. } => {
                assert!(matches!(error, crate::error::JadeError::UndeclaredAccess { .. }));
            }
            other => panic!("expected SpecViolation, got {other:?}"),
        }
    }

    #[test]
    fn execute_surfaces_task_panic_as_typed_fault() {
        let fault = SerialRuntime
            .execute(RunConfig::new(), |ctx| {
                ctx.withonly("boom", |_| {}, |_| panic!("task exploded"));
            })
            .expect_err("panicking task must fault");
        match fault {
            crate::error::JadeFault::TaskPanicked { message, .. } => {
                assert!(message.contains("task exploded"));
            }
            other => panic!("expected TaskPanicked, got {other:?}"),
        }
    }
}
