//! Runtime statistics counters.
//!
//! The paper's §5 lists what the implementation does on the program's
//! behalf (synchronization, checking, object management, throttling).
//! These counters make that work observable; the benchmark harness
//! reports them alongside timing so the runtime-overhead discussion in
//! §8 can be reproduced quantitatively.

/// Counters accumulated by an execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks created with `withonly` (root excluded).
    pub tasks_created: u64,
    /// Tasks executed inline in their creator because of task-creation
    /// throttling (§3.3: legal because serial semantics precludes a
    /// task waiting on a later task).
    pub tasks_inlined: u64,
    /// Tasks that ran to completion as scheduled tasks (root excluded;
    /// inlined tasks are counted in `tasks_inlined` instead, so
    /// `tasks_created == tasks_finished + tasks_inlined` at the end of
    /// every run).
    pub tasks_finished: u64,
    /// Declarations processed across all specifications.
    pub declarations: u64,
    /// Dynamic access checks performed (each guard acquisition).
    pub access_checks: u64,
    /// Accesses that had to wait for an earlier task.
    pub access_waits: u64,
    /// `with-cont` constructs executed.
    pub with_conts: u64,
    /// `with-cont`s that blocked on a deferred→immediate conversion.
    pub with_cont_blocks: u64,
    /// Dependence edges in the dynamic task graph (Figure 4), from the
    /// per-object access history: last conflicting writer plus, for a
    /// writer, the readers since — the same edges a trace records.
    pub conflicts: u64,
    /// Continuations stolen inline: a finishing task enabled exactly
    /// one successor and the finishing worker ran it directly, skipping
    /// the ready-queue/condvar round trip (rayon-style continuation
    /// stealing). Schedule-dependent; zero on serial backends.
    pub cont_steals: u64,
    /// `attach_task` spec-hash cache hits: a task's `Declaration`
    /// vector matched a previously validated spec from the same parent,
    /// so coverage checking and parent-node lookup were skipped.
    /// Schedule-dependent (per-worker caches); zero on serial backends.
    pub spec_cache_hits: u64,
    /// Guard acquisitions served from the task's own grant memo
    /// instead of the engine's shard lock table (single-owner fast
    /// path). Schedule-dependent; zero on serial backends.
    pub grant_cache_hits: u64,
    /// Peak number of simultaneously live (created, unfinished) tasks.
    pub peak_live_tasks: u64,
    /// High-water mark of task slots materialized in the engine's
    /// generational slab. With slot recycling this is bounded by the
    /// live-set (plus per-shard slack), not by `tasks_created`: zero
    /// steady-state slab growth shows up as `peak_task_slots` staying
    /// flat while `tasks_created` keeps climbing.
    pub peak_task_slots: u64,
    /// Objects registered.
    pub objects_created: u64,
}

impl RuntimeStats {
    /// Merge counters from another execution (e.g. per-worker stats).
    pub fn merge(&mut self, other: &RuntimeStats) {
        self.tasks_created += other.tasks_created;
        self.tasks_inlined += other.tasks_inlined;
        self.tasks_finished += other.tasks_finished;
        self.declarations += other.declarations;
        self.access_checks += other.access_checks;
        self.access_waits += other.access_waits;
        self.with_conts += other.with_conts;
        self.with_cont_blocks += other.with_cont_blocks;
        self.conflicts += other.conflicts;
        self.cont_steals += other.cont_steals;
        self.spec_cache_hits += other.spec_cache_hits;
        self.grant_cache_hits += other.grant_cache_hits;
        self.peak_live_tasks = self.peak_live_tasks.max(other.peak_live_tasks);
        self.peak_task_slots = self.peak_task_slots.max(other.peak_task_slots);
        self.objects_created += other.objects_created;
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "tasks created:     {}", self.tasks_created)?;
        writeln!(f, "tasks inlined:     {}", self.tasks_inlined)?;
        writeln!(f, "tasks finished:    {}", self.tasks_finished)?;
        writeln!(f, "declarations:      {}", self.declarations)?;
        writeln!(f, "access checks:     {}", self.access_checks)?;
        writeln!(f, "access waits:      {}", self.access_waits)?;
        writeln!(f, "with-conts:        {}", self.with_conts)?;
        writeln!(f, "with-cont blocks:  {}", self.with_cont_blocks)?;
        writeln!(f, "conflicts (edges): {}", self.conflicts)?;
        writeln!(f, "cont steals:       {}", self.cont_steals)?;
        writeln!(f, "spec cache hits:   {}", self.spec_cache_hits)?;
        writeln!(f, "grant cache hits:  {}", self.grant_cache_hits)?;
        writeln!(f, "peak live tasks:   {}", self.peak_live_tasks)?;
        writeln!(f, "peak task slots:   {}", self.peak_task_slots)?;
        write!(f, "objects created:   {}", self.objects_created)
    }
}

/// Message-layer statistics for backends that move data over a
/// network, real or simulated.
///
/// The simulator has always kept these internally (its `SimReport`);
/// the real multi-process backend produces the same counters from
/// actual socket traffic. Surfacing them uniformly through
/// [`crate::runtime::Report::net`] lets the same analysis read either
/// backend — the sim acting as the oracle for the wire.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered (payload frames, after deduplication).
    pub messages: u64,
    /// Payload + header bytes delivered.
    pub bytes: u64,
    /// Frames sent again after an ack timeout.
    pub retransmits: u64,
    /// Ack timeouts that fired (each triggers one retransmit).
    pub timeouts: u64,
    /// Frames lost in transit (injected loss or a dead peer).
    pub dropped: u64,
    /// Task bodies shipped to a worker as portable IR programs.
    pub tasks_shipped: u64,
    /// Object inputs a remote task needed that were already resident
    /// on the chosen worker at the current version (no payload sent).
    pub replica_hits: u64,
    /// Object inputs that had to be shipped because the chosen worker
    /// held no replica (or a stale one).
    pub replica_misses: u64,
    /// Object payload bytes shipped to workers (the cost of every
    /// replica miss and recovery re-ship; what locality-aware
    /// placement minimizes).
    pub payload_bytes: u64,
}

impl NetStats {
    /// Merge counters from another link or run.
    pub fn merge(&mut self, other: &NetStats) {
        self.messages += other.messages;
        self.bytes += other.bytes;
        self.retransmits += other.retransmits;
        self.timeouts += other.timeouts;
        self.dropped += other.dropped;
        self.tasks_shipped += other.tasks_shipped;
        self.replica_hits += other.replica_hits;
        self.replica_misses += other.replica_misses;
        self.payload_bytes += other.payload_bytes;
    }

    /// Fraction of remote-task object inputs served from a resident
    /// replica instead of a wire payload (1.0 when nothing shipped).
    pub fn replica_hit_rate(&self) -> f64 {
        let total = self.replica_hits + self.replica_misses;
        if total == 0 {
            1.0
        } else {
            self.replica_hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for NetStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "messages {} ({} bytes), retransmits {}, timeouts {}, dropped {}, \
             tasks shipped {}, replica hits {} / misses {} ({} payload bytes)",
            self.messages,
            self.bytes,
            self.retransmits,
            self.timeouts,
            self.dropped,
            self.tasks_shipped,
            self.replica_hits,
            self.replica_misses,
            self.payload_bytes
        )
    }
}

/// Fault-handling statistics: what the runtime survived.
///
/// A run that recovered from failures still *completes* — the paper's
/// position is that the runtime, not the program, owns distribution
/// and its hazards. These counters are how a recovered run reports
/// that something happened, instead of returning an error.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Worker (machine) deaths detected — heartbeat loss, socket EOF,
    /// or a simulated crash.
    pub crashes: u64,
    /// Tasks re-executed to completion after their worker died.
    pub recoveries: u64,
    /// Runs (or phases) that degraded to coordinator-local serial
    /// execution because too few workers survived.
    pub degraded: u64,
    /// Object payloads shipped again because the only worker holding
    /// the replica of the current version died (replica eviction on
    /// recovery).
    pub reshipped: u64,
}

impl FaultStats {
    /// True when no fault machinery fired at all.
    pub fn is_clean(&self) -> bool {
        *self == FaultStats::default()
    }

    /// Merge counters from another run or worker pool.
    pub fn merge(&mut self, other: &FaultStats) {
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.degraded += other.degraded;
        self.reshipped += other.reshipped;
    }
}

impl std::fmt::Display for FaultStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "crashes {}, recoveries {}, degraded {}, reshipped {}",
            self.crashes, self.recoveries, self.degraded, self.reshipped
        )
    }
}

/// Job-server statistics: what a [`crate::serve::Session`] admitted,
/// refused, and completed over its lifetime.
///
/// Where [`RuntimeStats`] counts the work *inside* one job, these
/// counters describe the intake discipline across jobs — the quantity
/// the ROADMAP's serving scenario is judged on (admission, fairness,
/// backpressure, drain), not kernel speed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs accepted into the session (queued or started).
    pub submitted: u64,
    /// Jobs that ran to completion and produced an `Ok` report.
    pub completed: u64,
    /// Jobs that finished with a [`crate::error::JadeFault`] other
    /// than cancellation.
    pub faulted: u64,
    /// Jobs cancelled before or during execution.
    pub cancelled: u64,
    /// Submissions refused with `SubmitError::Saturated` because the
    /// admission queue was at capacity (the backpressure signal).
    pub rejected_saturated: u64,
    /// Submissions refused because their `RunConfig` failed
    /// validation.
    pub rejected_invalid: u64,
    /// Submissions refused because the session was draining.
    pub rejected_draining: u64,
    /// High-water mark of jobs waiting in the admission queue.
    pub peak_queued: u64,
    /// High-water mark of jobs executing concurrently.
    pub peak_running: u64,
}

impl ServeStats {
    /// Merge counters from another session (or a shard of one).
    pub fn merge(&mut self, other: &ServeStats) {
        self.submitted += other.submitted;
        self.completed += other.completed;
        self.faulted += other.faulted;
        self.cancelled += other.cancelled;
        self.rejected_saturated += other.rejected_saturated;
        self.rejected_invalid += other.rejected_invalid;
        self.rejected_draining += other.rejected_draining;
        self.peak_queued = self.peak_queued.max(other.peak_queued);
        self.peak_running = self.peak_running.max(other.peak_running);
    }

    /// Every admitted job has been fully accounted for.
    pub fn is_settled(&self) -> bool {
        self.submitted == self.completed + self.faulted + self.cancelled
    }
}

impl std::fmt::Display for ServeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "submitted {} (completed {}, faulted {}, cancelled {}), \
             rejected {} saturated / {} invalid / {} draining, \
             peak queued {}, peak running {}",
            self.submitted,
            self.completed,
            self.faulted,
            self.cancelled,
            self.rejected_saturated,
            self.rejected_invalid,
            self.rejected_draining,
            self.peak_queued,
            self.peak_running
        )
    }
}

/// Lock-free counterpart of [`RuntimeStats`] for concurrent executors:
/// every field is a relaxed atomic, so workers account for their own
/// work without rendezvousing on a stats lock. The accounting identity
/// (`tasks_created == tasks_finished + tasks_inlined` at quiescence)
/// holds because each transition bumps exactly one counter and the
/// final [`snapshot`](AtomicStats::snapshot) happens after all workers
/// join.
#[derive(Debug, Default)]
pub struct AtomicStats {
    /// See [`RuntimeStats::tasks_created`].
    pub tasks_created: AtomicU64,
    /// See [`RuntimeStats::tasks_inlined`].
    pub tasks_inlined: AtomicU64,
    /// See [`RuntimeStats::tasks_finished`].
    pub tasks_finished: AtomicU64,
    /// See [`RuntimeStats::declarations`].
    pub declarations: AtomicU64,
    /// See [`RuntimeStats::access_checks`].
    pub access_checks: AtomicU64,
    /// See [`RuntimeStats::access_waits`].
    pub access_waits: AtomicU64,
    /// See [`RuntimeStats::with_conts`].
    pub with_conts: AtomicU64,
    /// See [`RuntimeStats::with_cont_blocks`].
    pub with_cont_blocks: AtomicU64,
    /// See [`RuntimeStats::conflicts`].
    pub conflicts: AtomicU64,
    /// See [`RuntimeStats::cont_steals`].
    pub cont_steals: AtomicU64,
    /// See [`RuntimeStats::spec_cache_hits`].
    pub spec_cache_hits: AtomicU64,
    /// See [`RuntimeStats::grant_cache_hits`].
    pub grant_cache_hits: AtomicU64,
    /// See [`RuntimeStats::peak_live_tasks`] (maintained as a CAS max).
    pub peak_live_tasks: AtomicU64,
    /// See [`RuntimeStats::peak_task_slots`] (maintained as a CAS max).
    pub peak_task_slots: AtomicU64,
    /// See [`RuntimeStats::objects_created`].
    pub objects_created: AtomicU64,
}

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

impl AtomicStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a new live-task high-water mark candidate.
    pub fn observe_live(&self, live: u64) {
        self.peak_live_tasks.fetch_max(live, Relaxed);
    }

    /// Record a new slab-size high-water mark candidate.
    pub fn observe_slots(&self, slots: u64) {
        self.peak_task_slots.fetch_max(slots, Relaxed);
    }

    /// Materialize a plain [`RuntimeStats`] copy. Call at quiescence
    /// (after workers join) for exact totals; mid-run snapshots are
    /// approximate, which is fine for monitoring.
    pub fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            tasks_created: self.tasks_created.load(Relaxed),
            tasks_inlined: self.tasks_inlined.load(Relaxed),
            tasks_finished: self.tasks_finished.load(Relaxed),
            declarations: self.declarations.load(Relaxed),
            access_checks: self.access_checks.load(Relaxed),
            access_waits: self.access_waits.load(Relaxed),
            with_conts: self.with_conts.load(Relaxed),
            with_cont_blocks: self.with_cont_blocks.load(Relaxed),
            conflicts: self.conflicts.load(Relaxed),
            cont_steals: self.cont_steals.load(Relaxed),
            spec_cache_hits: self.spec_cache_hits.load(Relaxed),
            grant_cache_hits: self.grant_cache_hits.load(Relaxed),
            peak_live_tasks: self.peak_live_tasks.load(Relaxed),
            peak_task_slots: self.peak_task_slots.load(Relaxed),
            objects_created: self.objects_created.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = RuntimeStats { tasks_created: 2, peak_live_tasks: 5, ..Default::default() };
        let b = RuntimeStats { tasks_created: 3, peak_live_tasks: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.tasks_created, 5);
        assert_eq!(a.peak_live_tasks, 5);
    }

    #[test]
    fn atomic_snapshot_round_trips() {
        let a = AtomicStats::new();
        a.tasks_created.fetch_add(4, Relaxed);
        a.tasks_finished.fetch_add(3, Relaxed);
        a.tasks_inlined.fetch_add(1, Relaxed);
        a.observe_live(7);
        a.observe_live(5);
        let s = a.snapshot();
        assert_eq!(s.tasks_created, 4);
        assert_eq!(s.tasks_finished + s.tasks_inlined, s.tasks_created);
        assert_eq!(s.peak_live_tasks, 7, "max, not last");
    }

    #[test]
    fn serve_stats_merge_and_settlement() {
        let mut a = ServeStats {
            submitted: 3,
            completed: 2,
            cancelled: 1,
            peak_queued: 4,
            ..Default::default()
        };
        assert!(a.is_settled());
        let b = ServeStats { submitted: 2, faulted: 1, peak_queued: 2, ..Default::default() };
        assert!(!b.is_settled());
        a.merge(&b);
        assert_eq!(a.submitted, 5);
        assert_eq!(a.peak_queued, 4, "peaks max, not add");
        assert!(!a.is_settled(), "one of b's jobs is still outstanding");
        let s = a.to_string();
        for key in ["submitted", "saturated", "peak queued", "peak running"] {
            assert!(s.contains(key), "missing {key}");
        }
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = RuntimeStats::default().to_string();
        for key in [
            "tasks created",
            "inlined",
            "finished",
            "with-cont",
            "conflicts",
            "cont steals",
            "spec cache",
            "grant cache",
            "objects",
        ] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
