//! Runtime statistics counters.
//!
//! The paper's §5 lists what the implementation does on the program's
//! behalf (synchronization, checking, object management, throttling).
//! These counters make that work observable; the benchmark harness
//! reports them alongside timing so the runtime-overhead discussion in
//! §8 can be reproduced quantitatively.

/// Counters accumulated by an execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Tasks created with `withonly` (root excluded).
    pub tasks_created: u64,
    /// Tasks executed inline in their creator because of task-creation
    /// throttling (§3.3: legal because serial semantics precludes a
    /// task waiting on a later task).
    pub tasks_inlined: u64,
    /// Tasks that ran to completion as scheduled tasks (root excluded;
    /// inlined tasks are counted in `tasks_inlined` instead, so
    /// `tasks_created == tasks_finished + tasks_inlined` at the end of
    /// every run).
    pub tasks_finished: u64,
    /// Declarations processed across all specifications.
    pub declarations: u64,
    /// Dynamic access checks performed (each guard acquisition).
    pub access_checks: u64,
    /// Accesses that had to wait for an earlier task.
    pub access_waits: u64,
    /// `with-cont` constructs executed.
    pub with_conts: u64,
    /// `with-cont`s that blocked on a deferred→immediate conversion.
    pub with_cont_blocks: u64,
    /// Dependence conflicts discovered (edges in the dynamic graph).
    pub conflicts: u64,
    /// Peak number of simultaneously live (created, unfinished) tasks.
    pub peak_live_tasks: u64,
    /// Objects registered.
    pub objects_created: u64,
}

impl RuntimeStats {
    /// Merge counters from another execution (e.g. per-worker stats).
    pub fn merge(&mut self, other: &RuntimeStats) {
        self.tasks_created += other.tasks_created;
        self.tasks_inlined += other.tasks_inlined;
        self.tasks_finished += other.tasks_finished;
        self.declarations += other.declarations;
        self.access_checks += other.access_checks;
        self.access_waits += other.access_waits;
        self.with_conts += other.with_conts;
        self.with_cont_blocks += other.with_cont_blocks;
        self.conflicts += other.conflicts;
        self.peak_live_tasks = self.peak_live_tasks.max(other.peak_live_tasks);
        self.objects_created += other.objects_created;
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "tasks created:     {}", self.tasks_created)?;
        writeln!(f, "tasks inlined:     {}", self.tasks_inlined)?;
        writeln!(f, "tasks finished:    {}", self.tasks_finished)?;
        writeln!(f, "declarations:      {}", self.declarations)?;
        writeln!(f, "access checks:     {}", self.access_checks)?;
        writeln!(f, "access waits:      {}", self.access_waits)?;
        writeln!(f, "with-conts:        {}", self.with_conts)?;
        writeln!(f, "with-cont blocks:  {}", self.with_cont_blocks)?;
        writeln!(f, "conflicts (edges): {}", self.conflicts)?;
        writeln!(f, "peak live tasks:   {}", self.peak_live_tasks)?;
        write!(f, "objects created:   {}", self.objects_created)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = RuntimeStats { tasks_created: 2, peak_live_tasks: 5, ..Default::default() };
        let b = RuntimeStats { tasks_created: 3, peak_live_tasks: 4, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.tasks_created, 5);
        assert_eq!(a.peak_live_tasks, 5);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = RuntimeStats::default().to_string();
        for key in ["tasks created", "inlined", "finished", "with-cont", "conflicts", "objects"] {
            assert!(s.contains(key), "missing {key}");
        }
    }
}
