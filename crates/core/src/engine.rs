//! The sharded dependency engine: [`DepGraph`](crate::graph::DepGraph)
//! semantics without a global lock.
//!
//! [`ShardedEngine`] implements the same serial-semantics state
//! machine as `DepGraph` — per-object serial-order declaration queues,
//! hierarchical task paths, §4.4 coverage, `with-cont`, commuting
//! updates — but partitions all mutable state so that concurrent
//! executors (the `jade-threads` work-stealing pool) never rendezvous
//! on one mutex:
//!
//! * **Shard table.** Object queues live in `SHARD_COUNT` shards, each
//!   its own [`QueueArena`] behind its own mutex; an object's shard is
//!   `ObjectId % SHARD_COUNT`. Operations on disjoint objects run
//!   fully in parallel.
//! * **Cross-object commit.** A multi-object operation (a `withonly`
//!   specification or a `with-cont` batch) locks the shards of every
//!   object it touches *jointly, in ascending shard order* — the
//!   classic total-order argument makes the commit deadlock-free —
//!   mutates the queues, and releases. The commit holds no other
//!   locks, so its span is a few queue-node updates.
//! * **Task slots.** Per-task mutable state (lifecycle state, blocked
//!   waits, child counters) sits in per-task *leaf* mutexes: they may
//!   be taken under shard locks, but nothing is ever acquired while
//!   one is held, so they cannot participate in a cycle.
//! * **Generational slot slab.** Task slots live in `TASK_SHARDS`
//!   slab shards (slot index modulo the shard count) and are
//!   *recycled* through per-shard free-lists: a slot returns to its
//!   free-list once its task has finished **and** every child's slot
//!   has been recycled (a `pins` refcount — one self-pin released at
//!   finish plus one per live child — enforces this, which also keeps
//!   every ancestor of a live task lookupable for coverage walks and
//!   anchor materialization). Recycling bumps the slot's generation,
//!   and [`TaskId`] carries `(index, generation)`, so a stale id held
//!   across a reuse fails validation instead of aliasing the new
//!   occupant (ABA-safe). Slot interiors (`waiting`, `decls`, label,
//!   path) are reset in place, so the steady-state task lifecycle
//!   performs no allocation and the slab's high-water mark
//!   (`peak_task_slots`) is bounded by the live-set, not the task
//!   count.
//! * **Readiness counting.** Instead of re-scanning a task's
//!   declarations on every queue change (which would need all its
//!   shards at once), each task carries an atomic `missing` counter of
//!   immediate-mode rights not yet enabled. Queue recomputation
//!   reports *transitions* ([`QueueArena::recompute_diff`]) — grants
//!   decrement, revocations increment — and the 1→0 edge promotes the
//!   task to `Ready` exactly once (a state check under the task's leaf
//!   mutex deduplicates racing promoters). A creation *guard* of +1
//!   keeps the counter positive until the whole specification is
//!   attached, so a task can never be dispatched half-created.
//!
//! A task promoted to `Ready` may subsequently *lose* a grant (a
//! hierarchical child's declaration inserts ahead of its parent's —
//! see `queue.rs`). This is benign: actually touching an object goes
//! through [`check_access`](ShardedEngine::check_access) at guard
//! time, which blocks the task until the right is re-enabled. The
//! serial semantics never depended on `Ready` meaning "still enabled",
//! only on "was fully enabled once and will be again".
//!
//! Statistics are [`AtomicStats`]; the dynamic task-graph trace is
//! captured per-shard (edges) plus an engine-level creation log
//! (tasks — the slab reuses ids, so creation order must be recorded
//! at allocation time) and stitched into one [`TaskGraphTrace`] when
//! taken.

use crate::fasthash::FastMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, MutexGuard, RwLock};

use crate::error::{JadeError, Result};
use crate::graph::{path_precedes, AccessStatus, TaskState, Wake};
use crate::ids::{ObjectId, Placement, TaskId};
use crate::queue::{NodeRef, QueueArena, Transition};
use crate::spec::{AccessKind, ContOp, DeclRights, DeclState, Declaration};
use crate::stats::AtomicStats;
use crate::trace::{TaskGraphTrace, TraceEdge};

/// Number of object-queue shards. A power of two comfortably above
/// typical worker counts: collisions cost contention, not correctness.
pub const SHARD_COUNT: usize = 64;

#[inline]
fn shard_of(oid: ObjectId) -> usize {
    (oid.0 as usize) % SHARD_COUNT
}

/// Number of task-slab shards. Slot index `i` lives in shard
/// `i % TASK_SHARDS` at position `i / TASK_SHARDS`; allocation
/// round-robins across shards so free-lists stay balanced and
/// concurrent creators rarely contend on one slab lock.
pub const TASK_SHARDS: usize = 16;

/// One shard: the declaration queues of every object mapped here,
/// plus (when tracing) the per-object logical access history and the
/// dependence edges discovered on these objects.
#[derive(Debug, Default)]
struct Shard {
    arena: QueueArena,
    /// Serial access history per object: (last writer, readers since
    /// that write) — same structure as `DepGraph`'s. Feeds the
    /// `conflicts` counter always and the trace when one is attached.
    hist: FastMap<ObjectId, (Option<TaskId>, Vec<TaskId>)>,
    edges: Vec<TraceEdge>,
    /// Reusable transition scratch for the recompute→apply step of
    /// every operation that mutates this shard's queues; only touched
    /// with the shard lock held.
    trs: Vec<Transition>,
}

/// Per-task mutable state, protected by the slot's leaf mutex.
#[derive(Debug)]
struct TaskSync {
    state: TaskState,
    /// Outstanding waits while `Blocked`.
    waiting: Vec<(ObjectId, AccessKind)>,
}

/// A task's identity: written only while the slot is being
/// (re)initialized — when no valid id for it is in circulation — and
/// read-shared for the rest of its occupancy. The `RwLock` makes slot
/// reuse race-free for readers that lost a lookup race with a recycle.
#[derive(Debug, Default)]
struct TaskIdent {
    label: String,
    parent: Option<TaskId>,
    path: Vec<u32>,
    placement: Placement,
}

/// One slot of the generational task slab. The slot itself is
/// allocated once (`Arc`, kept alive by its slab shard) and then
/// recycled: identity and interior state are reset in place for each
/// new occupant, and `gen` is bumped on every recycle so stale
/// [`TaskId`]s fail validation.
#[derive(Debug)]
struct TaskSlot {
    /// This slot's fixed slab index (never changes across occupants).
    index: u32,
    /// Generation of the current occupant; bumped at recycle time.
    gen: AtomicU32,
    /// Recycle refcount: one self-pin (released when the task
    /// finishes) plus one per child whose slot is still occupied.
    /// Reaching zero recycles the slot and unpins the parent. The
    /// transitive effect: every ancestor of a live task stays
    /// lookupable (coverage walks, anchor materialization), and the
    /// root — whose self-pin is never released — is never recycled.
    pins: AtomicU32,
    ident: RwLock<TaskIdent>,
    /// Immediate-mode rights not yet enabled, plus the creation guard.
    /// Signed: transient drift below the true count is possible for
    /// *running* tasks (whose readiness no longer matters) — see
    /// module docs.
    missing: AtomicI64,
    sync: Mutex<TaskSync>,
    /// Signalled on `Blocked` → `Running` transitions and on poison.
    cv: Condvar,
    /// Declaration/anchor nodes of this task, in declaration order.
    decls: Mutex<Vec<(ObjectId, NodeRef)>>,
    /// Bumped whenever a `with-cont` retires one of this task's rights.
    /// Spec-cache entries keyed on this task as parent record the epoch
    /// they validated against; a retire can weaken coverage, so an
    /// epoch mismatch forces re-validation. Conversions (deferred →
    /// immediate) never weaken coverage and do not bump it.
    cont_epoch: AtomicU32,
    /// Serial index handed to this task's next child. Atomic (not under
    /// `sync`) so the task-creation hot path allocates a child index
    /// with one uncontended RMW instead of a parent lock round-trip;
    /// readers ([`ShardedEngine::is_newest_child_position`]) run with
    /// the relevant object shard held, whose lock ordering makes every
    /// already-inserted sibling's increment visible.
    next_child: AtomicU32,
}

impl TaskSlot {
    /// A blank slot at `index`, generation 0; the caller initializes
    /// identity and state before publishing an id for it.
    fn blank(index: u32) -> Self {
        TaskSlot {
            index,
            gen: AtomicU32::new(0),
            pins: AtomicU32::new(0),
            ident: RwLock::new(TaskIdent::default()),
            missing: AtomicI64::new(1),
            sync: Mutex::new(TaskSync { state: TaskState::Pending, waiting: Vec::new() }),
            cv: Condvar::new(),
            decls: Mutex::new(Vec::new()),
            cont_epoch: AtomicU32::new(0),
            next_child: AtomicU32::new(0),
        }
    }

    fn decl(&self, oid: ObjectId) -> Option<NodeRef> {
        self.decls.lock().iter().find(|(o, _)| *o == oid).map(|(_, n)| *n)
    }
}

/// One shard of the task slab: the slots whose index maps here and
/// the free-list of recycled indices awaiting reuse.
#[derive(Debug, Default)]
struct TaskShard {
    slots: RwLock<Vec<Arc<TaskSlot>>>,
    free: Mutex<Vec<u32>>,
}

/// Ways in the per-worker spec cache: direct-mapped on the spec hash.
/// Sized so loops cycling through a few dozen distinct specs (the
/// cholesky/water/pmake shape) stay resident; conflict misses cost a
/// re-validation, never correctness.
const SPEC_CACHE_WAYS: usize = 64;

/// One entry of the per-worker spec cache (see
/// [`ShardedEngine::attach_task_with`]): a validated `(parent, decls)`
/// pair with the parent's queue positions, good while the parent's
/// `cont_epoch` is unchanged.
#[derive(Debug, Default, Clone)]
struct SpecCacheEntry {
    valid: bool,
    parent: Option<TaskId>,
    epoch: u32,
    key: u64,
    decls: Vec<Declaration>,
    pnodes: Vec<NodeRef>,
}

/// A set of jointly held shard guards, acquired in ascending shard
/// order (the deadlock-freedom invariant of the cross-object commit).
/// The one-shard case — every single-object spec, the overwhelmingly
/// common shape — carries its guard inline, with no allocation.
enum ShardSet<'a> {
    One(usize, MutexGuard<'a, Shard>),
    Many(Vec<(usize, MutexGuard<'a, Shard>)>),
}

impl<'a> ShardSet<'a> {
    fn get(&mut self, oid: ObjectId) -> &mut Shard {
        let idx = shard_of(oid);
        match self {
            ShardSet::One(i, g) => {
                debug_assert_eq!(*i, idx, "object's shard not part of this commit");
                &mut *g
            }
            ShardSet::Many(guards) => {
                let pos = guards
                    .iter()
                    .position(|(i, _)| *i == idx)
                    .expect("object's shard not part of this commit");
                &mut guards[pos].1
            }
        }
    }
}

/// Caller-owned reusable buffers for the engine's hot-path
/// operations ([`attach_task_with`](ShardedEngine::attach_task_with),
/// [`finish_task_with`](ShardedEngine::finish_task_with),
/// [`with_cont_with`](ShardedEngine::with_cont_with)). Executors keep
/// one per worker; after warm-up the steady-state task lifecycle then
/// allocates nothing. The `Vec`-returning engine methods are thin
/// wrappers that use a throwaway scratch.
#[derive(Debug, Default)]
pub struct EngineScratch {
    /// Wakes produced by the last operation; the caller drains them.
    pub wakes: Vec<Wake>,
    /// Staging buffer executors use to batch ready-task dispatch
    /// pushes derived from `wakes`.
    pub ready: Vec<TaskId>,
    fresh: Vec<(ObjectId, NodeRef)>,
    pnodes: Vec<Option<NodeRef>>,
    objects: Vec<ObjectId>,
    freshrefs: Vec<NodeRef>,
    decls: Vec<(ObjectId, NodeRef)>,
    converted: Vec<(ObjectId, AccessKind)>,
    touched: Vec<ObjectId>,
    waits: Vec<(ObjectId, AccessKind)>,
    /// Per-worker spec-hash cache (lazily sized to [`SPEC_CACHE_WAYS`]):
    /// memoizes `attach_task` validation and parent-node lookup for
    /// repeated identical specifications from the same parent.
    spec_cache: Vec<SpecCacheEntry>,
}

/// The sharded dependency engine. All methods take `&self`: the
/// engine is shared between worker threads without an enclosing lock.
#[derive(Debug)]
pub struct ShardedEngine {
    shards: Box<[Mutex<Shard>]>,
    /// The generational task slab (see module docs).
    task_shards: Box<[TaskShard]>,
    /// Hands each allocating thread its home slab shard (first
    /// allocation per thread claims the next value).
    alloc_cursor: AtomicU64,
    /// Total slots ever materialized (the slab never shrinks, so this
    /// is also the current size); mirrored into `peak_task_slots`.
    slots_total: AtomicU64,
    /// Creation-ordered (id, label) log backing the trace: with slot
    /// recycling the slab cannot be iterated to recover creation
    /// order or finished tasks' labels. Only written when tracing.
    trace_log: Mutex<Vec<(TaskId, String)>>,
    next_object: AtomicU64,
    live: AtomicU64,
    /// Counters describing the work the engine performed.
    pub stats: AtomicStats,
    tracing: AtomicBool,
    poisoned: AtomicBool,
}

impl Default for ShardedEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedEngine {
    /// Create an engine with a running root task (the main program).
    pub fn new() -> Self {
        let root = Arc::new(TaskSlot::blank(0));
        root.sync.lock().state = TaskState::Running;
        root.missing.store(0, Ordering::Relaxed);
        // The root's self-pin is never released, so slot 0 is never
        // recycled and `TaskId::ROOT` stays valid for the whole run.
        root.pins.store(1, Ordering::Relaxed);
        root.ident.write().label.push_str("root");
        let task_shards: Box<[TaskShard]> =
            (0..TASK_SHARDS).map(|_| TaskShard::default()).collect();
        task_shards[0].slots.write().push(root);
        let eng = ShardedEngine {
            shards: (0..SHARD_COUNT).map(|_| Mutex::new(Shard::default())).collect(),
            task_shards,
            alloc_cursor: AtomicU64::new(1),
            slots_total: AtomicU64::new(1),
            trace_log: Mutex::new(Vec::new()),
            next_object: AtomicU64::new(0),
            live: AtomicU64::new(0),
            stats: AtomicStats::new(),
            tracing: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        };
        eng.stats.observe_slots(1);
        eng
    }

    /// Enable dynamic task-graph capture (Figure 4 reproduction).
    pub fn enable_trace(&self) {
        let mut log = self.trace_log.lock();
        if log.is_empty() {
            log.push((TaskId::ROOT, "root".to_string()));
        }
        self.tracing.store(true, Ordering::Release);
    }

    #[inline]
    fn tracing(&self) -> bool {
        self.tracing.load(Ordering::Acquire)
    }

    /// Stitch the creation log and per-shard edge fragments into one
    /// trace: tasks in creation order (the slab recycles slots, so
    /// order comes from the log, not the table) and edges deduplicated
    /// per from/to pair, exactly as `DepGraph` records them.
    pub fn take_trace(&self) -> Option<TaskGraphTrace> {
        if !self.tracing() {
            return None;
        }
        let mut tr = TaskGraphTrace::new();
        for (tid, label) in self.trace_log.lock().iter() {
            tr.task(*tid, label);
        }
        let mut edges = Vec::new();
        for sh in self.shards.iter() {
            edges.extend(std::mem::take(&mut sh.lock().edges));
        }
        // Canonical order so runs are byte-identical regardless of
        // which worker recorded which shard's edges first.
        edges.sort_by_key(|e| (e.to, e.from, e.object, e.kind as u8));
        for e in edges {
            tr.edge(e);
        }
        Some(tr)
    }

    /// Look up a task slot, validating the id's generation against the
    /// slot's current occupant. `None` means the id is stale (its task
    /// finished and the slot was recycled) or was never allocated.
    fn try_slot(&self, t: TaskId) -> Option<Arc<TaskSlot>> {
        let idx = t.index();
        let slot = self.task_shards[idx % TASK_SHARDS].slots.read().get(idx / TASK_SHARDS)?.clone();
        if slot.gen.load(Ordering::Acquire) == t.generation() {
            Some(slot)
        } else {
            None
        }
    }

    fn slot(&self, t: TaskId) -> Arc<TaskSlot> {
        self.try_slot(t)
            .unwrap_or_else(|| panic!("stale or unknown task id {t} (slot recycled?)"))
    }

    /// Current lifecycle state of a task.
    pub fn state(&self, t: TaskId) -> TaskState {
        self.slot(t).sync.lock().state
    }

    /// Label given at creation.
    pub fn label(&self, t: TaskId) -> String {
        self.slot(t).ident.read().label.clone()
    }

    /// Parent task (`None` for the root).
    pub fn parent(&self, t: TaskId) -> Option<TaskId> {
        self.slot(t).ident.read().parent
    }

    /// Placement requested for the task.
    pub fn placement(&self, t: TaskId) -> Placement {
        self.slot(t).ident.read().placement
    }

    /// Whether `t` currently names a live slot occupant (its slot has
    /// not been recycled to a new generation).
    pub fn is_current(&self, t: TaskId) -> bool {
        self.try_slot(t).is_some()
    }

    /// Number of created-but-unfinished tasks (root excluded); the
    /// executors' throttling policies read this.
    pub fn live_tasks(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }

    /// Number of tasks ever created, including the root. (With slot
    /// recycling this is a counter, not the slab size; see
    /// [`task_slots`](Self::task_slots) for the latter.)
    pub fn total_tasks(&self) -> usize {
        self.stats.tasks_created.load(Ordering::Relaxed) as usize + 1
    }

    /// Number of task slots the slab has materialized — the memory
    /// high-water mark. Bounded by the peak live-set (plus per-shard
    /// slack), not by `total_tasks`.
    pub fn task_slots(&self) -> u64 {
        self.slots_total.load(Ordering::Relaxed)
    }

    // ------------------------------------------------------------------
    // Shard locking
    // ------------------------------------------------------------------

    fn shard(&self, oid: ObjectId) -> MutexGuard<'_, Shard> {
        self.shards[shard_of(oid)].lock()
    }

    /// Jointly lock the shards of all given objects in ascending shard
    /// order (deduplicated) — the cross-object commit.
    fn lock_shards(&self, oids: &[ObjectId]) -> ShardSet<'_> {
        if let [oid] = oids {
            let i = shard_of(*oid);
            return ShardSet::One(i, self.shards[i].lock());
        }
        let mut idxs: Vec<usize> = oids.iter().map(|&o| shard_of(o)).collect();
        idxs.sort_unstable();
        idxs.dedup();
        if let [i] = idxs[..] {
            return ShardSet::One(i, self.shards[i].lock());
        }
        ShardSet::Many(idxs.into_iter().map(|i| (i, self.shards[i].lock())).collect())
    }

    // ------------------------------------------------------------------
    // Transition processing (grants and revocations)
    // ------------------------------------------------------------------

    /// Fold queue-flag transitions into task readiness. May be called
    /// with shard locks held: it takes only task leaf mutexes.
    ///
    /// Transitions arrive in queue order, so one task's grants are
    /// adjacent (a task has at most one node per queue and the grants
    /// of one recompute come from one queue); each run is folded into
    /// a single slot lookup and a single `missing` update.
    fn apply_transitions(&self, trs: &[Transition], wakes: &mut Vec<Wake>) {
        let mut i = 0;
        while i < trs.len() {
            let task = trs[i].task;
            let mut j = i;
            let mut granted = 0i64;
            while j < trs.len() && trs[j].task == task {
                granted += if trs[j].granted { 1 } else { -1 };
                j += 1;
            }
            let slot = self.slot(task);
            if granted < 0 {
                // Net revocation: a Ready/Running task re-validates at
                // guard time, so only the counter needs correcting.
                slot.missing.fetch_add(-granted, Ordering::AcqRel);
            } else if granted > 0 {
                let before = slot.missing.fetch_sub(granted, Ordering::AcqRel);
                let mut s = slot.sync.lock();
                match s.state {
                    TaskState::Pending if before == granted => {
                        s.state = TaskState::Ready;
                        wakes.push(Wake::Ready(task));
                        slot.cv.notify_all();
                    }
                    TaskState::Blocked => {
                        for tr in &trs[i..j] {
                            if !tr.granted {
                                continue;
                            }
                            if let Some(pos) =
                                s.waiting.iter().position(|w| *w == (tr.object, tr.kind))
                            {
                                s.waiting.remove(pos);
                            }
                        }
                        if s.waiting.is_empty() {
                            s.state = TaskState::Running;
                            wakes.push(Wake::Unblocked(task));
                            slot.cv.notify_all();
                        }
                    }
                    _ => {}
                }
            }
            i = j;
        }
    }

    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Register a new shared object created by `creator`. The creator
    /// receives an implicit immediate `rd_wr` declaration at its serial
    /// position, and the root its implicit deferred `rd_wr` at the
    /// queue tail — same layout as `DepGraph::create_object`.
    pub fn create_object(&self, creator: TaskId) -> ObjectId {
        let oid = ObjectId(self.next_object.fetch_add(1, Ordering::Relaxed));
        self.stats.objects_created.fetch_add(1, Ordering::Relaxed);
        let mut sh = self.shard(oid);
        sh.arena.register_object(oid);
        let root_rights = DeclRights {
            read: DeclState::Deferred,
            write: DeclState::Deferred,
            commute: DeclState::None,
        };
        let root_node = sh.arena.push_tail(oid, TaskId::ROOT, root_rights);
        self.slot(TaskId::ROOT).decls.lock().push((oid, root_node));
        if !creator.is_root() {
            self.ensure_positioned_node(&mut sh, creator, oid, DeclRights::RD_WR);
        }
        // The only nodes are the creator's (freshly granted) and the
        // root's deferred tail: no third task can be affected, so the
        // transitions need no counting (the creator is running).
        let _ = sh.arena.recompute_diff(oid);
        oid
    }

    /// Whether an object id has been registered.
    pub fn has_object(&self, oid: ObjectId) -> bool {
        self.shard(oid).arena.has_object(oid)
    }

    /// Find the node of `task` on `oid` inside the (locked) shard, or
    /// create one at the task's serial position, materializing
    /// ancestor anchors as needed. Mirrors `DepGraph`'s logic; all
    /// queue nodes for `oid` live in this one shard.
    fn ensure_positioned_node(
        &self,
        sh: &mut Shard,
        task: TaskId,
        oid: ObjectId,
        rights: DeclRights,
    ) -> NodeRef {
        let slot = self.slot(task);
        if let Some(nr) = slot.decl(oid) {
            if rights.is_declared() {
                let n = sh.arena.node_mut(nr);
                n.rights = n.rights.merge(rights);
            }
            return nr;
        }
        let ident = slot.ident.read();
        let nr = match ident.parent {
            None => {
                // Root without a node: append at tail (root sorts last).
                sh.arena.push_tail(oid, task, rights)
            }
            Some(parent) => {
                let pnode = self.ensure_positioned_node(sh, parent, oid, DeclRights::NONE);
                // A *newly created* task may always insert directly
                // before its parent (it is the parent's newest child);
                // an older task must find its position by order walk.
                if self.is_newest_child_position(parent, &ident.path) {
                    sh.arena.insert_before(pnode, task, rights)
                } else {
                    self.insert_by_order(sh, task, &ident.path, oid, rights)
                }
            }
        };
        drop(ident);
        slot.decls.lock().push((oid, nr));
        nr
    }

    fn is_newest_child_position(&self, parent: TaskId, path: &[u32]) -> bool {
        let idx = *path.last().expect("non-root task has a path");
        self.slot(parent).next_child.load(Ordering::Relaxed) == idx + 1
    }

    fn insert_by_order(
        &self,
        sh: &mut Shard,
        task: TaskId,
        my_path: &[u32],
        oid: ObjectId,
        rights: DeclRights,
    ) -> NodeRef {
        let mut before: Option<NodeRef> = None;
        for (nr, node) in sh.arena.iter(oid) {
            // A node whose task id no longer validates is an inert
            // anchor of a fully finished-and-recycled subtree (live
            // tasks and ancestors of live tasks are pinned): order
            // relative to it is semantically irrelevant, so skip it.
            let Some(other) = self.try_slot(node.task) else { continue };
            if path_precedes(my_path, &other.ident.read().path) {
                before = Some(nr);
                break;
            }
        }
        match before {
            Some(b) => sh.arena.insert_before(b, task, rights),
            None => sh.arena.push_tail(oid, task, rights),
        }
    }

    // ------------------------------------------------------------------
    // Task creation (two-phase)
    // ------------------------------------------------------------------

    /// Phase 1 of `withonly`: allocate the task id, path and slot. The
    /// slot is born `Pending` with its creation guard held, so nothing
    /// can dispatch it until [`attach_task`](Self::attach_task)
    /// releases the guard. Split from attachment so the executor can
    /// record the task (body, creation event) before any declaration
    /// becomes visible to other workers.
    pub fn alloc_task(&self, parent: TaskId, label: &str, placement: Placement) -> TaskId {
        let pslot = self.slot(parent);
        debug_assert!(
            matches!(pslot.sync.lock().state, TaskState::Running | TaskState::Ready),
            "only an executing task can create children"
        );
        let child_idx = pslot.next_child.fetch_add(1, Ordering::Relaxed);
        // Pin the parent: its slot (and transitively every ancestor's)
        // must stay valid while this child can still reference it.
        pslot.pins.fetch_add(1, Ordering::AcqRel);
        let (tid, slot) = self.acquire_slot();
        // Reset the slot in place for its new occupant. Writing under
        // the ident write lock is race-free: the only readers that can
        // reach a just-acquired slot are stale-id holders, and they
        // synchronize on the same lock.
        {
            let pident = pslot.ident.read();
            let mut id = slot.ident.write();
            id.label.clear();
            id.label.push_str(label);
            id.parent = Some(parent);
            id.path.clear();
            id.path.extend_from_slice(&pident.path);
            id.path.push(child_idx);
            id.placement = placement;
        }
        slot.pins.store(1, Ordering::Release);
        // The creation guard: held until the spec is attached.
        slot.missing.store(1, Ordering::Release);
        {
            let mut s = slot.sync.lock();
            s.state = TaskState::Pending;
            s.waiting.clear();
        }
        slot.decls.lock().clear();
        slot.cont_epoch.store(0, Ordering::Release);
        slot.next_child.store(0, Ordering::Relaxed);
        if self.tracing() {
            self.trace_log.lock().push((tid, label.to_string()));
        }
        let live = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.tasks_created.fetch_add(1, Ordering::Relaxed);
        self.stats.observe_live(live);
        tid
    }

    /// Pop a recycled slot from the free-list of this thread's home
    /// slab shard, or grow that shard by one slot. Shard choice is
    /// thread-affine rather than round-robin per call: a worker that
    /// keeps allocating from (and releasing back to) one shard keeps
    /// that shard's free-list and most-recently-retired slots hot in
    /// its cache, while different workers still land on different
    /// shards, so allocation contention stays spread.
    fn acquire_slot(&self) -> (TaskId, Arc<TaskSlot>) {
        thread_local! {
            static HOME_SHARD: std::cell::Cell<usize> =
                const { std::cell::Cell::new(usize::MAX) };
        }
        let shard_idx = HOME_SHARD.with(|s| {
            let mut v = s.get();
            if v == usize::MAX {
                v = self.alloc_cursor.fetch_add(1, Ordering::Relaxed) as usize % TASK_SHARDS;
                s.set(v);
            }
            v
        });
        let tsh = &self.task_shards[shard_idx];
        let reused = tsh.free.lock().pop();
        if let Some(idx) = reused {
            let slot = tsh.slots.read()[idx as usize / TASK_SHARDS].clone();
            let gen = slot.gen.load(Ordering::Acquire);
            return (TaskId::new(idx, gen), slot);
        }
        let mut slots = tsh.slots.write();
        let idx = (slots.len() * TASK_SHARDS + shard_idx) as u32;
        let slot = Arc::new(TaskSlot::blank(idx));
        slots.push(slot.clone());
        drop(slots);
        let total = self.slots_total.fetch_add(1, Ordering::Relaxed) + 1;
        self.stats.observe_slots(total);
        (TaskId::new(idx, 0), slot)
    }

    /// Drop one pin from `slot`; at zero, recycle the slot (bump its
    /// generation, return its index to the free-list) and cascade the
    /// release to the parent, whose pin this occupant held. Zero pins
    /// implies the task finished (self-pin released) and every child's
    /// slot was already recycled.
    fn release_pin(&self, slot: Arc<TaskSlot>) {
        let mut cur = slot;
        loop {
            if cur.pins.fetch_sub(1, Ordering::AcqRel) != 1 {
                return;
            }
            // Read the parent before publishing the slot for reuse:
            // after the free-list push another thread may reinitialize
            // the slot at any moment.
            let parent = cur.ident.read().parent;
            debug_assert!(parent.is_some(), "the root's self-pin is never released");
            let idx = cur.index;
            cur.gen.fetch_add(1, Ordering::Release);
            self.task_shards[idx as usize % TASK_SHARDS].free.lock().push(idx);
            match parent {
                Some(p) => cur = self.slot(p),
                None => return,
            }
        }
    }

    /// Phase 2 of `withonly`: validate coverage and insert the task's
    /// declarations at its serial position — the cross-object commit.
    /// Shards of all declared objects are locked jointly in ascending
    /// shard order; on return the creation guard is released, and the
    /// returned wakes include `Ready(tid)` if the task may start.
    pub fn attach_task(&self, tid: TaskId, decls: Vec<Declaration>) -> Result<Vec<Wake>> {
        let mut scratch = EngineScratch::default();
        self.attach_task_with(tid, &decls, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.wakes))
    }

    /// [`attach_task`](Self::attach_task) with caller-owned scratch:
    /// the produced wakes land in `scratch.wakes` (cleared on entry)
    /// and no transient buffers are allocated after warm-up.
    pub fn attach_task_with(
        &self,
        tid: TaskId,
        decls: &[Declaration],
        scratch: &mut EngineScratch,
    ) -> Result<()> {
        let slot = self.try_slot(tid).ok_or(JadeError::StaleTask { task: tid })?;
        let ident = slot.ident.read();
        let parent = ident.parent.expect("attach_task is never called for the root");
        let pslot = self.slot(parent);
        self.stats.declarations.fetch_add(decls.len() as u64, Ordering::Relaxed);

        let EngineScratch { wakes, fresh, pnodes, objects, freshrefs, spec_cache, .. } = scratch;
        wakes.clear();
        fresh.clear();
        pnodes.clear();

        // Spec-hash cache probe: identical declaration vectors from the
        // same parent at the same cont-epoch were already validated and
        // already had their parent queue positions resolved. Epoch and
        // generation checks make a hit sound: the parent's own node
        // rights can only be weakened by the parent's own `with-cont`
        // retires (epoch bump) and its nodes only removed at its own
        // finish (generation bump on slot reuse) — both on the thread
        // that owns this scratch.
        if spec_cache.is_empty() {
            spec_cache.resize(SPEC_CACHE_WAYS, SpecCacheEntry::default());
        }
        let key = crate::spec::spec_hash(decls);
        let epoch = pslot.cont_epoch.load(Ordering::Relaxed);
        let way = (key as usize) % SPEC_CACHE_WAYS;
        let cache_hit = {
            let e = &spec_cache[way];
            e.valid
                && e.parent == Some(parent)
                && e.epoch == epoch
                && e.key == key
                && e.decls == decls
        };

        // Single-declaration specs — the common shape — lock their one
        // shard straight away; only multi-object commits build the
        // sorted object list.
        let mut set = match decls {
            [d] => self.lock_shards(std::slice::from_ref(&d.object)),
            _ => {
                objects.clear();
                objects.extend(decls.iter().map(|d| d.object));
                objects.sort_unstable();
                objects.dedup();
                self.lock_shards(objects)
            }
        };
        if cache_hit {
            self.stats.spec_cache_hits.fetch_add(1, Ordering::Relaxed);
            pnodes.extend(spec_cache[way].pnodes.iter().map(|&nr| Some(nr)));
        } else {
            // Validate before mutating any queue, remembering the
            // parent's queue position on each object when it already
            // has one.
            for d in decls {
                if !set.get(d.object).arena.has_object(d.object) {
                    return Err(JadeError::UnknownObject(d.object));
                }
                pnodes.push(self.check_coverage(&mut set, parent, &pslot, &ident.label, d)?);
            }
            // Install only when every declaration resolved against the
            // parent's *own declared* node: ancestor-walk coverage can
            // be weakened by an ancestor's concurrent with-cont, which
            // the parent-local epoch cannot see.
            let cacheable = decls.iter().zip(pnodes.iter()).all(|(d, p)| {
                p.is_some_and(|nr| set.get(d.object).arena.node(nr).rights.is_declared())
            });
            if cacheable {
                let e = &mut spec_cache[way];
                e.valid = true;
                e.parent = Some(parent);
                e.epoch = epoch;
                e.key = key;
                e.decls.clear();
                e.decls.extend_from_slice(decls);
                e.pnodes.clear();
                e.pnodes.extend(pnodes.iter().map(|p| p.expect("cacheable implies Some")));
            }
        }

        let tracing = self.tracing();
        for (d, &cached) in decls.iter().zip(pnodes.iter()) {
            let sh = set.get(d.object);
            let pnode = match cached {
                Some(nr) => nr,
                None => self.ensure_positioned_node(sh, parent, d.object, DeclRights::NONE),
            };
            let nr = sh.arena.insert_before(pnode, tid, d.rights);
            slot.decls.lock().push((d.object, nr));
            fresh.push((d.object, nr));
            // Count the immediate sides into the readiness counter
            // while the guard still holds the task un-promotable.
            let imm = [d.rights.read, d.rights.write, d.rights.commute]
                .iter()
                .filter(|s| **s == DeclState::Immediate)
                .count() as i64;
            if imm > 0 {
                slot.missing.fetch_add(imm, Ordering::AcqRel);
            }
            // Dependence accounting from the per-object access history
            // (last writer + readers since): the dynamic dependence
            // edges of the task graph (Figure 4), O(edges) instead of
            // an O(queue-depth) predecessor walk.
            let hist = sh.hist.entry(d.object).or_default();
            let mut new_edges = 0u64;
            let mut edge = |p: TaskId, kind: AccessKind, trace: &mut Vec<TraceEdge>| {
                if p != tid {
                    new_edges += 1;
                    if tracing {
                        trace.push(TraceEdge { from: p, to: tid, object: d.object, kind });
                    }
                }
            };
            if d.rights.read.is_active() {
                if let Some(w) = hist.0 {
                    edge(w, AccessKind::Read, &mut sh.edges);
                }
            }
            if d.rights.write.is_active() {
                if let Some(w) = hist.0 {
                    edge(w, AccessKind::Write, &mut sh.edges);
                }
                for i in 0..hist.1.len() {
                    edge(hist.1[i], AccessKind::Write, &mut sh.edges);
                }
            }
            if d.rights.commute.is_active() {
                if let Some(w) = hist.0 {
                    edge(w, AccessKind::Commute, &mut sh.edges);
                }
            }
            if d.rights.write.is_active() {
                hist.0 = Some(tid);
                hist.1.clear();
            } else if d.rights.read.is_active() && !hist.1.contains(&tid) {
                hist.1.push(tid);
            }
            self.stats.conflicts.fetch_add(new_edges, Ordering::Relaxed);
        }
        // Recompute once per distinct object, driven by `fresh` (which
        // lists the inserted nodes in declaration order) so the
        // single-declaration path needs no sorted object list at all;
        // transitions accumulate in the shard's reusable scratch.
        for k in 0..fresh.len() {
            let oid = fresh[k].0;
            if fresh[..k].iter().any(|&(o, _)| o == oid) {
                continue;
            }
            let sh = set.get(oid);
            sh.trs.clear();
            if fresh.len() == 1 {
                let single = [fresh[k].1];
                let Shard { arena, trs, .. } = sh;
                arena.recompute_diff_incremental_into(oid, &single, trs);
            } else {
                freshrefs.clear();
                freshrefs.extend(fresh.iter().filter(|&&(o, _)| o == oid).map(|&(_, n)| n));
                let Shard { arena, trs, .. } = sh;
                arena.recompute_diff_incremental_into(oid, freshrefs, trs);
            }
            self.apply_transitions(&set.get(oid).trs, wakes);
        }
        drop(set);

        // Release the creation guard; the 1→0 edge promotes.
        if slot.missing.fetch_sub(1, Ordering::AcqRel) == 1 {
            let mut s = slot.sync.lock();
            if s.state == TaskState::Pending {
                s.state = TaskState::Ready;
                wakes.push(Wake::Ready(tid));
                slot.cv.notify_all();
            }
        }
        Ok(())
    }

    /// Enforce §4.4 coverage against the nearest rights-holding
    /// ancestor, with the same escape as `DepGraph::check_coverage`
    /// for objects no ancestor ever declared.
    /// On success returns the parent's own node on `d.object` if it
    /// has one (declared or anchor), so `attach_task` can insert
    /// before it without re-scanning the parent's declaration list.
    fn check_coverage(
        &self,
        set: &mut ShardSet<'_>,
        parent: TaskId,
        pslot: &TaskSlot,
        child_label: &str,
        d: &Declaration,
    ) -> Result<Option<NodeRef>> {
        // Fast path: the immediate parent (whose slot the caller
        // already holds) usually carries the declaration itself.
        if let Some(nr) = pslot.decl(d.object) {
            let rights = set.get(d.object).arena.node(nr).rights;
            if rights.is_declared() {
                return Self::coverage_verdict(parent, rights, child_label, d).map(|()| Some(nr));
            }
            // Anchor node: the covering rights (if any) live further
            // up, but the parent's queue position is this node.
            self.check_coverage_walk(set, pslot.ident.read().parent, child_label, d)?;
            return Ok(Some(nr));
        }
        self.check_coverage_walk(set, pslot.ident.read().parent, child_label, d)?;
        Ok(None)
    }

    fn check_coverage_walk(
        &self,
        set: &mut ShardSet<'_>,
        from: Option<TaskId>,
        child_label: &str,
        d: &Declaration,
    ) -> Result<()> {
        let mut cur = from;
        while let Some(t) = cur {
            let slot = self.slot(t);
            if let Some(nr) = slot.decl(d.object) {
                let rights = set.get(d.object).arena.node(nr).rights;
                if rights.is_declared() {
                    return Self::coverage_verdict(t, rights, child_label, d);
                }
            }
            cur = slot.ident.read().parent;
        }
        Ok(())
    }

    fn coverage_verdict(
        holder: TaskId,
        rights: DeclRights,
        child_label: &str,
        d: &Declaration,
    ) -> Result<()> {
        if rights.covers(d.rights) {
            return Ok(());
        }
        let kind = if d.rights.write.is_active() && !rights.write.is_active() {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        Err(JadeError::NotCovered {
            parent: holder,
            child_label: child_label.to_string(),
            object: d.object,
            kind,
        })
    }

    // ------------------------------------------------------------------
    // Task lifecycle
    // ------------------------------------------------------------------

    /// Mark a ready task as running (an executor picked it up).
    pub fn start_task(&self, tid: TaskId) {
        let slot = self.slot(tid);
        let mut s = slot.sync.lock();
        debug_assert_eq!(s.state, TaskState::Ready, "start of non-ready task");
        s.state = TaskState::Running;
    }

    /// Task-body completion: release all queue positions (one
    /// cross-object commit) and wake whoever becomes enabled.
    pub fn finish_task(&self, tid: TaskId) -> Vec<Wake> {
        let mut scratch = EngineScratch::default();
        self.finish_task_with(tid, &mut scratch);
        std::mem::take(&mut scratch.wakes)
    }

    /// [`finish_task`](Self::finish_task) with caller-owned scratch:
    /// wakes land in `scratch.wakes` (cleared on entry). After the
    /// queues are released the task's self-pin is dropped, recycling
    /// its slab slot once all children's slots are recycled too.
    pub fn finish_task_with(&self, tid: TaskId, scratch: &mut EngineScratch) {
        let slot = self.slot(tid);
        {
            let mut s = slot.sync.lock();
            debug_assert!(
                matches!(s.state, TaskState::Running),
                "finish of non-running task {tid}"
            );
            s.state = TaskState::Finished;
        }
        let EngineScratch { wakes, decls, objects, .. } = scratch;
        wakes.clear();
        decls.clear();
        {
            // Copy the declarations out and clear in place, keeping
            // the slot's capacity for its next occupant.
            let mut d = slot.decls.lock();
            decls.extend_from_slice(&d);
            d.clear();
        }

        // Single-declaration tasks — the common shape — skip the
        // sorted object list and lock their one shard directly.
        let mut set = match &decls[..] {
            [(oid, _)] => self.lock_shards(std::slice::from_ref(oid)),
            _ => {
                objects.clear();
                objects.extend(decls.iter().map(|&(o, _)| o));
                objects.sort_unstable();
                objects.dedup();
                self.lock_shards(objects)
            }
        };
        for &(oid, nr) in decls.iter() {
            set.get(oid).arena.remove(nr);
        }
        for k in 0..decls.len() {
            let oid = decls[k].0;
            if decls[..k].iter().any(|&(o, _)| o == oid) {
                continue;
            }
            let sh = set.get(oid);
            sh.trs.clear();
            let Shard { arena, trs, .. } = sh;
            arena.recompute_diff_incremental_into(oid, &[], trs);
            self.apply_transitions(trs, wakes);
        }
        drop(set);

        if !tid.is_root() {
            self.live.fetch_sub(1, Ordering::Relaxed);
            self.stats.tasks_finished.fetch_add(1, Ordering::Relaxed);
            self.release_pin(slot);
        }
    }

    // ------------------------------------------------------------------
    // with-cont and access checking
    // ------------------------------------------------------------------

    /// The engine half of `with { ... } cont;`: one cross-object
    /// commit over every object the batch names, so the must-block
    /// decision is atomic with the rights changes.
    pub fn with_cont(
        &self,
        tid: TaskId,
        ops: Vec<(ObjectId, ContOp)>,
    ) -> Result<(bool, Vec<Wake>)> {
        let mut scratch = EngineScratch::default();
        let must_block = self.with_cont_with(tid, &ops, &mut scratch)?;
        Ok((must_block, std::mem::take(&mut scratch.wakes)))
    }

    /// [`with_cont`](Self::with_cont) with caller-owned scratch: wakes
    /// land in `scratch.wakes` (cleared on entry); returns whether the
    /// task must block for a conversion.
    pub fn with_cont_with(
        &self,
        tid: TaskId,
        ops: &[(ObjectId, ContOp)],
        scratch: &mut EngineScratch,
    ) -> Result<bool> {
        self.stats.with_conts.fetch_add(1, Ordering::Relaxed);
        let slot = self.try_slot(tid).ok_or(JadeError::StaleTask { task: tid })?;
        let EngineScratch { wakes, objects, converted, touched, waits, .. } = scratch;
        wakes.clear();
        converted.clear();
        touched.clear();
        waits.clear();
        objects.clear();
        objects.extend(ops.iter().map(|&(o, _)| o));
        objects.sort_unstable();
        objects.dedup();
        let mut set = self.lock_shards(objects);
        for &(oid, op) in ops {
            let nr = slot
                .decl(oid)
                .ok_or(JadeError::UnknownDeclaration { task: tid, object: oid })?;
            let node = set.get(oid).arena.node_mut(nr);
            match op {
                ContOp::ToRd => match node.rights.read {
                    DeclState::Deferred => {
                        node.rights.read = DeclState::Immediate;
                        converted.push((oid, AccessKind::Read));
                    }
                    DeclState::Immediate => converted.push((oid, AccessKind::Read)),
                    DeclState::None => {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid })
                    }
                    DeclState::Retired => {
                        return Err(JadeError::RetiredAccess {
                            task: tid,
                            object: oid,
                            kind: AccessKind::Read,
                        })
                    }
                },
                ContOp::ToWr => match node.rights.write {
                    DeclState::Deferred => {
                        node.rights.write = DeclState::Immediate;
                        converted.push((oid, AccessKind::Write));
                    }
                    DeclState::Immediate => converted.push((oid, AccessKind::Write)),
                    DeclState::None => {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid })
                    }
                    DeclState::Retired => {
                        return Err(JadeError::RetiredAccess {
                            task: tid,
                            object: oid,
                            kind: AccessKind::Write,
                        })
                    }
                },
                ContOp::NoRd => {
                    if node.rights.read == DeclState::None {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid });
                    }
                    node.rights.read = DeclState::Retired;
                    touched.push(oid);
                }
                ContOp::NoWr => {
                    if node.rights.write == DeclState::None {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid });
                    }
                    node.rights.write = DeclState::Retired;
                    touched.push(oid);
                }
                ContOp::NoCm => {
                    if node.rights.commute == DeclState::None {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid });
                    }
                    node.rights.commute = DeclState::Retired;
                    set.get(oid).arena.set_commute_holding(nr, false);
                    touched.push(oid);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        if !touched.is_empty() {
            // A retire weakens this task's rights; invalidate spec-cache
            // entries that validated children against them.
            slot.cont_epoch.fetch_add(1, Ordering::Release);
        }
        for &oid in touched.iter() {
            let sh = set.get(oid);
            sh.trs.clear();
            let Shard { arena, trs, .. } = sh;
            arena.recompute_diff_incremental_into(oid, &[], trs);
            self.apply_transitions(trs, wakes);
        }
        // Compute waits from the (stable, still locked) flags and
        // register the block *before* releasing the shards — a grant
        // can then only arrive after the waits are visible, so no
        // wakeup is lost.
        for &(oid, kind) in converted.iter() {
            let nr = slot.decl(oid).expect("converted node exists");
            if !set.get(oid).arena.node(nr).granted(kind) && !waits.contains(&(oid, kind)) {
                waits.push((oid, kind));
            }
        }
        let must_block = !waits.is_empty();
        if must_block {
            self.stats.with_cont_blocks.fetch_add(1, Ordering::Relaxed);
            let mut s = slot.sync.lock();
            s.waiting.clear();
            s.waiting.extend_from_slice(waits);
            s.state = TaskState::Blocked;
        }
        drop(set);
        Ok(must_block)
    }

    /// Dynamic access check (the guard layer's slow path). Single
    /// shard lock; blocking registers the wait while that lock is
    /// still held, so the granting transition cannot be missed.
    pub fn check_access(
        &self,
        tid: TaskId,
        oid: ObjectId,
        kind: AccessKind,
    ) -> Result<AccessStatus> {
        self.stats.access_checks.fetch_add(1, Ordering::Relaxed);
        let slot = self.try_slot(tid).ok_or(JadeError::StaleTask { task: tid })?;
        let nr = slot
            .decl(oid)
            .ok_or(JadeError::UndeclaredAccess { task: tid, object: oid, kind })?;
        let mut sh = self.shard(oid);
        let node = sh.arena.node_mut(nr);
        // The root's implicit declaration has no commute side; a root
        // commuting access is satisfied by its (stronger) write right.
        let kind = if kind == AccessKind::Commute
            && tid.is_root()
            && node.rights.commute == DeclState::None
        {
            AccessKind::Write
        } else {
            kind
        };
        let side = match kind {
            AccessKind::Read => node.rights.read,
            AccessKind::Write => node.rights.write,
            AccessKind::Commute => node.rights.commute,
        };
        match side {
            DeclState::None => {
                return Err(JadeError::UndeclaredAccess { task: tid, object: oid, kind })
            }
            DeclState::Retired => {
                return Err(JadeError::RetiredAccess { task: tid, object: oid, kind })
            }
            DeclState::Deferred => {
                if tid.is_root() {
                    match kind {
                        AccessKind::Read => node.rights.read = DeclState::Immediate,
                        AccessKind::Write => node.rights.write = DeclState::Immediate,
                        AccessKind::Commute => node.rights.commute = DeclState::Immediate,
                    }
                } else {
                    return Err(JadeError::DeferredAccess { task: tid, object: oid, kind });
                }
            }
            DeclState::Immediate => {}
        }
        if sh.arena.node(nr).granted(kind) {
            if kind == AccessKind::Commute {
                // Acquire the object's update exclusivity: other
                // commuting tasks now wait until this one finishes or
                // issues no_cm (§4.3 — serialized but unordered).
                sh.arena.set_commute_holding(nr, true);
                // Single-owner fast path: with no peers in the queue
                // there is nothing to revoke, so the recompute walk is
                // provably a no-op and can be skipped.
                if !sh.arena.sole_occupant(nr) {
                    sh.trs.clear();
                    let Shard { arena, trs, .. } = &mut *sh;
                    arena.recompute_diff_incremental_into(oid, &[], trs);
                    // Only revocations of peer commuters can result.
                    let mut wakes = Vec::new();
                    self.apply_transitions(trs, &mut wakes);
                    debug_assert!(wakes.is_empty(), "acquiring exclusivity cannot wake anyone");
                }
            }
            Ok(AccessStatus::Granted)
        } else {
            self.stats.access_waits.fetch_add(1, Ordering::Relaxed);
            let mut s = slot.sync.lock();
            s.waiting.clear();
            s.waiting.push((oid, kind));
            s.state = TaskState::Blocked;
            Ok(AccessStatus::MustWait)
        }
    }

    /// Does the task currently hold an enabled right of this kind?
    pub fn is_granted(&self, tid: TaskId, oid: ObjectId, kind: AccessKind) -> bool {
        let Some(nr) = self.slot(tid).decl(oid) else { return false };
        let sh = self.shard(oid);
        let n = sh.arena.node(nr);
        n.granted(kind)
            && match kind {
                AccessKind::Read => n.rights.read == DeclState::Immediate,
                AccessKind::Write => n.rights.write == DeclState::Immediate,
                AccessKind::Commute => n.rights.commute == DeclState::Immediate,
            }
    }

    // ------------------------------------------------------------------
    // Blocking and cancellation
    // ------------------------------------------------------------------

    /// Park the calling thread until `tid` leaves `Blocked` (returns
    /// `true`) or the engine is poisoned (returns `false`). The
    /// blocked→running transition in [`apply_transitions`] signals the
    /// slot's condvar, so no executor-wide broadcast is involved.
    pub fn wait_until_runnable(&self, tid: TaskId) -> bool {
        let slot = self.slot(tid);
        let mut s = slot.sync.lock();
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            if s.state != TaskState::Blocked {
                return true;
            }
            slot.cv.wait(&mut s);
        }
    }

    /// Park the calling thread until `tid` has been promoted out of
    /// `Pending` (returns `true`) or the engine is poisoned (returns
    /// `false`). Used by executors that run a just-created task inline
    /// in its creator: the creator must wait for the task's serial
    /// position to be enabled before executing its body.
    pub fn wait_until_ready(&self, tid: TaskId) -> bool {
        let slot = self.slot(tid);
        let mut s = slot.sync.lock();
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                return false;
            }
            if s.state != TaskState::Pending {
                return true;
            }
            slot.cv.wait(&mut s);
        }
    }

    /// Abort all engine-level waits: every thread parked in
    /// [`wait_until_runnable`] returns `false`. Used by the executor's
    /// fault path to cancel blocked tasks.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        for shard in self.task_shards.iter() {
            for slot in shard.slots.read().iter() {
                let _guard = slot.sync.lock();
                slot.cv.notify_all();
            }
        }
    }

    /// Whether [`poison`](Self::poison) has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn decls(f: impl FnOnce(&mut SpecBuilder)) -> Vec<Declaration> {
        let mut b = SpecBuilder::new();
        f(&mut b);
        b.build().0
    }

    fn create(
        e: &ShardedEngine,
        parent: TaskId,
        label: &str,
        f: impl FnOnce(&mut SpecBuilder),
    ) -> (TaskId, Vec<Wake>) {
        let tid = e.alloc_task(parent, label, Placement::Any);
        let wakes = e.attach_task(tid, decls(f)).unwrap();
        (tid, wakes)
    }

    #[test]
    fn independent_tasks_both_ready() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        let b = e.create_object(TaskId::ROOT);
        let (t1, w1) = create(&e, TaskId::ROOT, "t1", |s| {
            s.wr(a);
        });
        let (t2, w2) = create(&e, TaskId::ROOT, "t2", |s| {
            s.wr(b);
        });
        assert!(w1.contains(&Wake::Ready(t1)));
        assert!(w2.contains(&Wake::Ready(t2)));
        assert_eq!(e.live_tasks(), 2);
    }

    #[test]
    fn write_read_conflict_serializes() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        let (w, wakes) = create(&e, TaskId::ROOT, "writer", |s| {
            s.wr(a);
        });
        assert!(wakes.contains(&Wake::Ready(w)));
        let (r, wakes2) = create(&e, TaskId::ROOT, "reader", |s| {
            s.rd(a);
        });
        assert!(wakes2.is_empty(), "reader must wait for the writer");
        assert_eq!(e.state(r), TaskState::Pending);
        e.start_task(w);
        let wakes3 = e.finish_task(w);
        assert_eq!(wakes3, vec![Wake::Ready(r)]);
        assert_eq!(e.state(r), TaskState::Ready);
    }

    #[test]
    fn child_insertion_revokes_and_restores_parent_grant() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        let (t, w) = create(&e, TaskId::ROOT, "parent", |s| {
            s.rd_wr(a);
        });
        assert!(w.contains(&Wake::Ready(t)));
        e.start_task(t);
        assert!(e.is_granted(t, a, AccessKind::Write));
        // The running parent spawns a child writer: the child's node
        // inserts ahead and takes the grant.
        let (c, cw) = create(&e, t, "child", |s| {
            s.wr(a);
        });
        assert!(cw.contains(&Wake::Ready(c)));
        assert!(!e.is_granted(t, a, AccessKind::Write), "parent grant revoked");
        // Parent re-validates at guard time and blocks.
        assert_eq!(e.check_access(t, a, AccessKind::Write).unwrap(), AccessStatus::MustWait);
        e.start_task(c);
        let wakes = e.finish_task(c);
        assert!(wakes.contains(&Wake::Unblocked(t)), "parent resumes after the child");
        assert!(e.is_granted(t, a, AccessKind::Write));
    }

    #[test]
    fn multi_object_spec_is_atomic() {
        let e = ShardedEngine::new();
        // Objects spread over distinct shards.
        let os: Vec<ObjectId> = (0..4).map(|_| e.create_object(TaskId::ROOT)).collect();
        let (t, w) = create(&e, TaskId::ROOT, "all", |s| {
            for &o in &os {
                s.rd_wr(o);
            }
        });
        assert!(w.contains(&Wake::Ready(t)));
        e.start_task(t);
        for &o in &os {
            assert_eq!(e.check_access(t, o, AccessKind::Write).unwrap(), AccessStatus::Granted);
        }
        assert!(e.finish_task(t).is_empty());
        assert_eq!(e.stats.snapshot().tasks_finished, 1);
    }

    #[test]
    fn with_cont_conversion_blocks_until_enabled() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        let (w, _) = create(&e, TaskId::ROOT, "writer", |s| {
            s.wr(a);
        });
        let (r, rw) = create(&e, TaskId::ROOT, "deferred-reader", |s| {
            s.df_rd(a);
        });
        // The deferred reader starts immediately (deferred sides don't
        // gate readiness).
        assert!(rw.contains(&Wake::Ready(r)));
        e.start_task(r);
        let (blocked, _) = e.with_cont(r, vec![(a, ContOp::ToRd)]).unwrap();
        assert!(blocked, "conversion waits for the earlier writer");
        assert_eq!(e.state(r), TaskState::Blocked);
        e.start_task(w);
        let wakes = e.finish_task(w);
        assert!(wakes.contains(&Wake::Unblocked(r)));
        assert_eq!(e.state(r), TaskState::Running);
    }

    #[test]
    fn retiring_rights_releases_successors() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        let (h, _) = create(&e, TaskId::ROOT, "holder", |s| {
            s.df_wr(a);
        });
        let (r, rw) = create(&e, TaskId::ROOT, "reader", |s| {
            s.rd(a);
        });
        assert!(rw.is_empty());
        e.start_task(h);
        let (blocked, wakes) = e.with_cont(h, vec![(a, ContOp::NoWr)]).unwrap();
        assert!(!blocked);
        assert!(wakes.contains(&Wake::Ready(r)));
    }

    #[test]
    fn uncovered_child_access_is_rejected() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        let (t, _) = create(&e, TaskId::ROOT, "reader", |s| {
            s.rd(a);
        });
        e.start_task(t);
        let c = e.alloc_task(t, "writer-child", Placement::Any);
        let err = e.attach_task(c, decls(|s| {
            s.wr(a);
        }));
        assert!(matches!(err, Err(JadeError::NotCovered { .. })));
    }

    #[test]
    fn commuting_updates_serialize_via_exclusivity() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        let (c1, w1) = create(&e, TaskId::ROOT, "c1", |s| {
            s.cm(a);
        });
        let (c2, w2) = create(&e, TaskId::ROOT, "c2", |s| {
            s.cm(a);
        });
        assert!(w1.contains(&Wake::Ready(c1)));
        assert!(w2.contains(&Wake::Ready(c2)), "commuters are unordered");
        e.start_task(c1);
        e.start_task(c2);
        assert_eq!(e.check_access(c1, a, AccessKind::Commute).unwrap(), AccessStatus::Granted);
        // c1 holds the exclusivity: c2 must wait.
        assert_eq!(e.check_access(c2, a, AccessKind::Commute).unwrap(), AccessStatus::MustWait);
        let wakes = e.finish_task(c1);
        assert!(wakes.contains(&Wake::Unblocked(c2)));
        assert_eq!(e.check_access(c2, a, AccessKind::Commute).unwrap(), AccessStatus::Granted);
    }

    #[test]
    fn root_deferred_access_auto_converts_and_waits() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        let (w, _) = create(&e, TaskId::ROOT, "writer", |s| {
            s.wr(a);
        });
        // Root reads the result: auto-converts its deferred rd and
        // must wait for the writer.
        assert_eq!(
            e.check_access(TaskId::ROOT, a, AccessKind::Read).unwrap(),
            AccessStatus::MustWait
        );
        e.start_task(w);
        let wakes = e.finish_task(w);
        assert!(wakes.contains(&Wake::Unblocked(TaskId::ROOT)));
        assert_eq!(e.check_access(TaskId::ROOT, a, AccessKind::Read).unwrap(), AccessStatus::Granted);
    }

    #[test]
    fn trace_matches_depgraph_shape() {
        // The same program driven through DepGraph and ShardedEngine
        // must yield the same task-graph text.
        let run_sharded = || {
            let e = ShardedEngine::new();
            e.enable_trace();
            let a = e.create_object(TaskId::ROOT);
            let (w, _) = create(&e, TaskId::ROOT, "w", |s| {
                s.wr(a);
            });
            let (_r1, _) = create(&e, TaskId::ROOT, "r1", |s| {
                s.rd(a);
            });
            let (_r2, _) = create(&e, TaskId::ROOT, "r2", |s| {
                s.rd(a);
            });
            e.start_task(w);
            e.finish_task(w);
            e.take_trace().unwrap().to_text()
        };
        let run_graph = || {
            let mut g = crate::graph::DepGraph::new();
            g.enable_trace();
            let a = g.create_object(TaskId::ROOT);
            let (w, _) = g
                .create_task(TaskId::ROOT, "w", decls(|s| {
                    s.wr(a);
                }), Placement::Any)
                .unwrap();
            g.create_task(TaskId::ROOT, "r1", decls(|s| {
                s.rd(a);
            }), Placement::Any)
            .unwrap();
            g.create_task(TaskId::ROOT, "r2", decls(|s| {
                s.rd(a);
            }), Placement::Any)
            .unwrap();
            g.start_task(w);
            g.finish_task(w);
            g.take_trace().unwrap().to_text()
        };
        assert_eq!(run_sharded(), run_graph());
    }

    #[test]
    fn concurrent_creators_on_disjoint_objects() {
        // Many threads hammer create/attach/start/finish on their own
        // objects: nothing shared but the engine itself.
        let e = Arc::new(ShardedEngine::new());
        let objects: Vec<ObjectId> = (0..8).map(|_| e.create_object(TaskId::ROOT)).collect();
        // Root-created top tasks, one per object, each then exercised
        // from its own thread.
        let tops: Vec<TaskId> = objects
            .iter()
            .map(|&o| {
                let (t, w) = create(&e, TaskId::ROOT, "top", |s| {
                    s.rd_wr(o);
                });
                assert!(w.contains(&Wake::Ready(t)));
                e.start_task(t);
                t
            })
            .collect();
        let handles: Vec<_> = tops
            .into_iter()
            .zip(objects)
            .map(|(t, o)| {
                let e = e.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let c = e.alloc_task(t, "c", Placement::Any);
                        let wakes = e
                            .attach_task(
                                c,
                                decls(|s| {
                                    s.rd_wr(o);
                                }),
                            )
                            .unwrap();
                        assert!(wakes.contains(&Wake::Ready(c)));
                        e.start_task(c);
                        e.finish_task(c);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = e.stats.snapshot();
        assert_eq!(s.tasks_created, 8 + 8 * 50);
        assert_eq!(s.tasks_finished, 8 * 50);
    }

    #[test]
    fn poison_releases_engine_waiters() {
        let e = Arc::new(ShardedEngine::new());
        let a = e.create_object(TaskId::ROOT);
        let (w, _) = create(&e, TaskId::ROOT, "writer", |s| {
            s.wr(a);
        });
        e.start_task(w);
        // Root tries to read → must wait behind the writer.
        assert_eq!(
            e.check_access(TaskId::ROOT, a, AccessKind::Read).unwrap(),
            AccessStatus::MustWait
        );
        let waiter = {
            let e = e.clone();
            std::thread::spawn(move || e.wait_until_runnable(TaskId::ROOT))
        };
        e.poison();
        assert!(!waiter.join().unwrap(), "poison aborts the wait");
    }

    #[test]
    fn stale_task_id_is_rejected_not_aliased() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        // Sequentially create and finish enough tasks that slot indices
        // are reused (the slab round-robins over TASK_SHARDS shards, so
        // 4 * TASK_SHARDS churn guarantees every shard recycles).
        let mut by_index: std::collections::HashMap<usize, TaskId> =
            std::collections::HashMap::new();
        let mut reused = None;
        for i in 0..(4 * TASK_SHARDS) {
            let (t, _) = create(&e, TaskId::ROOT, &format!("churn{i}"), |s| {
                s.rd(a);
            });
            if let Some(&old) = by_index.get(&t.index()) {
                assert_ne!(
                    old.generation(),
                    t.generation(),
                    "recycled slot must advance its generation"
                );
                reused.get_or_insert((old, t));
            }
            by_index.insert(t.index(), t);
            e.start_task(t);
            for w in e.finish_task(t) {
                assert!(matches!(w, Wake::Ready(_) | Wake::Unblocked(_)));
            }
        }
        let (old, new) = reused.expect("slot indices are reused under churn");
        assert_eq!(old.index(), new.index());
        // The stale id fails fast instead of aliasing the new occupant.
        assert_eq!(
            e.check_access(old, a, AccessKind::Read),
            Err(JadeError::StaleTask { task: old }),
        );
        assert!(!e.is_current(old));
        assert!(e.try_slot(old).is_none());
    }

    #[test]
    fn slab_high_water_is_bounded_by_live_set_under_churn() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        // Warm up: create/finish one task to materialize a slot.
        for i in 0..256 {
            let (t, _) = create(&e, TaskId::ROOT, &format!("c{i}"), |s| {
                s.rd(a);
            });
            e.start_task(t);
            e.finish_task(t);
        }
        let peak = e.stats.snapshot().peak_task_slots;
        // Live set is 1 (plus root); with recycling the slab must not
        // grow per task. Allow per-shard slack from round-robin: the
        // cursor can land on a shard whose free slot is still being
        // returned, but never more than one slot per shard plus root.
        assert!(
            peak <= 1 + TASK_SHARDS as u64,
            "peak {peak} slots for a live-set of 1 — slab is leaking"
        );
        assert_eq!(e.stats.snapshot().tasks_created, 256, "work actually happened");
    }

    #[test]
    fn spec_cache_hits_on_repeated_identical_specs() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        // One scratch shared across attaches, like a pool worker.
        let mut scratch = EngineScratch::default();
        let mut chain = Vec::new();
        for i in 0..8 {
            let tid = e.alloc_task(TaskId::ROOT, &format!("w{i}"), Placement::Any);
            e.attach_task_with(
                tid,
                &decls(|s| {
                    s.wr(a);
                }),
                &mut scratch,
            )
            .unwrap();
            scratch.wakes.clear();
            chain.push(tid);
        }
        let snap = e.stats.snapshot();
        assert_eq!(snap.spec_cache_hits, 7, "first attach misses, the rest hit");
        assert_eq!(snap.declarations, 8, "hits still count declarations");
        // Semantics unchanged: the writers still serialize in order.
        for (i, &t) in chain.iter().enumerate() {
            assert_eq!(
                e.state(t),
                if i == 0 { TaskState::Ready } else { TaskState::Pending },
            );
        }
        for &t in &chain {
            assert!(e.wait_until_ready(t));
            e.start_task(t);
            e.finish_task_with(t, &mut scratch);
            scratch.wakes.clear();
        }
        assert_eq!(e.stats.snapshot().tasks_finished, 8);
    }

    #[test]
    fn spec_cache_invalidated_by_with_cont_retire() {
        let e = ShardedEngine::new();
        let a = e.create_object(TaskId::ROOT);
        let mut scratch = EngineScratch::default();
        let (p, _) = create(&e, TaskId::ROOT, "parent", |s| {
            s.rd_wr(a);
        });
        e.start_task(p);
        // Two identical child attaches: the second must hit the cache.
        for i in 0..2 {
            let c = e.alloc_task(p, &format!("c{i}"), Placement::Any);
            e.attach_task_with(
                c,
                &decls(|s| {
                    s.wr(a);
                }),
                &mut scratch,
            )
            .unwrap();
            scratch.wakes.clear();
            e.wait_until_ready(c);
            e.start_task(c);
            e.finish_task_with(c, &mut scratch);
            scratch.wakes.clear();
        }
        assert_eq!(e.stats.snapshot().spec_cache_hits, 1);
        // The parent retires its write side: a stale cache hit would
        // now let an uncoverable child slip through validation.
        e.with_cont_with(p, &[(a, ContOp::NoWr)], &mut scratch).unwrap();
        scratch.wakes.clear();
        let c = e.alloc_task(p, "uncovered", Placement::Any);
        let err = e.attach_task_with(
            c,
            &decls(|s| {
                s.wr(a);
            }),
            &mut scratch,
        );
        assert!(
            matches!(err, Err(JadeError::NotCovered { .. })),
            "retire must invalidate the cached validation, got {err:?}"
        );
        assert_eq!(e.stats.snapshot().spec_cache_hits, 1, "no further hits after the retire");
    }
}
