//! Identifier types shared across the Jade runtime.

use std::fmt;

use jade_transport::{PortDecoder, PortEncoder, Portable};

/// Globally valid identifier for a shared object.
///
/// The paper (§3.3): "Because objects can migrate across machines,
/// each reference to a shared object is in reality a globally valid
/// identifier for that object." Executors translate an `ObjectId` to
/// the local version of the object at access-check time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl Portable for ObjectId {
    fn encode(&self, enc: &mut PortEncoder) {
        enc.put_u64(self.0);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> jade_transport::DecodeResult<Self> {
        Ok(ObjectId(dec.get_u64()?))
    }
    fn size_hint(&self) -> usize {
        8
    }
}

/// Identifier for a task (a `withonly-do` instance). Task 0 is always
/// the root task — the main program itself.
///
/// A `TaskId` packs a slab *slot index* (low 32 bits) and that slot's
/// *generation* (high 32 bits). Task slots are recycled through a
/// free-list once a task finishes, so the bare index is ambiguous over
/// a run's lifetime; the generation is bumped at every recycle so a
/// stale id held across a reuse fails validation instead of silently
/// aliasing the slot's new occupant (the classic ABA hazard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

impl TaskId {
    /// The root task: the serial main program that creates all
    /// top-level tasks.
    pub const ROOT: TaskId = TaskId(0);

    /// Pack a slab slot index and its generation into one id.
    #[inline]
    pub fn new(index: u32, generation: u32) -> TaskId {
        TaskId(((generation as u64) << 32) | index as u64)
    }

    /// The slab slot index this id refers to.
    #[inline]
    pub fn index(self) -> usize {
        (self.0 & 0xFFFF_FFFF) as usize
    }

    /// The slot generation this id was minted under.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Whether this is the root task.
    #[inline]
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            write!(f, "task#root")
        } else if self.generation() == 0 {
            write!(f, "task#{}", self.index())
        } else {
            write!(f, "task#{}g{}", self.index(), self.generation())
        }
    }
}

/// Index of a machine in a platform (shared-memory processor, cluster
/// workstation, or special-purpose functional unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MachineId(pub u32);

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Classes of special-purpose functional units a heterogeneous machine
/// may contain (modelled after the HRV workstation of §7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceClass {
    /// General-purpose CPU with no special capability.
    Cpu,
    /// A unit that can capture/compress video frames in hardware
    /// (the HRV's SPARC-side frame digitizer).
    FrameSource,
    /// A compute accelerator (the HRV's i860 boards).
    Accelerator,
    /// A unit that can present frames on a display (HDTV output).
    Display,
}

/// Placement request a program may attach to a task; the paper's §4.5
/// "Low-Level Control": "Programmers can explicitly specify the
/// machine on which a task will execute".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Let the runtime's load balancer choose.
    #[default]
    Any,
    /// Run on a specific machine.
    Machine(MachineId),
    /// Run on any machine providing the given device class.
    Device(DeviceClass),
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_transport::{roundtrip_same, DataLayout};

    #[test]
    fn object_id_is_portable() {
        let id = ObjectId(0xDEAD_BEEF_0042);
        for l in DataLayout::all_presets() {
            assert_eq!(roundtrip_same(&id, l), id);
        }
    }

    #[test]
    fn root_task_identification() {
        assert!(TaskId::ROOT.is_root());
        assert!(!TaskId(3).is_root());
        assert_eq!(format!("{}", TaskId::ROOT), "task#root");
        assert_eq!(format!("{}", TaskId(5)), "task#5");
    }

    #[test]
    fn task_id_packs_index_and_generation() {
        let t = TaskId::new(7, 3);
        assert_eq!(t.index(), 7);
        assert_eq!(t.generation(), 3);
        assert_ne!(t, TaskId::new(7, 4), "recycled slot mints a distinct id");
        assert!(!TaskId::new(0, 1).is_root(), "a recycled slot 0 is not the root");
        assert_eq!(format!("{}", TaskId::new(7, 3)), "task#7g3");
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ObjectId(7)), "obj#7");
        assert_eq!(format!("{}", MachineId(2)), "m2");
    }
}
