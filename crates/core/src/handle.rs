//! Typed handles to shared objects.
//!
//! A [`Shared<T>`] plays the role of the paper's `shared`-qualified
//! pointer: a globally valid, machine-independent reference to a
//! shared object. Handles are `Copy`, freely movable into task bodies,
//! and themselves [`Portable`] so that shared objects may *contain*
//! handles to other shared objects — exactly like the paper's
//! `column_vector` (a shared array of references to shared columns).

use std::fmt;
use std::marker::PhantomData;

use jade_transport::{PortDecoder, PortEncoder, Portable};

use crate::ids::ObjectId;

/// The bound every shared object type must satisfy: it can be moved
/// between heterogeneous machines ([`Portable`]) and between threads.
pub trait Object: Portable + Send + Sync + 'static {}

impl<T: Portable + Send + Sync + 'static> Object for T {}

/// A typed, globally valid reference to a shared object of type `T`.
///
/// The handle carries no data; executors translate it to the local
/// version of the object when the owning task performs a checked
/// access (`ctx.rd(&h)` / `ctx.wr(&h)`).
pub struct Shared<T: Object> {
    id: ObjectId,
    _marker: PhantomData<fn() -> T>,
}

impl<T: Object> Shared<T> {
    /// Construct a handle from a raw object id. Intended for executor
    /// implementations; application code obtains handles from
    /// `ctx.create`.
    pub fn from_raw(id: ObjectId) -> Self {
        Shared { id, _marker: PhantomData }
    }

    /// The underlying globally valid object identifier.
    #[inline]
    pub fn id(&self) -> ObjectId {
        self.id
    }
}

impl<T: Object> Clone for Shared<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: Object> Copy for Shared<T> {}

impl<T: Object> PartialEq for Shared<T> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl<T: Object> Eq for Shared<T> {}

impl<T: Object> std::hash::Hash for Shared<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl<T: Object> fmt::Debug for Shared<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shared<{}>({})", std::any::type_name::<T>(), self.id)
    }
}

impl<T: Object> From<Shared<T>> for ObjectId {
    fn from(h: Shared<T>) -> ObjectId {
        h.id
    }
}

impl<T: Object> From<&Shared<T>> for ObjectId {
    fn from(h: &Shared<T>) -> ObjectId {
        h.id
    }
}

impl<T: Object> Portable for Shared<T> {
    fn encode(&self, enc: &mut PortEncoder) {
        self.id.encode(enc);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> jade_transport::DecodeResult<Self> {
        Ok(Shared::from_raw(ObjectId::decode(dec)?))
    }
    fn size_hint(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_transport::{roundtrip_same, DataLayout};

    #[test]
    fn handles_are_copy_and_comparable() {
        let a: Shared<Vec<f64>> = Shared::from_raw(ObjectId(3));
        let b = a;
        assert_eq!(a, b);
        assert_eq!(a.id(), ObjectId(3));
    }

    #[test]
    fn handles_inside_objects_are_portable() {
        // A shared "column vector": a vector of handles to columns,
        // mirroring Figure 5 of the paper.
        let cols: Vec<Shared<Vec<f64>>> =
            (0..4).map(|i| Shared::from_raw(ObjectId(i))).collect();
        for l in DataLayout::all_presets() {
            assert_eq!(roundtrip_same(&cols, l), cols);
        }
    }

    #[test]
    fn debug_format_names_type() {
        let h: Shared<f64> = Shared::from_raw(ObjectId(1));
        assert!(format!("{h:?}").contains("f64"));
    }
}
