//! # jade-core — the Jade programming model and dependency engine
//!
//! This crate implements the heart of the SC '92 paper *Heterogeneous
//! Parallel Programming in Jade* (Rinard, Scales, Lam): an implicitly
//! parallel programming model in which a sequential, imperative
//! program is augmented with *access specifications* describing how
//! each task reads and writes *shared objects*, and a runtime extracts
//! the concurrency automatically while preserving the program's serial
//! semantics.
//!
//! The crate provides:
//!
//! * the language surface — [`Shared<T>`](handle::Shared) handles,
//!   [`SpecBuilder`](spec::SpecBuilder) (`rd`/`wr`/`rd_wr`/`df_rd`/
//!   `df_wr`), [`ContBuilder`](spec::ContBuilder) (`to_rd`/`to_wr`/
//!   `no_rd`/`no_wr`), and the [`JadeCtx`](ctx::JadeCtx) trait with
//!   `withonly` and `with_cont`;
//! * the dependency engine — per-object serial-order declaration
//!   queues ([`queue`]) and the task state machine ([`graph`]) that
//!   decides which tasks may run;
//! * dynamic access checking (guards in [`ctx`], checks in
//!   [`graph::DepGraph::check_access`]);
//! * type-erased object storage with heterogeneous marshalling
//!   ([`store`]), built on `jade-transport`;
//! * the serial elision executor ([`serial`]) — the reference
//!   semantics — plus trace capture ([`trace`]) and statistics
//!   ([`stats`]).
//!
//! Parallel executors live in sibling crates: `jade-threads` (shared
//! memory) and `jade-sim` (heterogeneous message passing, simulated).
//!
//! ## A tiny Jade program
//!
//! ```
//! use jade_core::prelude::*;
//!
//! fn program<C: JadeCtx>(ctx: &mut C) -> f64 {
//!     let a = ctx.create_named("a", 1.0f64);
//!     let b = ctx.create_named("b", 2.0f64);
//!     // Two independent writers: Jade runs them concurrently.
//!     ctx.withonly("double-a", |s| { s.rd_wr(a); }, move |c| {
//!         *c.wr(&a) *= 2.0;
//!     });
//!     ctx.withonly("triple-b", |s| { s.rd_wr(b); }, move |c| {
//!         *c.wr(&b) *= 3.0;
//!     });
//!     // The main program reads the results, implicitly waiting.
//!     let r = *ctx.rd(&a) + *ctx.rd(&b);
//!     r
//! }
//!
//! let (result, stats) = jade_core::serial::run(program);
//! assert_eq!(result, 8.0);
//! assert_eq!(stats.tasks_created, 2);
//! ```

#![cfg_attr(test, deny(deprecated))]

pub mod ctx;
pub mod error;
#[macro_use]
pub mod macros;
pub mod engine;
pub mod fasthash;
pub mod graph;
pub mod handle;
pub mod ir;
pub mod kernels;
pub mod place;
pub mod observe;
pub mod parts;
pub mod ids;
pub mod queue;
pub mod readyq;
pub mod runtime;
pub mod serial;
pub mod serve;
pub mod spec;
pub mod stats;
pub mod store;
pub mod trace;

/// Convenient glob-import for writing Jade programs.
pub mod prelude {
    pub use crate::ctx::{JadeCtx, ReadGuard, WriteGuard};
    pub use crate::error::{JadeError, JadeFault};
    pub use crate::handle::{Object, Shared};
    pub use crate::ids::{DeviceClass, MachineId, ObjectId, Placement, TaskId};
    pub use crate::ir::{IrDst, IrSrc, IrStep, TaskBodyIr};
    pub use crate::kernels::{KernelFn, KernelRegistry};
    pub use crate::observe::{Event, EventCollector, EventKind, RuntimeObserver};
    pub use crate::parts::PartedVec;
    pub use crate::runtime::{CancelSignal, Report, RunConfig, Runtime, Throttle};
    pub use crate::serve::{
        ClientId, JobHandle, JobId, JobStatus, ServeConfig, Session, SubmitError,
    };
    pub use crate::spec::{AccessKind, ContBuilder, SpecBuilder};
    pub use crate::stats::{FaultStats, NetStats, RuntimeStats, ServeStats};
}
