//! The kernel registry: named pure functions over `f64` slices that
//! every machine in a platform links in.
//!
//! Jade task bodies are closures and cannot be marshalled across a
//! process boundary, so distributed execution ships *programs of
//! kernel calls* instead (the task-body IR, [`crate::ir`]): both the
//! coordinator and every worker binary resolve the same kernel names
//! against a [`KernelRegistry`] — the paper's "program text present on
//! every machine" assumption, made explicit. The registry is a plain
//! cloneable value (an `Arc` map under the hood), so each executor —
//! and each concurrently running job — owns its own registry instead
//! of sharing a process-global table.
//!
//! Kernels must be deterministic: worker-loss recovery re-executes an
//! in-flight call on a survivor, and the result must not depend on
//! which machine finished it.

use std::collections::HashMap;
use std::sync::Arc;

/// A kernel: a pure function from arguments to results.
pub type KernelFn = fn(&[f64]) -> Vec<f64>;

/// A named set of kernels. Cheap to clone (shared map); extend with
/// [`with`](KernelRegistry::with) before handing it to an executor.
#[derive(Clone)]
pub struct KernelRegistry {
    map: Arc<HashMap<&'static str, KernelFn>>,
}

impl std::fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names = self.names();
        names.sort_unstable();
        write!(f, "KernelRegistry{names:?}")
    }
}

impl Default for KernelRegistry {
    fn default() -> Self {
        KernelRegistry::builtin()
    }
}

impl KernelRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        KernelRegistry { map: Arc::new(HashMap::new()) }
    }

    /// The built-in kernels every backend knows: `sum`, `dot`,
    /// `scale2`, `sq_norm`, `cholesky_col`, and the identity kernel
    /// `id` (the IR uses `id` to scatter slices of one kernel's output
    /// into several objects).
    pub fn builtin() -> Self {
        KernelRegistry::empty()
            .with("sum", k_sum)
            .with("dot", k_dot)
            .with("scale2", k_scale2)
            .with("sq_norm", k_sq_norm)
            .with("cholesky_col", k_cholesky_col)
            .with("id", k_id)
    }

    /// Add (or replace) a kernel, builder-style.
    pub fn with(mut self, name: &'static str, f: KernelFn) -> Self {
        Arc::make_mut(&mut self.map).insert(name, f);
        self
    }

    /// Look up a kernel by name.
    pub fn lookup(&self, name: &str) -> Option<KernelFn> {
        self.map.get(name).copied()
    }

    /// Whether every name in `names` resolves.
    pub fn knows_all<'a>(&self, names: impl IntoIterator<Item = &'a str>) -> bool {
        names.into_iter().all(|n| self.map.contains_key(n))
    }

    /// Names of every registered kernel (unordered).
    pub fn names(&self) -> Vec<&'static str> {
        self.map.keys().copied().collect()
    }
}

/// Identity: `[x..] -> [x..]`. The IR's scatter primitive.
fn k_id(args: &[f64]) -> Vec<f64> {
    args.to_vec()
}

/// `[x0..xn] -> [Σx]`.
fn k_sum(args: &[f64]) -> Vec<f64> {
    vec![args.iter().sum()]
}

/// `[a0..an, b0..bn] -> [Σ aᵢbᵢ]` (odd-length input drops the middle).
fn k_dot(args: &[f64]) -> Vec<f64> {
    let h = args.len() / 2;
    vec![args[..h].iter().zip(&args[args.len() - h..]).map(|(a, b)| a * b).sum()]
}

/// Doubles every element.
fn k_scale2(args: &[f64]) -> Vec<f64> {
    args.iter().map(|x| x * 2.0).collect()
}

/// `[x0..xn] -> [Σx²]`.
fn k_sq_norm(args: &[f64]) -> Vec<f64> {
    vec![args.iter().map(|x| x * x).sum()]
}

/// One column step of a dense Cholesky: `[d, c0..cn] -> [√d, c/√d]`.
/// The shape the paper's sparse Cholesky ships to the i860 accelerator.
fn k_cholesky_col(args: &[f64]) -> Vec<f64> {
    if args.is_empty() {
        return Vec::new();
    }
    let root = args[0].max(0.0).sqrt();
    let mut out = Vec::with_capacity(args.len());
    out.push(root);
    let inv = if root > 0.0 { 1.0 / root } else { 0.0 };
    out.extend(args[1..].iter().map(|c| c * inv));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_builtin_kernel_resolves() {
        let reg = KernelRegistry::builtin();
        for n in ["sum", "dot", "scale2", "sq_norm", "cholesky_col", "id"] {
            assert!(reg.lookup(n).is_some(), "{n}");
        }
        assert!(reg.lookup("nope").is_none());
        assert!(reg.knows_all(["sum", "id"]));
        assert!(!reg.knows_all(["sum", "nope"]));
    }

    #[test]
    fn kernels_compute() {
        let reg = KernelRegistry::builtin();
        assert_eq!(reg.lookup("sum").unwrap()(&[1.0, 2.0, 3.5]), vec![6.5]);
        assert_eq!(reg.lookup("dot").unwrap()(&[1.0, 2.0, 3.0, 4.0]), vec![11.0]);
        assert_eq!(reg.lookup("scale2").unwrap()(&[1.5, -2.0]), vec![3.0, -4.0]);
        assert_eq!(reg.lookup("sq_norm").unwrap()(&[3.0, 4.0]), vec![25.0]);
        assert_eq!(reg.lookup("id").unwrap()(&[7.0, -1.0]), vec![7.0, -1.0]);
        let col = reg.lookup("cholesky_col").unwrap()(&[4.0, 2.0, 6.0]);
        assert_eq!(col, vec![2.0, 1.0, 3.0]);
    }

    #[test]
    fn registries_are_independent_values() {
        fn k_triple(args: &[f64]) -> Vec<f64> {
            args.iter().map(|x| x * 3.0).collect()
        }
        let base = KernelRegistry::builtin();
        let extended = base.clone().with("triple", k_triple);
        assert!(base.lookup("triple").is_none(), "clone-on-write: base untouched");
        assert_eq!(extended.lookup("triple").unwrap()(&[2.0]), vec![6.0]);
    }

    #[test]
    fn kernels_are_deterministic_under_reexecution() {
        // Recovery re-runs a kernel on a different machine; same input
        // must give bit-identical output.
        let reg = KernelRegistry::builtin();
        for n in reg.names() {
            let k = reg.lookup(n).unwrap();
            let args: Vec<f64> = (0..16).map(|i| (i as f64) * 0.37 - 2.0).collect();
            assert_eq!(k(&args), k(&args), "{n}");
        }
    }
}
