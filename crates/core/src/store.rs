//! Type-erased storage of shared-object versions.
//!
//! Each executor keeps one or more [`ObjectStore`]s: the shared-memory
//! executor keeps a single store (the hardware provides the shared
//! address space); the message-passing simulator keeps one store per
//! machine and moves *versions* of objects between them through the
//! typed transport. A [`Slot`] pairs the type-erased value with a
//! vtable of marshalling functions captured at creation time, so the
//! object manager can encode/decode/measure objects it does not know
//! the type of — this is how the runtime "knows the types of all
//! shared objects" (§6.1).

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use jade_transport::{DecodeResult, PortDecoder, PortEncoder};
use parking_lot::RwLock;

use crate::error::{JadeError, Result};
use crate::handle::{Object, Shared};
use crate::ids::ObjectId;

/// Type-erased pointer to an object version: an `Arc<RwLock<T>>`
/// hidden behind `dyn Any`.
pub type ErasedValue = Arc<dyn Any + Send + Sync>;

/// Marshalling vtable captured when an object is created.
#[derive(Clone, Copy)]
pub struct ObjVtable {
    /// Encode the current value into the encoder's layout.
    pub encode: fn(&ErasedValue, &mut PortEncoder),
    /// Decode a fresh version from wire bytes; corrupt or truncated
    /// bytes are an error, not a panic.
    pub decode: fn(&mut PortDecoder<'_>) -> DecodeResult<ErasedValue>,
    /// Approximate encoded size (drives simulated message sizes).
    pub size: fn(&ErasedValue) -> usize,
    /// The Rust type name, for traces and errors.
    pub type_name: &'static str,
}

impl std::fmt::Debug for ObjVtable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjVtable({})", self.type_name)
    }
}

fn encode_impl<T: Object>(v: &ErasedValue, enc: &mut PortEncoder) {
    let lock = v
        .downcast_ref::<RwLock<T>>()
        .expect("object store type confusion");
    lock.read().encode(enc);
}

fn decode_impl<T: Object>(dec: &mut PortDecoder<'_>) -> DecodeResult<ErasedValue> {
    Ok(Arc::new(RwLock::new(T::decode(dec)?)))
}

fn size_impl<T: Object>(v: &ErasedValue) -> usize {
    let lock = v
        .downcast_ref::<RwLock<T>>()
        .expect("object store type confusion");
    let guard = lock.read();
    jade_transport::Portable::size_hint(&*guard)
}

/// Build the marshalling vtable for a concrete object type.
pub fn vtable_of<T: Object>() -> ObjVtable {
    ObjVtable {
        encode: encode_impl::<T>,
        decode: decode_impl::<T>,
        size: size_impl::<T>,
        type_name: std::any::type_name::<T>(),
    }
}

/// One local version of a shared object.
#[derive(Clone, Debug)]
pub struct Slot {
    /// The value, type-erased.
    pub value: ErasedValue,
    /// Marshalling functions for the value's concrete type.
    pub vtable: ObjVtable,
    /// Debug name given at creation.
    pub name: Arc<str>,
}

impl Slot {
    /// Wrap a typed value into a slot.
    pub fn new<T: Object>(name: &str, value: T) -> Slot {
        Slot {
            value: Arc::new(RwLock::new(value)),
            vtable: vtable_of::<T>(),
            name: Arc::from(name),
        }
    }

    /// Encode this version for transfer in the given encoder.
    pub fn encode(&self, enc: &mut PortEncoder) {
        (self.vtable.encode)(&self.value, enc)
    }

    /// Decode a transferred version, producing a slot with the same
    /// vtable and name. Errors if the wire bytes are truncated or
    /// corrupted.
    pub fn decode_version(&self, dec: &mut PortDecoder<'_>) -> DecodeResult<Slot> {
        Ok(Slot {
            value: (self.vtable.decode)(dec)?,
            vtable: self.vtable,
            name: self.name.clone(),
        })
    }

    /// Approximate wire size of the current value.
    pub fn wire_size(&self) -> usize {
        (self.vtable.size)(&self.value)
    }

    /// Downcast to the typed lock. Panics on type confusion (which
    /// would indicate a forged handle).
    pub fn typed<T: Object>(&self) -> Arc<RwLock<T>> {
        let any: ErasedValue = Arc::clone(&self.value);
        any.downcast::<RwLock<T>>()
            .unwrap_or_else(|_| {
                panic!(
                    "shared object '{}' holds {} but was accessed as {}",
                    self.name,
                    self.vtable.type_name,
                    std::any::type_name::<T>()
                )
            })
    }
}

/// A map from object ids to local versions.
#[derive(Default, Debug)]
pub struct ObjectStore {
    slots: HashMap<ObjectId, Slot>,
}

impl ObjectStore {
    /// Create an empty store.
    pub fn new() -> Self {
        ObjectStore { slots: HashMap::new() }
    }

    /// Insert (or replace) the local version of an object.
    pub fn insert(&mut self, id: ObjectId, slot: Slot) {
        self.slots.insert(id, slot);
    }

    /// Remove the local version (object moved away / invalidated).
    pub fn remove(&mut self, id: ObjectId) -> Option<Slot> {
        self.slots.remove(&id)
    }

    /// Whether a local version is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.slots.contains_key(&id)
    }

    /// Borrow the local version.
    pub fn get(&self, id: ObjectId) -> Result<&Slot> {
        self.slots.get(&id).ok_or(JadeError::UnknownObject(id))
    }

    /// Typed access to the local version.
    pub fn typed<T: Object>(&self, h: &Shared<T>) -> Result<Arc<RwLock<T>>> {
        Ok(self.get(h.id())?.typed::<T>())
    }

    /// Number of resident versions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store holds no versions.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterate over resident object ids.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.slots.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_transport::DataLayout;

    #[test]
    fn slot_roundtrip_through_wire() {
        let slot = Slot::new("column", vec![1.0f64, 2.0, 3.0]);
        let mut enc = PortEncoder::new(DataLayout::sparc());
        slot.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = PortDecoder::new(&bytes, DataLayout::sparc());
        let slot2 = slot.decode_version(&mut dec).unwrap();
        let v = slot2.typed::<Vec<f64>>();
        assert_eq!(*v.read(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn truncated_version_bytes_are_an_error() {
        let slot = Slot::new("column", vec![1.0f64, 2.0, 3.0]);
        let mut enc = PortEncoder::new(DataLayout::sparc());
        slot.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = PortDecoder::new(&bytes[..bytes.len() - 4], DataLayout::sparc());
        assert!(slot.decode_version(&mut dec).is_err());
    }

    #[test]
    fn typed_access_and_mutation() {
        let mut store = ObjectStore::new();
        store.insert(ObjectId(1), Slot::new("x", 41.0f64));
        let h: Shared<f64> = Shared::from_raw(ObjectId(1));
        {
            let lock = store.typed(&h).unwrap();
            *lock.write() += 1.0;
        }
        let lock = store.typed(&h).unwrap();
        assert_eq!(*lock.read(), 42.0);
    }

    #[test]
    #[should_panic(expected = "was accessed as")]
    fn type_confusion_panics() {
        let mut store = ObjectStore::new();
        store.insert(ObjectId(1), Slot::new("x", 1.0f64));
        let h: Shared<u32> = Shared::from_raw(ObjectId(1));
        let _ = store.typed(&h).unwrap();
    }

    #[test]
    fn missing_object_is_an_error() {
        let store = ObjectStore::new();
        let h: Shared<f64> = Shared::from_raw(ObjectId(9));
        assert!(matches!(store.typed(&h), Err(JadeError::UnknownObject(_))));
    }

    #[test]
    fn wire_size_reflects_payload() {
        let small = Slot::new("s", vec![0.0f64; 4]);
        let big = Slot::new("b", vec![0.0f64; 4096]);
        assert!(big.wire_size() > small.wire_size() * 100);
    }

    #[test]
    fn remove_and_reinsert_models_migration() {
        let mut a = ObjectStore::new();
        let mut b = ObjectStore::new();
        a.insert(ObjectId(1), Slot::new("col", vec![5.0f64]));
        let slot = a.remove(ObjectId(1)).unwrap();
        // encode on machine A (sparc), decode on machine B reading
        // sparc-format bytes — the heterogeneous transfer path.
        let mut enc = PortEncoder::new(DataLayout::sparc());
        slot.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = PortDecoder::new(&bytes, DataLayout::sparc());
        b.insert(ObjectId(1), slot.decode_version(&mut dec).unwrap());
        assert!(!a.contains(ObjectId(1)));
        let h: Shared<Vec<f64>> = Shared::from_raw(ObjectId(1));
        assert_eq!(*b.typed(&h).unwrap().read(), vec![5.0]);
    }
}
