//! Type-erased storage of shared-object versions.
//!
//! Each executor keeps one or more [`ObjectStore`]s: the shared-memory
//! executor keeps a single store (the hardware provides the shared
//! address space); the message-passing simulator keeps one store per
//! machine and moves *versions* of objects between them through the
//! typed transport. A [`Slot`] pairs the type-erased value with a
//! vtable of marshalling functions captured at creation time, so the
//! object manager can encode/decode/measure objects it does not know
//! the type of — this is how the runtime "knows the types of all
//! shared objects" (§6.1).

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use jade_transport::{DecodeResult, PortDecoder, PortEncoder};
use parking_lot::RwLock;

use crate::error::{JadeError, Result};
use crate::handle::{Object, Shared};
use crate::ids::ObjectId;

/// Type-erased pointer to an object version: an `Arc<RwLock<T>>`
/// hidden behind `dyn Any`.
pub type ErasedValue = Arc<dyn Any + Send + Sync>;

/// Marshalling vtable captured when an object is created.
#[derive(Clone, Copy)]
pub struct ObjVtable {
    /// Encode the current value into the encoder's layout.
    pub encode: fn(&ErasedValue, &mut PortEncoder),
    /// Decode a fresh version from wire bytes; corrupt or truncated
    /// bytes are an error, not a panic.
    pub decode: fn(&mut PortDecoder<'_>) -> DecodeResult<ErasedValue>,
    /// Approximate encoded size (drives simulated message sizes).
    pub size: fn(&ErasedValue) -> usize,
    /// The Rust type name, for traces and errors.
    pub type_name: &'static str,
}

impl std::fmt::Debug for ObjVtable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjVtable({})", self.type_name)
    }
}

fn encode_impl<T: Object>(v: &ErasedValue, enc: &mut PortEncoder) {
    let lock = v
        .downcast_ref::<RwLock<T>>()
        .expect("object store type confusion");
    lock.read().encode(enc);
}

fn decode_impl<T: Object>(dec: &mut PortDecoder<'_>) -> DecodeResult<ErasedValue> {
    Ok(Arc::new(RwLock::new(T::decode(dec)?)))
}

fn size_impl<T: Object>(v: &ErasedValue) -> usize {
    let lock = v
        .downcast_ref::<RwLock<T>>()
        .expect("object store type confusion");
    let guard = lock.read();
    jade_transport::Portable::size_hint(&*guard)
}

/// Build the marshalling vtable for a concrete object type.
pub fn vtable_of<T: Object>() -> ObjVtable {
    ObjVtable {
        encode: encode_impl::<T>,
        decode: decode_impl::<T>,
        size: size_impl::<T>,
        type_name: std::any::type_name::<T>(),
    }
}

/// Type-erased projection of an object into the IR's `f64` domain.
type LowerFn = Arc<dyn Fn(&ErasedValue) -> Option<Vec<f64>> + Send + Sync>;
/// Type-erased replacement of an object from a projection.
type LiftFn = Arc<dyn Fn(&ErasedValue, &[f64]) -> bool + Send + Sync>;

/// Lowering functions projecting a typed object into the task-body
/// IR's flat `f64` value domain and back (see [`crate::ir`]).
#[derive(Clone)]
struct LowerOps {
    lower: LowerFn,
    lift: LiftFn,
}

/// The type-keyed lowering registry. Global and idempotent: an entry
/// is a pure projection decided by the *type*, so concurrent jobs
/// cannot conflict through it (unlike a kernel registry, which is
/// per-executor state).
fn lowerings() -> &'static RwLock<HashMap<TypeId, LowerOps>> {
    static REG: OnceLock<RwLock<HashMap<TypeId, LowerOps>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Register how a concrete object type lowers to the IR's `Vec<f64>`
/// domain. `lower` projects the value; `lift` replaces the value from
/// a projection, returning `false` on a shape mismatch (which aborts
/// the remote path for that task, never corrupts the object).
///
/// Idempotent: re-registering a type replaces its entry. The std
/// scalar/vector types are pre-registered; applications add their own
/// (e.g. `pmake`'s `FileState`).
pub fn register_lowering<T: Object>(
    lower: impl Fn(&T) -> Vec<f64> + Send + Sync + 'static,
    lift: impl Fn(&mut T, &[f64]) -> bool + Send + Sync + 'static,
) {
    let ops = LowerOps {
        lower: Arc::new(move |v: &ErasedValue| {
            v.downcast_ref::<RwLock<T>>().map(|lock| lower(&lock.read()))
        }),
        lift: Arc::new(move |v: &ErasedValue, data: &[f64]| {
            match v.downcast_ref::<RwLock<T>>() {
                Some(lock) => lift(&mut lock.write(), data),
                None => false,
            }
        }),
    };
    ensure_std_lowerings();
    lowerings().write().insert(TypeId::of::<RwLock<T>>(), ops);
}

fn insert_lowering_if_absent<T: Object>(
    map: &mut HashMap<TypeId, LowerOps>,
    lower: fn(&T) -> Vec<f64>,
    lift: fn(&mut T, &[f64]) -> bool,
) {
    map.entry(TypeId::of::<RwLock<T>>()).or_insert_with(|| LowerOps {
        lower: Arc::new(move |v: &ErasedValue| {
            v.downcast_ref::<RwLock<T>>().map(|lock| lower(&lock.read()))
        }),
        lift: Arc::new(move |v: &ErasedValue, data: &[f64]| {
            match v.downcast_ref::<RwLock<T>>() {
                Some(lock) => lift(&mut lock.write(), data),
                None => false,
            }
        }),
    });
}

/// Pre-register the lowerings for the std object types the example
/// programs ship: `f64`, `Vec<f64>`, `Vec<[f64; 3]>`.
fn ensure_std_lowerings() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        let mut map = lowerings().write();
        insert_lowering_if_absent::<f64>(
            &mut map,
            |v| vec![*v],
            |v, data| {
                if data.len() != 1 {
                    return false;
                }
                *v = data[0];
                true
            },
        );
        insert_lowering_if_absent::<Vec<f64>>(
            &mut map,
            |v| v.clone(),
            |v, data| {
                *v = data.to_vec();
                true
            },
        );
        insert_lowering_if_absent::<Vec<[f64; 3]>>(
            &mut map,
            |v| v.iter().flatten().copied().collect(),
            |v, data| {
                if data.len() % 3 != 0 {
                    return false;
                }
                *v = data.chunks_exact(3).map(|c| [c[0], c[1], c[2]]).collect();
                true
            },
        );
    });
}

/// One local version of a shared object.
#[derive(Clone, Debug)]
pub struct Slot {
    /// The value, type-erased.
    pub value: ErasedValue,
    /// Marshalling functions for the value's concrete type.
    pub vtable: ObjVtable,
    /// Debug name given at creation.
    pub name: Arc<str>,
}

impl Slot {
    /// Wrap a typed value into a slot.
    pub fn new<T: Object>(name: &str, value: T) -> Slot {
        Slot {
            value: Arc::new(RwLock::new(value)),
            vtable: vtable_of::<T>(),
            name: Arc::from(name),
        }
    }

    /// Encode this version for transfer in the given encoder.
    pub fn encode(&self, enc: &mut PortEncoder) {
        (self.vtable.encode)(&self.value, enc)
    }

    /// Decode a transferred version, producing a slot with the same
    /// vtable and name. Errors if the wire bytes are truncated or
    /// corrupted.
    pub fn decode_version(&self, dec: &mut PortDecoder<'_>) -> DecodeResult<Slot> {
        Ok(Slot {
            value: (self.vtable.decode)(dec)?,
            vtable: self.vtable,
            name: self.name.clone(),
        })
    }

    /// Approximate wire size of the current value.
    pub fn wire_size(&self) -> usize {
        (self.vtable.size)(&self.value)
    }

    /// Project the current value into the IR's flat `f64` domain, or
    /// `None` when no lowering is registered for the value's type
    /// (the task then stays on the closure path).
    pub fn lower(&self) -> Option<Vec<f64>> {
        ensure_std_lowerings();
        let ops = lowerings().read().get(&(*self.value).type_id())?.clone();
        (ops.lower)(&self.value)
    }

    /// Replace the current value from an IR projection. Returns
    /// `false` (leaving the value untouched) when no lowering is
    /// registered or the projection's shape does not fit the type.
    pub fn lift(&self, data: &[f64]) -> bool {
        ensure_std_lowerings();
        let Some(ops) = lowerings().read().get(&(*self.value).type_id()).cloned() else {
            return false;
        };
        (ops.lift)(&self.value, data)
    }

    /// Downcast to the typed lock. Panics on type confusion (which
    /// would indicate a forged handle).
    pub fn typed<T: Object>(&self) -> Arc<RwLock<T>> {
        let any: ErasedValue = Arc::clone(&self.value);
        any.downcast::<RwLock<T>>()
            .unwrap_or_else(|_| {
                panic!(
                    "shared object '{}' holds {} but was accessed as {}",
                    self.name,
                    self.vtable.type_name,
                    std::any::type_name::<T>()
                )
            })
    }
}

/// A map from object ids to local versions.
#[derive(Default, Debug)]
pub struct ObjectStore {
    slots: HashMap<ObjectId, Slot>,
}

impl ObjectStore {
    /// Create an empty store.
    pub fn new() -> Self {
        ObjectStore { slots: HashMap::new() }
    }

    /// Insert (or replace) the local version of an object.
    pub fn insert(&mut self, id: ObjectId, slot: Slot) {
        self.slots.insert(id, slot);
    }

    /// Remove the local version (object moved away / invalidated).
    pub fn remove(&mut self, id: ObjectId) -> Option<Slot> {
        self.slots.remove(&id)
    }

    /// Whether a local version is present.
    pub fn contains(&self, id: ObjectId) -> bool {
        self.slots.contains_key(&id)
    }

    /// Borrow the local version.
    pub fn get(&self, id: ObjectId) -> Result<&Slot> {
        self.slots.get(&id).ok_or(JadeError::UnknownObject(id))
    }

    /// Typed access to the local version.
    pub fn typed<T: Object>(&self, h: &Shared<T>) -> Result<Arc<RwLock<T>>> {
        Ok(self.get(h.id())?.typed::<T>())
    }

    /// Number of resident versions.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store holds no versions.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterate over resident object ids.
    pub fn ids(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.slots.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_transport::DataLayout;

    #[test]
    fn slot_roundtrip_through_wire() {
        let slot = Slot::new("column", vec![1.0f64, 2.0, 3.0]);
        let mut enc = PortEncoder::new(DataLayout::sparc());
        slot.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = PortDecoder::new(&bytes, DataLayout::sparc());
        let slot2 = slot.decode_version(&mut dec).unwrap();
        let v = slot2.typed::<Vec<f64>>();
        assert_eq!(*v.read(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn truncated_version_bytes_are_an_error() {
        let slot = Slot::new("column", vec![1.0f64, 2.0, 3.0]);
        let mut enc = PortEncoder::new(DataLayout::sparc());
        slot.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = PortDecoder::new(&bytes[..bytes.len() - 4], DataLayout::sparc());
        assert!(slot.decode_version(&mut dec).is_err());
    }

    #[test]
    fn typed_access_and_mutation() {
        let mut store = ObjectStore::new();
        store.insert(ObjectId(1), Slot::new("x", 41.0f64));
        let h: Shared<f64> = Shared::from_raw(ObjectId(1));
        {
            let lock = store.typed(&h).unwrap();
            *lock.write() += 1.0;
        }
        let lock = store.typed(&h).unwrap();
        assert_eq!(*lock.read(), 42.0);
    }

    #[test]
    #[should_panic(expected = "was accessed as")]
    fn type_confusion_panics() {
        let mut store = ObjectStore::new();
        store.insert(ObjectId(1), Slot::new("x", 1.0f64));
        let h: Shared<u32> = Shared::from_raw(ObjectId(1));
        let _ = store.typed(&h).unwrap();
    }

    #[test]
    fn missing_object_is_an_error() {
        let store = ObjectStore::new();
        let h: Shared<f64> = Shared::from_raw(ObjectId(9));
        assert!(matches!(store.typed(&h), Err(JadeError::UnknownObject(_))));
    }

    #[test]
    fn wire_size_reflects_payload() {
        let small = Slot::new("s", vec![0.0f64; 4]);
        let big = Slot::new("b", vec![0.0f64; 4096]);
        assert!(big.wire_size() > small.wire_size() * 100);
    }

    #[test]
    fn std_lowerings_round_trip() {
        let scalar = Slot::new("e", 2.5f64);
        assert_eq!(scalar.lower().unwrap(), vec![2.5]);
        assert!(scalar.lift(&[7.0]));
        assert_eq!(*scalar.typed::<f64>().read(), 7.0);
        assert!(!scalar.lift(&[1.0, 2.0]), "a scalar rejects a vector shape");

        let col = Slot::new("col", vec![1.0f64, 2.0]);
        assert_eq!(col.lower().unwrap(), vec![1.0, 2.0]);
        assert!(col.lift(&[9.0, 8.0, 7.0]), "vectors may change length");
        assert_eq!(*col.typed::<Vec<f64>>().read(), vec![9.0, 8.0, 7.0]);

        let pts = Slot::new("pos", vec![[1.0f64, 2.0, 3.0]]);
        assert_eq!(pts.lower().unwrap(), vec![1.0, 2.0, 3.0]);
        assert!(pts.lift(&[4.0, 5.0, 6.0, 7.0, 8.0, 9.0]));
        assert_eq!(
            *pts.typed::<Vec<[f64; 3]>>().read(),
            vec![[4.0, 5.0, 6.0], [7.0, 8.0, 9.0]]
        );
        assert!(!pts.lift(&[1.0, 2.0]), "length must be a multiple of 3");
    }

    #[test]
    fn unregistered_type_does_not_lower() {
        let slot = Slot::new("s", "hello".to_string());
        assert!(slot.lower().is_none());
        assert!(!slot.lift(&[1.0]));
        assert_eq!(*slot.typed::<String>().read(), "hello", "lift must not corrupt");
    }

    #[test]
    fn app_types_register_their_own_lowering() {
        #[derive(Debug, Clone, Copy, PartialEq)]
        struct Pair(f64, f64);
        impl jade_transport::Portable for Pair {
            fn encode(&self, enc: &mut PortEncoder) {
                enc.put_f64(self.0);
                enc.put_f64(self.1);
            }
            fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
                Ok(Pair(dec.get_f64()?, dec.get_f64()?))
            }
        }
        super::register_lowering::<Pair>(
            |p| vec![p.0, p.1],
            |p, d| {
                if d.len() != 2 {
                    return false;
                }
                *p = Pair(d[0], d[1]);
                true
            },
        );
        let slot = Slot::new("p", Pair(1.0, 2.0));
        assert_eq!(slot.lower().unwrap(), vec![1.0, 2.0]);
        assert!(slot.lift(&[3.0, 4.0]));
        assert_eq!(*slot.typed::<Pair>().read(), Pair(3.0, 4.0));
    }

    #[test]
    fn remove_and_reinsert_models_migration() {
        let mut a = ObjectStore::new();
        let mut b = ObjectStore::new();
        a.insert(ObjectId(1), Slot::new("col", vec![5.0f64]));
        let slot = a.remove(ObjectId(1)).unwrap();
        // encode on machine A (sparc), decode on machine B reading
        // sparc-format bytes — the heterogeneous transfer path.
        let mut enc = PortEncoder::new(DataLayout::sparc());
        slot.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = PortDecoder::new(&bytes, DataLayout::sparc());
        b.insert(ObjectId(1), slot.decode_version(&mut dec).unwrap());
        assert!(!a.contains(ObjectId(1)));
        let h: Shared<Vec<f64>> = Shared::from_raw(ObjectId(1));
        assert_eq!(*b.typed(&h).unwrap().read(), vec![5.0]);
    }
}
