//! The dependency engine: Jade's serial-semantics state machine.
//!
//! [`DepGraph`] is a *passive* data structure driven by an executor
//! (the shared-memory thread pool in `jade-threads`, the
//! message-passing simulator in `jade-sim`, or the serial elision in
//! [`crate::serial`]). It owns the per-object declaration queues, the
//! task records and the hierarchical serial-order bookkeeping, and it
//! answers the only question that matters for correctness: *which
//! tasks may run (or resume) now without violating the serial
//! semantics of the original program?*
//!
//! ## Serial order of hierarchical tasks
//!
//! Every task carries a *path*: the root is `[]`, the k-th child of a
//! task with path `p` is `p ++ [k]`. Serial execution order of two
//! distinct tasks is the lexicographic order of paths **except** that
//! an ancestor sorts *after* its descendants — a child's body runs at
//! its creation point, before the remainder of the parent. Queue
//! nodes are kept sorted by this order; inserting a new child's
//! declaration immediately before its parent's node preserves it
//! (children are created in index order).
//!
//! When a task needs a queue position on an object its parent never
//! declared (possible for objects created dynamically by other
//! subtrees), the engine materializes zero-rights *anchor* nodes for
//! the ancestor chain at the correct serial position; anchors never
//! block or grant anything, they only mark where a subtree's accesses
//! belong.

use std::collections::HashSet;

use crate::error::{JadeError, Result};
use crate::ids::{ObjectId, Placement, TaskId};
use crate::queue::{Granted, NodeRef, QueueArena};
use crate::spec::{AccessKind, ContOp, DeclRights, DeclState, Declaration};
use crate::stats::RuntimeStats;
use crate::trace::{TaskGraphTrace, TraceEdge};

/// Lifecycle of a task inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Created; some immediate declaration not yet enabled.
    Pending,
    /// All immediate declarations enabled; may start executing.
    Ready,
    /// Body executing.
    Running,
    /// Body suspended mid-execution waiting for a declaration to be
    /// enabled (a blocking `with-cont` conversion or a revoked access
    /// being re-acquired).
    Blocked,
    /// Body finished and queue positions released.
    Finished,
}

/// Scheduling notification produced by engine transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A pending task became ready to start.
    Ready(TaskId),
    /// A blocked (suspended) task may resume.
    Unblocked(TaskId),
}

/// Result of an access check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessStatus {
    /// The access may proceed immediately.
    Granted,
    /// The task must suspend; the engine recorded what it waits for
    /// and will emit [`Wake::Unblocked`] when the wait is satisfied.
    MustWait,
}

/// Internal task record.
#[derive(Debug)]
struct TaskRec {
    label: String,
    parent: Option<TaskId>,
    state: TaskState,
    path: Vec<u32>,
    next_child_idx: u32,
    /// Declaration/anchor nodes of this task, in declaration order.
    decls: Vec<(ObjectId, NodeRef)>,
    placement: Placement,
    /// Outstanding waits while `Blocked`.
    waiting: Vec<(ObjectId, AccessKind)>,
    children_alive: u32,
}

impl TaskRec {
    fn decl(&self, oid: ObjectId) -> Option<NodeRef> {
        self.decls.iter().find(|(o, _)| *o == oid).map(|(_, n)| *n)
    }
}

/// `true` iff the task with path `a` strictly precedes the task with
/// path `b` in the serial execution order. An ancestor sorts *after*
/// all of its descendants.
pub fn path_precedes(a: &[u32], b: &[u32]) -> bool {
    let min = a.len().min(b.len());
    for i in 0..min {
        if a[i] != b[i] {
            return a[i] < b[i];
        }
    }
    // One is a prefix of the other (or equal): the longer path is the
    // descendant and precedes its ancestor.
    a.len() > b.len()
}

/// The dependency engine.
#[derive(Debug)]
pub struct DepGraph {
    tasks: Vec<TaskRec>,
    arena: QueueArena,
    trace: Option<TaskGraphTrace>,
    /// Trace-only per-object access history in declaration order:
    /// (last writer, readers since that write). Unlike the live queue
    /// (whose completed entries are gone), this captures the *logical*
    /// dependences of the serial order, so Figure 4-style task graphs
    /// are complete even under the serial elision.
    trace_hist: std::collections::HashMap<ObjectId, (Option<TaskId>, Vec<TaskId>)>,
    /// Counters describing the work the engine performed.
    pub stats: RuntimeStats,
    live: u64,
    next_object: u64,
}

impl Default for DepGraph {
    fn default() -> Self {
        Self::new()
    }
}

impl DepGraph {
    /// Create an engine with a running root task (the main program).
    pub fn new() -> Self {
        let root = TaskRec {
            label: "root".to_string(),
            parent: None,
            state: TaskState::Running,
            path: Vec::new(),
            next_child_idx: 0,
            decls: Vec::new(),
            placement: Placement::Any,
            waiting: Vec::new(),
            children_alive: 0,
        };
        DepGraph {
            tasks: vec![root],
            arena: QueueArena::new(),
            trace: None,
            trace_hist: std::collections::HashMap::new(),
            stats: RuntimeStats::default(),
            live: 0,
            next_object: 0,
        }
    }

    /// Enable dynamic task-graph capture (Figure 4 reproduction).
    pub fn enable_trace(&mut self) {
        let mut tr = TaskGraphTrace::new();
        tr.task(TaskId::ROOT, "root");
        self.trace = Some(tr);
    }

    /// Take the captured trace, if tracing was enabled.
    pub fn take_trace(&mut self) -> Option<TaskGraphTrace> {
        self.trace.take()
    }

    fn rec(&self, t: TaskId) -> &TaskRec {
        &self.tasks[t.index()]
    }

    fn rec_mut(&mut self, t: TaskId) -> &mut TaskRec {
        &mut self.tasks[t.index()]
    }

    /// Current lifecycle state of a task.
    pub fn state(&self, t: TaskId) -> TaskState {
        self.rec(t).state
    }

    /// Label given at creation.
    pub fn label(&self, t: TaskId) -> &str {
        &self.rec(t).label
    }

    /// Parent task (`None` for the root).
    pub fn parent(&self, t: TaskId) -> Option<TaskId> {
        self.rec(t).parent
    }

    /// Placement requested for the task.
    pub fn placement(&self, t: TaskId) -> Placement {
        self.rec(t).placement
    }

    /// Number of created-but-unfinished tasks (root excluded); the
    /// executors' throttling policies read this.
    pub fn live_tasks(&self) -> u64 {
        self.live
    }

    /// Number of tasks ever created, including the root.
    pub fn total_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// The task's declarations: object and current rights (anchors
    /// excluded). The simulator uses this to drive object fetches.
    pub fn declarations_of(&self, t: TaskId) -> Vec<(ObjectId, DeclRights)> {
        self.rec(t)
            .decls
            .iter()
            .filter_map(|&(oid, nr)| {
                let n = self.arena.node(nr);
                n.rights.is_declared().then_some((oid, n.rights))
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Objects
    // ------------------------------------------------------------------

    /// Register a new shared object created by `creator`. The creator
    /// receives an implicit immediate `rd_wr` declaration at its serial
    /// position (so it can initialize the object and cover its
    /// children), and the root receives its implicit deferred `rd_wr`
    /// declaration at the queue tail (so the main program can always
    /// collect results, waiting for every task in serial order).
    pub fn create_object(&mut self, creator: TaskId) -> ObjectId {
        let oid = ObjectId(self.next_object);
        self.next_object += 1;
        self.arena.register_object(oid);
        self.stats.objects_created += 1;
        // Root's implicit deferred rd_wr at the tail.
        let root_rights = DeclRights {
            read: DeclState::Deferred,
            write: DeclState::Deferred,
            commute: DeclState::None,
        };
        let root_node = self.arena.push_tail(oid, TaskId::ROOT, root_rights);
        self.rec_mut(TaskId::ROOT).decls.push((oid, root_node));
        if !creator.is_root() {
            let node = self.ensure_positioned_node(creator, oid, DeclRights::RD_WR);
            // Freshly created: nothing precedes it but anchors.
            let _ = node;
        }
        self.arena.recompute(oid);
        oid
    }

    /// Whether an object id has been registered.
    pub fn has_object(&self, oid: ObjectId) -> bool {
        self.arena.has_object(oid)
    }

    /// Find the node of `task` on `oid`, or create one (with `rights`)
    /// at the task's serial position, materializing ancestor anchors
    /// as needed. If a node already exists, `rights` are merged in.
    fn ensure_positioned_node(
        &mut self,
        task: TaskId,
        oid: ObjectId,
        rights: DeclRights,
    ) -> NodeRef {
        if let Some(nr) = self.rec(task).decl(oid) {
            if rights.is_declared() {
                let n = self.arena.node_mut(nr);
                n.rights = n.rights.merge(rights);
            }
            return nr;
        }
        let nr = match self.rec(task).parent {
            None => {
                // Root without a node: append at tail (root sorts last).
                self.arena.push_tail(oid, task, rights)
            }
            Some(parent) => {
                let pnode = self.ensure_positioned_node(parent, oid, DeclRights::NONE);
                // A *newly created* task may always insert directly
                // before its parent (it is the parent's newest child).
                // An older task (anchor materialization) must find its
                // serial position by order walk.
                if self.is_newest_child_position(task) {
                    self.arena.insert_before(pnode, task, rights)
                } else {
                    self.insert_by_order(task, oid, rights)
                }
            }
        };
        self.rec_mut(task).decls.push((oid, nr));
        nr
    }

    /// Whether `task` was the most recently created child of its
    /// parent (so insert-before-parent is order-correct).
    fn is_newest_child_position(&self, task: TaskId) -> bool {
        let rec = self.rec(task);
        match rec.parent {
            None => true,
            Some(p) => {
                let idx = *rec.path.last().expect("non-root task has a path");
                self.rec(p).next_child_idx == idx + 1
            }
        }
    }

    /// Insert a node for `task` at its serial position by walking the
    /// queue and comparing task paths.
    fn insert_by_order(&mut self, task: TaskId, oid: ObjectId, rights: DeclRights) -> NodeRef {
        let my_path = self.rec(task).path.clone();
        let mut before: Option<NodeRef> = None;
        for (nr, node) in self.arena.iter(oid) {
            let other_path = &self.rec(node.task).path;
            if path_precedes(&my_path, other_path) {
                before = Some(nr);
                break;
            }
        }
        match before {
            Some(b) => self.arena.insert_before(b, task, rights),
            None => self.arena.push_tail(oid, task, rights),
        }
    }

    // ------------------------------------------------------------------
    // Task creation
    // ------------------------------------------------------------------

    /// Create a task: the engine half of `withonly`. Declarations must
    /// be covered by the nearest rights-holding ancestor's
    /// declarations (§4.4). Returns the new task id and any wakes
    /// (including `Ready(new)` if it can start immediately).
    pub fn create_task(
        &mut self,
        parent: TaskId,
        label: &str,
        decls: Vec<Declaration>,
        placement: Placement,
    ) -> Result<(TaskId, Vec<Wake>)> {
        debug_assert!(
            matches!(self.rec(parent).state, TaskState::Running | TaskState::Ready),
            "only an executing task can create children"
        );
        // Validate objects and coverage before mutating anything.
        for d in &decls {
            if !self.arena.has_object(d.object) {
                return Err(JadeError::UnknownObject(d.object));
            }
            self.check_coverage(parent, label, d)?;
        }

        let tid = TaskId(self.tasks.len() as u64);
        let child_idx = {
            let p = self.rec_mut(parent);
            let i = p.next_child_idx;
            p.next_child_idx += 1;
            p.children_alive += 1;
            i
        };
        let mut path = self.rec(parent).path.clone();
        path.push(child_idx);
        self.tasks.push(TaskRec {
            label: label.to_string(),
            parent: Some(parent),
            state: TaskState::Pending,
            path,
            next_child_idx: 0,
            decls: Vec::new(),
            placement,
            waiting: Vec::new(),
            children_alive: 0,
        });
        self.live += 1;
        self.stats.tasks_created += 1;
        self.stats.peak_live_tasks = self.stats.peak_live_tasks.max(self.live);
        self.stats.declarations += decls.len() as u64;
        if let Some(tr) = &mut self.trace {
            tr.task(tid, label);
        }

        let mut touched: Vec<ObjectId> = Vec::with_capacity(decls.len());
        let mut fresh: Vec<(ObjectId, NodeRef)> = Vec::with_capacity(decls.len());
        for d in &decls {
            let pnode = self.ensure_positioned_node(parent, d.object, DeclRights::NONE);
            let nr = self.arena.insert_before(pnode, tid, d.rights);
            self.rec_mut(tid).decls.push((d.object, nr));
            touched.push(d.object);
            fresh.push((d.object, nr));
            // Record the *logical* dependence edges (Figure 4) from
            // the serial-order access history, which also covers
            // predecessors that already completed. Their count is the
            // conflicts statistic — O(edges), no queue walk.
            {
                let hist = self.trace_hist.entry(d.object).or_default();
                let mut edges: Vec<(TaskId, AccessKind)> = Vec::new();
                if d.rights.read.is_active() {
                    if let Some(w) = hist.0 {
                        edges.push((w, AccessKind::Read));
                    }
                }
                if d.rights.write.is_active() {
                    if let Some(w) = hist.0 {
                        edges.push((w, AccessKind::Write));
                    }
                    for &r in &hist.1 {
                        edges.push((r, AccessKind::Write));
                    }
                }
                // Commuting updates order against reads/writes but not
                // against each other: the writer history yields an
                // edge; peer commuters do not.
                if d.rights.commute.is_active() {
                    if let Some(w) = hist.0 {
                        edges.push((w, AccessKind::Commute));
                    }
                }
                if d.rights.write.is_active() {
                    hist.0 = Some(tid);
                    hist.1.clear();
                } else if d.rights.read.is_active() && !hist.1.contains(&tid) {
                    hist.1.push(tid);
                }
                self.stats.conflicts +=
                    edges.iter().filter(|&&(p, _)| p != tid).count() as u64;
                if let Some(tr) = self.trace.as_mut() {
                    for (p, kind) in edges {
                        if p != tid {
                            tr.edge(TraceEdge { from: p, to: tid, object: d.object, kind });
                        }
                    }
                }
            }
        }

        let mut wakes = Vec::new();
        for oid in touched {
            let f: Vec<NodeRef> =
                fresh.iter().filter(|&&(o, _)| o == oid).map(|&(_, n)| n).collect();
            let grants = self.arena.recompute_incremental(oid, &f);
            self.process_grants(grants, &mut wakes);
        }
        // The recompute loop may already have promoted the new task
        // (its fresh nodes transition to granted there), so only
        // promote here if it is still pending — a task must be woken
        // exactly once.
        if self.rec(tid).state == TaskState::Pending && self.all_immediate_granted(tid) {
            self.rec_mut(tid).state = TaskState::Ready;
            wakes.push(Wake::Ready(tid));
        }
        Ok((tid, wakes))
    }

    /// Enforce §4.4: a child's declaration must be covered by the
    /// nearest ancestor that holds rights on the object. Subtrees may
    /// access dynamically created objects that escaped their creator
    /// (no ancestor holds rights); serial correctness is then ensured
    /// purely by queue position.
    fn check_coverage(&self, parent: TaskId, child_label: &str, d: &Declaration) -> Result<()> {
        let mut cur = Some(parent);
        while let Some(t) = cur {
            if let Some(nr) = self.rec(t).decl(d.object) {
                let rights = self.arena.node(nr).rights;
                if rights.is_declared() {
                    if rights.covers(d.rights) {
                        return Ok(());
                    }
                    let kind = if d.rights.write.is_active() && !rights.write.is_active() {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    return Err(JadeError::NotCovered {
                        parent: t,
                        child_label: child_label.to_string(),
                        object: d.object,
                        kind,
                    });
                }
            }
            cur = self.rec(t).parent;
        }
        Ok(())
    }

    fn all_immediate_granted(&self, tid: TaskId) -> bool {
        self.rec(tid).decls.iter().all(|&(_, nr)| {
            let n = self.arena.node(nr);
            (n.rights.read != DeclState::Immediate || n.read_granted)
                && (n.rights.write != DeclState::Immediate || n.write_granted)
                && (n.rights.commute != DeclState::Immediate || n.commute_granted)
        })
    }

    fn process_grants(&mut self, grants: Vec<Granted>, wakes: &mut Vec<Wake>) {
        let mut candidates: Vec<TaskId> = Vec::new();
        for g in grants {
            if !candidates.contains(&g.task) {
                candidates.push(g.task);
            }
        }
        for t in candidates {
            match self.rec(t).state {
                TaskState::Pending if self.all_immediate_granted(t) => {
                    self.rec_mut(t).state = TaskState::Ready;
                    wakes.push(Wake::Ready(t));
                }
                TaskState::Blocked => {
                    let satisfied = {
                        let rec = self.rec(t);
                        rec.waiting.iter().all(|&(oid, kind)| {
                            rec.decl(oid)
                                .map(|nr| self.arena.node(nr).granted(kind))
                                .unwrap_or(true)
                        })
                    };
                    if satisfied {
                        let rec = self.rec_mut(t);
                        rec.waiting.clear();
                        rec.state = TaskState::Running;
                        wakes.push(Wake::Unblocked(t));
                    }
                }
                _ => {}
            }
        }
    }

    // ------------------------------------------------------------------
    // Task lifecycle
    // ------------------------------------------------------------------

    /// Mark a ready task as running (an executor picked it up).
    pub fn start_task(&mut self, tid: TaskId) {
        debug_assert_eq!(self.rec(tid).state, TaskState::Ready, "start of non-ready task");
        self.rec_mut(tid).state = TaskState::Running;
    }

    /// The engine half of task-body completion: release all queue
    /// positions and wake whoever becomes enabled.
    pub fn finish_task(&mut self, tid: TaskId) -> Vec<Wake> {
        debug_assert!(
            matches!(self.rec(tid).state, TaskState::Running),
            "finish of non-running task {tid}"
        );
        let decls = std::mem::take(&mut self.rec_mut(tid).decls);
        let mut objects: Vec<ObjectId> = Vec::with_capacity(decls.len());
        for (oid, nr) in decls {
            self.arena.remove(nr);
            if !objects.contains(&oid) {
                objects.push(oid);
            }
        }
        self.rec_mut(tid).state = TaskState::Finished;
        if !tid.is_root() {
            self.live -= 1;
            self.stats.tasks_finished += 1;
            if let Some(p) = self.rec(tid).parent {
                self.rec_mut(p).children_alive -= 1;
            }
        }
        let mut wakes = Vec::new();
        for oid in objects {
            let grants = self.arena.recompute_incremental(oid, &[]);
            self.process_grants(grants, &mut wakes);
        }
        wakes
    }

    // ------------------------------------------------------------------
    // with-cont and access checking
    // ------------------------------------------------------------------

    /// The engine half of `with { ... } cont;`. Applies the operations
    /// in order; returns whether the task must suspend (a conversion
    /// to immediate is not yet enabled) plus wakes for other tasks
    /// released by retirements.
    pub fn with_cont(
        &mut self,
        tid: TaskId,
        ops: Vec<(ObjectId, ContOp)>,
    ) -> Result<(bool, Vec<Wake>)> {
        self.stats.with_conts += 1;
        let mut converted: Vec<(ObjectId, AccessKind)> = Vec::new();
        let mut touched: HashSet<ObjectId> = HashSet::new();
        for (oid, op) in ops {
            let nr = self
                .rec(tid)
                .decl(oid)
                .ok_or(JadeError::UnknownDeclaration { task: tid, object: oid })?;
            let node = self.arena.node_mut(nr);
            match op {
                ContOp::ToRd => match node.rights.read {
                    DeclState::Deferred => {
                        node.rights.read = DeclState::Immediate;
                        converted.push((oid, AccessKind::Read));
                    }
                    DeclState::Immediate => converted.push((oid, AccessKind::Read)),
                    DeclState::None => {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid })
                    }
                    DeclState::Retired => {
                        return Err(JadeError::RetiredAccess {
                            task: tid,
                            object: oid,
                            kind: AccessKind::Read,
                        })
                    }
                },
                ContOp::ToWr => match node.rights.write {
                    DeclState::Deferred => {
                        node.rights.write = DeclState::Immediate;
                        converted.push((oid, AccessKind::Write));
                    }
                    DeclState::Immediate => converted.push((oid, AccessKind::Write)),
                    DeclState::None => {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid })
                    }
                    DeclState::Retired => {
                        return Err(JadeError::RetiredAccess {
                            task: tid,
                            object: oid,
                            kind: AccessKind::Write,
                        })
                    }
                },
                ContOp::NoRd => {
                    if node.rights.read == DeclState::None {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid });
                    }
                    node.rights.read = DeclState::Retired;
                    touched.insert(oid);
                }
                ContOp::NoWr => {
                    if node.rights.write == DeclState::None {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid });
                    }
                    node.rights.write = DeclState::Retired;
                    touched.insert(oid);
                }
                ContOp::NoCm => {
                    if node.rights.commute == DeclState::None {
                        return Err(JadeError::UnknownDeclaration { task: tid, object: oid });
                    }
                    node.rights.commute = DeclState::Retired;
                    self.arena.set_commute_holding(nr, false);
                    touched.insert(oid);
                }
            }
        }
        let mut wakes = Vec::new();
        let mut touched: Vec<ObjectId> = touched.into_iter().collect();
        touched.sort();
        for oid in touched {
            let grants = self.arena.recompute_incremental(oid, &[]);
            self.process_grants(grants, &mut wakes);
        }
        // Determine whether the converted immediates are enabled.
        let mut waits: Vec<(ObjectId, AccessKind)> = Vec::new();
        for (oid, kind) in converted {
            let nr = self.rec(tid).decl(oid).expect("converted node exists");
            if !self.arena.node(nr).granted(kind) && !waits.contains(&(oid, kind)) {
                waits.push((oid, kind));
            }
        }
        let must_block = !waits.is_empty();
        if must_block {
            self.stats.with_cont_blocks += 1;
            let rec = self.rec_mut(tid);
            rec.waiting = waits;
            rec.state = TaskState::Blocked;
        }
        Ok((must_block, wakes))
    }

    /// Dynamic access check: may `tid` perform `kind` on `oid` right
    /// now? This is the paper's per-object access check, amortized by
    /// the guard layer over many raw accesses.
    ///
    /// For the root task only, a deferred declaration auto-converts to
    /// immediate: the main program implicitly synchronizes with all
    /// outstanding tasks that access the object, which is how a Jade
    /// main program collects results.
    pub fn check_access(&mut self, tid: TaskId, oid: ObjectId, kind: AccessKind) -> Result<AccessStatus> {
        self.stats.access_checks += 1;
        let nr = self
            .rec(tid)
            .decl(oid)
            .ok_or(JadeError::UndeclaredAccess { task: tid, object: oid, kind })?;
        let node = self.arena.node_mut(nr);
        // The root's implicit declaration has no commute side; a root
        // commuting access is satisfied by its (stronger) write right.
        let kind = if kind == AccessKind::Commute
            && tid.is_root()
            && node.rights.commute == DeclState::None
        {
            AccessKind::Write
        } else {
            kind
        };
        let side = match kind {
            AccessKind::Read => node.rights.read,
            AccessKind::Write => node.rights.write,
            AccessKind::Commute => node.rights.commute,
        };
        match side {
            DeclState::None => {
                return Err(JadeError::UndeclaredAccess { task: tid, object: oid, kind })
            }
            DeclState::Retired => {
                return Err(JadeError::RetiredAccess { task: tid, object: oid, kind })
            }
            DeclState::Deferred => {
                if tid.is_root() {
                    match kind {
                        AccessKind::Read => node.rights.read = DeclState::Immediate,
                        AccessKind::Write => node.rights.write = DeclState::Immediate,
                        AccessKind::Commute => node.rights.commute = DeclState::Immediate,
                    }
                } else {
                    return Err(JadeError::DeferredAccess { task: tid, object: oid, kind });
                }
            }
            DeclState::Immediate => {}
        }
        let node = self.arena.node(nr);
        if node.granted(kind) {
            if kind == AccessKind::Commute {
                // Acquire the object's update exclusivity: other
                // commuting tasks now wait until this one finishes or
                // issues no_cm. Order among commuters is unconstrained
                // — first granted access wins.
                self.arena.set_commute_holding(nr, true);
                let _ = self.arena.recompute_incremental(oid, &[]);
            }
            Ok(AccessStatus::Granted)
        } else {
            self.stats.access_waits += 1;
            let rec = self.rec_mut(tid);
            rec.waiting = vec![(oid, kind)];
            rec.state = TaskState::Blocked;
            Ok(AccessStatus::MustWait)
        }
    }

    /// Does the task currently hold an enabled right of this kind?
    /// (Used by executors for assertions and by the simulator to know
    /// whether a fetched object is accessible.)
    pub fn is_granted(&self, tid: TaskId, oid: ObjectId, kind: AccessKind) -> bool {
        self.rec(tid)
            .decl(oid)
            .map(|nr| {
                let n = self.arena.node(nr);
                n.granted(kind)
                    && match kind {
                        AccessKind::Read => n.rights.read == DeclState::Immediate,
                        AccessKind::Write => n.rights.write == DeclState::Immediate,
                        AccessKind::Commute => n.rights.commute == DeclState::Immediate,
                    }
            })
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecBuilder;

    fn decls(f: impl FnOnce(&mut SpecBuilder)) -> Vec<Declaration> {
        let mut b = SpecBuilder::new();
        f(&mut b);
        b.build().0
    }

    #[test]
    fn path_order_rules() {
        assert!(path_precedes(&[0], &[1]));
        assert!(!path_precedes(&[1], &[0]));
        assert!(path_precedes(&[0, 5], &[0])); // descendant before ancestor
        assert!(!path_precedes(&[0], &[0, 5]));
        assert!(path_precedes(&[0, 9], &[1, 0]));
        assert!(!path_precedes(&[2], &[2]));
        assert!(path_precedes(&[1], &[])); // everything precedes root
    }

    #[test]
    fn independent_tasks_both_ready() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let b = g.create_object(TaskId::ROOT);
        let (t1, w1) = g
            .create_task(TaskId::ROOT, "t1", decls(|s| { s.wr(a); }), Placement::Any)
            .unwrap();
        let (t2, w2) = g
            .create_task(TaskId::ROOT, "t2", decls(|s| { s.wr(b); }), Placement::Any)
            .unwrap();
        assert!(w1.contains(&Wake::Ready(t1)));
        assert!(w2.contains(&Wake::Ready(t2)));
    }

    #[test]
    fn write_read_conflict_serializes() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (w, wakes) = g
            .create_task(TaskId::ROOT, "writer", decls(|s| { s.wr(a); }), Placement::Any)
            .unwrap();
        assert!(wakes.contains(&Wake::Ready(w)));
        let (r, wakes2) = g
            .create_task(TaskId::ROOT, "reader", decls(|s| { s.rd(a); }), Placement::Any)
            .unwrap();
        assert!(wakes2.is_empty(), "reader must wait for the writer");
        assert_eq!(g.state(r), TaskState::Pending);
        g.start_task(w);
        let wakes3 = g.finish_task(w);
        assert_eq!(wakes3, vec![Wake::Ready(r)]);
    }

    #[test]
    fn concurrent_readers_then_writer() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (r1, _) = g
            .create_task(TaskId::ROOT, "r1", decls(|s| { s.rd(a); }), Placement::Any)
            .unwrap();
        let (r2, _) = g
            .create_task(TaskId::ROOT, "r2", decls(|s| { s.rd(a); }), Placement::Any)
            .unwrap();
        let (w, _) = g
            .create_task(TaskId::ROOT, "w", decls(|s| { s.wr(a); }), Placement::Any)
            .unwrap();
        assert_eq!(g.state(r1), TaskState::Ready);
        assert_eq!(g.state(r2), TaskState::Ready);
        assert_eq!(g.state(w), TaskState::Pending);
        g.start_task(r1);
        g.start_task(r2);
        assert!(g.finish_task(r1).is_empty());
        assert_eq!(g.finish_task(r2), vec![Wake::Ready(w)]);
    }

    #[test]
    fn hierarchical_children_precede_parent_remainder() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (p, _) = g
            .create_task(TaskId::ROOT, "parent", decls(|s| { s.rd_wr(a); }), Placement::Any)
            .unwrap();
        g.start_task(p);
        // Parent may write now.
        assert!(g.is_granted(p, a, AccessKind::Write));
        // Parent spawns a child writer: parent cedes access.
        let (c, _) = g
            .create_task(p, "child", decls(|s| { s.wr(a); }), Placement::Any)
            .unwrap();
        assert_eq!(g.state(c), TaskState::Ready);
        assert!(!g.is_granted(p, a, AccessKind::Write));
        // Parent attempting to write must wait for the child.
        assert_eq!(g.check_access(p, a, AccessKind::Write).unwrap(), AccessStatus::MustWait);
        g.start_task(c);
        let wakes = g.finish_task(c);
        assert!(wakes.contains(&Wake::Unblocked(p)));
        assert!(g.is_granted(p, a, AccessKind::Write));
    }

    #[test]
    fn coverage_violation_detected() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (p, _) = g
            .create_task(TaskId::ROOT, "p", decls(|s| { s.rd(a); }), Placement::Any)
            .unwrap();
        g.start_task(p);
        let err = g
            .create_task(p, "bad-child", decls(|s| { s.wr(a); }), Placement::Any)
            .unwrap_err();
        assert!(matches!(err, JadeError::NotCovered { .. }));
    }

    #[test]
    fn deferred_read_pipeline() {
        // The §4.2 backsubst pattern: a consumer with df_rd starts
        // immediately, converts per column, and releases with no_rd.
        let mut g = DepGraph::new();
        let c0 = g.create_object(TaskId::ROOT);
        let c1 = g.create_object(TaskId::ROOT);
        let (f0, _) = g
            .create_task(TaskId::ROOT, "factor0", decls(|s| { s.rd_wr(c0); }), Placement::Any)
            .unwrap();
        let (f1, _) = g
            .create_task(TaskId::ROOT, "factor1", decls(|s| { s.rd_wr(c1); }), Placement::Any)
            .unwrap();
        let (b, wakes) = g
            .create_task(
                TaskId::ROOT,
                "backsubst",
                decls(|s| {
                    s.df_rd(c0);
                    s.df_rd(c1);
                }),
                Placement::Any,
            )
            .unwrap();
        // Starts immediately despite factor0/1 still outstanding.
        assert!(wakes.contains(&Wake::Ready(b)));
        g.start_task(b);
        // Convert c0: must block (factor0 unfinished).
        let (blocked, _) = g.with_cont(b, vec![(c0, ContOp::ToRd)]).unwrap();
        assert!(blocked);
        g.start_task(f0);
        let w = g.finish_task(f0);
        assert!(w.contains(&Wake::Unblocked(b)));
        assert_eq!(g.check_access(b, c0, AccessKind::Read).unwrap(), AccessStatus::Granted);
        // Release c0 early; later writers of c0 would now be free.
        let (blocked2, _) = g.with_cont(b, vec![(c0, ContOp::NoRd)]).unwrap();
        assert!(!blocked2);
        // Accessing after retirement is an error.
        assert!(matches!(
            g.check_access(b, c0, AccessKind::Read),
            Err(JadeError::RetiredAccess { .. })
        ));
        g.start_task(f1);
        g.finish_task(f1);
        let (blocked3, _) = g.with_cont(b, vec![(c1, ContOp::ToRd)]).unwrap();
        assert!(!blocked3, "factor1 already done; no wait");
    }

    #[test]
    fn no_wr_releases_successor_before_completion() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (w, _) = g
            .create_task(TaskId::ROOT, "w", decls(|s| { s.rd_wr(a); }), Placement::Any)
            .unwrap();
        let (r, _) = g
            .create_task(TaskId::ROOT, "r", decls(|s| { s.rd(a); }), Placement::Any)
            .unwrap();
        assert_eq!(g.state(r), TaskState::Pending);
        g.start_task(w);
        // Writer finishes with the object mid-body and releases it.
        let (_, wakes) =
            g.with_cont(w, vec![(a, ContOp::NoWr), (a, ContOp::NoRd)]).unwrap();
        assert!(wakes.contains(&Wake::Ready(r)), "reader released before writer completes");
    }

    #[test]
    fn undeclared_access_is_error() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let b = g.create_object(TaskId::ROOT);
        let (t, _) = g
            .create_task(TaskId::ROOT, "t", decls(|s| { s.rd(a); }), Placement::Any)
            .unwrap();
        g.start_task(t);
        assert!(matches!(
            g.check_access(t, b, AccessKind::Read),
            Err(JadeError::UndeclaredAccess { .. })
        ));
        // Declared read does not allow write.
        assert!(matches!(
            g.check_access(t, a, AccessKind::Write),
            Err(JadeError::UndeclaredAccess { .. })
        ));
    }

    #[test]
    fn deferred_access_without_conversion_is_error() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (t, _) = g
            .create_task(TaskId::ROOT, "t", decls(|s| { s.df_rd(a); }), Placement::Any)
            .unwrap();
        g.start_task(t);
        assert!(matches!(
            g.check_access(t, a, AccessKind::Read),
            Err(JadeError::DeferredAccess { .. })
        ));
    }

    #[test]
    fn root_auto_converts_and_waits_for_tasks() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (t, _) = g
            .create_task(TaskId::ROOT, "t", decls(|s| { s.wr(a); }), Placement::Any)
            .unwrap();
        // Root reads the result: must wait for the writer task.
        assert_eq!(g.check_access(TaskId::ROOT, a, AccessKind::Read).unwrap(), AccessStatus::MustWait);
        g.start_task(t);
        let wakes = g.finish_task(t);
        assert!(wakes.contains(&Wake::Unblocked(TaskId::ROOT)));
        assert_eq!(g.check_access(TaskId::ROOT, a, AccessKind::Read).unwrap(), AccessStatus::Granted);
    }

    #[test]
    fn object_created_by_task_is_initialized_by_it() {
        let mut g = DepGraph::new();
        let (t, _) = g
            .create_task(TaskId::ROOT, "maker", decls(|_| {}), Placement::Any)
            .unwrap();
        g.start_task(t);
        let o = g.create_object(t);
        assert_eq!(g.check_access(t, o, AccessKind::Write).unwrap(), AccessStatus::Granted);
        // Its child may use it (covered by the implicit rd_wr).
        let (c, _) = g.create_task(t, "kid", decls(|s| { s.rd(o); }), Placement::Any).unwrap();
        // Child waits: creator holds an active immediate write.
        assert_eq!(g.state(c), TaskState::Ready, "child inserts before creator; nothing earlier");
    }

    #[test]
    fn sibling_order_through_anchors() {
        // Two sibling subtrees touch an object only through their
        // children; serial order between the cousins must hold.
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (p1, _) = g
            .create_task(TaskId::ROOT, "p1", decls(|s| { s.rd_wr(a); }), Placement::Any)
            .unwrap();
        let (p2, _) = g
            .create_task(TaskId::ROOT, "p2", decls(|s| { s.rd_wr(a); }), Placement::Any)
            .unwrap();
        assert_eq!(g.state(p1), TaskState::Ready);
        assert_eq!(g.state(p2), TaskState::Pending);
        g.start_task(p1);
        // p1 spawns a writing child; p2 spawns one as well when it runs.
        let (c1, _) = g.create_task(p1, "c1", decls(|s| { s.wr(a); }), Placement::Any).unwrap();
        assert_eq!(g.state(c1), TaskState::Ready);
        g.start_task(c1);
        g.finish_task(c1);
        let w = g.finish_task(p1);
        assert!(w.contains(&Wake::Ready(p2)));
        g.start_task(p2);
        let (c2, _) = g.create_task(p2, "c2", decls(|s| { s.wr(a); }), Placement::Any).unwrap();
        assert_eq!(g.state(c2), TaskState::Ready);
    }

    #[test]
    fn trace_captures_cholesky_like_edges() {
        let mut g = DepGraph::new();
        g.enable_trace();
        let c0 = g.create_object(TaskId::ROOT);
        let c3 = g.create_object(TaskId::ROOT);
        let (i0, _) = g
            .create_task(TaskId::ROOT, "Internal(0)", decls(|s| { s.rd_wr(c0); }), Placement::Any)
            .unwrap();
        let (e03, _) = g
            .create_task(
                TaskId::ROOT,
                "External(0->3)",
                decls(|s| {
                    s.rd(c0);
                    s.rd_wr(c3);
                }),
                Placement::Any,
            )
            .unwrap();
        let tr = g.take_trace().unwrap();
        assert!(tr
            .edges()
            .iter()
            .any(|e| e.from == i0 && e.to == e03), "External depends on Internal");
    }

    #[test]
    fn ready_wake_emitted_exactly_once() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let b = g.create_object(TaskId::ROOT);
        for decl_count in 1..=2 {
            let (tid, wakes) = g
                .create_task(
                    TaskId::ROOT,
                    "t",
                    decls(|s| {
                        s.rd_wr(a);
                        if decl_count == 2 {
                            s.rd(b);
                        }
                    }),
                    Placement::Any,
                )
                .unwrap();
            let ready_count =
                wakes.iter().filter(|w| matches!(w, Wake::Ready(t) if *t == tid)).count();
            assert_eq!(ready_count, 1, "decls={decl_count}: {wakes:?}");
            g.start_task(tid);
            g.finish_task(tid);
        }
    }

    #[test]
    fn commuting_tasks_are_unordered_but_serialized() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (t1, _) = g
            .create_task(TaskId::ROOT, "acc1", decls(|s| { s.cm(a); }), Placement::Any)
            .unwrap();
        let (t2, _) = g
            .create_task(TaskId::ROOT, "acc2", decls(|s| { s.cm(a); }), Placement::Any)
            .unwrap();
        let (r, _) = g
            .create_task(TaskId::ROOT, "reader", decls(|s| { s.rd(a); }), Placement::Any)
            .unwrap();
        // Both commuters start immediately; the reader waits for both.
        assert_eq!(g.state(t1), TaskState::Ready);
        assert_eq!(g.state(t2), TaskState::Ready);
        assert_eq!(g.state(r), TaskState::Pending);
        g.start_task(t1);
        g.start_task(t2);
        // t2 touches the object first: perfectly legal (unordered).
        assert_eq!(g.check_access(t2, a, AccessKind::Commute).unwrap(), AccessStatus::Granted);
        // t1 must now wait until t2 completes or relinquishes.
        assert_eq!(g.check_access(t1, a, AccessKind::Commute).unwrap(), AccessStatus::MustWait);
        let wakes = g.finish_task(t2);
        assert!(wakes.contains(&Wake::Unblocked(t1)));
        assert_eq!(g.check_access(t1, a, AccessKind::Commute).unwrap(), AccessStatus::Granted);
        let wakes2 = g.finish_task(t1);
        assert!(wakes2.contains(&Wake::Ready(r)));
    }

    #[test]
    fn no_cm_releases_exclusivity_early() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (t1, _) = g
            .create_task(TaskId::ROOT, "acc1", decls(|s| { s.cm(a); }), Placement::Any)
            .unwrap();
        let (t2, _) = g
            .create_task(TaskId::ROOT, "acc2", decls(|s| { s.cm(a); }), Placement::Any)
            .unwrap();
        g.start_task(t1);
        g.start_task(t2);
        assert_eq!(g.check_access(t1, a, AccessKind::Commute).unwrap(), AccessStatus::Granted);
        assert_eq!(g.check_access(t2, a, AccessKind::Commute).unwrap(), AccessStatus::MustWait);
        // t1 releases with no_cm while still running: t2 proceeds.
        let (_, wakes) = g.with_cont(t1, vec![(a, ContOp::NoCm)]).unwrap();
        assert!(wakes.contains(&Wake::Unblocked(t2)));
        // Accessing after no_cm is an error.
        assert!(matches!(
            g.check_access(t1, a, AccessKind::Commute),
            Err(JadeError::RetiredAccess { .. })
        ));
    }

    #[test]
    fn commute_waits_for_writer_and_blocks_writer() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (w, _) = g
            .create_task(TaskId::ROOT, "w", decls(|s| { s.wr(a); }), Placement::Any)
            .unwrap();
        let (c, _) = g
            .create_task(TaskId::ROOT, "c", decls(|s| { s.cm(a); }), Placement::Any)
            .unwrap();
        let (w2, _) = g
            .create_task(TaskId::ROOT, "w2", decls(|s| { s.wr(a); }), Placement::Any)
            .unwrap();
        assert_eq!(g.state(w), TaskState::Ready);
        assert_eq!(g.state(c), TaskState::Pending, "commute waits for earlier writer");
        assert_eq!(g.state(w2), TaskState::Pending, "write waits for earlier commute");
        g.start_task(w);
        let wk = g.finish_task(w);
        assert!(wk.contains(&Wake::Ready(c)));
        g.start_task(c);
        let wk2 = g.finish_task(c);
        assert!(wk2.contains(&Wake::Ready(w2)));
    }

    #[test]
    fn parent_write_covers_child_commute() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (p, _) = g
            .create_task(TaskId::ROOT, "p", decls(|s| { s.rd_wr(a); }), Placement::Any)
            .unwrap();
        g.start_task(p);
        let ok = g.create_task(p, "kid", decls(|s| { s.cm(a); }), Placement::Any);
        assert!(ok.is_ok());
        // But a read-only parent does not cover a commuting child.
        let (p2, _) = g
            .create_task(TaskId::ROOT, "p2", decls(|s| { s.rd(a); }), Placement::Any)
            .unwrap();
        // p2 is pending (kid above is active); force-start is not
        // needed for the coverage check, which happens at creation.
        let _ = p2;
    }

    #[test]
    fn stats_track_engine_work() {
        let mut g = DepGraph::new();
        let a = g.create_object(TaskId::ROOT);
        let (t, _) = g
            .create_task(TaskId::ROOT, "t", decls(|s| { s.rd_wr(a); }), Placement::Any)
            .unwrap();
        g.start_task(t);
        g.check_access(t, a, AccessKind::Read).unwrap();
        g.finish_task(t);
        assert_eq!(g.stats.tasks_created, 1);
        assert_eq!(g.stats.objects_created, 1);
        assert!(g.stats.access_checks >= 1);
        assert_eq!(g.live_tasks(), 0);
    }
}
