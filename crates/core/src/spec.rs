//! Access specifications: the information Jade programmers provide.
//!
//! A task's access specification is built by running an arbitrary
//! piece of code (the `withonly { ... }` access-declaration section)
//! against a [`SpecBuilder`]. Because the declaration section is code,
//! it may contain loops, conditionals and dynamically resolved object
//! references — this is what lets Jade express dynamic, data-dependent
//! concurrency such as the sparse Cholesky factorization's
//! `rd_wr(c[r[j]].column)`.
//!
//! The pipelining statements of §4.2 (`df_rd`, `df_wr`, `no_rd`,
//! `no_wr`) are built with a [`ContBuilder`] inside a
//! `with { ... } cont;` construct ([`crate::ctx::JadeCtx::with_cont`]);
//! the §4.3 higher-level commuting-update declaration is
//! [`SpecBuilder::cm`] (released early by [`ContBuilder::no_cm`]).

use std::fmt;

use crate::ids::{ObjectId, Placement};

/// The ways a task can touch an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The task observes the object's value.
    Read,
    /// The task mutates the object's value.
    Write,
    /// The task applies an order-independent (commuting) update —
    /// the §4.3 "higher-level" specification: "the programmer may know
    /// that even though two tasks update the same object, the updates
    /// can happen in either order." Commuting updates exclude reads
    /// and writes but not each other; the runtime serializes the
    /// actual accesses without constraining their order.
    Commute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => write!(f, "read"),
            AccessKind::Write => write!(f, "write"),
            AccessKind::Commute => write!(f, "commuting-update"),
        }
    }
}

/// The lifecycle state of one side (read or write) of a declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeclState {
    /// The task never declared this kind of access.
    None,
    /// Declared as deferred (`df_rd`/`df_wr`): the task holds a serial
    /// position for the access but may not perform it yet, and the
    /// access does not gate task start.
    Deferred,
    /// Declared as immediate (`rd`/`wr`/`rd_wr`, or converted from
    /// deferred by a `with-cont`): the task may perform the access as
    /// soon as the declaration is enabled.
    Immediate,
    /// Retired by `no_rd`/`no_wr` (or never-used deferred rights after
    /// completion): the task promises not to perform this access any
    /// more, releasing successors early.
    Retired,
}

impl DeclState {
    /// Whether this side still holds a position that blocks
    /// conflicting successors in the object queue.
    #[inline]
    pub fn is_active(self) -> bool {
        matches!(self, DeclState::Deferred | DeclState::Immediate)
    }
}

/// The rights one declaration grants for one object: a read side, a
/// write side and a commuting-update side, each possibly deferred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeclRights {
    /// Read side of the declaration.
    pub read: DeclState,
    /// Write side of the declaration.
    pub write: DeclState,
    /// Commuting-update side (§4.3).
    pub commute: DeclState,
}

impl DeclRights {
    /// A declaration with no rights (an anchor; see the engine docs).
    pub const NONE: DeclRights = DeclRights {
        read: DeclState::None,
        write: DeclState::None,
        commute: DeclState::None,
    };

    /// `rd`: immediate read.
    pub const RD: DeclRights = DeclRights {
        read: DeclState::Immediate,
        write: DeclState::None,
        commute: DeclState::None,
    };

    /// `wr`: immediate write.
    pub const WR: DeclRights = DeclRights {
        read: DeclState::None,
        write: DeclState::Immediate,
        commute: DeclState::None,
    };

    /// `rd_wr`: immediate read and write.
    pub const RD_WR: DeclRights = DeclRights {
        read: DeclState::Immediate,
        write: DeclState::Immediate,
        commute: DeclState::None,
    };

    /// `df_rd`: deferred read.
    pub const DF_RD: DeclRights = DeclRights {
        read: DeclState::Deferred,
        write: DeclState::None,
        commute: DeclState::None,
    };

    /// `df_wr`: deferred write.
    pub const DF_WR: DeclRights = DeclRights {
        read: DeclState::None,
        write: DeclState::Deferred,
        commute: DeclState::None,
    };

    /// `cm`: immediate commuting update (§4.3).
    pub const CM: DeclRights = DeclRights {
        read: DeclState::None,
        write: DeclState::None,
        commute: DeclState::Immediate,
    };

    /// Whether any side is still active.
    #[inline]
    pub fn is_active(self) -> bool {
        self.read.is_active() || self.write.is_active() || self.commute.is_active()
    }

    /// Whether the declaration ever had any rights at all.
    #[inline]
    pub fn is_declared(self) -> bool {
        self.read != DeclState::None
            || self.write != DeclState::None
            || self.commute != DeclState::None
    }

    /// Merge a second declaration for the same object into this one
    /// (e.g. `rd` followed by `df_wr`). Immediate wins over deferred,
    /// deferred over none.
    pub fn merge(self, other: DeclRights) -> DeclRights {
        fn stronger(a: DeclState, b: DeclState) -> DeclState {
            use DeclState::*;
            match (a, b) {
                (Immediate, _) | (_, Immediate) => Immediate,
                (Deferred, _) | (_, Deferred) => Deferred,
                (Retired, _) | (_, Retired) => Retired,
                (None, None) => None,
            }
        }
        DeclRights {
            read: stronger(self.read, other.read),
            write: stronger(self.write, other.write),
            commute: stronger(self.commute, other.commute),
        }
    }

    /// Whether `child` rights are covered by `self` (the parent-side
    /// rights): a child may only declare accesses its parent declared,
    /// regardless of deferredness. A parent's write right covers a
    /// child's commuting update (a write is strictly stronger).
    pub fn covers(self, child: DeclRights) -> bool {
        (!child.read.is_active() || self.read.is_active())
            && (!child.write.is_active() || self.write.is_active())
            && (!child.commute.is_active()
                || self.commute.is_active()
                || self.write.is_active())
    }
}

/// One object's entry in a task's access specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Declaration {
    /// The shared object being declared.
    pub object: ObjectId,
    /// The declared rights.
    pub rights: DeclRights,
}

/// Hash a whole declaration vector with the runtime's fast internal
/// hasher — the key for the engine's per-worker spec cache. Loops that
/// re-issue the same `AccessSpec` (cholesky/water/pmake style) produce
/// the same key, letting `attach_task` skip re-validation. Collisions
/// are tolerated: cache consumers compare the full slice before
/// trusting a key match.
pub fn spec_hash(decls: &[Declaration]) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crate::fasthash::FastHasher::default();
    for d in decls {
        d.hash(&mut h);
    }
    h.finish()
}

/// Builder the access-declaration section runs against.
///
/// Mirrors the paper's access specification statements:
/// `rd`, `wr`, `rd_wr`, `df_rd`, `df_wr`. Multiple statements for the
/// same object merge (strongest state per side wins).
#[derive(Debug, Default)]
pub struct SpecBuilder {
    decls: Vec<Declaration>,
    placement: Placement,
}

impl SpecBuilder {
    /// Create an empty specification.
    pub fn new() -> Self {
        SpecBuilder { decls: Vec::new(), placement: Placement::Any }
    }

    fn add(&mut self, object: ObjectId, rights: DeclRights) {
        if let Some(d) = self.decls.iter_mut().find(|d| d.object == object) {
            d.rights = d.rights.merge(rights);
        } else {
            self.decls.push(Declaration { object, rights });
        }
    }

    /// Declare that the task may read the object (`rd`).
    pub fn rd(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.add(object.into(), DeclRights::RD);
        self
    }

    /// Declare that the task may write the object (`wr`).
    pub fn wr(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.add(object.into(), DeclRights::WR);
        self
    }

    /// Declare that the task may read and write the object (`rd_wr`).
    pub fn rd_wr(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.add(object.into(), DeclRights::RD_WR);
        self
    }

    /// Declare a deferred read (`df_rd`, §4.2): the task may
    /// *eventually* read the object but will not do so immediately,
    /// so the declaration does not delay task start.
    pub fn df_rd(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.add(object.into(), DeclRights::DF_RD);
        self
    }

    /// Declare a deferred write (`df_wr`).
    pub fn df_wr(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.add(object.into(), DeclRights::DF_WR);
        self
    }

    /// Declare a commuting update (`cm`, §4.3): the task will update
    /// the object, the update commutes with other tasks' declared
    /// commuting updates, so the runtime may execute them in any
    /// order. Excludes concurrent readers and writers.
    pub fn cm(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.add(object.into(), DeclRights::CM);
        self
    }

    /// Request a placement for the task (§4.5 low-level control).
    pub fn place(&mut self, placement: Placement) -> &mut Self {
        self.placement = placement;
        self
    }

    /// Finish building, yielding the declarations and placement.
    pub fn build(self) -> (Vec<Declaration>, Placement) {
        (self.decls, self.placement)
    }

    /// The declarations collected so far.
    pub fn declarations(&self) -> &[Declaration] {
        &self.decls
    }
}

/// One `with-cont` operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContOp {
    /// Convert a deferred read to an immediate read (`rd` inside a
    /// `with-cont`); blocks the task until the read is enabled.
    ToRd,
    /// Convert a deferred write to an immediate write (`wr` inside a
    /// `with-cont`).
    ToWr,
    /// Retire the read side (`no_rd`): the task will no longer read
    /// the object, releasing later writers early.
    NoRd,
    /// Retire the write side (`no_wr`).
    NoWr,
    /// Retire the commuting-update side (`no_cm`): the task has
    /// finished its commuting updates to the object.
    NoCm,
}

/// Builder the `with { ... } cont;` declaration section runs against.
#[derive(Debug, Default)]
pub struct ContBuilder {
    ops: Vec<(ObjectId, ContOp)>,
}

impl ContBuilder {
    /// Create an empty change set.
    pub fn new() -> Self {
        ContBuilder { ops: Vec::new() }
    }

    /// `rd(o)` inside a with-cont: convert the deferred read
    /// declaration on `o` to an immediate one.
    pub fn to_rd(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.ops.push((object.into(), ContOp::ToRd));
        self
    }

    /// `wr(o)` inside a with-cont: convert the deferred write
    /// declaration on `o` to an immediate one.
    pub fn to_wr(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.ops.push((object.into(), ContOp::ToWr));
        self
    }

    /// `no_rd(o)`: declare the task has finished reading `o`.
    pub fn no_rd(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.ops.push((object.into(), ContOp::NoRd));
        self
    }

    /// `no_wr(o)`: declare the task has finished writing `o`.
    pub fn no_wr(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.ops.push((object.into(), ContOp::NoWr));
        self
    }

    /// `no_cm(o)`: declare the task has finished its commuting
    /// updates to `o`, releasing waiting readers/writers early.
    pub fn no_cm(&mut self, object: impl Into<ObjectId>) -> &mut Self {
        self.ops.push((object.into(), ContOp::NoCm));
        self
    }

    /// Finish building, yielding the ordered operations.
    pub fn build(self) -> Vec<(ObjectId, ContOp)> {
        self.ops
    }

    /// The operations collected so far.
    pub fn ops(&self) -> &[(ObjectId, ContOp)] {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(n: u64) -> ObjectId {
        ObjectId(n)
    }

    #[test]
    fn merge_takes_strongest_per_side() {
        let m = DeclRights::DF_RD.merge(DeclRights::WR);
        assert_eq!(m.read, DeclState::Deferred);
        assert_eq!(m.write, DeclState::Immediate);
        let m2 = DeclRights::RD.merge(DeclRights::DF_RD);
        assert_eq!(m2.read, DeclState::Immediate);
    }

    #[test]
    fn builder_merges_duplicate_objects() {
        let mut b = SpecBuilder::new();
        b.rd(o(1)).wr(o(1)).rd(o(2));
        let (decls, _) = b.build();
        assert_eq!(decls.len(), 2);
        let d1 = decls.iter().find(|d| d.object == o(1)).unwrap();
        assert_eq!(d1.rights, DeclRights::RD_WR);
    }

    #[test]
    fn coverage_rules() {
        assert!(DeclRights::RD_WR.covers(DeclRights::RD));
        assert!(DeclRights::RD_WR.covers(DeclRights::WR));
        assert!(DeclRights::DF_RD.covers(DeclRights::RD)); // deferredness irrelevant
        assert!(!DeclRights::RD.covers(DeclRights::WR));
        assert!(!DeclRights::WR.covers(DeclRights::RD));
        assert!(DeclRights::RD.covers(DeclRights::NONE));
    }

    #[test]
    fn cont_builder_preserves_order() {
        let mut c = ContBuilder::new();
        c.to_rd(o(5)).no_rd(o(5));
        let ops = c.build();
        assert_eq!(ops, vec![(o(5), ContOp::ToRd), (o(5), ContOp::NoRd)]);
    }

    #[test]
    fn active_states() {
        assert!(DeclState::Deferred.is_active());
        assert!(DeclState::Immediate.is_active());
        assert!(!DeclState::Retired.is_active());
        assert!(!DeclState::None.is_active());
        assert!(DeclRights::DF_WR.is_active());
        assert!(!DeclRights::NONE.is_active());
    }

    #[test]
    fn commute_rights_and_coverage() {
        assert!(DeclRights::CM.is_active());
        assert!(DeclRights::CM.is_declared());
        // A parent's write covers a child's commuting update; a
        // parent's read does not.
        assert!(DeclRights::WR.covers(DeclRights::CM));
        assert!(DeclRights::CM.covers(DeclRights::CM));
        assert!(!DeclRights::RD.covers(DeclRights::CM));
        // Commute does not cover read or write.
        assert!(!DeclRights::CM.covers(DeclRights::RD));
        assert!(!DeclRights::CM.covers(DeclRights::WR));
        let merged = DeclRights::CM.merge(DeclRights::RD);
        assert_eq!(merged.commute, DeclState::Immediate);
        assert_eq!(merged.read, DeclState::Immediate);
    }

    #[test]
    fn dynamic_spec_via_loop() {
        // The paper's backsubst declares a whole matrix with a loop.
        let mut b = SpecBuilder::new();
        for i in 0..10u64 {
            b.df_rd(o(i));
        }
        assert_eq!(b.declarations().len(), 10);
    }
}
