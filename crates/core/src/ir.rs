//! The portable task-body IR: a declarative program of kernel calls
//! over a task's declared objects.
//!
//! Rust closures cannot cross a process boundary, but most of the
//! paper's task bodies are *kernel-shaped*: read some declared
//! objects, run a pure computation, write some declared objects. A
//! [`TaskBodyIr`] captures exactly that shape as data — a short
//! sequence of [`IrStep`]s naming kernels from a
//! [`KernelRegistry`](crate::kernels::KernelRegistry) — so a remote
//! worker can execute the body against *replicas* of the objects and
//! send back only the written values. Sources index the task's
//! declaration list (the same `AccessSpec` the engine checks), which
//! is what ties the IR to the access-specification discipline: a body
//! can only touch what it declared.
//!
//! Bodies that do not lower (data-dependent control flow, foreign
//! types) simply attach no IR and keep their closure; the runtime
//! falls back to local execution for them.
//!
//! The value domain is `f64` buffers: every shippable object lowers to
//! a flat `Vec<f64>` (see [`crate::store`]'s lowering registry).
//! Integers that must survive the trip (versions, sizes, indices) are
//! exact as long as they stay below 2⁵³, which every counter here does.

use jade_transport::{DecodeResult, PortDecoder, PortEncoder, Portable};

use crate::kernels::KernelRegistry;

/// One argument source for a kernel call. Sources are concatenated in
/// order into the kernel's flat `&[f64]` argument slice.
#[derive(Debug, Clone, PartialEq)]
pub enum IrSrc {
    /// The lowered value of declaration `decl` of the task's spec.
    Obj(u32),
    /// Literal values baked in at task-creation time (the main task
    /// resolves them while generating the spec — pattern indices,
    /// block shapes, timestep sizes).
    Lit(Vec<f64>),
    /// The full output of an earlier step stored to temporary `tmp`.
    Tmp(u32),
    /// A slice of a temporary: `len` values starting at `start`. This
    /// plus the `id` kernel scatters one kernel output into several
    /// destination objects.
    TmpSlice {
        /// Temporary index.
        tmp: u32,
        /// First element of the slice.
        start: u32,
        /// Slice length.
        len: u32,
    },
}

/// Where a kernel call's result goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrDst {
    /// Replace the lowered value of declaration `decl`; the object is
    /// written back to the coordinator when the task completes.
    Obj(u32),
    /// Store into temporary `tmp` for later steps (never shipped).
    Tmp(u32),
}

/// One kernel call.
#[derive(Debug, Clone, PartialEq)]
pub struct IrStep {
    /// Kernel name, resolved against the executing registry.
    pub kernel: String,
    /// Argument sources, concatenated in order.
    pub args: Vec<IrSrc>,
    /// Result destination.
    pub out: IrDst,
}

/// A task body as data: an ordered program of kernel calls.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskBodyIr {
    /// The steps, executed in order.
    pub steps: Vec<IrStep>,
}

impl TaskBodyIr {
    /// An empty program (builder entry point).
    pub fn new() -> Self {
        TaskBodyIr::default()
    }

    /// Append a step, builder-style.
    pub fn step(mut self, kernel: &str, args: Vec<IrSrc>, out: IrDst) -> Self {
        self.steps.push(IrStep { kernel: kernel.to_string(), args, out });
        self
    }

    /// Declaration indices whose values the program *reads* (appear as
    /// `Obj` sources, or as `Obj` destinations that an earlier step
    /// has not fully defined). Sorted, deduplicated.
    pub fn read_decls(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut defined: Vec<u32> = Vec::new();
        for s in &self.steps {
            for a in &s.args {
                if let IrSrc::Obj(d) = a {
                    if !defined.contains(d) {
                        out.push(*d);
                    }
                }
            }
            if let IrDst::Obj(d) = s.out {
                defined.push(d);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Declaration indices the program writes. Sorted, deduplicated.
    pub fn written_decls(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .steps
            .iter()
            .filter_map(|s| match s.out {
                IrDst::Obj(d) => Some(d),
                IrDst::Tmp(_) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Every kernel name the program calls.
    pub fn kernel_names(&self) -> impl Iterator<Item = &str> {
        self.steps.iter().map(|s| s.kernel.as_str())
    }
}

/// Execute an IR program. `inputs[d]` holds the lowered value of
/// declaration `d` for every declaration in
/// [`read_decls`](TaskBodyIr::read_decls) (others may be `None`).
/// Returns the final value of every written declaration, sorted by
/// declaration index. Failures (unknown kernel, missing input, bad
/// slice) are deterministic and reported as strings — the caller
/// decides whether to fall back to a closure.
pub fn run_ir(
    ir: &TaskBodyIr,
    inputs: &[Option<Vec<f64>>],
    registry: &KernelRegistry,
) -> Result<Vec<(u32, Vec<f64>)>, String> {
    let mut objs: Vec<Option<Vec<f64>>> = inputs.to_vec();
    let mut tmps: Vec<Option<Vec<f64>>> = Vec::new();
    let mut args: Vec<f64> = Vec::new();
    for (i, step) in ir.steps.iter().enumerate() {
        let kernel = registry
            .lookup(&step.kernel)
            .ok_or_else(|| format!("step {i}: no kernel named '{}'", step.kernel))?;
        args.clear();
        for src in &step.args {
            match src {
                IrSrc::Obj(d) => {
                    let v = objs
                        .get(*d as usize)
                        .and_then(|o| o.as_ref())
                        .ok_or_else(|| format!("step {i}: input for decl {d} missing"))?;
                    args.extend_from_slice(v);
                }
                IrSrc::Lit(vals) => args.extend_from_slice(vals),
                IrSrc::Tmp(t) => {
                    let v = tmps
                        .get(*t as usize)
                        .and_then(|o| o.as_ref())
                        .ok_or_else(|| format!("step {i}: tmp {t} undefined"))?;
                    args.extend_from_slice(v);
                }
                IrSrc::TmpSlice { tmp, start, len } => {
                    let v = tmps
                        .get(*tmp as usize)
                        .and_then(|o| o.as_ref())
                        .ok_or_else(|| format!("step {i}: tmp {tmp} undefined"))?;
                    let (s, l) = (*start as usize, *len as usize);
                    let slice = v
                        .get(s..s + l)
                        .ok_or_else(|| format!("step {i}: slice {s}..{} out of range", s + l))?;
                    args.extend_from_slice(slice);
                }
            }
        }
        let result = kernel(&args);
        match step.out {
            IrDst::Obj(d) => {
                let d = d as usize;
                if objs.len() <= d {
                    objs.resize(d + 1, None);
                }
                objs[d] = Some(result);
            }
            IrDst::Tmp(t) => {
                let t = t as usize;
                if tmps.len() <= t {
                    tmps.resize(t + 1, None);
                }
                tmps[t] = Some(result);
            }
        }
    }
    Ok(ir
        .written_decls()
        .into_iter()
        .filter_map(|d| objs.get(d as usize).and_then(|o| o.clone()).map(|v| (d, v)))
        .collect())
}

// Wire format: the IR ships inside `TaskShip` frames, so it converts
// through every machine's `DataLayout` like any other message.

impl Portable for IrSrc {
    fn encode(&self, enc: &mut PortEncoder) {
        match self {
            IrSrc::Obj(d) => {
                enc.put_u8(0);
                enc.put_u32(*d);
            }
            IrSrc::Lit(vals) => {
                enc.put_u8(1);
                enc.put_f64_slice(vals);
            }
            IrSrc::Tmp(t) => {
                enc.put_u8(2);
                enc.put_u32(*t);
            }
            IrSrc::TmpSlice { tmp, start, len } => {
                enc.put_u8(3);
                enc.put_u32(*tmp);
                enc.put_u32(*start);
                enc.put_u32(*len);
            }
        }
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        Ok(match dec.get_u8()? {
            0 => IrSrc::Obj(dec.get_u32()?),
            1 => IrSrc::Lit(dec.get_f64_slice()?),
            2 => IrSrc::Tmp(dec.get_u32()?),
            3 => IrSrc::TmpSlice {
                tmp: dec.get_u32()?,
                start: dec.get_u32()?,
                len: dec.get_u32()?,
            },
            t => {
                return Err(jade_transport::DecodeError::LengthOverflow { len: t as usize });
            }
        })
    }
    fn size_hint(&self) -> usize {
        match self {
            IrSrc::Lit(v) => 8 + v.len() * 8,
            _ => 16,
        }
    }
}

impl Portable for IrDst {
    fn encode(&self, enc: &mut PortEncoder) {
        match self {
            IrDst::Obj(d) => {
                enc.put_u8(0);
                enc.put_u32(*d);
            }
            IrDst::Tmp(t) => {
                enc.put_u8(1);
                enc.put_u32(*t);
            }
        }
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        Ok(match dec.get_u8()? {
            0 => IrDst::Obj(dec.get_u32()?),
            1 => IrDst::Tmp(dec.get_u32()?),
            t => {
                return Err(jade_transport::DecodeError::LengthOverflow { len: t as usize });
            }
        })
    }
    fn size_hint(&self) -> usize {
        8
    }
}

impl Portable for IrStep {
    fn encode(&self, enc: &mut PortEncoder) {
        enc.put_str(&self.kernel);
        self.args.encode(enc);
        self.out.encode(enc);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        Ok(IrStep {
            kernel: dec.get_str()?,
            args: Vec::<IrSrc>::decode(dec)?,
            out: IrDst::decode(dec)?,
        })
    }
    fn size_hint(&self) -> usize {
        16 + self.kernel.len() + self.args.iter().map(Portable::size_hint).sum::<usize>()
    }
}

impl Portable for TaskBodyIr {
    fn encode(&self, enc: &mut PortEncoder) {
        self.steps.encode(enc);
    }
    fn decode(dec: &mut PortDecoder<'_>) -> DecodeResult<Self> {
        Ok(TaskBodyIr { steps: Vec::<IrStep>::decode(dec)? })
    }
    fn size_hint(&self) -> usize {
        8 + self.steps.iter().map(Portable::size_hint).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jade_transport::{roundtrip_same, DataLayout};

    fn reg() -> KernelRegistry {
        KernelRegistry::builtin()
    }

    #[test]
    fn single_step_updates_object_in_place() {
        // decl 0: a vector doubled in place.
        let ir = TaskBodyIr::new().step("scale2", vec![IrSrc::Obj(0)], IrDst::Obj(0));
        let outs = run_ir(&ir, &[Some(vec![1.0, -2.5])], &reg()).unwrap();
        assert_eq!(outs, vec![(0, vec![2.0, -5.0])]);
        assert_eq!(ir.read_decls(), vec![0]);
        assert_eq!(ir.written_decls(), vec![0]);
    }

    #[test]
    fn tmp_slices_scatter_one_output_into_two_objects() {
        // One kernel produces [2x0, 2x1]; id-scatter sends element 0
        // to decl 1 and element 1 to decl 2.
        let ir = TaskBodyIr::new()
            .step("scale2", vec![IrSrc::Obj(0)], IrDst::Tmp(0))
            .step("id", vec![IrSrc::TmpSlice { tmp: 0, start: 0, len: 1 }], IrDst::Obj(1))
            .step("id", vec![IrSrc::TmpSlice { tmp: 0, start: 1, len: 1 }], IrDst::Obj(2));
        let outs = run_ir(&ir, &[Some(vec![3.0, 4.0]), None, None], &reg()).unwrap();
        assert_eq!(outs, vec![(1, vec![6.0]), (2, vec![8.0])]);
        assert_eq!(ir.read_decls(), vec![0], "written-only decls are not read");
    }

    #[test]
    fn literals_and_chaining() {
        let ir = TaskBodyIr::new()
            .step("sum", vec![IrSrc::Lit(vec![1.0, 2.0]), IrSrc::Obj(0)], IrDst::Tmp(0))
            .step("sum", vec![IrSrc::Tmp(0), IrSrc::Tmp(0)], IrDst::Obj(0));
        let outs = run_ir(&ir, &[Some(vec![4.0])], &reg()).unwrap();
        assert_eq!(outs, vec![(0, vec![14.0])]);
    }

    #[test]
    fn failures_are_deterministic_strings() {
        let missing = TaskBodyIr::new().step("nope", vec![], IrDst::Tmp(0));
        assert!(run_ir(&missing, &[], &reg()).unwrap_err().contains("nope"));
        let no_input = TaskBodyIr::new().step("sum", vec![IrSrc::Obj(0)], IrDst::Obj(0));
        assert!(run_ir(&no_input, &[None], &reg()).unwrap_err().contains("decl 0"));
        let bad_slice = TaskBodyIr::new()
            .step("id", vec![IrSrc::Lit(vec![1.0])], IrDst::Tmp(0))
            .step("id", vec![IrSrc::TmpSlice { tmp: 0, start: 0, len: 5 }], IrDst::Obj(0));
        assert!(run_ir(&bad_slice, &[None], &reg()).unwrap_err().contains("out of range"));
    }

    #[test]
    fn ir_round_trips_through_every_layout() {
        let ir = TaskBodyIr::new()
            .step(
                "cholesky_col",
                vec![
                    IrSrc::Lit(vec![0.5, -3.0]),
                    IrSrc::Obj(2),
                    IrSrc::Tmp(1),
                    IrSrc::TmpSlice { tmp: 0, start: 3, len: 9 },
                ],
                IrDst::Tmp(4),
            )
            .step("id", vec![IrSrc::Tmp(4)], IrDst::Obj(0));
        for l in DataLayout::all_presets() {
            assert_eq!(roundtrip_same(&ir, l), ir);
        }
    }
}
