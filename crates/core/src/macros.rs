//! Paper-like surface syntax for the Jade constructs.
//!
//! The macros turn the builder-closure API into something visually
//! close to the paper's
//! `withonly { rd_wr(c[i].column); rd(c); } do (c, r, i) { ... }`:
//!
//! ```
//! use jade_core::prelude::*;
//! use jade_core::{withonly, with_cont};
//!
//! let (v, _) = jade_core::serial::run(|ctx| {
//!     let a = ctx.create(1.0f64);
//!     let b = ctx.create(2.0f64);
//!     withonly!(ctx, "combine", { rd(a); rd_wr(b); df_rd(a); } do |c| {
//!         with_cont!(c, { to_rd(a); });
//!         let x = *c.rd(&a);
//!         *c.wr(&b) += x;
//!         with_cont!(c, { no_rd(a); });
//!     });
//!     *ctx.rd(&b)
//! });
//! assert_eq!(v, 3.0);
//! ```

/// The `withonly { access declaration } do { body }` construct.
///
/// The access-declaration block is a sequence of specification
/// statements (`rd(x); wr(x); rd_wr(x); df_rd(x); df_wr(x); cm(x);
/// place(p);`) executed against the task's [`crate::spec::SpecBuilder`]
/// — arbitrary code is still allowed through the closure form of
/// [`crate::ctx::JadeCtx::withonly`].
#[macro_export]
macro_rules! withonly {
    ($ctx:expr, $label:expr, { $($method:ident($($arg:expr),*$(,)?);)* } do |$c:ident| $body:block) => {
        $ctx.withonly(
            $label,
            |s| { $( s.$method($($arg),*); )* },
            move |$c| $body,
        )
    };
}

/// The `with { access declaration } cont;` construct: statements are
/// `to_rd(x); to_wr(x); no_rd(x); no_wr(x); no_cm(x);` against the
/// task's [`crate::spec::ContBuilder`].
#[macro_export]
macro_rules! with_cont {
    ($ctx:expr, { $($method:ident($obj:expr);)* }) => {
        $ctx.with_cont(|b| { $( b.$method($obj); )* })
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn macro_forms_compile_and_run() {
        let (v, stats) = crate::serial::run(|ctx| {
            let acc = ctx.create(0.0f64);
            for i in 0..4 {
                withonly!(ctx, "add", { cm(acc); } do |c| {
                    *c.cm(&acc) += i as f64;
                });
            }
            let col = ctx.create(vec![1.0f64, 2.0]);
            withonly!(ctx, "pipeline", { rd_wr(acc); df_rd(col); } do |c| {
                with_cont!(c, { to_rd(col); });
                let s: f64 = c.rd(&col).iter().sum();
                with_cont!(c, { no_rd(col); });
                *c.wr(&acc) += s;
            });
            *ctx.rd(&acc)
        });
        assert_eq!(v, 0.0 + 1.0 + 2.0 + 3.0 + 3.0);
        assert_eq!(stats.tasks_created, 5);
        assert_eq!(stats.with_conts, 2);
    }

    #[test]
    fn macro_supports_placement() {
        crate::serial::run(|ctx| {
            let a = ctx.create(0.0f64);
            withonly!(ctx, "pinned", { rd_wr(a); place(Placement::Machine(MachineId(0))); } do |c| {
                *c.wr(&a) = 1.0;
            });
        });
    }
}
