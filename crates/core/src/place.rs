//! The shared placement policy: pick the machine for a task.
//!
//! The paper's §5: the implementation "keeps track of which processors
//! may be idle and dynamically assigns executable tasks to processors
//! which may become idle" (load balancing) and "uses a heuristic that
//! attempts to execute tasks on the same processor if they access some
//! of the same objects" (locality). One policy serves two runtimes:
//! `jade-sim` scores machines against its simulated object directory
//! (validating the heuristic at scale), and `jade-net` scores real
//! workers by resident replica bytes — the same [`choose`], different
//! directory behind the [`Candidate::affinity`] number.

/// A candidate machine with its scheduling inputs.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Machine index.
    pub machine: usize,
    /// Current load (assigned, unfinished, unblocked tasks).
    pub load: usize,
    /// Machine speed (work units / second).
    pub speed: f64,
    /// Locality affinity in resident bytes (0 when the heuristic is
    /// disabled).
    pub affinity: u64,
}

/// Pick the machine for a task among eligible candidates.
///
/// Order of criteria, matching §5's priorities: (1) lowest load — the
/// implementation "dynamically assigns executable tasks to processors
/// which may become idle", so spreading to idle machines comes first
/// (a locality-first policy self-reinforces onto the object-creating
/// machine and starves the rest); (2) strongest object affinity among
/// equally loaded machines — reusing objects other tasks already
/// fetched; (3) highest speed — give work to fast machines in
/// heterogeneous platforms; (4) lowest index — determinism.
pub fn choose(candidates: &[Candidate]) -> Option<usize> {
    candidates
        .iter()
        .min_by(|a, b| {
            a.load
                .cmp(&b.load)
                .then(b.affinity.cmp(&a.affinity))
                .then(b.speed.partial_cmp(&a.speed).unwrap_or(std::cmp::Ordering::Equal))
                .then(a.machine.cmp(&b.machine))
        })
        .map(|c| c.machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(machine: usize, load: usize, speed: f64, affinity: u64) -> Candidate {
        Candidate { machine, load, speed, affinity }
    }

    #[test]
    fn load_dominates_affinity() {
        // An idle machine wins even against strong affinity elsewhere:
        // the paper's load balancer feeds idle processors first.
        let got = choose(&[cand(0, 0, 2.0, 0), cand(1, 3, 1.0, 4096)]);
        assert_eq!(got, Some(0));
    }

    #[test]
    fn affinity_breaks_load_ties() {
        let got = choose(&[cand(0, 1, 1.0, 0), cand(1, 1, 1.0, 4096)]);
        assert_eq!(got, Some(1));
    }

    #[test]
    fn load_then_speed_then_index() {
        assert_eq!(choose(&[cand(0, 1, 1.0, 0), cand(1, 0, 1.0, 0)]), Some(1));
        assert_eq!(choose(&[cand(0, 0, 1.0, 0), cand(1, 0, 2.0, 0)]), Some(1));
        assert_eq!(choose(&[cand(0, 0, 1.0, 0), cand(1, 0, 1.0, 0)]), Some(0));
        assert_eq!(choose(&[]), None);
    }
}
