//! Errors the Jade runtime reports for access-specification
//! violations and malformed programs.
//!
//! Jade performs *dynamic access checking* (paper §5): "The Jade
//! implementation dynamically checks each task's accesses to ensure
//! that its access specification is correct. If a task attempts to
//! perform an undeclared access, the implementation generates an
//! error." These are programming errors, so the high-level `Ctx` API
//! panics with the formatted error; the engine itself returns
//! `Result` so violations are also testable without unwinding.

use std::fmt;

use crate::ids::{ObjectId, TaskId};
use crate::spec::AccessKind;

/// A violation of the Jade programming model detected at run time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JadeError {
    /// A task accessed an object it never declared.
    UndeclaredAccess {
        /// Offending task.
        task: TaskId,
        /// Object that was touched.
        object: ObjectId,
        /// The kind of access attempted.
        kind: AccessKind,
    },
    /// A task accessed an object whose declaration is still deferred;
    /// it must first convert it with a `with-cont` (`to_rd`/`to_wr`).
    DeferredAccess {
        /// Offending task.
        task: TaskId,
        /// Object with only a deferred declaration.
        object: ObjectId,
        /// The kind of access attempted.
        kind: AccessKind,
    },
    /// A task accessed an object after retiring its declaration with
    /// `no_rd`/`no_wr`.
    RetiredAccess {
        /// Offending task.
        task: TaskId,
        /// Object whose declaration was retired.
        object: ObjectId,
        /// The kind of access attempted.
        kind: AccessKind,
    },
    /// A child task declared an access its parent (or the nearest
    /// rights-holding ancestor) did not declare. The paper §4.4: "The
    /// access specification of a task that hierarchically creates
    /// child tasks must declare both its own accesses and the accesses
    /// performed by all of its child tasks."
    NotCovered {
        /// The parent task whose specification lacks the right.
        parent: TaskId,
        /// The child being created.
        child_label: String,
        /// Object in question.
        object: ObjectId,
        /// The right the child wanted.
        kind: AccessKind,
    },
    /// A `with-cont` tried to convert or retire a declaration the task
    /// never made.
    UnknownDeclaration {
        /// Offending task.
        task: TaskId,
        /// Object that was never declared.
        object: ObjectId,
    },
    /// An operation referenced an object id that was never created
    /// (or whose storage is gone).
    UnknownObject(ObjectId),
    /// A task created a child whose declaration conflicts with a guard
    /// the task itself still holds. Guards must be dropped before
    /// spawning a conflicting child so the child's serial position is
    /// unambiguous.
    ChildConflictsWithHeldGuard {
        /// The creating (and guard-holding) task.
        parent: TaskId,
        /// The object both sides touch.
        object: ObjectId,
    },
    /// Internal invariant violation; indicates a runtime bug, not a
    /// user error.
    Internal(String),
}

impl fmt::Display for JadeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JadeError::UndeclaredAccess { task, object, kind } => write!(
                f,
                "access violation: {task} performed an undeclared {kind} access to {object}"
            ),
            JadeError::DeferredAccess { task, object, kind } => write!(
                f,
                "access violation: {task} attempted a {kind} access to {object} while its \
                 declaration is deferred; convert it first with with_cont (to_rd/to_wr)"
            ),
            JadeError::RetiredAccess { task, object, kind } => write!(
                f,
                "access violation: {task} attempted a {kind} access to {object} after \
                 retiring the declaration with no_rd/no_wr"
            ),
            JadeError::NotCovered { parent, child_label, object, kind } => write!(
                f,
                "specification violation: child task '{child_label}' declares {kind} on \
                 {object}, which its parent {parent} did not declare"
            ),
            JadeError::UnknownDeclaration { task, object } => write!(
                f,
                "specification violation: {task} used with_cont on {object} without a \
                 prior declaration for it"
            ),
            JadeError::UnknownObject(oid) => write!(f, "unknown shared object {oid}"),
            JadeError::ChildConflictsWithHeldGuard { parent, object } => write!(
                f,
                "{parent} created a child declaring {object} while still holding a \
                 conflicting access guard on it; drop the guard before the withonly"
            ),
            JadeError::Internal(msg) => write!(f, "internal Jade runtime error: {msg}"),
        }
    }
}

impl std::error::Error for JadeError {}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, JadeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = JadeError::UndeclaredAccess {
            task: TaskId(3),
            object: ObjectId(9),
            kind: AccessKind::Write,
        };
        let s = e.to_string();
        assert!(s.contains("task#3"));
        assert!(s.contains("obj#9"));
        assert!(s.contains("write"));
    }

    #[test]
    fn error_trait_object_works() {
        let e: Box<dyn std::error::Error> = Box::new(JadeError::UnknownObject(ObjectId(1)));
        assert!(e.to_string().contains("obj#1"));
    }
}
